"""Legacy shim so editable installs work without the ``wheel`` package.

The offline environment lacks ``wheel``; ``pip install -e . --no-build-isolation
--no-use-pep517`` takes the ``setup.py develop`` path, which needs this file.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
