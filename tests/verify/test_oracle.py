"""The oracle itself: comparators, fit conventions, and mismatch detection.

The differential suite is only as trustworthy as its reference, so these
tests pin the oracle's own conventions (they must mirror the documented
engine semantics) and — crucially — that the comparators *catch* seeded
corruption: an oracle that never fails is indistinguishable from no oracle.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.cubing.policy import GlobalSlopeThreshold
from repro.regression.isb import ISB
from repro.stream.engine import StreamCubeEngine
from repro.stream.generator import DatasetSpec
from repro.stream.records import StreamRecord
from repro.verify.oracle import (
    OracleISB,
    RawStreamOracle,
    Tolerance,
    VerifyMismatch,
    assert_cells_equal,
    assert_result_equal,
    isb_agree,
    ulp_distance,
)


def make_pair(seed: int = 3, quarters: int = 6, tpq: int = 4):
    """A (engine, oracle) pair fed identical seeded traffic."""
    layers = DatasetSpec(2, 2, 3, 1).build_layers()
    policy = GlobalSlopeThreshold(0.05)
    engine = StreamCubeEngine(layers, policy, ticks_per_quarter=tpq)
    oracle = RawStreamOracle(layers, policy, ticks_per_quarter=tpq)
    rng = random.Random(seed)
    pool = sorted({
        (rng.randrange(9), rng.randrange(9)) for _ in range(8)
    })
    trends = {k: (rng.uniform(-3, 3), rng.uniform(-0.4, 0.4)) for k in pool}
    records = []
    for t in range(quarters * tpq):
        for _ in range(3):
            key = rng.choice(pool)
            base, slope = trends[key]
            records.append(
                StreamRecord(key, t, base + slope * t + rng.uniform(-0.3, 0.3))
            )
    engine.ingest_many(records)
    oracle.ingest(records)
    engine.advance_to(quarters * tpq)
    oracle.advance_to(quarters * tpq)
    return engine, oracle


class TestComparators:
    def test_ulp_distance_zero_for_equal(self):
        assert ulp_distance(1.25, 1.25) == 0.0

    def test_ulp_distance_counts_neighbouring_floats(self):
        x = 1.0
        y = math.nextafter(math.nextafter(x, 2.0), 2.0)
        assert ulp_distance(x, y) == pytest.approx(2.0)

    def test_isb_agree_accepts_ulp_noise(self):
        oracle_isb = OracleISB(0, 9, 1.0, 0.25)
        noisy = ISB(0, 9, 1.0 + 1e-13, 0.25 - 1e-14)
        assert isb_agree(noisy, oracle_isb) is None

    def test_isb_agree_rejects_real_disagreement(self):
        oracle_isb = OracleISB(0, 9, 1.0, 0.25)
        wrong = ISB(0, 9, 1.0, 0.26)
        report = isb_agree(wrong, oracle_isb)
        assert report is not None and "ulps" in report

    def test_isb_agree_interval_mismatch(self):
        report = isb_agree(ISB(0, 8, 1.0, 0.25), OracleISB(0, 9, 1.0, 0.25))
        assert report is not None and "interval" in report

    def test_isb_agree_scales_tolerance_to_line_magnitude(self):
        # A near-zero crossing at one endpoint must not turn line-scale
        # ulp noise into a failure: tolerance follows the larger endpoint.
        oracle_isb = OracleISB(0, 100, 0.0, 1.0)  # z(0)=0, z(100)=100
        noisy = ISB(0, 100, 1e-12, 1.0)
        assert isb_agree(noisy, oracle_isb) is None

    def test_assert_cells_equal_reports_key_drift(self):
        with pytest.raises(VerifyMismatch, match="missing"):
            assert_cells_equal({}, {(1,): OracleISB(0, 3, 0.0, 0.0)})
        with pytest.raises(VerifyMismatch, match="extra"):
            assert_cells_equal({(1,): ISB(0, 3, 0.0, 0.0)}, {})

    def test_tight_tolerance_rejects_what_default_accepts(self):
        oracle_isb = OracleISB(0, 9, 1.0, 0.25)
        noisy = ISB(0, 9, 1.0 + 1e-11, 0.25)
        assert isb_agree(noisy, oracle_isb) is None
        strict = Tolerance(max_ulps=4.0, abs_tol=0.0)
        assert isb_agree(noisy, oracle_isb, strict) is not None


class TestFitConventions:
    """The oracle must mirror the engine's documented sealing semantics."""

    def test_empty_quarter_is_the_zero_line(self):
        _, oracle = make_pair()
        isb = oracle.quarter_isb(("nope", "nope"), 2)
        assert (isb.base, isb.slope) == (0.0, 0.0)
        assert (isb.t_b, isb.t_e) == (8, 11)

    def test_single_tick_quarter_is_flat_at_the_tick_sum(self):
        layers = DatasetSpec(2, 2, 3, 1).build_layers()
        oracle = RawStreamOracle(
            layers, GlobalSlopeThreshold(0.1), ticks_per_quarter=4
        )
        key = (0, 0)
        oracle.ingest(
            [StreamRecord(key, 1, 2.5), StreamRecord(key, 1, 1.5)]
        )
        oracle.advance_to(4)
        isb = oracle.quarter_isb(key, 0)
        assert isb.slope == 0.0
        assert isb.base == pytest.approx(4.0)

    def test_window_must_be_quarter_aligned_and_sealed(self):
        _, oracle = make_pair(quarters=4)
        with pytest.raises(VerifyMismatch, match="aligned"):
            oracle.window_isb([(0, 0)], 1, 8)
        with pytest.raises(VerifyMismatch, match="unsealed"):
            oracle.window_isb([(0, 0)], 0, 4 * 4 * 2 - 1)

    def test_prune_rule_mirrors_idleness(self):
        layers = DatasetSpec(2, 2, 3, 1).build_layers()
        oracle = RawStreamOracle(
            layers, GlobalSlopeThreshold(0.1), ticks_per_quarter=4
        )
        oracle.ingest([StreamRecord((0, 0), 1, 1.0)])
        oracle.ingest([StreamRecord((1, 1), 17, 1.0)])  # quarter 4
        assert oracle.idle_keys(2) == {(0, 0)}
        assert oracle.idle_keys(idle_quarters=10) == set()  # window clamps
        oracle.drop_keys([(0, 0)])
        assert oracle.tracked_cells == 1


class TestDifferentialAgreement:
    def test_engine_matches_oracle_end_to_end(self):
        engine, oracle = make_pair()
        assert_cells_equal(engine.m_cells(4), oracle.m_cells(4), "m-cells")
        for algorithm in ("mo", "popular", "multiway", "full"):
            assert_result_equal(engine.refresh(4, algorithm), oracle, 4)

    def test_change_exceptions_match(self):
        engine, oracle = make_pair(seed=9)
        assert set(engine.change_exceptions(1)) == set(
            oracle.change_exceptions(1)
        )
        assert set(engine.o_layer_change_exceptions(1)) == set(
            oracle.o_layer_change_exceptions(1)
        )

    def test_oracle_catches_corrupted_cells(self):
        """The teeth check: a corrupted answer must not slip through."""
        engine, oracle = make_pair()
        cells = engine.m_cells(4)
        key = sorted(cells)[0]
        good = cells[key]
        cells[key] = ISB(good.t_b, good.t_e, good.base, good.slope + 1e-3)
        with pytest.raises(VerifyMismatch, match="ulps"):
            assert_cells_equal(cells, oracle.m_cells(4), "m-cells")

    def test_oracle_catches_dropped_cells(self):
        engine, oracle = make_pair()
        cells = engine.m_cells(4)
        cells.pop(sorted(cells)[0])
        with pytest.raises(VerifyMismatch, match="missing"):
            assert_cells_equal(cells, oracle.m_cells(4), "m-cells")

    def test_oracle_catches_corrupted_flags(self):
        layers = DatasetSpec(2, 2, 3, 1).build_layers()
        # A threshold no aggregated |slope| reaches, so unflagged o-cells
        # certainly exist and corrupting one is always possible.
        policy = GlobalSlopeThreshold(50.0)
        engine = StreamCubeEngine(layers, policy, ticks_per_quarter=4)
        oracle = RawStreamOracle(layers, policy, ticks_per_quarter=4)
        rng = random.Random(5)
        records = [
            StreamRecord(
                (rng.randrange(9), rng.randrange(9)), t, rng.uniform(0, 4)
            )
            for t in range(6 * 4)
            for _ in range(3)
        ]
        engine.ingest_many(records)
        oracle.ingest(records)
        engine.advance_to(6 * 4)
        oracle.advance_to(6 * 4)
        result = engine.refresh(4)
        flags = result.o_layer_exceptions()
        deck = dict(result.o_layer.items())
        unflagged = [key for key in deck if key not in flags]
        if not unflagged:  # pragma: no cover - seed-dependent guard
            pytest.skip("every o-cell is exceptional under this seed")
        key = unflagged[0]
        flags[key] = deck[key]

        from repro.verify.oracle import _flag_sets_equal

        with pytest.raises(VerifyMismatch, match="system flags"):
            _flag_sets_equal(
                flags,
                oracle.o_layer_exceptions(4),
                oracle,
                oracle.layers.o_coord,
                "o-layer exceptions",
                Tolerance(),
            )
