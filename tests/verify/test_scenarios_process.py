"""Chaos scenarios on the process backend: the catalogue, re-run on forks.

The main sweep (``test_scenarios.py``) runs every scenario against the
in-process backend; this module is the process leg.  One seed replays the
*whole* catalogue with forked shard workers — every differential
guarantee (oracle agreement, engine==cube bit-identity, snapshot /
reshard / crash-recovery equivalence) must hold unchanged when shards
live in worker processes — plus extra seeds for the worker-crash and
RPC-timeout scenarios that only exist on this backend.
"""

from __future__ import annotations

import pytest

from repro.verify.scenarios import (
    SCENARIOS,
    KillWorker,
    SlowRpc,
    run_scenario,
)

PROCESS_SCENARIOS = (
    "worker_crash_midquarter",
    "worker_crash_snapshot",
    "rpc_timeout_retry",
)


class TestCatalogue:
    def test_process_scenarios_present(self):
        for name in PROCESS_SCENARIOS:
            scenario = SCENARIOS[name]
            assert scenario.backend == "process"

    def test_crash_scenarios_kill_workers(self):
        kinds = {
            type(event).__name__
            for name in PROCESS_SCENARIOS
            for event in SCENARIOS[name].events
        }
        assert "KillWorker" in kinds
        assert "SlowRpc" in kinds

    def test_kill_worker_covers_both_modes(self):
        """The catalogue kills workers both cold (SIGKILL from outside)
        and hot (exit fault inside a named method)."""
        events = [
            event
            for name in PROCESS_SCENARIOS
            for event in SCENARIOS[name].events
            if isinstance(event, KillWorker)
        ]
        assert any(event.during is None for event in events)
        assert any(event.during is not None for event in events)

    def test_timeout_scenario_outlasts_its_rpc_budget(self):
        scenario = SCENARIOS["rpc_timeout_retry"]
        slow = [e for e in scenario.events if isinstance(e, SlowRpc)]
        assert slow and all(
            e.seconds > scenario.rpc_timeout for e in slow
        )


class TestProcessSweep:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_catalogue_on_process_backend(self, name):
        """Every scenario — including the storage/spill ones — passes
        bit-identically with shards behind forked workers."""
        run_scenario(name, 1, backend="process")

    @pytest.mark.parametrize("name", PROCESS_SCENARIOS)
    @pytest.mark.parametrize("seed", [2, 5, 13])
    def test_chaos_scenarios_over_extra_seeds(self, name, seed):
        run_scenario(name, seed)
