"""Chaos scenarios under tiered storage: the catalogue spills and survives.

The main sweep (``test_scenarios.py``) runs every scenario over many seeds
with storage off; this module is the spilling leg.  It replays the *whole*
catalogue with a cold store forced on and a small hot horizon — every
differential guarantee (oracle agreement, engine==cube bit-identity,
snapshot/reshard/crash-recovery equivalence) must hold unchanged when
sealed history lives on disk — plus targeted checks for the spill-specific
scenarios and the :class:`DeepWindow` event's own guard rails.
"""

from __future__ import annotations

import pytest

from repro.verify.oracle import VerifyMismatch
from repro.verify.scenarios import (
    SCENARIOS,
    Check,
    DeepWindow,
    Scenario,
    Traffic,
    run_scenario,
)

SPILL_SCENARIOS = (
    "spill_deep_window",
    "spill_snapshot_restore",
    "spill_crash_replay",
)


class TestCatalogue:
    def test_spill_scenarios_present_and_deep(self):
        for name in SPILL_SCENARIOS:
            scenario = SCENARIOS[name]
            assert scenario.storage in ("file", "sqlite")
            assert any(
                isinstance(event, DeepWindow) for event in scenario.events
            )

    def test_both_backends_in_the_catalogue(self):
        backends = {
            SCENARIOS[name].storage for name in SPILL_SCENARIOS
        }
        assert backends == {"file", "sqlite"}

    def test_deep_window_scenario_reaches_hundreds_of_quarters(self):
        scenario = SCENARIOS["spill_deep_window"]
        quarters = sum(
            event.quarters
            for event in scenario.events
            if isinstance(event, Traffic)
        )
        assert quarters >= 200


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_whole_catalogue_passes_while_spilling(name: str):
    """Every scenario — not just the spill-specific ones — must clear all
    its differential checks with a cold store underneath."""
    report = run_scenario(name, seed=2026, storage="file", hot_quarters=2)
    assert report.checks > 0


@pytest.mark.parametrize("name", SPILL_SCENARIOS)
@pytest.mark.parametrize("seed", (0, 1234))
def test_spill_scenarios_over_seeds(name: str, seed: int):
    report = run_scenario(name, seed=seed)
    assert report.checks > 0
    assert report.cells_compared > 0


def test_sqlite_override_runs_the_deep_catalogue_entry():
    report = run_scenario("spill_crash_replay", seed=7, storage="sqlite")
    assert report.checks > 0


class TestDeepWindowGuards:
    def test_deep_window_without_storage_is_a_scenario_bug(self):
        bad = Scenario(
            name="deep_without_storage",
            description="DeepWindow must not silently pass storage-free",
            events=(Traffic(quarters=5), DeepWindow()),
        )
        with pytest.raises(VerifyMismatch, match="scenario bug"):
            run_scenario(bad, seed=3)

    def test_premature_deep_window_is_a_scenario_bug(self):
        bad = Scenario(
            name="premature_deep",
            description="DeepWindow before anything sealed",
            events=(Traffic(quarters=1), DeepWindow()),
            storage="file",
        )
        with pytest.raises(VerifyMismatch, match="scenario bug"):
            run_scenario(bad, seed=3)

    def test_spill_scenarios_keep_the_standard_checks(self):
        for name in SPILL_SCENARIOS:
            assert any(
                isinstance(event, Check)
                for event in SCENARIOS[name].events
            )
