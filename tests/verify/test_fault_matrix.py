"""The fault matrix: chaos scenarios replayed with injection armed.

Every preset fault class (torn WAL appends, cold-page bit flips,
ENOSPC mid-snapshot) is one the durability layer repairs in place, so a
scenario run with a plan armed must still pass **bit-identically** —
same oracle agreement, same engine==cube equivalence — not merely
survive.  The default leg keeps CI fast: three recovery-heavy scenarios
x three presets on the file store, plus a process-backend spot check on
sqlite.  ``FAULT_MATRIX=full`` (the nightly leg) widens to the whole
catalogue x both stores x both execution backends.
"""

from __future__ import annotations

import os

import pytest

from repro.verify.scenarios import SCENARIOS, run_scenario

PRESETS = ("wal-torn", "page-bitflip", "enospc-snapshot")

#: The quick leg leans on the scenarios that exercise the most
#: durability machinery: full-WAL crash recovery, crash recovery under
#: spilled storage, and the everything-at-once soak.
QUICK_SCENARIOS = ("crash_replay", "spill_crash_replay", "kitchen_sink")

FULL = os.environ.get("FAULT_MATRIX") == "full"


def combos():
    names = tuple(SCENARIOS) if FULL else QUICK_SCENARIOS
    storages = ("file", "sqlite") if FULL else ("file",)
    backends = ("inproc", "process") if FULL else ("inproc",)
    for name in names:
        for preset in PRESETS:
            for storage in storages:
                for backend in backends:
                    if (
                        SCENARIOS[name].backend == "process"
                        and backend == "inproc"
                    ):
                        continue  # KillWorker/SlowRpc need real workers
                    yield name, preset, storage, backend
    if not FULL:
        # One process-backend x sqlite spot check per preset keeps the
        # forked-worker fault seams (plan shipped via WorkerSpec, RPC
        # sites dropped) covered on every CI run.
        for preset in PRESETS:
            yield "crash_replay", preset, "sqlite", "process"


@pytest.mark.parametrize(
    "name,preset,storage,backend",
    list(combos()),
    ids=lambda v: str(v),
)
def test_scenario_passes_bit_identically_under_faults(
    name, preset, storage, backend, tmp_path
):
    report = run_scenario(
        name,
        seed=29,
        workdir=tmp_path,
        storage=storage,
        backend=backend,
        fault_plan=preset,
    )
    assert report.checks > 0
    assert report.cells_compared > 0
