"""Short in-process soak runs: the concurrency harness must hold a seeded
run with zero oracle mismatches (CI runs the same thing longer)."""

from __future__ import annotations

import argparse

import pytest

from repro.verify.soak import SoakConfig, run_soak


@pytest.mark.parametrize("seed", [1, 2])
def test_short_soak_zero_mismatches(seed, tmp_path):
    config = SoakConfig(seed=seed, duration=1.5)
    report = run_soak(config, tmp_path)
    assert report.mismatches == 0, report.describe()
    assert report.batches_acked > 0
    assert report.records_acked == report.batches_acked * config.batch_records
    assert report.snapshots >= 1
    assert sum(report.requests.values()) > 0


def test_short_process_soak_zero_mismatches(tmp_path):
    """The same concurrent workload against live forked shard workers —
    queries, snapshots and restore audits all cross the RPC boundary."""
    config = SoakConfig(seed=3, duration=1.5, backend="process")
    report = run_soak(config, tmp_path)
    assert report.mismatches == 0, report.describe()
    assert report.batches_acked > 0
    assert report.snapshots >= 1


def test_short_soak_with_subscribers(tmp_path):
    """Continuous-query push clients under the full concurrent workload:
    every delivered update obeys the ordering contract, and the final
    audit recomputes each subscriber's last update from the oracle at
    that update's own quarter."""
    config = SoakConfig(seed=4, duration=2.0, subscribers=2)
    report = run_soak(config, tmp_path)
    assert report.mismatches == 0, report.describe()
    assert report.requests.get("updates", 0) > 0
    assert report.subscription_updates > 0


def test_soak_cli_entry(tmp_path, capsys, monkeypatch):
    """`python -m repro soak` wiring: flags parse and the verdict prints."""
    from repro.__main__ import main

    code = main(["soak", "--seed", "5", "--duration", "1.0"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "ZERO oracle mismatches" in out


def test_report_describe_lists_problems():
    from repro.verify.soak import SoakReport

    report = SoakReport(seed=1, duration=2.0)
    report.flag("something broke")
    text = report.describe()
    assert "1 mismatches" in text
    assert "something broke" in text
    assert report.mismatches == 1
