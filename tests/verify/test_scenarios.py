"""The chaos-scenario sweep: every scenario, property-tested over seeds.

Under the default ``ci`` hypothesis profile each scenario runs over 20
derandomized seeds; the ``nightly`` profile widens that to 200 random
seeds (the scheduled chaos sweep).  A failure message carries the scenario
name and seed, so ``run_scenario(name, seed)`` replays it exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.verify.oracle import VerifyMismatch
from repro.verify.scenarios import (
    SCENARIOS,
    Check,
    Scenario,
    Traffic,
    run_scenario,
)


class TestCatalogue:
    def test_at_least_twelve_distinct_scenarios(self):
        assert len(SCENARIOS) >= 12

    def test_names_and_descriptions(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description
            assert scenario.events

    def test_catalogue_covers_every_event_type(self):
        kinds = {
            type(event).__name__
            for scenario in SCENARIOS.values()
            for event in scenario.events
        }
        assert kinds >= {
            "Traffic",
            "Advance",
            "Check",
            "SnapshotRestore",
            "Reshard",
            "CrashReplay",
            "Prune",
            "CacheChurn",
        }

    def test_traffic_styles_all_exercised(self):
        styles = {
            event.style
            for scenario in SCENARIOS.values()
            for event in scenario.events
            if isinstance(event, Traffic)
        }
        assert styles == {"burst", "trickle", "boundary", "duplicate"}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_scenario_agrees_with_oracle(name: str, seed: int):
    """Every scenario, under any seed, must clear every differential check."""
    report = run_scenario(name, seed=seed)
    assert report.checks > 0
    assert report.records > 0


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_premature_check_is_a_scenario_bug(seed: int):
    """The runner refuses to 'pass' a check it could not actually perform."""
    bad = Scenario(
        name="premature",
        description="checks before a full window is sealed",
        events=(Traffic(quarters=1), Check()),
    )
    with pytest.raises(VerifyMismatch, match="scenario bug"):
        run_scenario(bad, seed=seed)
