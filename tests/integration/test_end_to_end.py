"""End-to-end integration: simulator -> engine -> cube -> drilling.

This is the paper's whole pipeline in one test module: per-minute power
readings stream in, quarters seal into tilt frames, the regression cube is
refreshed at the two critical layers, the surging street block shows up as
an o-layer exception, and drilling localizes it.
"""

from __future__ import annotations

import math

import pytest

pytest.importorskip("numpy")  # the power-grid simulator draws numpy randomness

from repro.cube.hierarchy import ALL
from repro.cubing.policy import GlobalSlopeThreshold
from repro.query.drill import ExceptionDriller
from repro.regression.isb import isb_of_series
from repro.stream.engine import StreamCubeEngine
from repro.stream.power_grid import PowerGridConfig, PowerGridSimulator
from repro.tilt.frame import TiltLevelSpec


@pytest.fixture(scope="module")
def pipeline():
    cfg = PowerGridConfig(
        n_cities=2,
        blocks_per_city=2,
        addresses_per_block=2,
        users_per_address=2,
        noise=0.01,
        surge_block="c1-b1",
        surge_start_minute=0,
        surge_slope_per_minute=0.05,
        seed=17,
    )
    sim = PowerGridSimulator(cfg)
    layers = sim.layers()
    engine = StreamCubeEngine(
        layers,
        GlobalSlopeThreshold(0.03),
        key_fn=sim.m_key_fn(),
        ticks_per_quarter=15,
        frame_levels=[
            TiltLevelSpec("quarter", 15, 4),
            TiltLevelSpec("hour", 60, 24),
        ],
    )
    minutes = 60
    engine.ingest_many(sim.records(minutes))
    engine.advance_to(minutes)
    return sim, layers, engine


class TestStreamingPipeline:
    def test_quarters_sealed(self, pipeline):
        _, _, engine = pipeline
        assert engine.current_quarter == 4
        assert engine.tracked_cells > 0

    def test_hour_promoted(self, pipeline):
        _, _, engine = pipeline
        key = next(iter(engine.m_cells(1)))
        frame = engine.frame_of(key)
        assert len(frame.slots("hour")) == 1

    def test_m_cells_cover_all_groups_and_blocks(self, pipeline):
        sim, layers, engine = pipeline
        cells = engine.m_cells(4)
        blocks_seen = {key[1] for key in cells}
        assert blocks_seen == set(sim.blocks)

    def test_surging_block_flagged_at_o_layer(self, pipeline):
        sim, layers, engine = pipeline
        result = engine.refresh(window_quarters=4, algorithm="mo")
        exceptional = result.o_layer_exceptions()
        # o-layer is (*, city); the surging block is in city1.
        assert (ALL, "city1") in exceptional

    def test_drilling_localizes_the_surge(self, pipeline):
        sim, layers, engine = pipeline
        result = engine.refresh(window_quarters=4, algorithm="mo")
        driller = ExceptionDriller(result)
        roots = driller.drill_tree()
        flagged_blocks = {
            node.values[1]
            for root in roots
            for node in root.walk()
            if node.values[1] != ALL
        }
        assert "c1-b1" in flagged_blocks

    def test_mo_and_popular_agree_end_to_end(self, pipeline):
        _, _, engine = pipeline
        mo = engine.refresh(4, "mo")
        pp = engine.refresh(4, "popular")
        assert set(mo.o_layer.cells) == set(pp.o_layer.cells)
        for key in mo.o_layer.cells:
            assert math.isclose(
                mo.o_layer[key].slope, pp.o_layer[key].slope, rel_tol=1e-9
            )

    def test_engine_window_matches_offline_aggregation(self, pipeline):
        """The streamed m-layer equals an offline regression over the same
        raw readings (exactness of the whole incremental path)."""
        sim, layers, engine = pipeline
        key_fn = sim.m_key_fn()
        raw: dict[tuple, dict[int, float]] = {}
        for record in sim.records(60):
            key = key_fn(record)
            raw.setdefault(key, {})
            raw[key][record.t] = raw[key].get(record.t, 0.0) + record.z
        cells = engine.m_cells(4)
        for key, series_map in raw.items():
            series = [series_map[t] for t in range(60)]
            expected = isb_of_series(series)
            got = cells[key]
            assert math.isclose(got.base, expected.base, rel_tol=1e-6), key
            assert math.isclose(got.slope, expected.slope, rel_tol=1e-6), key


class TestChangeDetection:
    def test_quarter_over_quarter_change(self):
        """The 'current vs previous quarter' exception flavour, live."""
        cfg = PowerGridConfig(
            n_cities=1,
            blocks_per_city=2,
            addresses_per_block=1,
            users_per_address=1,
            noise=0.0,
            surge_block="c0-b0",
            surge_start_minute=15,
            surge_slope_per_minute=0.2,
            seed=3,
        )
        sim = PowerGridSimulator(cfg)
        layers = sim.layers()
        engine = StreamCubeEngine(
            layers,
            GlobalSlopeThreshold(0.005),
            key_fn=sim.m_key_fn(),
            ticks_per_quarter=15,
            frame_levels=[TiltLevelSpec("quarter", 15, 8)],
        )
        engine.ingest_many(sim.records(30))
        engine.advance_to(30)
        changed = engine.change_exceptions()
        surged_cells = {k for k in changed if k[1] == "c0-b0"}
        assert surged_cells
