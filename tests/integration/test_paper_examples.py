"""Integration tests pinned to the paper's worked examples and figures."""

from __future__ import annotations

import math

import pytest

from repro.cube.lattice import PopularPath
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import GlobalSlopeThreshold
from repro.htree.tree import cardinality_ascending_order
from repro.regression.aggregation import merge_standard, merge_time_pair
from repro.regression.isb import ISB
from repro.tilt.natural import example3_savings, natural_frame


class TestExample2Figure1:
    """Example 2 / Fig 1: the 10-point series and its regression line."""

    def test_series_and_fit(self, example2_series):
        assert len(example2_series) == 10
        fit = example2_series.fit()
        # The plotted line in Fig 1(b) rises gently across [0, 2] range.
        assert 0 < fit.slope < 0.1
        assert 0.4 < fit.base < 0.8


class TestFigure2And3Captions:
    """The exact ISB values printed under Figs 2 and 3."""

    def test_figure2_standard_aggregation(self):
        z1 = ISB(0, 19, 0.540995, 0.0318379)
        z2 = ISB(0, 19, 0.294875, 0.0493375)
        z = merge_standard([z1, z2])
        assert math.isclose(z.base, 0.83587, abs_tol=5e-6)
        assert math.isclose(z.slope, 0.0811754, abs_tol=5e-7)

    def test_figure3_time_aggregation(self):
        z = merge_time_pair(
            ISB(0, 9, 0.582995, 0.0240189),
            ISB(10, 19, 0.459046, 0.047474),
        )
        assert math.isclose(z.base, 0.509033, abs_tol=5e-6)
        assert math.isclose(z.slope, 0.0431806, abs_tol=5e-7)


class TestExample3Figure4:
    """The tilt-frame arithmetic: 71 units vs 35,136, ~495x."""

    def test_paper_numbers(self):
        s = example3_savings()
        assert s.tilt_units == 71
        assert s.full_units == 35_136
        assert 494 < s.ratio < 496

    def test_frame_is_the_fig4_shape(self):
        frame = natural_frame()
        assert [lv.name for lv in frame.levels] == [
            "quarter",
            "hour",
            "day",
            "month",
        ]
        assert frame.total_capacity == 71


class TestExample5Figures6And7:
    """The 12-cuboid lattice and the H-tree attribute ordering."""

    def test_twelve_cuboids(self, example5_layers):
        assert example5_layers.lattice.size == 12

    def test_htree_order_matches_fig7(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        names = [
            f"{example5_layers.schema.dimensions[d].name}{level}"
            for d, level in order
        ]
        assert names == ["A1", "B1", "C1", "C2", "A2", "B2"]

    def test_paper_popular_path(self, example5_layers):
        path = PopularPath.from_drill_sequence(
            example5_layers.lattice, ["B", "B", "A", "C"]
        )
        assert len(path) == 5
        assert path.o_coord == (1, 0, 1)

    def test_cubing_runs_on_example5_schema(self, example5_layers):
        cells = {
            ("a2_0", "b2_0", "c2_0"): ISB(0, 9, 1.0, 0.4),
            ("a2_5", "b2_7", "c2_3"): ISB(0, 9, 2.0, -0.1),
            ("a2_9", "b2_11", "c2_7"): ISB(0, 9, 0.5, 0.05),
        }
        result = mo_cubing(example5_layers, cells, GlobalSlopeThreshold(0.2))
        assert len(result.cuboids) == 12
        assert len(result.o_layer) >= 1
