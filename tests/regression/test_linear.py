"""Tests for the LSE linear fit substrate (Lemma 3.1, Lemma 3.2)."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.errors import DegenerateFitError, EmptySeriesError, IntervalError
from repro.regression.linear import (
    RunningRegression,
    fit_series,
    interval_length,
    interval_mean_t,
    sum_of_series,
    svs,
)


class TestIntervalHelpers:
    def test_interval_length_single_tick(self):
        assert interval_length(5, 5) == 1

    def test_interval_length_span(self):
        assert interval_length(0, 9) == 10

    def test_interval_length_rejects_empty(self):
        with pytest.raises(IntervalError):
            interval_length(3, 2)

    def test_interval_mean_is_midpoint(self):
        assert interval_mean_t(0, 9) == 4.5
        assert interval_mean_t(10, 19) == 14.5

    def test_mean_rejects_empty(self):
        with pytest.raises(IntervalError):
            interval_mean_t(1, 0)


class TestSVS:
    """Lemma 3.2: sum of (t - mean)^2 = (n^3 - n) / 12, start-independent."""

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 10, 100])
    def test_closed_form_matches_direct_sum(self, n):
        direct = sum((t - (n - 1) / 2) ** 2 for t in range(n))
        assert math.isclose(svs(0, n - 1), direct, rel_tol=1e-12)

    @pytest.mark.parametrize("start", [-50, 0, 7, 1000])
    def test_start_independence(self, start):
        assert svs(start, start + 9) == svs(0, 9)

    def test_single_point_is_zero(self):
        assert svs(4, 4) == 0.0


class TestFitSeries:
    def test_perfect_line_recovered_exactly(self):
        values = [2.0 + 0.5 * t for t in range(20)]
        fit = fit_series(values)
        assert math.isclose(fit.base, 2.0, abs_tol=1e-12)
        assert math.isclose(fit.slope, 0.5, abs_tol=1e-12)
        assert math.isclose(fit.rss, 0.0, abs_tol=1e-9)

    def test_perfect_line_with_offset_start(self):
        values = [1.0 - 0.25 * t for t in range(100, 120)]
        fit = fit_series(values, t_b=100)
        assert math.isclose(fit.base, 1.0, abs_tol=1e-10)
        assert math.isclose(fit.slope, -0.25, abs_tol=1e-12)

    def test_matches_numpy_polyfit(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 1, size=50)
        fit = fit_series(values, t_b=17)
        t = np.arange(17, 67)
        slope_np, base_np = np.polyfit(t, values, 1)
        assert math.isclose(fit.slope, slope_np, rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(fit.base, base_np, rel_tol=1e-9, abs_tol=1e-12)

    def test_example2_series_fit(self, example2_series):
        """Fig 1: the Example 2 series has a mild upward trend."""
        fit = example2_series.fit()
        assert fit.t_b == 0 and fit.t_e == 9
        # Cross-checked against numpy.polyfit on the printed values.
        t = np.arange(10.0)
        z = np.array(example2_series.values)
        slope_np, base_np = np.polyfit(t, z, 1)
        assert math.isclose(fit.slope, slope_np, rel_tol=1e-9)
        assert math.isclose(fit.base, base_np, rel_tol=1e-9)
        assert fit.slope > 0

    def test_single_point_flat(self):
        fit = fit_series([3.5], t_b=8)
        assert fit.base == 3.5
        assert fit.slope == 0.0
        assert fit.t_b == fit.t_e == 8

    def test_empty_raises(self):
        with pytest.raises(EmptySeriesError):
            fit_series([])

    def test_mean_and_total_recovered(self):
        values = [1.0, 4.0, 2.0, 7.0]
        fit = fit_series(values)
        assert math.isclose(fit.mean, sum(values) / 4, rel_tol=1e-12)
        assert math.isclose(fit.total, sum(values), rel_tol=1e-12)

    def test_rss_nonnegative_and_matches_residuals(self):
        values = [0.0, 2.0, 1.0, 3.0, 2.5]
        fit = fit_series(values)
        direct = sum(
            (v - fit.predict(t)) ** 2 for t, v in enumerate(values)
        )
        assert math.isclose(fit.rss, direct, rel_tol=1e-10)
        assert fit.rss >= 0

    def test_predict_line_evaluation(self):
        fit = fit_series([0.0, 1.0, 2.0])
        assert math.isclose(fit.predict(10), 10.0, abs_tol=1e-10)


class TestSumOfSeries:
    def test_pointwise_sum(self):
        assert sum_of_series([[1, 2], [3, 4]]) == [4.0, 6.0]

    def test_single_series_identity(self):
        assert sum_of_series([[1.5, 2.5]]) == [1.5, 2.5]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(IntervalError):
            sum_of_series([[1, 2], [3]])

    def test_rejects_empty_collection(self):
        with pytest.raises(EmptySeriesError):
            sum_of_series([])


class TestRunningRegression:
    def test_matches_batch_fit(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5, 2, size=30)
        rr = RunningRegression()
        rr.extend(10, values)
        batch = fit_series(values, t_b=10)
        inc = rr.fit()
        assert math.isclose(inc.base, batch.base, rel_tol=1e-9)
        assert math.isclose(inc.slope, batch.slope, rel_tol=1e-9)
        assert math.isclose(inc.rss, batch.rss, rel_tol=1e-6, abs_tol=1e-9)

    def test_out_of_order_insertion_is_order_free(self):
        rr1 = RunningRegression()
        rr2 = RunningRegression()
        points = [(0, 1.0), (1, 2.0), (2, 0.5), (3, 3.0)]
        for t, z in points:
            rr1.add(t, z)
        for t, z in reversed(points):
            rr2.add(t, z)
        f1, f2 = rr1.fit(), rr2.fit()
        assert math.isclose(f1.base, f2.base, rel_tol=1e-12)
        assert math.isclose(f1.slope, f2.slope, rel_tol=1e-12)

    def test_empty_raises(self):
        with pytest.raises(EmptySeriesError):
            RunningRegression().fit()

    def test_gap_raises_degenerate(self):
        rr = RunningRegression()
        rr.add(0, 1.0)
        rr.add(2, 2.0)  # tick 1 missing
        with pytest.raises(DegenerateFitError):
            rr.fit()

    def test_single_observation(self):
        rr = RunningRegression()
        rr.add(4, 2.5)
        fit = rr.fit()
        assert fit.base == 2.5 and fit.slope == 0.0

    def test_reset_clears_state(self):
        rr = RunningRegression()
        rr.add(0, 1.0)
        rr.reset()
        assert rr.is_empty
        with pytest.raises(EmptySeriesError):
            rr.fit()

    def test_len_and_bounds(self):
        rr = RunningRegression()
        rr.extend(5, [1.0, 2.0, 3.0])
        assert len(rr) == 3
        assert rr.t_min == 5 and rr.t_max == 7
        assert math.isclose(rr.mean, 2.0)

    def test_bounds_raise_when_empty(self):
        rr = RunningRegression()
        with pytest.raises(EmptySeriesError):
            _ = rr.t_min
        with pytest.raises(EmptySeriesError):
            _ = rr.mean


class TestFitWindow:
    def test_full_window_matches_fit(self):
        rr = RunningRegression()
        rr.extend(0, [1.0, 2.0, 3.0, 4.0])
        exact = rr.fit()
        window = rr.fit_window(0, 3)
        assert math.isclose(window.base, exact.base, rel_tol=1e-12)
        assert math.isclose(window.slope, exact.slope, rel_tol=1e-12)

    def test_empty_window_is_flat_zero(self):
        fit = RunningRegression().fit_window(10, 19)
        assert fit.base == 0.0 and fit.slope == 0.0
        assert fit.t_b == 10 and fit.t_e == 19

    def test_partial_readings_fit_over_recorded_points(self):
        rr = RunningRegression()
        rr.add(2, 1.0)
        rr.add(4, 3.0)  # slope 1 through the two points
        fit = rr.fit_window(0, 5)
        assert math.isclose(fit.slope, 1.0, rel_tol=1e-12)
        assert fit.t_b == 0 and fit.t_e == 5

    def test_single_reading_is_flat(self):
        rr = RunningRegression()
        rr.add(3, 7.0)
        fit = rr.fit_window(0, 5)
        assert fit.base == 7.0 and fit.slope == 0.0

    def test_rejects_points_outside_window(self):
        rr = RunningRegression()
        rr.add(9, 1.0)
        with pytest.raises(IntervalError):
            rr.fit_window(0, 5)

    def test_rejects_empty_window(self):
        with pytest.raises(IntervalError):
            RunningRegression().fit_window(5, 4)
