"""Tests for the design / basis-function machinery."""

from __future__ import annotations

import math

import pytest

from repro.errors import SchemaError
from repro.regression.basis import (
    Design,
    exponential_design,
    linear_design,
    logarithmic_design,
    polynomial_design,
    spatio_temporal_design,
)


class TestLinearDesign:
    def test_row(self):
        d = linear_design()
        assert d.row((3.0,)) == [1.0, 3.0]
        assert d.k == 2
        assert d.feature_names == ("1", "t")

    def test_time_row(self):
        assert linear_design().time_row(7.0) == [1.0, 7.0]


class TestPolynomialDesign:
    def test_degree_two(self):
        d = polynomial_design(2)
        assert d.row((2.0,)) == [1.0, 2.0, 4.0]
        assert d.k == 3

    def test_degree_one_equals_linear_shape(self):
        assert polynomial_design(1).row((5.0,)) == linear_design().row((5.0,))

    def test_rejects_degree_zero(self):
        with pytest.raises(SchemaError):
            polynomial_design(0)

    def test_feature_names(self):
        assert polynomial_design(3).feature_names == ("1", "t^1", "t^2", "t^3")


class TestLogarithmicDesign:
    def test_shift_maps_zero_to_zero(self):
        d = logarithmic_design()
        assert d.row((0.0,)) == [1.0, 0.0]

    def test_custom_shift(self):
        d = logarithmic_design(shift=2.0)
        assert math.isclose(d.row((0.0,))[1], math.log(2.0))

    def test_rejects_nonpositive_shift(self):
        with pytest.raises(SchemaError):
            logarithmic_design(shift=0.0)


class TestExponentialDesign:
    def test_rate(self):
        d = exponential_design(0.5)
        assert math.isclose(d.row((2.0,))[1], math.exp(1.0))

    def test_zero_rate_feature_is_constant(self):
        d = exponential_design(0.0)
        assert d.row((10.0,))[1] == 1.0


class TestSpatioTemporalDesign:
    def test_arity_and_order(self):
        d = spatio_temporal_design()
        assert d.row((1.0, 2.0, 3.0, 4.0)) == [1.0, 1.0, 2.0, 3.0, 4.0]
        assert d.k == 5


class TestDesignValidation:
    def test_bad_k_rejected(self):
        with pytest.raises(SchemaError):
            Design(name="bad", k=0, features=lambda r: ())

    def test_feature_name_count_enforced(self):
        with pytest.raises(SchemaError):
            Design(
                name="bad",
                k=2,
                features=lambda r: (1.0, r[0]),
                feature_names=("only-one",),
            )

    def test_row_length_mismatch_detected(self):
        d = Design(name="liar", k=3, features=lambda r: (1.0, r[0]))
        with pytest.raises(SchemaError):
            d.row((2.0,))
