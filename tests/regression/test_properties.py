"""Property-based tests (hypothesis) for the regression aggregation theorems.

These are the load-bearing invariants of the whole system: for *any* raw
series, aggregating compressed ISBs must equal fitting the raw data.  If
these hold, the cube's exactness (Theorem 3.1a) follows for free.
"""

from __future__ import annotations

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regression import kernels
from repro.regression.aggregation import merge_standard, merge_time
from repro.regression.isb import ISB, isb_of_series
from repro.regression.linear import fit_series, svs, sum_of_series
from repro.regression.multiple import SufficientStats

# Bounded, finite floats keep the comparisons numerically meaningful.
values_st = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


def _isb_close(a: ISB, b: ISB, tol: float = 1e-6) -> bool:
    scale = max(1.0, abs(a.base), abs(a.slope))
    return (
        a.interval == b.interval
        and abs(a.base - b.base) <= tol * scale
        and abs(a.slope - b.slope) <= tol * scale
    )


@given(
    series=st.lists(
        st.lists(values_st, min_size=2, max_size=30),
        min_size=1,
        max_size=6,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1),
    t_b=st.integers(min_value=-100, max_value=100),
)
@settings(max_examples=150, deadline=None)
def test_theorem_32_matches_raw_fit(series, t_b):
    """merge_standard(ISBs) == fit(sum of raw series), always."""
    isbs = [isb_of_series(s, t_b=t_b) for s in series]
    merged = merge_standard(isbs)
    direct = ISB.from_fit(fit_series(sum_of_series(series), t_b=t_b))
    assert _isb_close(merged, direct)


@given(
    pieces=st.lists(
        st.lists(values_st, min_size=1, max_size=20), min_size=1, max_size=6
    ),
    t_b=st.integers(min_value=-100, max_value=100),
)
@settings(max_examples=150, deadline=None)
def test_theorem_33_matches_raw_fit(pieces, t_b):
    """merge_time(ISBs of a partition) == fit(concatenation), always."""
    total = sum(len(p) for p in pieces)
    if total < 2:
        return  # a 1-tick aggregate is the trivial single-child case
    isbs = []
    t = t_b
    for piece in pieces:
        isbs.append(isb_of_series(piece, t_b=t))
        t += len(piece)
    merged = merge_time(isbs)
    flat = [v for p in pieces for v in p]
    direct = ISB.from_fit(fit_series(flat, t_b=t_b))
    assert _isb_close(merged, direct)


@given(
    values=st.lists(values_st, min_size=2, max_size=40),
    cut=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_time_merge_invariant_under_partition_choice(values, cut):
    """Every 2-way split of a series merges to the same ISB."""
    k = cut.draw(st.integers(min_value=1, max_value=len(values) - 1))
    left = isb_of_series(values[:k], t_b=0)
    right = isb_of_series(values[k:], t_b=k)
    merged = merge_time([left, right])
    direct = isb_of_series(values, t_b=0)
    assert _isb_close(merged, direct)


@given(
    series=st.lists(
        st.lists(values_st, min_size=2, max_size=15),
        min_size=2,
        max_size=5,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1),
)
@settings(max_examples=80, deadline=None)
def test_standard_merge_commutative_and_associative(series):
    isbs = [isb_of_series(s) for s in series]
    forward = merge_standard(isbs)
    backward = merge_standard(list(reversed(isbs)))
    nested = merge_standard([isbs[0], merge_standard(isbs[1:])])
    assert _isb_close(forward, backward)
    assert _isb_close(forward, nested)


@given(
    values=st.lists(values_st, min_size=1, max_size=50),
    t_b=st.integers(min_value=-1000, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_isb_mean_total_exact(values, t_b):
    """ISB.mean / ISB.total recover the raw mean / sum exactly."""
    isb = isb_of_series(values, t_b=t_b)
    raw_mean = math.fsum(values) / len(values)
    scale = max(1.0, abs(raw_mean))
    assert abs(isb.mean - raw_mean) <= 1e-6 * scale
    assert abs(isb.total - math.fsum(values)) <= 1e-6 * scale * len(values)


@given(
    values=st.lists(values_st, min_size=1, max_size=30),
    t_b=st.integers(min_value=-100, max_value=100),
    delta=st.integers(min_value=-500, max_value=500),
)
@settings(max_examples=80, deadline=None)
def test_isb_shift_commutes_with_fit(values, t_b, delta):
    shifted_fit = isb_of_series(values, t_b=t_b + delta)
    fit_then_shift = isb_of_series(values, t_b=t_b).shifted(delta)
    assert _isb_close(shifted_fit, fit_then_shift, tol=1e-5)


@given(
    values=st.lists(values_st, min_size=2, max_size=30),
    t_b=st.integers(min_value=-50, max_value=50),
)
@settings(max_examples=80, deadline=None)
def test_intval_round_trip(values, t_b):
    isb = isb_of_series(values, t_b=t_b)
    assert _isb_close(isb.to_intval().to_isb(), isb)


@given(n=st.integers(min_value=1, max_value=10_000), start=st.integers(-10_000, 10_000))
@settings(max_examples=200, deadline=None)
def test_lemma_32_closed_form(n, start):
    """SVS = (n^3 - n) / 12 for every interval length and start."""
    assert svs(start, start + n - 1) == (n**3 - n) / 12.0


@given(
    values=st.lists(values_st, min_size=2, max_size=25),
    cut=st.data(),
)
@settings(max_examples=60, deadline=None)
@pytest.mark.skipif(not kernels.HAVE_NUMPY, reason="SufficientStats is numpy-backed")
def test_sufficient_stats_agree_with_isb_after_time_merge(values, cut):
    """The general (Section 6.2) representation stays consistent with ISB."""
    k = cut.draw(st.integers(min_value=1, max_value=len(values) - 1))
    left = SufficientStats.of_series(values[:k], 0)
    right = SufficientStats.of_series(values[k:], k)
    merged_isb = left.merge_time(right).to_isb()
    direct = isb_of_series(values)
    assert _isb_close(merged_isb, direct, tol=1e-5)
