"""Tests for the inverse aggregation operations (subtract / split)."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError
from repro.regression.aggregation import (
    merge_standard,
    merge_time_pair,
    split_time,
    subtract_standard,
)
from repro.regression.isb import ISB, isb_of_series

values_st = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestSubtractStandard:
    def test_removes_one_child_exactly(self):
        rng = np.random.default_rng(0)
        s1 = rng.normal(0, 1, size=12).tolist()
        s2 = rng.normal(0, 1, size=12).tolist()
        both = merge_standard([isb_of_series(s1), isb_of_series(s2)])
        remaining = subtract_standard(both, isb_of_series(s1))
        direct = isb_of_series(s2)
        assert math.isclose(remaining.base, direct.base, rel_tol=1e-9, abs_tol=1e-12)
        assert math.isclose(remaining.slope, direct.slope, rel_tol=1e-9, abs_tol=1e-12)

    def test_interval_mismatch_rejected(self):
        with pytest.raises(AggregationError):
            subtract_standard(ISB(0, 9, 1, 1), ISB(0, 8, 1, 1))

    def test_merge_subtract_round_trip(self):
        a = ISB(0, 9, 1.5, 0.2)
        b = ISB(0, 9, -0.5, 0.05)
        merged = merge_standard([a, b])
        assert subtract_standard(merged, b) == a


class TestSplitTime:
    def test_recovers_suffix_exactly(self):
        rng = np.random.default_rng(1)
        left_raw = rng.normal(2, 0.5, size=7).tolist()
        right_raw = rng.normal(1, 0.5, size=9).tolist()
        left = isb_of_series(left_raw, t_b=0)
        right = isb_of_series(right_raw, t_b=7)
        parent = merge_time_pair(left, right)
        recovered = split_time(parent, left)
        assert recovered.interval == right.interval
        assert math.isclose(recovered.base, right.base, rel_tol=1e-8, abs_tol=1e-10)
        assert math.isclose(recovered.slope, right.slope, rel_tol=1e-8, abs_tol=1e-10)

    def test_single_tick_suffix(self):
        left = isb_of_series([1.0, 2.0, 3.0], t_b=0)
        right = isb_of_series([5.0], t_b=3)
        parent = merge_time_pair(left, right)
        recovered = split_time(parent, left)
        assert recovered.interval == (3, 3)
        assert math.isclose(recovered.base, 5.0, rel_tol=1e-9)
        assert recovered.slope == 0.0

    def test_non_prefix_rejected(self):
        parent = ISB(0, 9, 1.0, 0.1)
        with pytest.raises(AggregationError):
            split_time(parent, ISB(1, 4, 1.0, 0.1))  # wrong start
        with pytest.raises(AggregationError):
            split_time(parent, ISB(0, 9, 1.0, 0.1))  # not proper

    @given(
        values=st.lists(values_st, min_size=2, max_size=40),
        cut=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_inverts_merge_for_any_partition(self, values, cut):
        k = cut.draw(st.integers(min_value=1, max_value=len(values) - 1))
        left = isb_of_series(values[:k], t_b=0)
        right = isb_of_series(values[k:], t_b=k)
        parent = merge_time_pair(left, right)
        recovered = split_time(parent, left)
        scale = max(1.0, abs(right.base), abs(right.slope))
        assert abs(recovered.base - right.base) <= 1e-6 * scale
        assert abs(recovered.slope - right.slope) <= 1e-6 * scale


class TestSlidingWindow:
    def test_matches_direct_merge_at_every_step(self):
        from repro.regression.aggregation import merge_time
        from repro.stream.sliding import SlidingWindowRegression

        rng = np.random.default_rng(3)
        quarters = [
            isb_of_series(rng.normal(1, 0.3, size=4).tolist(), t_b=4 * i)
            for i in range(20)
        ]
        window = SlidingWindowRegression(window_segments=5)
        held: list[ISB] = []
        for quarter in quarters:
            window.push(quarter)
            held.append(quarter)
            held = held[-5:]
            direct = merge_time(held)
            got = window.window
            assert got.interval == direct.interval
            assert math.isclose(got.base, direct.base, rel_tol=1e-7, abs_tol=1e-9)
            assert math.isclose(got.slope, direct.slope, rel_tol=1e-7, abs_tol=1e-9)

    def test_fill_state(self):
        from repro.stream.sliding import SlidingWindowRegression

        window = SlidingWindowRegression(3)
        assert len(window) == 0
        with pytest.raises(Exception):
            _ = window.window
        for i in range(3):
            window.push(ISB(i, i, float(i), 0.0))
        assert window.is_full
        assert window.span == (0, 2)
        window.push(ISB(3, 3, 3.0, 0.0))
        assert window.span == (1, 3)

    def test_gap_rejected(self):
        from repro.errors import TiltFrameError
        from repro.stream.sliding import SlidingWindowRegression

        window = SlidingWindowRegression(3)
        window.push(ISB(0, 1, 1.0, 0.0))
        with pytest.raises(TiltFrameError):
            window.push(ISB(3, 4, 1.0, 0.0))

    def test_bad_window_size(self):
        from repro.errors import TiltFrameError
        from repro.stream.sliding import SlidingWindowRegression

        with pytest.raises(TiltFrameError):
            SlidingWindowRegression(0)

    def test_long_run_numerical_stability(self):
        """Thousands of O(1) advances stay within float tolerance of the
        direct merge (error does not accumulate unboundedly)."""
        from repro.regression.aggregation import merge_time
        from repro.stream.sliding import SlidingWindowRegression

        rng = np.random.default_rng(4)
        window = SlidingWindowRegression(8)
        held: list[ISB] = []
        for i in range(2000):
            seg = isb_of_series(
                rng.normal(5, 1, size=3).tolist(), t_b=3 * i
            )
            window.push(seg)
            held.append(seg)
        direct = merge_time(held[-8:])
        got = window.window
        assert math.isclose(got.base, direct.base, rel_tol=1e-6, abs_tol=1e-8)
        assert math.isclose(got.slope, direct.slope, rel_tol=1e-6, abs_tol=1e-8)
