"""Kernel/scalar equivalence: the columnar kernels vs the reference theorems.

The contract (see ``repro.regression.kernels``): grouped ``bincount`` sums
are bit-identical to a sequential left-to-right fold; ``fsum``-based scalar
call sites agree to ulps (pinned here at 1e-9 relative tolerance, far
tighter than any tolerance the library relies on elsewhere).
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AggregationError
from repro.regression.aggregation import merge_standard, merge_time
from repro.regression.isb import ISB
from repro.regression.kernels import (
    ISBColumns,
    group_fit,
    merge_groups,
    merge_standard_cols,
    merge_time_cols,
    merge_time_grid,
    segment_merge,
)
from repro.regression.linear import RunningRegression

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def isbs_close(got, ref) -> bool:
    """Kernel-vs-scalar ISB agreement, compared at the interval endpoints.

    ``base`` is the line extrapolated to t=0; for an interval far from the
    origin its absolute noise is the slope noise amplified by the distance,
    so a raw base comparison with a fixed abs_tol measures conditioning,
    not correctness.  The fitted endpoint values carry the same information
    at the data's own magnitude.
    """
    if got.interval != ref.interval:
        return False
    scale = max(
        abs(ref.predict(ref.t_b)), abs(ref.predict(ref.t_e)), 1.0
    )
    return all(
        math.isclose(
            got.predict(t), ref.predict(t), rel_tol=1e-9, abs_tol=1e-9 * scale
        )
        for t in (got.t_b, got.t_e)
    )


@st.composite
def same_interval_batches(draw):
    """1..40 ISBs over one shared interval (zero-usage children included)."""
    t_b = draw(st.integers(min_value=-100, max_value=1000))
    n = draw(st.integers(min_value=1, max_value=60))
    count = draw(st.integers(min_value=1, max_value=40))
    isbs = []
    for _ in range(count):
        if draw(st.booleans()) and draw(st.booleans()):
            isbs.append(ISB(t_b, t_b + n - 1, 0.0, 0.0))  # zero usage
        else:
            isbs.append(ISB(t_b, t_b + n - 1, draw(finite), draw(finite)))
    return isbs


@st.composite
def adjacent_batches(draw):
    """1..12 time-adjacent ISBs (single-tick and zero-usage edge cases)."""
    t = draw(st.integers(min_value=-50, max_value=500))
    count = draw(st.integers(min_value=1, max_value=12))
    isbs = []
    for _ in range(count):
        n = draw(st.integers(min_value=1, max_value=8))
        if draw(st.booleans()) and draw(st.booleans()):
            isbs.append(ISB(t, t + n - 1, 0.0, 0.0))
        else:
            isbs.append(ISB(t, t + n - 1, draw(finite), draw(finite)))
        t += n
    return isbs


class TestMergeStandardCols:
    @given(isbs=same_interval_batches())
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar(self, isbs):
        ref = merge_standard(isbs)
        got = merge_standard_cols(ISBColumns.from_isbs(isbs))
        assert got.interval == ref.interval
        assert isbs_close(got, ref)

    def test_single_child_exact(self):
        isb = ISB(3, 9, 1.25, -0.5)
        got = merge_standard_cols(ISBColumns.from_isbs([isb]))
        assert got == isb

    def test_empty_raises(self):
        with pytest.raises(AggregationError):
            merge_standard_cols(ISBColumns.from_isbs([]))

    def test_interval_mismatch_raises(self):
        cols = ISBColumns.from_isbs([ISB(0, 4, 1.0, 0.0), ISB(0, 5, 1.0, 0.0)])
        with pytest.raises(AggregationError):
            merge_standard_cols(cols)


class TestMergeTimeCols:
    @given(isbs=adjacent_batches(), shuffle_seed=st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar(self, isbs, shuffle_seed):
        import random

        shuffled = list(isbs)
        random.Random(shuffle_seed).shuffle(shuffled)
        ref = merge_time(shuffled)
        got = merge_time_cols(ISBColumns.from_isbs(shuffled))
        assert got.interval == ref.interval
        assert isbs_close(got, ref)

    def test_single_child_unchanged(self):
        isb = ISB(7, 7, 2.0, 0.0)
        assert merge_time_cols(ISBColumns.from_isbs([isb])) == isb

    def test_gap_raises(self):
        cols = ISBColumns.from_isbs([ISB(0, 4, 1.0, 0.0), ISB(6, 9, 1.0, 0.0)])
        with pytest.raises(AggregationError):
            merge_time_cols(cols)

    def test_zero_children_merge_to_exact_zero(self):
        cols = ISBColumns.from_isbs([ISB(0, 4, 0.0, 0.0), ISB(5, 9, 0.0, 0.0)])
        got = merge_time_cols(cols)
        assert got.base == 0.0 and got.slope == 0.0


class TestSegmentMerge:
    @given(
        groups=st.lists(same_interval_batches(), min_size=1, max_size=8)
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_per_group(self, groups):
        flat = [isb for group in groups for isb in group]
        starts, acc = [], 0
        for group in groups:
            starts.append(acc)
            acc += len(group)
        merged = segment_merge(ISBColumns.from_isbs(flat), starts)
        assert len(merged) == len(groups)
        for i, group in enumerate(groups):
            ref = merge_standard(group)
            got = merged.row(i)
            assert got.interval == ref.interval
            assert isbs_close(got, ref)

    @given(groups=st.lists(same_interval_batches(), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_bit_identical_to_sequential_fold(self, groups):
        """The grouped sums must match a left-to-right fold exactly."""
        flat = [isb for group in groups for isb in group]
        starts, acc = [], 0
        for group in groups:
            starts.append(acc)
            acc += len(group)
        merged = segment_merge(ISBColumns.from_isbs(flat), starts)
        for i, group in enumerate(groups):
            base = 0.0
            slope = 0.0
            for isb in group:
                base += isb.base
                slope += isb.slope
            assert float(merged.base[i]) == base
            assert float(merged.slope[i]) == slope

    def test_mixed_group_intervals_allowed(self):
        """Different groups may cover different windows."""
        flat = [ISB(0, 4, 1.0, 0.1), ISB(0, 4, 2.0, 0.2), ISB(5, 9, 3.0, 0.3)]
        merged = segment_merge(ISBColumns.from_isbs(flat), [0, 2])
        assert merged.row(0).interval == (0, 4)
        assert merged.row(1).interval == (5, 9)

    def test_within_group_mismatch_raises(self):
        flat = [ISB(0, 4, 1.0, 0.1), ISB(0, 5, 2.0, 0.2)]
        with pytest.raises(AggregationError):
            segment_merge(ISBColumns.from_isbs(flat), [0])

    def test_bad_starts_raise(self):
        cols = ISBColumns.from_isbs([ISB(0, 4, 1.0, 0.0)] * 3)
        for starts in ([], [1], [0, 0], [0, 3]):
            with pytest.raises(AggregationError):
                segment_merge(cols, starts)


class TestMergeTimeGrid:
    @given(
        data=st.data(),
        n_groups=st.integers(min_value=1, max_value=10),
        n_children=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_per_row(self, data, n_groups, n_children):
        t = data.draw(st.integers(min_value=0, max_value=100))
        intervals = []
        for _ in range(n_children):
            n = data.draw(st.integers(min_value=1, max_value=5))
            intervals.append((t, t + n - 1))
            t += n
        rows = [
            [
                ISB(tb, te, data.draw(finite), data.draw(finite))
                for tb, te in intervals
            ]
            for _ in range(n_groups)
        ]
        columns = [
            ISBColumns.from_isbs([rows[g][r] for g in range(n_groups)])
            for r in range(n_children)
        ]
        merged = merge_time_grid(columns)
        for g in range(n_groups):
            ref = merge_time(rows[g])
            got = merged.row(g)
            assert got.interval == ref.interval
            assert isbs_close(got, ref)

    def test_non_adjacent_columns_raise(self):
        cols = [
            ISBColumns.from_isbs([ISB(0, 4, 1.0, 0.0)]),
            ISBColumns.from_isbs([ISB(6, 9, 1.0, 0.0)]),
        ]
        with pytest.raises(AggregationError):
            merge_time_grid(cols)

    def test_row_independence(self):
        """A group's result must not depend on the other groups present."""
        intervals = [(0, 4), (5, 9)]
        row = [ISB(tb, te, 1.5, -0.25) for tb, te in intervals]
        other = [ISB(tb, te, -3.0, 7.5) for tb, te in intervals]
        alone = merge_time_grid(
            [ISBColumns.from_isbs([c]) for c in row]
        ).row(0)
        crowded = merge_time_grid(
            [
                ISBColumns.from_isbs([a, b])
                for a, b in zip(other, row)
            ]
        ).row(1)
        assert alone == crowded  # exact float equality


class TestGroupFit:
    @given(data=st.data(), n_cells=st.integers(min_value=1, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_bit_identical_to_fit_window(self, data, n_cells):
        lo = data.draw(st.integers(min_value=0, max_value=1000))
        hi = lo + data.draw(st.integers(min_value=0, max_value=20))
        ticks_all, sums_all, starts = [], [], []
        fits = []
        for _ in range(n_cells):
            count = data.draw(
                st.integers(min_value=1, max_value=hi - lo + 1)
            )
            ticks = sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=lo, max_value=hi),
                        min_size=count,
                        max_size=count,
                    )
                )
            )
            values = [data.draw(finite) for _ in ticks]
            running = RunningRegression()
            for t, z in zip(ticks, values):
                running.add(t, z)
            fits.append(running.fit_window(lo, hi))
            starts.append(len(ticks_all))
            ticks_all.extend(ticks)
            sums_all.extend(values)
        base, slope = group_fit(
            np.asarray(ticks_all, dtype=np.int64),
            np.asarray(sums_all, dtype=np.float64),
            starts,
            lo,
            hi,
        )
        for i, fit in enumerate(fits):
            assert float(base[i]) == fit.base, i
            assert float(slope[i]) == fit.slope, i

    def test_single_tick_cell_is_flat(self):
        base, slope = group_fit(
            np.asarray([7], dtype=np.int64),
            np.asarray([3.5], dtype=np.float64),
            [0],
            5,
            9,
        )
        assert float(base[0]) == 3.5 and float(slope[0]) == 0.0

    def test_out_of_window_ticks_raise(self):
        with pytest.raises(AggregationError):
            group_fit(
                np.asarray([4], dtype=np.int64),
                np.asarray([1.0], dtype=np.float64),
                [0],
                5,
                9,
            )


class TestMergeGroups:
    @given(
        groups=st.lists(same_interval_batches(), min_size=0, max_size=10)
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar_any_group_size_mix(self, groups):
        keyed = {f"k{i}": group for i, group in enumerate(groups)}
        got = merge_groups(keyed, min_rows=4)  # force the kernel path early
        ref = {key: merge_standard(group) for key, group in keyed.items()}
        assert list(got) == list(ref)  # group order preserved
        for key in ref:
            assert got[key].interval == ref[key].interval
            assert isbs_close(got[key], ref[key])

    def test_empty_groups_mapping(self):
        assert merge_groups({}) == {}
