"""Tests for the Section 6.2 generalization: sufficient statistics / MLR."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.errors import (
    AggregationError,
    DegenerateFitError,
    EmptySeriesError,
    IntervalError,
)
from repro.regression.basis import (
    exponential_design,
    linear_design,
    logarithmic_design,
    polynomial_design,
    spatio_temporal_design,
)
from repro.regression.isb import isb_of_series
from repro.regression.multiple import SufficientStats, fit_multiple


class TestLinearDesignEquivalence:
    """The sufficient statistics subsume the ISB for the linear design."""

    def test_fit_matches_isb(self):
        values = [0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56]
        stats = SufficientStats.of_series(values)
        isb = stats.to_isb()
        direct = isb_of_series(values)
        assert isb.interval == direct.interval
        assert math.isclose(isb.base, direct.base, rel_tol=1e-9)
        assert math.isclose(isb.slope, direct.slope, rel_tol=1e-9)

    def test_time_merge_matches_theorem33(self):
        rng = np.random.default_rng(1)
        left = rng.normal(0, 1, size=8).tolist()
        right = rng.normal(0, 1, size=12).tolist()
        merged = SufficientStats.of_series(left, 0).merge_time(
            SufficientStats.of_series(right, 8)
        )
        direct = isb_of_series(left + right)
        got = merged.to_isb()
        assert math.isclose(got.base, direct.base, rel_tol=1e-9)
        assert math.isclose(got.slope, direct.slope, rel_tol=1e-9)

    def test_standard_merge_matches_theorem32(self):
        rng = np.random.default_rng(2)
        s1 = rng.normal(0, 1, size=10).tolist()
        s2 = rng.normal(0, 1, size=10).tolist()
        merged = SufficientStats.of_series(s1).merge_standard(
            SufficientStats.of_series(s2)
        )
        direct = isb_of_series([a + b for a, b in zip(s1, s2)])
        got = merged.to_isb()
        assert math.isclose(got.base, direct.base, rel_tol=1e-9)
        assert math.isclose(got.slope, direct.slope, rel_tol=1e-9)


class TestGoodnessOfFitTracking:
    def test_rss_exact_for_time_merge(self):
        rng = np.random.default_rng(3)
        left = rng.normal(0, 1, size=9).tolist()
        right = rng.normal(0, 1, size=7).tolist()
        merged = SufficientStats.of_series(left, 0).merge_time(
            SufficientStats.of_series(right, 9)
        )
        fit = merged.fit()
        from repro.regression.linear import fit_series

        assert fit.rss is not None
        assert math.isclose(
            fit.rss, fit_series(left + right).rss, rel_tol=1e-6, abs_tol=1e-9
        )
        assert fit.r2 is not None and 0.0 <= fit.r2 <= 1.0

    def test_rss_flagged_invalid_after_standard_merge(self):
        s1 = SufficientStats.of_series([1.0, 2.0, 3.0])
        s2 = SufficientStats.of_series([2.0, 1.0, 2.0])
        merged = s1.merge_standard(s2)
        assert not merged.ztz_valid
        fit = merged.fit()
        assert fit.rss is None and fit.r2 is None

    def test_invalid_flag_propagates_through_time_merge(self):
        a = SufficientStats.of_series([1.0, 2.0], 0).merge_standard(
            SufficientStats.of_series([0.5, 0.5], 0)
        )
        b = SufficientStats.of_series([3.0, 4.0], 2)
        merged = a.merge_time(b)
        assert not merged.ztz_valid

    def test_perfect_fit_r2_is_one(self):
        stats = SufficientStats.of_series([1.0 + 0.5 * t for t in range(10)])
        fit = stats.fit()
        assert fit.r2 is not None and math.isclose(fit.r2, 1.0, abs_tol=1e-9)


class TestDesigns:
    def test_polynomial_recovers_coefficients(self):
        rng = np.random.default_rng(4)
        coeffs = (2.0, -0.3, 0.05)
        stats = SufficientStats(polynomial_design(2))
        for t in range(30):
            z = coeffs[0] + coeffs[1] * t + coeffs[2] * t * t
            stats.add((float(t),), z)
        fit = stats.fit()
        for got, want in zip(fit.theta, coeffs):
            assert math.isclose(got, want, rel_tol=1e-7, abs_tol=1e-9)

    def test_logarithmic_recovers_coefficients(self):
        stats = SufficientStats(logarithmic_design())
        for t in range(1, 50):
            stats.add((float(t),), 3.0 + 1.5 * math.log(t + 1.0))
        fit = stats.fit()
        assert math.isclose(fit.theta[0], 3.0, rel_tol=1e-8)
        assert math.isclose(fit.theta[1], 1.5, rel_tol=1e-8)

    def test_exponential_recovers_coefficients(self):
        stats = SufficientStats(exponential_design(0.1))
        for t in range(20):
            stats.add((float(t),), 1.0 + 0.5 * math.exp(0.1 * t))
        fit = stats.fit()
        assert math.isclose(fit.theta[0], 1.0, rel_tol=1e-7)
        assert math.isclose(fit.theta[1], 0.5, rel_tol=1e-7)

    def test_spatio_temporal_recovers_coefficients(self):
        rng = np.random.default_rng(6)
        theta = (1.0, 0.2, -0.5, 0.3, 0.05)
        design = spatio_temporal_design()
        rows = []
        for _ in range(200):
            x = tuple(rng.uniform(0, 10, size=4))
            z = theta[0] + sum(c * v for c, v in zip(theta[1:], x))
            rows.append((x, z))
        fit = fit_multiple(rows, design)
        for got, want in zip(fit.theta, theta):
            assert math.isclose(got, want, rel_tol=1e-6, abs_tol=1e-8)

    def test_time_merge_for_polynomial_design(self):
        """The general theory: disjoint-observation merge stays exact for
        non-linear bases too."""
        rng = np.random.default_rng(7)
        design = polynomial_design(2)
        all_rows = [
            ((float(t),), float(rng.normal(0, 1))) for t in range(24)
        ]
        a = SufficientStats(design)
        b = SufficientStats(design)
        for row in all_rows[:10]:
            a.add(*row)
        for row in all_rows[10:]:
            b.add(*row)
        merged = a.merge_time(b).fit()
        direct = fit_multiple(all_rows, design)
        for got, want in zip(merged.theta, direct.theta):
            assert math.isclose(got, want, rel_tol=1e-8, abs_tol=1e-10)


class TestMergePreconditions:
    def test_design_mismatch_rejected(self):
        a = SufficientStats(linear_design())
        b = SufficientStats(polynomial_design(2))
        with pytest.raises(AggregationError):
            a.merge_time(b)

    def test_standard_merge_requires_same_n(self):
        a = SufficientStats.of_series([1.0, 2.0, 3.0])
        b = SufficientStats.of_series([1.0, 2.0])
        with pytest.raises(AggregationError):
            a.merge_standard(b)

    def test_standard_merge_requires_same_interval(self):
        a = SufficientStats.of_series([1.0, 2.0], t_b=0)
        b = SufficientStats.of_series([1.0, 2.0], t_b=5)
        with pytest.raises(AggregationError):
            a.merge_standard(b)

    def test_time_merge_requires_adjacency(self):
        a = SufficientStats.of_series([1.0, 2.0], t_b=0)
        b = SufficientStats.of_series([1.0, 2.0], t_b=5)
        with pytest.raises(IntervalError):
            a.merge_time(b)

    def test_merge_does_not_mutate_inputs(self):
        a = SufficientStats.of_series([1.0, 2.0], t_b=0)
        b = SufficientStats.of_series([3.0, 4.0], t_b=2)
        n_before = a.n
        a.merge_time(b)
        assert a.n == n_before and a.t_e == 1


class TestFitEdgeCases:
    def test_empty_fit_raises(self):
        with pytest.raises(EmptySeriesError):
            SufficientStats().fit()

    def test_singular_fit_raises(self):
        stats = SufficientStats(polynomial_design(3))
        stats.add((1.0,), 2.0)  # one point cannot fit four parameters
        with pytest.raises(DegenerateFitError):
            stats.fit()

    def test_to_isb_rejects_nonlinear_design(self):
        stats = SufficientStats(polynomial_design(2))
        stats.add((0.0,), 1.0)
        with pytest.raises(AggregationError):
            stats.to_isb()

    def test_stored_numbers_counts(self):
        assert SufficientStats(linear_design()).stored_numbers == 3 + 2 + 2 + 2
        assert SufficientStats(polynomial_design(2)).stored_numbers == 6 + 3 + 2 + 2


def test_predict_features_rejects_wrong_arity():
    """A wrong-length feature vector must raise, never silently truncate."""
    from repro.errors import AggregationError
    from repro.regression.multiple import fit_multiple, linear_design

    fit = fit_multiple(
        [((float(t),), 1.0 + 0.5 * t) for t in range(6)], linear_design()
    )
    assert fit.predict_features([1.0, 3.0]) == pytest.approx(2.5)
    with pytest.raises(AggregationError, match="entries for"):
        fit.predict_features([3.0])
