"""Irregular time ticks (Section 6.2's general stream case)."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.regression.basis import linear_design
from repro.regression.multiple import SufficientStats, fit_multiple


class TestIrregularTicks:
    def test_fit_matches_polyfit_on_irregular_grid(self):
        rng = np.random.default_rng(8)
        ticks = np.sort(rng.choice(np.arange(1000), size=40, replace=False))
        values = 2.0 + 0.03 * ticks + rng.normal(0, 0.5, size=40)
        stats = SufficientStats.of_points(zip(ticks, values))
        fit = stats.fit()
        slope_np, base_np = np.polyfit(ticks.astype(float), values, 1)
        assert math.isclose(fit.theta[1], slope_np, rel_tol=1e-9)
        assert math.isclose(fit.theta[0], base_np, rel_tol=1e-9)

    def test_distributed_merge_of_irregular_batches(self):
        """Two sensors with interleaved, gappy timestamps merge exactly."""
        rng = np.random.default_rng(9)
        all_points = [
            (float(t), 1.0 + 0.05 * t + float(rng.normal(0, 0.2)))
            for t in sorted(rng.choice(np.arange(500), 60, replace=False))
        ]
        a = SufficientStats.of_points(all_points[::2])
        b = SufficientStats.of_points(all_points[1::2])
        merged = a.merge_time(b).fit()
        direct = fit_multiple(
            [((t,), z) for t, z in all_points], linear_design()
        )
        for got, want in zip(merged.theta, direct.theta):
            assert math.isclose(got, want, rel_tol=1e-9)
        assert merged.rss is not None and direct.rss is not None
        assert math.isclose(merged.rss, direct.rss, rel_tol=1e-6)

    def test_no_interval_tracked(self):
        stats = SufficientStats.of_points([(3.0, 1.0), (100.0, 2.0)])
        assert stats.t_b is None and stats.t_e is None

    def test_to_isb_refused_without_interval(self):
        from repro.errors import AggregationError

        stats = SufficientStats.of_points([(0.0, 1.0), (1.0, 2.0)])
        with pytest.raises(AggregationError):
            stats.to_isb()

    def test_duplicate_ticks_allowed(self):
        """Several readings at one instant are legitimate observations."""
        stats = SufficientStats.of_points(
            [(0.0, 1.0), (0.0, 3.0), (1.0, 2.0), (1.0, 4.0)]
        )
        fit = stats.fit()
        # OLS through per-tick means (2.0 at t=0, 3.0 at t=1).
        assert math.isclose(fit.theta[1], 1.0, rel_tol=1e-9)
        assert math.isclose(fit.theta[0], 2.0, rel_tol=1e-9)
