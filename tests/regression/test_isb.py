"""Tests for the ISB / IntVal compressed representations (Section 3.2)."""

from __future__ import annotations

import math

import pytest

from repro.errors import IntervalError
from repro.regression.isb import ISB, IntVal, isb_of_series
from repro.regression.linear import fit_series


class TestISBBasics:
    def test_rejects_empty_interval(self):
        with pytest.raises(IntervalError):
            ISB(5, 4, 0.0, 0.0)

    def test_n_and_interval(self):
        isb = ISB(3, 12, 1.0, 0.5)
        assert isb.n == 10
        assert isb.interval == (3, 12)

    def test_predict(self):
        isb = ISB(0, 9, 2.0, 0.25)
        assert math.isclose(isb.predict(4), 3.0)

    def test_mean_passes_through_line_midpoint(self):
        isb = ISB(0, 9, 2.0, 0.5)
        assert math.isclose(isb.mean, 2.0 + 0.5 * 4.5)

    def test_mean_equals_data_mean(self):
        """The LSE line passes through (t_mean, z_mean) — the fact
        Theorem 3.3's S_i recovery depends on."""
        values = [0.3, 1.9, 0.8, 2.4, 1.1]
        isb = isb_of_series(values)
        assert math.isclose(isb.mean, sum(values) / len(values), rel_tol=1e-12)

    def test_total_equals_data_sum(self):
        values = [4.0, -1.0, 2.5, 0.5]
        isb = isb_of_series(values, t_b=100)
        assert math.isclose(isb.total, sum(values), rel_tol=1e-12)

    def test_same_interval_and_adjacency(self):
        a = ISB(0, 4, 0, 0)
        b = ISB(0, 4, 1, 1)
        c = ISB(5, 9, 0, 0)
        assert a.same_interval(b)
        assert not a.same_interval(c)
        assert a.adjacent_before(c)
        assert not c.adjacent_before(a)

    def test_fitted_values_sample_the_line(self):
        isb = ISB(2, 4, 1.0, 2.0)
        assert isb.fitted_values() == [5.0, 7.0, 9.0]

    def test_from_fit_round_trip(self):
        fit = fit_series([1.0, 2.0, 4.0], t_b=7)
        isb = ISB.from_fit(fit)
        assert isb.interval == (7, 9)
        assert isb.base == fit.base and isb.slope == fit.slope


class TestISBTransforms:
    def test_scaled_scales_both_parameters(self):
        isb = ISB(0, 9, 2.0, 0.5).scaled(3.0)
        assert isb.base == 6.0 and isb.slope == 1.5

    def test_scaling_commutes_with_fitting(self):
        values = [0.5, 1.0, 0.2, 1.4]
        direct = isb_of_series([v * 2.5 for v in values])
        via_isb = isb_of_series(values).scaled(2.5)
        assert math.isclose(direct.base, via_isb.base, rel_tol=1e-12)
        assert math.isclose(direct.slope, via_isb.slope, rel_tol=1e-12)

    def test_shifted_preserves_line_geometry(self):
        isb = ISB(0, 9, 2.0, 0.5)
        moved = isb.shifted(10)
        assert moved.interval == (10, 19)
        # The value over the shifted axis at the same relative offset agrees.
        assert math.isclose(moved.predict(10), isb.predict(0))
        assert math.isclose(moved.predict(19), isb.predict(9))

    def test_shifting_commutes_with_fitting(self):
        values = [1.0, 3.0, 2.0, 5.0]
        direct = isb_of_series(values, t_b=50)
        via_shift = isb_of_series(values, t_b=0).shifted(50)
        assert math.isclose(direct.base, via_shift.base, rel_tol=1e-12)
        assert math.isclose(direct.slope, via_shift.slope, rel_tol=1e-12)


class TestIntValEquivalence:
    """Section 3.2: ISB and IntVal are interconvertible without loss."""

    def test_round_trip_isb_intval_isb(self):
        isb = ISB(3, 11, -2.0, 0.75)
        back = isb.to_intval().to_isb()
        assert back.interval == isb.interval
        assert math.isclose(back.base, isb.base, rel_tol=1e-12)
        assert math.isclose(back.slope, isb.slope, rel_tol=1e-12)

    def test_intval_endpoints_are_fitted_values(self):
        isb = ISB(0, 9, 1.0, 0.5)
        iv = isb.to_intval()
        assert math.isclose(iv.z_b, 1.0)
        assert math.isclose(iv.z_e, 1.0 + 0.5 * 9)

    def test_single_tick_intval_round_trip(self):
        iv = IntVal(4, 4, 2.5, 2.5)
        isb = iv.to_isb()
        assert isb.base == 2.5 and isb.slope == 0.0

    def test_intval_rejects_empty_interval(self):
        with pytest.raises(IntervalError):
            IntVal(2, 1, 0.0, 0.0)


class TestMinimality:
    """Theorem 3.1(b): the four ISB components are mutually independent.

    The proof's witness pairs: series agreeing on three components but
    differing on the fourth.
    """

    def test_tb_needed(self):
        z1 = isb_of_series([0.0, 0.0, 0.0], t_b=0)  # [0,2]
        z2 = isb_of_series([0.0, 0.0], t_b=1)  # [1,2]
        assert z1.t_e == z2.t_e
        assert z1.base == z2.base and z1.slope == z2.slope
        assert z1.t_b != z2.t_b

    def test_te_needed(self):
        z1 = isb_of_series([0.0, 0.0, 0.0], t_b=0)
        z2 = isb_of_series([0.0, 0.0], t_b=0)
        assert z1.t_b == z2.t_b
        assert z1.base == z2.base and z1.slope == z2.slope
        assert z1.t_e != z2.t_e

    def test_base_needed(self):
        z1 = isb_of_series([0.0, 0.0])
        z2 = isb_of_series([1.0, 1.0])
        assert z1.interval == z2.interval
        assert z1.slope == z2.slope
        assert z1.base != z2.base

    def test_slope_needed(self):
        z1 = isb_of_series([0.0, 0.0])
        z2 = isb_of_series([0.0, 1.0])
        assert z1.interval == z2.interval
        assert z1.base == z2.base
        assert z1.slope != z2.slope
