"""Tests for Theorems 3.2 / 3.3 — including the paper's golden captions."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.errors import AggregationError
from repro.regression.aggregation import (
    merge_standard,
    merge_time,
    merge_time_pair,
    weighted_merge_standard,
)
from repro.regression.isb import ISB, isb_of_series
from repro.regression.linear import fit_series, sum_of_series


class TestTheorem32StandardDimension:
    def test_two_children_bases_and_slopes_add(self):
        a = ISB(0, 19, 0.5, 0.03)
        b = ISB(0, 19, 0.3, 0.05)
        merged = merge_standard([a, b])
        assert merged.interval == (0, 19)
        assert math.isclose(merged.base, 0.8)
        assert math.isclose(merged.slope, 0.08)

    def test_matches_direct_fit_of_summed_series(self):
        rng = np.random.default_rng(21)
        series = [rng.normal(0, 1, size=25).tolist() for _ in range(4)]
        isbs = [isb_of_series(s, t_b=5) for s in series]
        merged = merge_standard(isbs)
        direct = fit_series(sum_of_series(series), t_b=5)
        assert math.isclose(merged.base, direct.base, rel_tol=1e-9)
        assert math.isclose(merged.slope, direct.slope, rel_tol=1e-9)

    def test_figure2_caption_values(self):
        """Fig 2: the paper's printed ISBs satisfy Theorem 3.2."""
        z1 = ISB(0, 19, 0.540995, 0.0318379)
        z2 = ISB(0, 19, 0.294875, 0.0493375)
        z = merge_standard([z1, z2])
        assert math.isclose(z.base, 0.83587, abs_tol=5e-6)
        assert math.isclose(z.slope, 0.0811754, abs_tol=5e-7)

    def test_single_child_identity(self):
        isb = ISB(2, 9, 1.0, -0.5)
        assert merge_standard([isb]) == isb

    def test_many_children_associativity(self):
        children = [ISB(0, 9, i * 0.1, i * 0.01) for i in range(1, 8)]
        left = merge_standard(children)
        right = merge_standard(
            [merge_standard(children[:3]), merge_standard(children[3:])]
        )
        assert math.isclose(left.base, right.base, rel_tol=1e-12)
        assert math.isclose(left.slope, right.slope, rel_tol=1e-12)

    def test_rejects_interval_mismatch(self):
        with pytest.raises(AggregationError):
            merge_standard([ISB(0, 9, 0, 0), ISB(0, 8, 0, 0)])

    def test_rejects_empty(self):
        with pytest.raises(AggregationError):
            merge_standard([])

    def test_weighted_merge_matches_scaled_sum(self):
        s1 = [1.0, 2.0, 1.5, 2.5]
        s2 = [0.5, 0.25, 1.0, 0.75]
        w = [0.3, 0.7]
        direct = fit_series([w[0] * a + w[1] * b for a, b in zip(s1, s2)])
        merged = weighted_merge_standard(
            [isb_of_series(s1), isb_of_series(s2)], w
        )
        assert math.isclose(merged.base, direct.base, rel_tol=1e-12)
        assert math.isclose(merged.slope, direct.slope, rel_tol=1e-12)

    def test_weighted_rejects_length_mismatch(self):
        with pytest.raises(AggregationError):
            weighted_merge_standard([ISB(0, 3, 0, 0)], [0.5, 0.5])


class TestTheorem33TimeDimension:
    def test_figure3_caption_values(self):
        """Fig 3: the paper's printed ISBs satisfy Theorem 3.3."""
        first = ISB(0, 9, 0.582995, 0.0240189)
        second = ISB(10, 19, 0.459046, 0.047474)
        merged = merge_time_pair(first, second)
        assert merged.interval == (0, 19)
        assert math.isclose(merged.base, 0.509033, abs_tol=5e-6)
        assert math.isclose(merged.slope, 0.0431806, abs_tol=5e-7)

    def test_matches_direct_fit_of_concatenation(self):
        rng = np.random.default_rng(9)
        left = rng.normal(1, 0.4, size=10).tolist()
        right = rng.normal(2, 0.4, size=10).tolist()
        merged = merge_time(
            [isb_of_series(left, t_b=0), isb_of_series(right, t_b=10)]
        )
        direct = fit_series(left + right, t_b=0)
        assert math.isclose(merged.base, direct.base, rel_tol=1e-9)
        assert math.isclose(merged.slope, direct.slope, rel_tol=1e-9)

    def test_unequal_piece_lengths(self):
        rng = np.random.default_rng(10)
        pieces = [3, 7, 2, 8]
        series: list[list[float]] = []
        isbs = []
        t = 0
        for n in pieces:
            s = rng.normal(0, 1, size=n).tolist()
            series.append(s)
            isbs.append(isb_of_series(s, t_b=t))
            t += n
        merged = merge_time(isbs)
        flat = [v for s in series for v in s]
        direct = fit_series(flat)
        assert merged.interval == (0, len(flat) - 1)
        assert math.isclose(merged.base, direct.base, rel_tol=1e-9)
        assert math.isclose(merged.slope, direct.slope, rel_tol=1e-9)

    def test_order_insensitive_input(self):
        a = isb_of_series([1.0, 2.0], t_b=0)
        b = isb_of_series([3.0, 1.0], t_b=2)
        c = isb_of_series([0.5, 0.7], t_b=4)
        assert merge_time([c, a, b]) == merge_time([a, b, c])

    def test_single_child_identity(self):
        isb = ISB(5, 9, 1.0, 0.1)
        assert merge_time([isb]) == isb

    def test_single_tick_pieces(self):
        """Degenerate children (1-tick, slope 0) still merge exactly."""
        values = [2.0, 5.0, 3.0, 8.0]
        isbs = [isb_of_series([v], t_b=i) for i, v in enumerate(values)]
        merged = merge_time(isbs)
        direct = fit_series(values)
        assert math.isclose(merged.base, direct.base, rel_tol=1e-9)
        assert math.isclose(merged.slope, direct.slope, rel_tol=1e-9)

    def test_rejects_gap(self):
        with pytest.raises(AggregationError):
            merge_time([ISB(0, 4, 0, 0), ISB(6, 9, 0, 0)])

    def test_rejects_overlap(self):
        with pytest.raises(AggregationError):
            merge_time([ISB(0, 4, 0, 0), ISB(4, 9, 0, 0)])

    def test_rejects_empty(self):
        with pytest.raises(AggregationError):
            merge_time([])

    def test_associativity_via_hierarchy(self):
        """Merging quarters->hours->day equals merging quarters->day."""
        rng = np.random.default_rng(30)
        quarters = [
            isb_of_series(rng.normal(0, 1, size=4).tolist(), t_b=4 * i)
            for i in range(8)
        ]
        hours = [
            merge_time(quarters[i : i + 4]) for i in range(0, 8, 4)
        ]
        via_hours = merge_time(hours)
        direct = merge_time(quarters)
        assert math.isclose(via_hours.base, direct.base, rel_tol=1e-9)
        assert math.isclose(via_hours.slope, direct.slope, rel_tol=1e-9)


class TestMixedAggregation:
    def test_standard_then_time_equals_time_then_standard(self):
        """The two aggregation orders commute (the cube is well defined)."""
        rng = np.random.default_rng(14)
        # Two cells, two adjacent time intervals each.
        a1 = rng.normal(0, 1, size=6).tolist()
        a2 = rng.normal(0, 1, size=6).tolist()
        b1 = rng.normal(0, 1, size=6).tolist()
        b2 = rng.normal(0, 1, size=6).tolist()
        # standard-first: sum cells per interval, then concat.
        std_first = merge_time(
            [
                merge_standard(
                    [isb_of_series(a1, 0), isb_of_series(b1, 0)]
                ),
                merge_standard(
                    [isb_of_series(a2, 6), isb_of_series(b2, 6)]
                ),
            ]
        )
        # time-first: concat per cell, then sum.
        time_first = merge_standard(
            [
                merge_time([isb_of_series(a1, 0), isb_of_series(a2, 6)]),
                merge_time([isb_of_series(b1, 0), isb_of_series(b2, 6)]),
            ]
        )
        assert math.isclose(std_first.base, time_first.base, rel_tol=1e-9)
        assert math.isclose(std_first.slope, time_first.slope, rel_tol=1e-9)
        # and both equal the direct fit of the summed concatenation.
        direct = fit_series(
            [x + y for x, y in zip(a1 + a2, b1 + b2)]
        )
        assert math.isclose(std_first.base, direct.base, rel_tol=1e-9)
        assert math.isclose(std_first.slope, direct.slope, rel_tol=1e-9)
