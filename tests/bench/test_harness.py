"""Tests for the benchmark harness (small, fast configurations)."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    figure8_series,
    figure9_series,
    figure10_series,
    policy_for_rate,
    run_point,
)
from repro.bench.reporting import render_figure, render_shape_checks
from repro.bench.workloads import BenchScale, current_scale
from repro.cubing.policy import GlobalSlopeThreshold
from repro.stream.generator import generate_dataset


class TestPolicyCalibration:
    def test_rate_reflected_in_exceptions(self):
        data = generate_dataset("D2L2C4T400", seed=3)
        policy = policy_for_rate(data, 10.0)
        from repro.cubing.full import full_materialization

        full = full_materialization(data.layers, data.cells, policy)
        total = 0
        exceptional = 0
        for coord in data.layers.intermediate_coords:
            for values, isb in full.cuboids[coord].items():
                total += 1
                exceptional += policy.is_exception(isb, coord)
        assert abs(exceptional / total - 0.10) < 0.03


class TestRunPoint:
    def test_measures_both_algorithms(self):
        data = generate_dataset("D2L2C3T100", seed=4)
        row = run_point(
            data.layers, data.cells, GlobalSlopeThreshold(0.1), "x", 1.0
        )
        names = {p.algorithm for p in row.points}
        assert names == {"m/o-cubing", "popular-path"}
        for p in row.points:
            assert p.runtime_s > 0
            assert p.megabytes > 0
            assert p.cells_computed > 0

    def test_point_lookup(self):
        data = generate_dataset("D2L2C3T100", seed=4)
        row = run_point(
            data.layers, data.cells, GlobalSlopeThreshold(0.1), "x", 1.0
        )
        assert row.point("m/o-cubing").algorithm == "m/o-cubing"
        with pytest.raises(KeyError):
            row.point("nope")


class TestFigureSeries:
    def test_figure8_rows(self):
        rows = figure8_series(150, (1.0, 100.0), seed=2)
        assert [r.x_value for r in rows] == [1.0, 100.0]
        assert rows[0].x_label == "1%"

    def test_figure9_sorted_sizes(self):
        rows = figure9_series((100, 50), rate_percent=10.0, seed=2)
        assert [r.x_value for r in rows] == [50, 100]

    def test_figure10_levels(self):
        rows = figure10_series(80, (2, 3), rate_percent=10.0, seed=2)
        assert [r.x_value for r in rows] == [2, 3]


class TestReporting:
    def test_render_figure_contains_panels(self):
        rows = figure8_series(100, (1.0,), seed=2)
        text = render_figure("Figure 8", "exception", rows)
        assert "Figure 8(a) processing time" in text
        assert "Figure 8(b) memory usage" in text
        assert "m/o-cubing" in text and "popular-path" in text

    def test_render_shape_checks(self):
        text = render_shape_checks([("claim A", True), ("claim B", False)])
        assert "[PASS] claim A" in text
        assert "[FAIL] claim B" in text


class TestWorkloads:
    def test_default_scale_is_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "small"

    def test_paper_scale_selected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        scale = current_scale()
        assert scale.name == "paper"
        assert scale.fig8_tuples == 100_000

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_scale_is_frozen(self):
        scale = current_scale()
        assert isinstance(scale, BenchScale)
        with pytest.raises(AttributeError):
            scale.fig8_tuples = 1  # type: ignore[misc]
