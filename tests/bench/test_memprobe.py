"""Tests for the tracemalloc probe and its harness integration."""

from __future__ import annotations

from repro.bench.harness import run_point
from repro.bench.memprobe import TracemallocProbe
from repro.cubing.policy import GlobalSlopeThreshold
from repro.stream.generator import generate_dataset


class TestProbe:
    def test_captures_allocation_peak(self):
        with TracemallocProbe() as probe:
            block = [0.0] * 200_000  # ~1.6 MB of floats list
            del block
        assert probe.peak_bytes > 1_000_000

    def test_small_block_small_peak(self):
        with TracemallocProbe() as probe:
            _ = [1]
        assert probe.peak_bytes < 1_000_000

    def test_nested_tracing_preserved(self):
        import tracemalloc

        tracemalloc.start()
        try:
            with TracemallocProbe() as probe:
                _ = list(range(1000))
            assert tracemalloc.is_tracing()
            assert probe.peak_bytes > 0
        finally:
            tracemalloc.stop()

    def test_megabytes_property(self):
        probe = TracemallocProbe()
        probe.peak_bytes = 2 * 1024 * 1024
        assert probe.peak_megabytes == 2.0


class TestHarnessIntegration:
    def test_probe_memory_flag(self):
        data = generate_dataset("D2L2C3T100", seed=1)
        row = run_point(
            data.layers,
            data.cells,
            GlobalSlopeThreshold(0.1),
            "x",
            1.0,
            probe_memory=True,
        )
        for point in row.points:
            assert point.tracemalloc_megabytes is not None
            assert point.tracemalloc_megabytes > 0

    def test_probe_off_by_default(self):
        data = generate_dataset("D2L2C3T100", seed=1)
        row = run_point(
            data.layers, data.cells, GlobalSlopeThreshold(0.1), "x", 1.0
        )
        assert all(p.tracemalloc_megabytes is None for p in row.points)
