"""Tests for the synthetic series generators."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.errors import EmptySeriesError
from repro.timeseries.generators import (
    bundle_of_trends,
    changepoint_series,
    random_walk_series,
    rng_of,
    seasonal_series,
    trend_series,
)


class TestRngOf:
    def test_int_seed(self):
        assert isinstance(rng_of(3), np.random.Generator)

    def test_pass_through(self):
        rng = np.random.default_rng(0)
        assert rng_of(rng) is rng


class TestTrendSeries:
    def test_noiseless_exact(self):
        s = trend_series(10, base=2.0, slope=0.5, noise=0.0)
        fit = s.fit()
        assert math.isclose(fit.base, 2.0, abs_tol=1e-9)
        assert math.isclose(fit.slope, 0.5, abs_tol=1e-9)

    def test_seeded_determinism(self):
        a = trend_series(20, 1.0, 0.1, noise=0.3, seed=9)
        b = trend_series(20, 1.0, 0.1, noise=0.3, seed=9)
        assert a.values == b.values

    def test_noise_recovers_slope_approximately(self):
        s = trend_series(2000, 0.0, 0.25, noise=1.0, seed=1)
        assert abs(s.fit().slope - 0.25) < 0.01

    def test_rejects_nonpositive_length(self):
        with pytest.raises(EmptySeriesError):
            trend_series(0, 0.0, 0.0)


class TestSeasonalSeries:
    def test_period_mean_matches_base(self):
        s = seasonal_series(100, base=5.0, amplitude=2.0, period=10)
        assert abs(s.mean - 5.0) < 1e-6

    def test_trend_plus_season_slope(self):
        s = seasonal_series(200, base=0.0, amplitude=1.0, period=20, slope=0.1)
        assert abs(s.fit().slope - 0.1) < 0.01

    def test_rejects_bad_period(self):
        with pytest.raises(EmptySeriesError):
            seasonal_series(10, 0.0, 1.0, period=0)


class TestRandomWalk:
    def test_starts_at_start(self):
        s = random_walk_series(10, start=4.0, seed=2)
        assert s.values[0] == 4.0

    def test_single_point(self):
        s = random_walk_series(1, start=1.5)
        assert s.values == (1.5,)

    def test_drift_dominates_long_run(self):
        s = random_walk_series(5000, step_std=0.1, drift=0.05, seed=3)
        assert s.values[-1] > 100


class TestChangepoint:
    def test_continuous_at_change(self):
        s = changepoint_series(
            20, base=1.0, slope_before=0.0, slope_after=1.0, change_at=10
        )
        assert math.isclose(s.at(9), 1.0, abs_tol=1e-9)
        assert math.isclose(s.at(10), 1.0, abs_tol=1e-9)
        assert math.isclose(s.at(11), 2.0, abs_tol=1e-9)

    def test_halves_have_expected_slopes(self):
        s = changepoint_series(
            40, base=0.0, slope_before=0.1, slope_after=-0.3, change_at=20
        )
        before = s.slice(0, 19).fit()
        after = s.slice(20, 39).fit()
        assert math.isclose(before.slope, 0.1, abs_tol=1e-9)
        assert math.isclose(after.slope, -0.3, abs_tol=1e-9)

    def test_change_at_bounds_checked(self):
        with pytest.raises(EmptySeriesError):
            changepoint_series(10, 0.0, 0.0, 1.0, change_at=50)


class TestBundle:
    def test_count_and_length(self):
        bundle = bundle_of_trends(7, 12, seed=4)
        assert len(bundle) == 7
        assert all(len(s) == 12 for s in bundle)

    def test_deterministic(self):
        a = bundle_of_trends(3, 8, seed=5)
        b = bundle_of_trends(3, 8, seed=5)
        assert [s.values for s in a] == [s.values for s in b]

    def test_rejects_zero_count(self):
        with pytest.raises(EmptySeriesError):
            bundle_of_trends(0, 5)
