"""Tests for Section 6.2's folding aggregation."""

from __future__ import annotations

import math

import pytest

from repro.errors import AggregationError, IntervalError
from repro.regression.isb import isb_of_series
from repro.timeseries.folding import fold_isbs, fold_series
from repro.timeseries.series import TimeSeries


@pytest.fixture
def year_of_days() -> TimeSeries:
    """A 360-day synthetic 'daily' series with an upward trend."""
    return TimeSeries(0, tuple(10.0 + 0.05 * d + (d % 7) * 0.3 for d in range(360)))


class TestFoldSeries:
    def test_sum_fold(self, year_of_days):
        monthly = fold_series(year_of_days, 30, "sum")
        assert len(monthly) == 12
        assert math.isclose(monthly.values[0], sum(year_of_days.values[:30]))

    def test_avg_fold(self, year_of_days):
        monthly = fold_series(year_of_days, 30, "avg")
        assert math.isclose(
            monthly.values[3], sum(year_of_days.values[90:120]) / 30
        )

    def test_min_max_last_folds(self):
        s = TimeSeries(0, (3.0, 1.0, 2.0, 8.0, 5.0, 4.0))
        assert fold_series(s, 3, "min").values == (1.0, 4.0)
        assert fold_series(s, 3, "max").values == (3.0, 8.0)
        assert fold_series(s, 3, "last").values == (2.0, 4.0)

    def test_folded_series_reindexed_to_zero(self, year_of_days):
        monthly = fold_series(year_of_days, 30)
        assert monthly.t_b == 0

    def test_rejects_nondivisible_length(self):
        with pytest.raises(IntervalError):
            fold_series(TimeSeries(0, (1.0, 2.0, 3.0)), 2)

    def test_rejects_bad_segment_length(self):
        with pytest.raises(IntervalError):
            fold_series(TimeSeries(0, (1.0,)), 0)

    def test_rejects_unknown_aggregate(self):
        with pytest.raises(AggregationError):
            fold_series(TimeSeries(0, (1.0, 2.0)), 1, "median")  # type: ignore[arg-type]

    def test_fold_preserves_trend_direction(self, year_of_days):
        monthly = fold_series(year_of_days, 30, "avg")
        assert monthly.fit().slope > 0
        assert year_of_days.fit().slope > 0


class TestFoldISBs:
    def _segments(self, series: TimeSeries, seg: int):
        return [
            series.slice(i, i + seg - 1).isb()
            for i in range(series.t_b, series.t_e + 1, seg)
        ]

    def test_sum_fold_exact_from_isbs(self, year_of_days):
        segments = self._segments(year_of_days, 30)
        via_isb = fold_isbs(segments, "sum")
        via_raw = fold_series(year_of_days, 30, "sum")
        for a, b in zip(via_isb.values, via_raw.values):
            assert math.isclose(a, b, rel_tol=1e-9)

    def test_avg_fold_exact_from_isbs(self, year_of_days):
        segments = self._segments(year_of_days, 30)
        via_isb = fold_isbs(segments, "avg")
        via_raw = fold_series(year_of_days, 30, "avg")
        for a, b in zip(via_isb.values, via_raw.values):
            assert math.isclose(a, b, rel_tol=1e-9)

    def test_last_fold_uses_fitted_endpoint(self):
        seg = isb_of_series([1.0, 2.0, 3.0])  # perfect line, end value 3
        folded = fold_isbs([seg], "last")
        assert math.isclose(folded.values[0], 3.0, abs_tol=1e-9)

    def test_min_max_refused(self, year_of_days):
        segments = self._segments(year_of_days, 30)
        for agg in ("min", "max"):
            with pytest.raises(AggregationError):
                fold_isbs(segments, agg)  # type: ignore[arg-type]

    def test_segments_sorted_internally(self, year_of_days):
        segments = self._segments(year_of_days, 30)
        forward = fold_isbs(segments, "sum")
        backward = fold_isbs(list(reversed(segments)), "sum")
        assert forward.values == backward.values

    def test_rejects_gap(self):
        a = isb_of_series([1.0, 2.0], t_b=0)
        b = isb_of_series([1.0, 2.0], t_b=5)
        with pytest.raises(AggregationError):
            fold_isbs([a, b])

    def test_rejects_empty(self):
        with pytest.raises(AggregationError):
            fold_isbs([])

    def test_rejects_unknown_aggregate(self):
        seg = isb_of_series([1.0, 2.0])
        with pytest.raises(AggregationError):
            fold_isbs([seg], "mode")  # type: ignore[arg-type]

    def test_monthly_regression_from_folded_isbs(self, year_of_days):
        """The Section 6.2 use case end-to-end: daily ISBs -> monthly series
        -> monthly-level regression."""
        segments = self._segments(year_of_days, 30)
        monthly = fold_isbs(segments, "avg")
        assert monthly.fit().slope > 0


class TestFoldEdgeCases:
    """Degenerate shapes: single-tick segments, identity folds, max depth."""

    def test_single_tick_segments_are_identity_for_sum(self, year_of_days):
        folded = fold_series(year_of_days, 1, "sum")
        assert folded.values == year_of_days.values
        assert folded.t_b == 0

    def test_whole_series_folds_to_one_value(self, year_of_days):
        folded = fold_series(year_of_days, len(year_of_days), "avg")
        assert len(folded) == 1
        assert math.isclose(
            folded.values[0],
            sum(year_of_days.values) / len(year_of_days),
        )

    def test_max_fold_depth(self, year_of_days):
        """Fold repeatedly (360 -> 30 -> 6 -> 1): each level stays exact."""
        series = year_of_days
        for segment in (12, 5, 6):
            series = fold_series(series, segment, "sum")
        assert len(series) == 1
        assert math.isclose(series.values[0], sum(year_of_days.values))

    def test_fold_isbs_single_segment(self):
        segment = isb_of_series([1.0, 2.0, 3.0], t_b=6)
        folded = fold_isbs([segment], "sum")
        assert len(folded) == 1
        assert math.isclose(folded.values[0], 6.0)

    def test_fold_isbs_of_single_tick_segments(self):
        """One-tick ISBs (flat lines) fold to exactly their values."""
        from repro.regression.isb import ISB

        segments = [ISB(t, t, float(t) * 2.0, 0.0) for t in range(5)]
        assert fold_isbs(segments, "sum").values == (0.0, 2.0, 4.0, 6.0, 8.0)
        assert fold_isbs(segments, "last").values == (0.0, 2.0, 4.0, 6.0, 8.0)

    def test_fold_then_fit_equals_fit_of_folded_raw(self, year_of_days):
        """ISB-only folding feeds a regression identical to the raw path."""
        raw_monthly = fold_series(year_of_days, 30, "sum")
        segments = [
            isb_of_series(year_of_days.values[i : i + 30], t_b=i)
            for i in range(0, 360, 30)
        ]
        isb_monthly = fold_isbs(segments, "sum")
        raw_fit = isb_of_series(raw_monthly.values)
        isb_fit = isb_of_series(isb_monthly.values)
        assert math.isclose(raw_fit.slope, isb_fit.slope, rel_tol=1e-9)
        assert math.isclose(raw_fit.base, isb_fit.base, rel_tol=1e-9)
