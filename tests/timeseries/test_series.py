"""Tests for the TimeSeries value object."""

from __future__ import annotations

import math

import pytest

from repro.errors import EmptySeriesError, IntervalError
from repro.timeseries.series import TimeSeries


class TestConstruction:
    def test_values_coerced_to_float_tuple(self):
        s = TimeSeries(0, (1, 2, 3))
        assert s.values == (1.0, 2.0, 3.0)

    def test_rejects_empty(self):
        with pytest.raises(EmptySeriesError):
            TimeSeries(0, ())

    def test_interval(self):
        s = TimeSeries(5, (1.0, 2.0, 3.0))
        assert s.interval == (5, 7)
        assert len(s) == 3


class TestAccess:
    def test_at(self):
        s = TimeSeries(10, (1.0, 2.0, 3.0))
        assert s.at(11) == 2.0

    def test_at_out_of_range(self):
        s = TimeSeries(10, (1.0,))
        with pytest.raises(IntervalError):
            s.at(9)
        with pytest.raises(IntervalError):
            s.at(11)

    def test_iter_yields_tick_value_pairs(self):
        s = TimeSeries(3, (5.0, 6.0))
        assert list(s) == [(3, 5.0), (4, 6.0)]


class TestAlgebra:
    def test_add_pointwise(self):
        a = TimeSeries(0, (1.0, 2.0))
        b = TimeSeries(0, (3.0, 4.0))
        assert (a + b).values == (4.0, 6.0)

    def test_add_requires_same_interval(self):
        with pytest.raises(IntervalError):
            TimeSeries(0, (1.0, 2.0)) + TimeSeries(1, (1.0, 2.0))

    def test_scaled(self):
        assert TimeSeries(0, (1.0, 2.0)).scaled(2.0).values == (2.0, 4.0)

    def test_concat_adjacent(self):
        a = TimeSeries(0, (1.0, 2.0))
        b = TimeSeries(2, (3.0,))
        c = a.concat(b)
        assert c.interval == (0, 2)
        assert c.values == (1.0, 2.0, 3.0)

    def test_concat_rejects_gap(self):
        with pytest.raises(IntervalError):
            TimeSeries(0, (1.0,)).concat(TimeSeries(2, (2.0,)))

    def test_slice(self):
        s = TimeSeries(0, tuple(float(i) for i in range(10)))
        sub = s.slice(3, 5)
        assert sub.interval == (3, 5)
        assert sub.values == (3.0, 4.0, 5.0)

    def test_slice_bounds_checked(self):
        s = TimeSeries(0, (1.0, 2.0))
        with pytest.raises(IntervalError):
            s.slice(0, 5)

    def test_split_partitions(self):
        s = TimeSeries(0, tuple(float(i) for i in range(10)))
        parts = s.split([4, 7])
        assert [p.interval for p in parts] == [(0, 3), (4, 6), (7, 9)]
        rebuilt = parts[0]
        for p in parts[1:]:
            rebuilt = rebuilt.concat(p)
        assert rebuilt.values == s.values

    def test_split_rejects_bad_boundaries(self):
        s = TimeSeries(0, (1.0, 2.0, 3.0))
        with pytest.raises(IntervalError):
            s.split([2, 2])
        with pytest.raises(IntervalError):
            s.split([5])


class TestStatistics:
    def test_mean_total(self):
        s = TimeSeries(0, (1.0, 2.0, 3.0))
        assert s.mean == 2.0
        assert s.total == 6.0

    def test_fit_and_isb_agree(self):
        s = TimeSeries(2, (0.5, 1.5, 2.5, 3.5))
        fit = s.fit()
        isb = s.isb()
        assert math.isclose(fit.slope, 1.0, abs_tol=1e-12)
        assert isb.base == fit.base and isb.slope == fit.slope
        assert isb.interval == s.interval
