"""Property-based tests for folding: ISB-only folds equal raw-data folds."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timeseries.folding import fold_isbs, fold_series
from repro.timeseries.series import TimeSeries

values_st = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def foldable_series(draw):
    segment = draw(st.integers(min_value=1, max_value=12))
    n_segments = draw(st.integers(min_value=1, max_value=10))
    values = draw(
        st.lists(
            values_st,
            min_size=segment * n_segments,
            max_size=segment * n_segments,
        )
    )
    return TimeSeries(0, tuple(values)), segment


@given(case=foldable_series())
@settings(max_examples=80, deadline=None)
def test_sum_fold_exact_from_isbs(case):
    series, segment = case
    segments = [
        series.slice(i, i + segment - 1).isb()
        for i in range(0, len(series), segment)
    ]
    via_isb = fold_isbs(segments, "sum")
    via_raw = fold_series(series, segment, "sum")
    for a, b in zip(via_isb.values, via_raw.values):
        scale = max(1.0, abs(b))
        assert abs(a - b) <= 1e-6 * scale


@given(case=foldable_series())
@settings(max_examples=80, deadline=None)
def test_avg_fold_exact_from_isbs(case):
    series, segment = case
    segments = [
        series.slice(i, i + segment - 1).isb()
        for i in range(0, len(series), segment)
    ]
    via_isb = fold_isbs(segments, "avg")
    via_raw = fold_series(series, segment, "avg")
    for a, b in zip(via_isb.values, via_raw.values):
        scale = max(1.0, abs(b))
        assert abs(a - b) <= 1e-6 * scale


@given(case=foldable_series())
@settings(max_examples=50, deadline=None)
def test_fold_lengths_and_reindexing(case):
    series, segment = case
    folded = fold_series(series, segment, "max")
    assert len(folded) == len(series) // segment
    assert folded.t_b == 0


@given(case=foldable_series())
@settings(max_examples=50, deadline=None)
def test_min_fold_bounded_by_raw_extremes(case):
    series, segment = case
    folded = fold_series(series, segment, "min")
    assert min(folded.values) == min(series.values)
    folded_max = fold_series(series, segment, "max")
    assert max(folded_max.values) == max(series.values)
