"""SubscriptionRegistry: seal-driven push, cadence, bounded queues."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ReproError, ServiceError
from repro.query.spec import Q
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.service.subscriptions import SubscriptionRegistry
from repro.stream.records import StreamRecord

from tests.service.conftest import TPQ, workload


@pytest.fixture
def cube(layers, policy):
    cube = ShardedStreamCube(
        layers, policy, n_shards=2, ticks_per_quarter=TPQ
    )
    cube.ingest_batch(workload(3))
    cube.advance_to(6 * TPQ)
    yield cube
    cube.close()


@pytest.fixture
def router(cube):
    return QueryRouter(cube, window_quarters=4)


@pytest.fixture
def registry(router):
    registry = SubscriptionRegistry(router, queue_limit=8)
    yield registry
    registry.close()


def seal_next(cube, registry) -> None:
    """Fill the current quarter, seal it, and drain the dispatcher."""
    quarter = cube.current_quarter
    t0 = quarter * TPQ
    cube.ingest_batch(
        [StreamRecord((0, 0), t, 5.0 + t) for t in range(t0, t0 + TPQ)]
    )
    cube.advance_to((quarter + 1) * TPQ)
    assert registry.flush(10.0), "dispatcher did not drain"


class TestDelivery:
    def test_watch_update_after_seal(self, cube, registry):
        sub = registry.subscribe(watch=True)
        seal_next(cube, registry)
        out = registry.poll(sub)
        assert out["subscription"] == sub
        assert len(out["updates"]) == 1
        update = out["updates"][0]
        assert update["seq"] == 1
        assert update["quarter"] == cube.current_quarter == 7
        assert update["epoch"] == list(cube.epoch_vector())
        assert update["op"] == "watch_list"
        assert "cells" in update["result"]
        assert out["last_seq"] == 1 and out["dropped"] == 0

    def test_every_k_skips_intermediate_seals(self, cube, registry):
        every = registry.subscribe(watch=True)
        coarse = registry.subscribe(watch=True, every_k=2)
        for _ in range(3):
            seal_next(cube, registry)  # quarters 7, 8, 9
        quarters = lambda s: [  # noqa: E731
            u["quarter"] for u in registry.poll(s)["updates"]
        ]
        assert quarters(every) == [7, 8, 9]
        assert quarters(coarse) == [7, 9]

    def test_ack_prunes_and_since_filters(self, cube, registry):
        sub = registry.subscribe(watch=True)
        seal_next(cube, registry)
        seal_next(cube, registry)
        assert [u["seq"] for u in registry.poll(sub)["updates"]] == [1, 2]
        out = registry.poll(sub, since_seq=1)
        assert [u["seq"] for u in out["updates"]] == [2]
        assert registry.describe_all()[0]["queued"] == 1  # seq 1 pruned

    def test_drop_oldest_counts(self, cube, registry):
        sub = registry.subscribe(watch=True, queue_limit=2)
        for _ in range(3):
            seal_next(cube, registry)
        out = registry.poll(sub)
        assert [u["seq"] for u in out["updates"]] == [2, 3]
        assert out["dropped"] == 1
        assert registry.stats()["updates_dropped"] == 1

    def test_shared_spec_executes_once_per_seal(self, cube, router, registry):
        subs = [registry.subscribe(watch=True) for _ in range(3)]
        base = router.specs_executed
        seal_next(cube, registry)
        # Three subscribers to one spec: one execution, three deliveries.
        assert router.specs_executed == base + 1
        for sub in subs:
            assert len(registry.poll(sub)["updates"]) == 1

    def test_long_poll_wakes_on_delivery(self, cube, registry):
        sub = registry.subscribe(watch=True)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(registry.poll(sub, timeout=10.0)),
            daemon=True,
        )
        thread.start()
        time.sleep(0.05)
        seal_next(cube, registry)
        thread.join(5.0)
        assert results and len(results[0]["updates"]) == 1

    def test_close_wakes_long_pollers(self, router):
        registry = SubscriptionRegistry(router)
        sub = registry.subscribe(watch=True)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(registry.poll(sub, timeout=30.0)),
            daemon=True,
        )
        thread.start()
        time.sleep(0.05)
        registry.close()
        thread.join(5.0)
        assert results == [
            {"subscription": sub, "updates": [], "last_seq": 0, "dropped": 0}
        ]
        with pytest.raises(ServiceError):
            registry.subscribe(watch=True)

    def test_seal_listener_takes_no_registry_lock(self, registry):
        # The listener runs on the ingest thread inside the seal path; it
        # must stay lock-free.  Holding the registry's condition across
        # the call proves it never tries to take it.
        before = registry.seals_signaled
        with registry._cond:
            registry._on_seal(99)
        assert registry.seals_signaled == before + 1
        registry.flush(10.0)  # let the dispatcher settle before teardown

    def test_unfilled_window_counts_eval_error(self, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        )
        router = QueryRouter(cube, window_quarters=4)
        registry = SubscriptionRegistry(router)
        try:
            sub = registry.subscribe(watch=True)
            cube.ingest_batch(
                [StreamRecord((0, 0), t, 1.0) for t in range(TPQ)]
            )
            cube.advance_to(TPQ)  # one sealed quarter < window of 4
            assert registry.flush(10.0)
            assert registry.poll(sub)["updates"] == []
            assert registry.eval_errors >= 1
            # The subscription stays due: it delivers as soon as the
            # window fills.
            assert registry.describe_all()[0]["last_quarter"] == -1
        finally:
            registry.close()
            cube.close()


class TestValidation:
    def test_subscribe_rejects_bad_args(self, registry):
        with pytest.raises(ServiceError):
            registry.subscribe()  # no spec, no watch
        with pytest.raises(ServiceError):
            registry.subscribe(Q.watch_list(), watch=True)
        with pytest.raises(ServiceError):
            registry.subscribe(watch=True, every_k=0)
        with pytest.raises(ServiceError):
            registry.subscribe(watch=True, queue_limit=0)

    def test_bad_spec_fails_the_subscribe_call(self, registry):
        # Eager resolution: a bad spec errors here, not in a background
        # dispatch round nobody is watching.
        with pytest.raises(ReproError):
            registry.subscribe(Q.cell((9, 9), (0, 0)))

    def test_payload_cadence_validation(self, registry):
        for payload in (
            {"watch": True, "every_seal": True, "every_k_quarters": 2},
            {"watch": True, "every_k_quarters": 0},
            {"watch": True, "every_k_quarters": True},
            {"watch": True, "every_seal": False},
            {"watch": True, "queue_limit": 0},
            {"watch": True, "queue_limit": True},
            {"watch": True, "window_quarters": "wide"},
            {"watch": True, "spec": {"op": "watch_list"}},
            {},
        ):
            with pytest.raises(ServiceError):
                registry.subscribe_payload(payload)

    def test_payload_accepts_both_forms(self, cube, registry):
        by_watch = registry.subscribe_payload(
            {"watch": True, "every_k_quarters": 2}
        )
        by_spec = registry.subscribe_payload(
            {"spec": {"op": "observation_deck"}, "queue_limit": 3}
        )
        described = {d["id"]: d for d in registry.describe_all()}
        assert described[by_watch]["every_k_quarters"] == 2
        assert described[by_spec]["op"] == "observation_deck"
        assert described[by_spec]["queue_limit"] == 3
        # The registry pins the router's default window at subscribe time.
        assert described[by_spec]["window_quarters"] == 4

    def test_unknown_ids(self, registry):
        with pytest.raises(ServiceError):
            registry.poll("sub-999")
        assert registry.unsubscribe("sub-999") is False
        sub = registry.subscribe(watch=True)
        assert registry.unsubscribe(sub) is True
        with pytest.raises(ServiceError):
            registry.poll(sub)

    def test_registry_queue_limit_validated(self, router):
        with pytest.raises(ServiceError):
            SubscriptionRegistry(router, queue_limit=0)

    def test_stats_shape(self, cube, registry):
        registry.subscribe(watch=True)
        seal_next(cube, registry)
        stats = registry.stats()
        assert stats["active"] == 1
        assert stats["created"] == 1
        assert stats["queued"] == 1
        assert stats["seals_signaled"] >= 1
        assert stats["dispatch_rounds"] >= 1
        assert stats["updates_enqueued"] == 1
        assert stats["updates_dropped"] == 0
