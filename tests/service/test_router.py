"""QueryRouter: cached answers, seal-time invalidation, correctness."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.query.api import RegressionCubeView
from repro.query.spec import Q
from repro.service.router import LRUCache, QueryRouter, _Flight
from repro.service.sharding import ShardedStreamCube
from repro.stream.records import StreamRecord

from tests.service.conftest import TPQ, workload


@pytest.fixture
def cube(layers, policy):
    cube = ShardedStreamCube(
        layers, policy, n_shards=2, ticks_per_quarter=TPQ
    )
    cube.ingest_batch(workload(3))
    cube.advance_to(6 * TPQ)
    yield cube
    cube.close()


@pytest.fixture
def router(cube):
    return QueryRouter(cube, window_quarters=4)


class TestLRUCache:
    def test_capacity_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.get("absent")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_capacity_validated(self):
        with pytest.raises(ServiceError):
            LRUCache(0)

    def test_versioned_hit_and_stale_miss_accounting(self):
        cache = LRUCache(4)
        cache.put("k", (7, "value"))
        assert cache.get_versioned("k", 7) == (7, "value")
        assert cache.hits == 1
        assert cache.get_versioned("k", 8) is None
        assert cache.misses == 1

    def test_stale_entry_evicted_on_detection(self):
        # Regression: a stale line used to squat on its LRU slot until
        # capacity pressure pushed a *live* line out instead.  With
        # capacity 2, detecting "a" as stale must free its slot so the
        # next put does not evict the still-valid "b".
        cache = LRUCache(2)
        cache.put("a", (1, "va"))
        cache.put("b", (1, "vb"))
        assert cache.get_versioned("a", 2) is None  # stale -> evicted now
        cache.put("c", (2, "vc"))
        assert cache.get_versioned("b", 1) == (1, "vb")
        assert cache.get_versioned("c", 2) == (2, "vc")


class TestRouterQueries:
    def test_point_matches_uncached_view(self, cube, router):
        view = RegressionCubeView(cube.refresh(4))
        some_cell = next(iter(cube.m_cells(4)))
        assert router.point((2, 2), some_cell) == view.cell((2, 2), some_cell)
        # Intermediate, non-materialized cuboid rolls up on the fly.
        mid = (some_cell[0] // 3, some_cell[1])
        assert router.point((1, 2), mid) == view.cell((1, 2), mid)

    def test_second_query_is_a_cache_hit(self, router):
        router.point((1, 1), (0, 0))
        before = router.cache.hits
        router.point((1, 1), (0, 0))
        assert router.cache.hits == before + 1

    def test_slice_and_top_slopes(self, cube, router):
        view = RegressionCubeView(cube.refresh(4))
        assert router.slice((1, 1), {"d0": 0}) == view.slice((1, 1), {"d0": 0})
        assert router.top_slopes((1, 1), 3) == view.top_slopes((1, 1), 3)

    def test_roll_up_and_drill_down(self, cube, router):
        view = RegressionCubeView(cube.refresh(4))
        some_cell = next(iter(cube.m_cells(4)))
        assert router.roll_up((2, 2), some_cell, "d0") == view.roll_up(
            (2, 2), some_cell, "d0"
        )
        assert router.drill_down((1, 1), (0, 0), "d0") == view.drill_down(
            (1, 1), (0, 0), "d0"
        )

    def test_exceptions_include_o_layer(self, cube, router):
        out = router.exceptions()
        assert cube.layers.o_coord in out
        assert out[cube.layers.o_coord] == router.watch_list()

    def test_change_exceptions_layers(self, cube, router):
        assert router.change_exceptions(1, "m") == cube.change_exceptions(1)
        assert router.change_exceptions(1, "o") == (
            cube.o_layer_change_exceptions(1)
        )
        with pytest.raises(ServiceError):
            router.change_exceptions(1, "x")

    def test_window_override(self, cube, router):
        wide = router.point((1, 1), (0, 0), window_quarters=6)
        narrow = router.point((1, 1), (0, 0), window_quarters=2)
        assert wide.interval != narrow.interval

    def test_refresh_happens_once_per_window(self, router):
        router.point((1, 1), (0, 0))
        router.slice((1, 1), {"d0": 0})
        router.watch_list()
        assert router.refreshes == 1
        router.point((1, 1), (0, 0), window_quarters=2)
        assert router.refreshes == 2


class TestInvalidation:
    def test_quarter_seal_clears_cache(self, cube, router):
        stale = router.point((1, 1), (0, 0))
        assert len(router.cache) == 1
        epoch = router.epoch
        # New data in a new quarter, then seal it.
        t0 = 6 * TPQ
        cube.ingest_batch(
            [StreamRecord((0, 0), t, 50.0) for t in range(t0, t0 + TPQ)]
        )
        cube.advance_to(t0 + TPQ)
        fresh = router.point((1, 1), (0, 0))
        assert router.epoch == epoch + 1
        assert fresh != stale  # the jump moved the regression
        assert router.cache.hits == 0  # cleared, recomputed

    def test_no_invalidation_within_a_quarter(self, cube, router):
        router.point((1, 1), (0, 0))
        # Mid-quarter records do not touch sealed history.
        cube.ingest_batch([StreamRecord((0, 0), 6 * TPQ, 50.0)])
        router.point((1, 1), (0, 0))
        assert router.cache.hits == 1


class TestSpecExecution:
    def test_execute_fills_the_default_window(self, router):
        result = router.execute(Q.cell((1, 1), (0, 0)))
        assert result.spec.window_quarters == router.window_quarters
        # The method-style wrapper builds the same plan -> same cache line.
        before = router.cache.hits
        assert router.point((1, 1), (0, 0)) == result.value
        assert router.cache.hits == before + 1

    def test_equivalent_plans_share_one_cache_line(self, router):
        router.execute(Q.slice((1, 1), {"d0": 0, "d1": 1}))
        before = router.cache.hits
        router.execute(Q.slice((1, 1)).where(d1=1, d0=0))
        assert router.cache.hits == before + 1

    def test_level_names_resolve_to_the_same_cache_line(self, cube, router):
        names = cube.layers.schema.describe_coord((1, 2))
        router.execute(Q.cell((1, 2), (0, 0)))
        before = router.cache.hits
        router.execute(Q.cell(tuple(names), (0, 0)))
        assert router.cache.hits == before + 1

    def test_execute_accepts_wire_dicts(self, router):
        got = router.execute({"op": "watch_list"})
        assert got.value == router.watch_list()

    def test_execute_batch_reports_in_order(self, router):
        items = router.execute_batch(
            Q.batch(Q.watch_list(), Q.cell((9, 9), (0, 0)), Q.top_slopes((1, 1)))
        )
        assert [item.ok for item in items] == [True, False, True]
        assert items[1].error_type == "SchemaError"
        assert router.batches == 1
        assert router.specs_executed >= 2  # the failing spec never executes

    def test_execute_rejects_batchquery(self, router):
        with pytest.raises(ServiceError):
            router.execute(Q.batch(Q.watch_list()))

    def test_new_method_wrappers_match_view(self, cube, router):
        view = RegressionCubeView(cube.refresh(4))
        some_cell = next(iter(cube.m_cells(4)))
        assert router.siblings((2, 2), some_cell, "d0") == view.siblings(
            (2, 2), some_cell, "d0"
        )
        assert router.observation_deck() == view.observation_deck()

    def test_stats_include_spec_counters(self, router):
        router.point((1, 1), (0, 0))
        stats = router.stats()
        assert stats["specs_executed"] == 1
        assert stats["views"] == 1
        assert stats["batches"] == 0

    def test_cache_hit_does_not_count_as_execution(self, router):
        # Regression: specs_executed used to be bumped before the cache
        # lookup, so /stats claimed an execution for every request and
        # the hit rate computed from it was meaningless.
        router.execute(Q.watch_list())
        assert router.specs_executed == 1
        router.execute(Q.watch_list())
        router.execute(Q.watch_list())
        assert router.specs_executed == 1
        assert router.stats()["specs_executed"] == 1

    def test_execute_versioned_returns_the_stored_cut(self, cube, router):
        cut, result = router.execute_versioned(Q.watch_list())
        assert cut == cube.epoch_vector()
        assert result.value == router.watch_list()
        # The cache hit returns the very same stored entry.
        again_cut, again = router.execute_versioned(Q.watch_list())
        assert again_cut == cut
        assert again is result

    def test_seal_storm_fallback_counted_and_uncached(self, router):
        # A follower that loops its full budget without ever validating
        # a cache line answers directly from one read cut, uncached, and
        # the bailout is visible in /stats.  Planting a pre-completed
        # flight under the key makes every round join-and-retry without
        # any leader filling the cache — the storm, deterministically.
        flight = _Flight()
        flight.done.set()
        key = ("_router", "storm-test")
        router._flights[key] = flight
        calls = []
        cut, value = router._single_flight_entry(
            key, lambda: calls.append(1) or 42
        )
        assert value == 42 and calls == [1]
        assert cut == router.cube.epoch_vector()
        assert router.single_flight_fallbacks == 1
        assert router.stats()["single_flight_fallbacks"] == 1
        assert router.cache.get_versioned(key, cut) is None

    def test_hand_built_keys_are_namespaced(self, router):
        # Hand-built lines share the LRU with spec cache keys, which are
        # shaped (op, (field, value), ...) with an identifier op.  The
        # "_router" tag keeps the two families disjoint: a spec-shaped
        # key passed through _cached must land on a different line.
        spec_shaped = ("exceptions", ("window_quarters", 4))
        assert router._cached(spec_shaped, lambda: "hand-built") == (
            "hand-built"
        )
        vector = router.cube.epoch_vector()
        stored = router.cache.get_versioned(
            ("_router",) + spec_shaped, vector
        )
        assert stored is not None and stored[1] == "hand-built"
        assert router.cache.get_versioned(spec_shaped, vector) is None


class TestValidation:
    def test_window_quarters_validated(self, cube):
        with pytest.raises(ServiceError):
            QueryRouter(cube, window_quarters=0)
