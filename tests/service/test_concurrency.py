"""Concurrency regression: parallel ingest + query + snapshot, no torn reads.

The service serializes *mutators* (ingest / advance / snapshot) on one
lock while queries and probes run concurrently against the cube's
per-shard read locks and the router's epoch-vector-validated cache.
Everything observable must therefore be a consistent point-in-time view
even while ingest is sealing quarters, ``/admin/snapshot`` is compacting
the WAL, and queries are refreshing the merged view.  These tests hammer
one service object from many threads (handle-level — no sockets, so
failures point at the service, not urllib) and assert the invariants a
torn read would break:

* every query answer's cells share one window interval (a view caught
  mid-refresh would mix epochs), and the interval belongs to a quarter
  boundary the cube actually passed through during the query;
* ``/health`` counters and the WAL sequence never move backwards;
* a snapshot directory written under fire is always restorable and equal
  to *some* consistent prefix of the ingest stream (records_ingested at a
  quarter boundary the cube actually passed through);
* the mutator lock covers exactly the mutating routes — probes and
  cached queries answer promptly while a mutator is parked inside it;
* identical concurrent cache misses collapse to one execution
  (single-flight), and cache hits under a seal storm are never stale.
"""

from __future__ import annotations

import random
import threading
import time

from repro.cubing.policy import GlobalSlopeThreshold
from repro.io import isb_from_dict
from repro.service.http import StreamCubeService
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.stream.generator import DatasetSpec
from repro.stream.wal import QuarterWAL

TPQ = 4
WINDOW = 2


def build_service(tmp_path, n_shards: int = 3) -> StreamCubeService:
    layers = DatasetSpec(2, 2, 3, 1).build_layers()
    policy = GlobalSlopeThreshold(0.1)
    cube = ShardedStreamCube(
        layers,
        policy,
        n_shards=n_shards,
        ticks_per_quarter=TPQ,
        wal=QuarterWAL(tmp_path / "wal.jsonl"),
    )
    router = QueryRouter(cube, window_quarters=WINDOW)
    return StreamCubeService(cube, router, snapshot_dir=tmp_path)


def ingest_payload(rng: random.Random, quarter: int) -> dict:
    rows = []
    for t in range(quarter * TPQ, (quarter + 1) * TPQ):
        for _ in range(3):
            rows.append(
                {
                    "values": [rng.randrange(9), rng.randrange(9)],
                    "t": t,
                    "z": rng.uniform(0.0, 4.0),
                }
            )
    return {"records": rows}


class Barrage:
    """N threads of mixed traffic against one service; collects violations."""

    def __init__(self, service: StreamCubeService, rounds: int = 60):
        self.service = service
        self.rounds = rounds
        self.violations: list[str] = []
        self.report_lock = threading.Lock()

    def note(self, problem: str) -> None:
        with self.report_lock:
            self.violations.append(problem)

    def ingester(self, seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(self.rounds):
            quarter = self.service.cube.current_quarter + rng.randrange(2)
            status, body = self.service.handle(
                "POST", "/ingest", ingest_payload(rng, quarter)
            )
            if status not in (200, 400):
                self.note(f"ingest -> {status}: {body}")
            elif status == 400 and body.get("type") != "StreamError":
                self.note(f"ingest 400 of type {body.get('type')}: {body}")

    def querier(self, seed: int) -> None:
        rng = random.Random(seed)
        ops = [
            {"op": "observation_deck"},
            {"op": "watch_list"},
            {"op": "slice", "coord": [2, 2]},
            {"queries": [{"op": "observation_deck"}, {"op": "watch_list"}]},
        ]
        for _ in range(self.rounds):
            payload = rng.choice(ops)
            status, body = self.service.handle("POST", "/query", payload)
            if status == 400:
                if body.get("type") not in ("StreamError", "QueryError"):
                    self.note(f"query 400 of type {body.get('type')}")
                continue
            if status != 200:
                self.note(f"query -> {status}: {body}")
                continue
            results = (
                [item for item in body.get("results", ()) if item.get("ok")]
                if "queries" in payload
                else [body]
            )
            for item in results:
                intervals = {
                    (
                        isb_from_dict(row["isb"]).t_b,
                        isb_from_dict(row["isb"]).t_e,
                    )
                    for row in item.get("cells", ())
                }
                if len(intervals) > 1:
                    self.note(
                        f"torn read: one answer mixes intervals {intervals}"
                    )

    def monitor(self) -> None:
        last_quarter = -1
        last_records = -1
        last_seq = -1
        for _ in range(self.rounds):
            status, health = self.service.handle("GET", "/health")
            if status != 200:
                self.note(f"health -> {status}")
                continue
            if health["current_quarter"] < last_quarter:
                self.note("current_quarter went backwards")
            if health["records_ingested"] < last_records:
                self.note("records_ingested went backwards")
            last_quarter = health["current_quarter"]
            last_records = health["records_ingested"]
            status, stats = self.service.handle("GET", "/stats")
            if status != 200:
                self.note(f"stats -> {status}")
                continue
            seq = stats["durability"]["wal_seq"]
            if seq is not None and seq < last_seq:
                self.note(f"wal_seq went backwards: {last_seq} -> {seq}")
            if seq is not None:
                last_seq = seq

    def snapshotter(self) -> None:
        for _ in range(self.rounds // 4):
            status, body = self.service.handle("POST", "/admin/snapshot", {})
            if status != 200:
                self.note(f"snapshot -> {status}: {body}")

    def run(self) -> None:
        threads = (
            [
                threading.Thread(target=self.ingester, args=(10 + i,))
                for i in range(3)
            ]
            + [
                threading.Thread(target=self.querier, args=(20 + i,))
                for i in range(3)
            ]
            + [
                threading.Thread(target=self.monitor),
                threading.Thread(target=self.snapshotter),
            ]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()


class TestConcurrentService:
    def test_no_torn_reads_under_parallel_traffic(self, tmp_path):
        service = build_service(tmp_path)
        try:
            barrage = Barrage(service)
            barrage.run()
            assert barrage.violations == []
            # The cube really moved: this was not a quiet no-op run.
            assert service.cube.records_ingested > 0
            assert service.cube.current_quarter > WINDOW
            assert service.snapshots_written > 0
        finally:
            service.close()

    def test_snapshot_written_under_fire_is_restorable(self, tmp_path):
        service = build_service(tmp_path)
        try:
            barrage = Barrage(service, rounds=40)
            barrage.run()
            assert barrage.violations == []
            manifest = ShardedStreamCube.read_manifest(tmp_path)
            restored = ShardedStreamCube.restore(
                tmp_path,
                service.cube.layers,
                service.cube.policy,
            )
            try:
                with QuarterWAL(tmp_path / "wal.jsonl") as journal:
                    journal.replay(
                        restored, after_seq=int(manifest["wal_seq"])
                    )
                live = service.cube
                assert restored.records_ingested == live.records_ingested
                q = live.current_quarter
                if q >= 1:
                    t_b, t_e = (q - 1) * TPQ, q * TPQ - 1
                    assert restored.window_isbs(t_b, t_e) == live.window_isbs(
                        t_b, t_e
                    )
            finally:
                restored.close()
        finally:
            service.close()

    def test_mutator_lock_covers_mutators_only(self, tmp_path):
        """The serialization discipline is the lock, not luck.

        Mutating routes (``/ingest``, ``/advance``, ``/admin/snapshot``)
        must hold the mutator lock — their WAL appends and snapshot
        triggers need one total order.  Probes and queries must *not*
        take it: they answer promptly even while a mutator is parked
        inside the lock, which is the whole point of the concurrent read
        path.  Rather than racing (nondeterministic), pin the mechanism.
        """
        service = build_service(tmp_path)
        try:
            # Probes run outside the mutator lock...
            seen: list[bool] = []
            original_health = service.health

            def spying_health(payload):
                seen.append(service._mutator_lock.locked())
                return original_health(payload)

            service.health = spying_health
            status, _ = service.handle("GET", "/health")
            assert status == 200
            assert seen == [False]
            service.health = original_health

            # ...and mutators inside it.
            rng = random.Random(99)
            original_ingest = service.ingest
            held: list[bool] = []

            def spying_ingest(payload):
                held.append(service._mutator_lock.locked())
                return original_ingest(payload)

            service.ingest = spying_ingest
            status, _ = service.handle(
                "POST", "/ingest", ingest_payload(rng, 0)
            )
            assert status == 200
            assert held == [True]
            service.ingest = original_ingest

            # Seal enough quarters that the default window is queryable,
            # then warm the cache.
            status, _ = service.handle(
                "POST", "/advance", {"t": (WINDOW + 1) * TPQ}
            )
            assert status == 200
            status, warm = service.handle(
                "POST", "/query", {"op": "observation_deck"}
            )
            assert status == 200

            # Park a mutator while it holds the lock: probes, stats and
            # cached queries must still answer; a second mutator must
            # wait its turn.
            gate = threading.Event()
            entered = threading.Event()

            def slow_ingest(payload):
                entered.set()
                gate.wait(timeout=10)
                return original_ingest(payload)

            service.ingest = slow_ingest

            def first():
                service.handle(
                    "POST",
                    "/ingest",
                    ingest_payload(
                        random.Random(7), service.cube.current_quarter
                    ),
                )

            thread_a = threading.Thread(target=first)
            thread_a.start()
            assert entered.wait(timeout=10), "mutator thread never entered"
            service.ingest = original_ingest

            for path in ("/health", "/healthz", "/readyz", "/stats"):
                status, _ = service.handle("GET", path)
                assert status == 200, f"{path} blocked behind a mutator"
            status, body = service.handle(
                "POST", "/query", {"op": "observation_deck"}
            )
            assert status == 200
            assert body == warm  # a lock-free cache hit

            order: list[str] = []

            def second():
                service.handle(
                    "POST", "/advance", {"t": service.cube.current_quarter * TPQ}
                )
                order.append("second-done")

            thread_b = threading.Thread(target=second)
            thread_b.start()
            thread_b.join(timeout=0.2)
            assert "second-done" not in order  # B is blocked on the lock
            gate.set()
            thread_a.join(timeout=10)
            thread_b.join(timeout=10)
            assert order == ["second-done"]
        finally:
            service.close()


class TestQueryConcurrency:
    """The tentpole's read-path guarantees, pinned deterministically."""

    def test_single_flight_collapses_identical_misses(
        self, tmp_path, monkeypatch
    ):
        """K identical concurrent cache misses run the query exactly once.

        The leader is parked inside the execution; followers must join
        its flight (observable via ``single_flight_joins``) rather than
        stampede the engines, and every client gets the leader's answer.
        """
        import repro.service.router as router_mod

        service = build_service(tmp_path, n_shards=2)
        try:
            rng = random.Random(5)
            for quarter in range(WINDOW + 1):
                service.handle(
                    "POST", "/ingest", ingest_payload(rng, quarter)
                )
            service.handle("POST", "/advance", {"t": (WINDOW + 1) * TPQ})
            router = service.router

            gate = threading.Event()
            entered = threading.Event()
            executions: list[int] = []
            original_execute = router_mod.execute

            def gated_execute(view, spec, **kwargs):
                executions.append(1)
                entered.set()
                assert gate.wait(timeout=10)
                return original_execute(view, spec, **kwargs)

            monkeypatch.setattr(router_mod, "execute", gated_execute)

            clients = 6
            answers: list = [None] * clients

            def query(i: int) -> None:
                answers[i] = router.execute({"op": "observation_deck"})

            threads = [
                threading.Thread(target=query, args=(i,))
                for i in range(clients)
            ]
            threads[0].start()
            assert entered.wait(timeout=10), "leader never started computing"
            for thread in threads[1:]:
                thread.start()
            deadline = time.monotonic() + 10
            while router.single_flight_joins < clients - 1:
                assert (
                    time.monotonic() < deadline
                ), "followers never joined the in-flight computation"
                time.sleep(0.002)
            gate.set()
            for thread in threads:
                thread.join(timeout=10)
            assert executions == [1]  # one execution served all K clients
            first = answers[0]
            assert first is not None
            assert all(
                answer.to_dict() == first.to_dict() for answer in answers
            )
        finally:
            service.close()

    def test_query_racing_seals_never_mixes_epochs(self, tmp_path):
        """An answer racing quarter seals is from one consistent cut.

        While an ingester seals quarters, every query answer must (a) use
        a single window interval across all its cells and (b) use the
        interval of a quarter the cube actually held during the query —
        never a blend, never a window no quarter ever had.
        """
        service = build_service(tmp_path, n_shards=3)
        try:
            rng = random.Random(17)
            for quarter in range(WINDOW + 1):
                service.handle(
                    "POST", "/ingest", ingest_payload(rng, quarter)
                )
            service.handle("POST", "/advance", {"t": (WINDOW + 1) * TPQ})
            stop = threading.Event()
            problems: list[str] = []

            def ingester() -> None:
                quarter = service.cube.current_quarter
                while not stop.is_set():
                    status, body = service.handle(
                        "POST", "/ingest", ingest_payload(rng, quarter)
                    )
                    if status != 200:
                        problems.append(f"ingest -> {status}: {body}")
                        return
                    quarter += 1

            def querier(seed: int) -> None:
                while not stop.is_set():
                    q_before = service.cube.current_quarter
                    status, body = service.handle(
                        "POST", "/query", {"op": "observation_deck"}
                    )
                    q_after = service.cube.current_quarter
                    if status != 200:
                        problems.append(f"query -> {status}: {body}")
                        return
                    intervals = {
                        (
                            isb_from_dict(row["isb"]).t_b,
                            isb_from_dict(row["isb"]).t_e,
                        )
                        for row in body.get("cells", ())
                    }
                    if len(intervals) > 1:
                        problems.append(f"mixed intervals {intervals}")
                        return
                    if intervals:
                        valid = {
                            (q * TPQ - WINDOW * TPQ, q * TPQ - 1)
                            for q in range(q_before, q_after + 1)
                        }
                        got = intervals.pop()
                        if got not in valid:
                            problems.append(
                                f"interval {got} from no quarter in "
                                f"[{q_before}, {q_after}]"
                            )
                            return

            threads = [threading.Thread(target=ingester)] + [
                threading.Thread(target=querier, args=(s,)) for s in (1, 2)
            ]
            for thread in threads:
                thread.start()
            time.sleep(1.0)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            assert problems == []
            assert service.cube.current_quarter > WINDOW + 1  # it moved
        finally:
            service.close()

    def test_cache_hits_under_seal_hammering_are_never_stale(self, tmp_path):
        """Quarter-sandwich exactness: a hit is as fresh as a miss.

        One thread seals quarters via ``/advance`` while queriers hammer
        one cacheable query.  Whenever the quarter clock reads the same
        value before and after a query, the answer *must* carry exactly
        that quarter's window — a stale cache entry surviving a seal
        would fail the sandwich.  The run must also actually serve hits,
        or it proved nothing about the cache.
        """
        service = build_service(tmp_path, n_shards=3)
        try:
            rng = random.Random(23)
            for quarter in range(WINDOW + 1):
                service.handle(
                    "POST", "/ingest", ingest_payload(rng, quarter)
                )
            service.handle("POST", "/advance", {"t": (WINDOW + 1) * TPQ})
            stop = threading.Event()
            problems: list[str] = []
            sandwiched = [0]
            count_lock = threading.Lock()

            def sealer() -> None:
                while not stop.is_set():
                    target = (service.cube.current_quarter + 1) * TPQ
                    status, body = service.handle(
                        "POST", "/advance", {"t": target}
                    )
                    if status != 200:
                        problems.append(f"advance -> {status}: {body}")
                        return
                    time.sleep(0.002)

            def querier() -> None:
                while not stop.is_set():
                    q_before = service.cube.current_quarter
                    status, body = service.handle(
                        "POST", "/query", {"op": "observation_deck"}
                    )
                    q_after = service.cube.current_quarter
                    if status != 200:
                        problems.append(f"query -> {status}: {body}")
                        return
                    if q_before != q_after:
                        continue  # a seal landed mid-query: no sandwich
                    expected = (
                        q_before * TPQ - WINDOW * TPQ,
                        q_before * TPQ - 1,
                    )
                    for row in body.get("cells", ()):
                        isb = isb_from_dict(row["isb"])
                        if (isb.t_b, isb.t_e) != expected:
                            problems.append(
                                f"stale answer {(isb.t_b, isb.t_e)} at "
                                f"stable quarter {q_before}"
                            )
                            return
                    with count_lock:
                        sandwiched[0] += 1

            threads = [threading.Thread(target=sealer)] + [
                threading.Thread(target=querier) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(1.0)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            assert problems == []
            assert sandwiched[0] > 0  # the sandwich actually closed
            assert service.router.cache.hits > 0  # hits were served
        finally:
            service.close()
