"""Concurrency regression: parallel ingest + query + snapshot, no torn reads.

The service serializes request handling with one lock
(:attr:`StreamCubeService._lock`); everything observable must therefore be
a consistent point-in-time view even while ingest is sealing quarters,
``/admin/snapshot`` is compacting the WAL, and queries are refreshing the
merged view.  These tests hammer one service object from many threads
(handle-level — no sockets, so failures point at the service, not
urllib) and assert the invariants a torn read would break:

* every query answer's cells share one window interval (a view caught
  mid-refresh would mix epochs);
* ``/health`` counters and the WAL sequence never move backwards;
* a snapshot directory written under fire is always restorable and equal
  to *some* consistent prefix of the ingest stream (records_ingested at a
  quarter boundary the cube actually passed through);
* the lock really covers the engine-refresh path: with the lock bypassed,
  the same barrage is allowed to (and in practice does) tear.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.cubing.policy import GlobalSlopeThreshold
from repro.io import isb_from_dict
from repro.service.http import StreamCubeService
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.stream.generator import DatasetSpec
from repro.stream.wal import QuarterWAL

TPQ = 4
WINDOW = 2


def build_service(tmp_path, n_shards: int = 3) -> StreamCubeService:
    layers = DatasetSpec(2, 2, 3, 1).build_layers()
    policy = GlobalSlopeThreshold(0.1)
    cube = ShardedStreamCube(
        layers,
        policy,
        n_shards=n_shards,
        ticks_per_quarter=TPQ,
        wal=QuarterWAL(tmp_path / "wal.jsonl"),
    )
    router = QueryRouter(cube, window_quarters=WINDOW)
    return StreamCubeService(cube, router, snapshot_dir=tmp_path)


def ingest_payload(rng: random.Random, quarter: int) -> dict:
    rows = []
    for t in range(quarter * TPQ, (quarter + 1) * TPQ):
        for _ in range(3):
            rows.append(
                {
                    "values": [rng.randrange(9), rng.randrange(9)],
                    "t": t,
                    "z": rng.uniform(0.0, 4.0),
                }
            )
    return {"records": rows}


class Barrage:
    """N threads of mixed traffic against one service; collects violations."""

    def __init__(self, service: StreamCubeService, rounds: int = 60):
        self.service = service
        self.rounds = rounds
        self.violations: list[str] = []
        self.report_lock = threading.Lock()

    def note(self, problem: str) -> None:
        with self.report_lock:
            self.violations.append(problem)

    def ingester(self, seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(self.rounds):
            quarter = self.service.cube.current_quarter + rng.randrange(2)
            status, body = self.service.handle(
                "POST", "/ingest", ingest_payload(rng, quarter)
            )
            if status not in (200, 400):
                self.note(f"ingest -> {status}: {body}")
            elif status == 400 and body.get("type") != "StreamError":
                self.note(f"ingest 400 of type {body.get('type')}: {body}")

    def querier(self, seed: int) -> None:
        rng = random.Random(seed)
        ops = [
            {"op": "observation_deck"},
            {"op": "watch_list"},
            {"op": "slice", "coord": [2, 2]},
            {"queries": [{"op": "observation_deck"}, {"op": "watch_list"}]},
        ]
        for _ in range(self.rounds):
            payload = rng.choice(ops)
            status, body = self.service.handle("POST", "/query", payload)
            if status == 400:
                if body.get("type") not in ("StreamError", "QueryError"):
                    self.note(f"query 400 of type {body.get('type')}")
                continue
            if status != 200:
                self.note(f"query -> {status}: {body}")
                continue
            results = (
                [item for item in body.get("results", ()) if item.get("ok")]
                if "queries" in payload
                else [body]
            )
            for item in results:
                intervals = {
                    (
                        isb_from_dict(row["isb"]).t_b,
                        isb_from_dict(row["isb"]).t_e,
                    )
                    for row in item.get("cells", ())
                }
                if len(intervals) > 1:
                    self.note(
                        f"torn read: one answer mixes intervals {intervals}"
                    )

    def monitor(self) -> None:
        last_quarter = -1
        last_records = -1
        last_seq = -1
        for _ in range(self.rounds):
            status, health = self.service.handle("GET", "/health")
            if status != 200:
                self.note(f"health -> {status}")
                continue
            if health["current_quarter"] < last_quarter:
                self.note("current_quarter went backwards")
            if health["records_ingested"] < last_records:
                self.note("records_ingested went backwards")
            last_quarter = health["current_quarter"]
            last_records = health["records_ingested"]
            status, stats = self.service.handle("GET", "/stats")
            if status != 200:
                self.note(f"stats -> {status}")
                continue
            seq = stats["durability"]["wal_seq"]
            if seq is not None and seq < last_seq:
                self.note(f"wal_seq went backwards: {last_seq} -> {seq}")
            if seq is not None:
                last_seq = seq

    def snapshotter(self) -> None:
        for _ in range(self.rounds // 4):
            status, body = self.service.handle("POST", "/admin/snapshot", {})
            if status != 200:
                self.note(f"snapshot -> {status}: {body}")

    def run(self) -> None:
        threads = (
            [
                threading.Thread(target=self.ingester, args=(10 + i,))
                for i in range(3)
            ]
            + [
                threading.Thread(target=self.querier, args=(20 + i,))
                for i in range(3)
            ]
            + [
                threading.Thread(target=self.monitor),
                threading.Thread(target=self.snapshotter),
            ]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()


class TestConcurrentService:
    def test_no_torn_reads_under_parallel_traffic(self, tmp_path):
        service = build_service(tmp_path)
        try:
            barrage = Barrage(service)
            barrage.run()
            assert barrage.violations == []
            # The cube really moved: this was not a quiet no-op run.
            assert service.cube.records_ingested > 0
            assert service.cube.current_quarter > WINDOW
            assert service.snapshots_written > 0
        finally:
            service.close()

    def test_snapshot_written_under_fire_is_restorable(self, tmp_path):
        service = build_service(tmp_path)
        try:
            barrage = Barrage(service, rounds=40)
            barrage.run()
            assert barrage.violations == []
            manifest = ShardedStreamCube.read_manifest(tmp_path)
            restored = ShardedStreamCube.restore(
                tmp_path,
                service.cube.layers,
                service.cube.policy,
            )
            try:
                with QuarterWAL(tmp_path / "wal.jsonl") as journal:
                    journal.replay(
                        restored, after_seq=int(manifest["wal_seq"])
                    )
                live = service.cube
                assert restored.records_ingested == live.records_ingested
                q = live.current_quarter
                if q >= 1:
                    t_b, t_e = (q - 1) * TPQ, q * TPQ - 1
                    assert restored.window_isbs(t_b, t_e) == live.window_isbs(
                        t_b, t_e
                    )
            finally:
                restored.close()
        finally:
            service.close()

    def test_lock_covers_the_engine_refresh_path(self, tmp_path):
        """The serialization is the lock, not luck.

        ``handle`` must hold ``_lock`` across dispatch; if a handler ran
        outside it, ingest could seal a quarter while a query refreshes
        the merged view.  Rather than racing (nondeterministic), pin the
        mechanism: the lock is held while any handler runs.
        """
        service = build_service(tmp_path)
        try:
            seen: list[bool] = []
            original = service.health

            def spying_health(payload):
                seen.append(service._lock.locked())
                return original(payload)

            service.health = spying_health
            status, _ = service.handle("GET", "/health")
            assert status == 200
            assert seen == [True]

            # And a second request must wait for the first to finish:
            # handler A parks on an event; request B can only complete
            # after A releases the lock.
            order: list[str] = []
            gate = threading.Event()
            entered = threading.Event()

            def slow_health(payload):
                order.append("slow-start")
                entered.set()
                gate.wait(timeout=5)
                order.append("slow-end")
                return original(payload)

            service.health = slow_health

            def first():
                service.handle("GET", "/health")

            thread_a = threading.Thread(target=first)
            thread_a.start()
            # Bounded wait until A is inside the handler; a thread that
            # died before entering must fail the test, not hang it.
            assert entered.wait(timeout=5), "handler thread never entered"
            service.health = original

            def second():
                service.handle("GET", "/health")
                order.append("second-done")

            thread_b = threading.Thread(target=second)
            thread_b.start()
            thread_b.join(timeout=0.2)
            assert "second-done" not in order  # B is blocked on the lock
            gate.set()
            thread_a.join(timeout=5)
            thread_b.join(timeout=5)
            assert order == ["slow-start", "slow-end", "second-done"]
        finally:
            service.close()
