"""RWLock edge cases: vanished-waiter safety net, bounded reader turns."""

from __future__ import annotations

import threading
import time

from repro.service.locks import RWLock, ShardLockTable


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return predicate()


class TestVanishedWaiterSafetyNet:
    def test_orphaned_turns_do_not_wedge_writers(self):
        # A releasing writer grants one admission turn per waiting
        # reader.  If a granted turn's reader vanishes (interrupted
        # mid-wait, e.g. the thread was killed), the turn would block
        # every future writer forever without the safety net that
        # clears turns no waiting reader is left to consume.
        lock = RWLock()
        with lock._cond:
            lock._reader_turns = 3  # orphaned turns, nobody waiting
        acquired = threading.Event()

        def writer():
            lock.acquire_write()
            acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert acquired.wait(5.0), "writer wedged behind orphaned turns"
        thread.join(5.0)
        assert lock._reader_turns == 0

    def test_safety_net_spares_live_waiters(self):
        # The net only fires when *no* reader is waiting: with a live
        # waiter present the writer must keep waiting for the turn to
        # be consumed, not confiscate it.
        lock = RWLock()
        lock.acquire_write()
        reader_in = threading.Event()
        release_reader = threading.Event()

        def reader():
            lock.acquire_read()
            reader_in.set()
            release_reader.wait(10.0)
            lock.release_read()

        reader_thread = threading.Thread(target=reader, daemon=True)
        reader_thread.start()
        assert _wait_until(lambda: lock._readers_waiting == 1)
        lock.release_write()  # grants the waiting reader one turn

        writer_in = threading.Event()

        def writer():
            lock.acquire_write()
            writer_in.set()
            lock.release_write()

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        assert reader_in.wait(5.0), "live waiter lost its granted turn"
        assert not writer_in.is_set() or lock._readers == 0
        release_reader.set()
        assert writer_in.wait(5.0)
        reader_thread.join(5.0)
        writer_thread.join(5.0)


class TestBoundedReaderTurns:
    def test_turns_granted_from_live_waiting_count_and_drained(self):
        # Turns come from the waiting count at release time — a bounded
        # batch, not an open-ended reader phase — and are fully consumed
        # by the admitted readers, so the next writer waits on at most
        # that batch.
        lock = RWLock()
        lock.acquire_write()
        release_readers = threading.Event()
        admitted = []
        mu = threading.Lock()

        def reader(i):
            lock.acquire_read()
            with mu:
                admitted.append(i)
            release_readers.wait(10.0)
            lock.release_read()

        threads = [
            threading.Thread(target=reader, args=(i,), daemon=True)
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        assert _wait_until(lambda: lock._readers_waiting == 3)
        lock.release_write()
        assert _wait_until(lambda: len(admitted) == 3)
        # Every granted turn was consumed by an admitted reader.
        assert lock._reader_turns == 0

        # A writer arriving now waits only on this bounded batch; once
        # the batch drains it enters with no leftover turns in its way.
        writer_in = threading.Event()

        def writer():
            lock.acquire_write()
            writer_in.set()
            lock.release_write()

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        assert _wait_until(lambda: lock._writers_waiting == 1)
        assert not writer_in.is_set()
        release_readers.set()
        assert writer_in.wait(5.0)
        for thread in threads:
            thread.join(5.0)
        writer_thread.join(5.0)

    def test_waiting_writer_blocks_new_readers(self):
        # Write preference: while a writer waits, a fresh reader may not
        # slip past it (a continuous read stream cannot starve sealing).
        lock = RWLock()
        lock.acquire_read()
        writer_in = threading.Event()

        def writer():
            lock.acquire_write()
            writer_in.set()
            lock.release_write()

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        assert _wait_until(lambda: lock._writers_waiting == 1)

        late_reader_in = threading.Event()

        def late_reader():
            lock.acquire_read()
            late_reader_in.set()
            lock.release_read()

        reader_thread = threading.Thread(target=late_reader, daemon=True)
        reader_thread.start()
        time.sleep(0.05)
        assert not late_reader_in.is_set(), "reader jumped a waiting writer"
        lock.release_read()
        assert writer_in.wait(5.0)
        assert late_reader_in.wait(5.0)
        writer_thread.join(5.0)
        reader_thread.join(5.0)


class TestShardLockTable:
    def test_read_all_is_reentrant_per_thread(self):
        table = ShardLockTable(3)
        with table.read_all():
            with table.read_all():
                assert all(lock._readers == 1 for lock in table._locks)
            assert all(lock._readers == 1 for lock in table._locks)
        assert all(lock._readers == 0 for lock in table._locks)

    def test_write_deduplicates_and_orders_indices(self):
        table = ShardLockTable(3)
        with table.write([2, 0, 2]):
            assert table._locks[0]._writer
            assert not table._locks[1]._writer
            assert table._locks[2]._writer
        assert not any(lock._writer for lock in table._locks)
