"""Degraded-mode serving over HTTP: partial answers, probes, manifests.

The service's availability contract: a fleet with a permanently dead
shard keeps answering ``POST /query`` with 200 and a ``degraded`` block
(never a 500), ``/healthz`` reports the roster, ``/readyz`` flips to 503
so orchestrators stop routing new traffic, and a tampered snapshot
manifest refuses restore with a typed :class:`CorruptionError`.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterConfig
from repro.errors import CorruptionError
from repro.io import payload_checksum
from repro.service.http import StreamCubeService
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.stream.wal import QuarterWAL

from tests.service.conftest import TPQ, workload


@pytest.fixture
def fragile(layers, policy, tmp_path):
    """A process-backend service with no restart budget: the first
    worker death is final — exactly the fleet degraded mode serves."""
    cube = ShardedStreamCube(
        layers,
        policy,
        n_shards=2,
        ticks_per_quarter=TPQ,
        wal=QuarterWAL(tmp_path / "cube.wal"),
        backend=ClusterConfig(backend="process", max_restarts=0),
    )
    service = StreamCubeService(
        cube, QueryRouter(cube, window_quarters=4)
    )
    rows = [
        {"values": list(r.values), "t": r.t, "z": r.z}
        for r in workload(3)
    ]
    status, _ = service.handle("POST", "/ingest", {"records": rows})
    assert status == 200
    service.handle("POST", "/advance", {"t": 6 * TPQ})
    yield service
    service.close()


def doom(service, shard=1):
    """Kill a worker and trip its (zero) restart budget via one query."""
    service.cube.kill_worker(shard)
    status, body = service.handle(
        "POST", "/query", {"op": "change_exceptions", "layer": "o"}
    )
    return status, body


class TestProbes:
    def test_healthy_fleet_probes(self, fragile):
        status, body = fragile.handle("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert [s["state"] for s in body["shards"]] == [
            "healthy",
            "healthy",
        ]
        status, body = fragile.handle("GET", "/readyz")
        assert (status, body["ready"]) == (200, True)
        assert body["dead_shards"] == []

    def test_budget_exhaustion_flips_readyz(self, fragile):
        """Satellite contract: kill → exhausted budget → sticky-dead is
        visible at the HTTP layer, and queries keep answering 200."""
        status, body = doom(fragile)
        assert status == 200  # the query itself: degraded, not failed
        status, body = fragile.handle("GET", "/healthz")
        assert status == 200  # liveness never flips
        assert body["status"] == "degraded"
        assert body["shards"][1]["state"] == "dead"
        assert "restart budget" in body["shards"][1]["reason"]
        status, body = fragile.handle("GET", "/readyz")
        assert status == 503
        assert body["ready"] is False
        assert body["dead_shards"] == [1]

    def test_readyz_recovers_when_budget_allows(
        self, layers, policy, tmp_path
    ):
        cube = ShardedStreamCube(
            layers,
            policy,
            n_shards=2,
            ticks_per_quarter=TPQ,
            wal=QuarterWAL(tmp_path / "cube.wal"),
            backend=ClusterConfig(backend="process", max_restarts=2),
        )
        service = StreamCubeService(
            cube, QueryRouter(cube, window_quarters=4)
        )
        try:
            rows = [
                {"values": list(r.values), "t": r.t, "z": r.z}
                for r in workload(3)
            ]
            service.handle("POST", "/ingest", {"records": rows})
            service.handle("POST", "/advance", {"t": 6 * TPQ})
            cube.kill_worker(1)
            # A crashed-but-revivable shard does not fail readiness …
            status, _ = service.handle("GET", "/readyz")
            assert status == 200
            # … and the next query quietly revives it.
            status, body = service.handle(
                "POST", "/query", {"op": "change_exceptions"}
            )
            assert status == 200
            assert "degraded" not in body
            assert cube.health()[1]["state"] == "healthy"
        finally:
            service.close()


class TestDegradedQueries:
    def test_query_returns_200_with_degraded_block(self, fragile):
        status, body = doom(fragile)
        assert status == 200
        block = body["degraded"]
        assert [row["shard"] for row in block["missing"]] == [1]
        assert block["missing"][0]["state"] == "dead"
        assert "restart budget" in block["missing"][0]["reason"]
        assert block["staleness_bound"] == 6

    def test_repeat_queries_stay_200(self, fragile):
        doom(fragile)
        for _ in range(3):
            status, body = fragile.handle(
                "POST",
                "/query",
                {"op": "cell", "coord": [1, 1], "values": [0, 0]},
            )
            assert status == 200
            assert body["degraded"]["missing"][0]["shard"] == 1

    def test_cache_served_answers_carry_the_block(self, fragile):
        spec = {"op": "cell", "coord": [1, 1], "values": [0, 0]}
        doom(fragile)
        first = fragile.handle("POST", "/query", spec)
        second = fragile.handle("POST", "/query", spec)  # cache hit
        assert first[0] == second[0] == 200
        assert (
            first[1]["degraded"]["missing"]
            == second[1]["degraded"]["missing"]
        )
        hits = fragile.router.stats()["cache_hits"]
        assert hits >= 1

    def test_healthy_responses_have_no_block(self, fragile):
        status, body = fragile.handle(
            "POST",
            "/query",
            {"op": "cell", "coord": [1, 1], "values": [0, 0]},
        )
        assert status == 200
        assert "degraded" not in body

    def test_batch_queries_degrade_too(self, fragile):
        doom(fragile)
        status, body = fragile.handle(
            "POST",
            "/query",
            {
                "queries": [
                    {"op": "cell", "coord": [1, 1], "values": [0, 0]},
                    {"op": "top_slopes", "coord": [1, 1], "k": 2},
                ]
            },
        )
        assert status == 200
        assert body["count"] == 2
        assert body["degraded"]["missing"][0]["shard"] == 1


class TestManifestChecksum:
    def snapshot(self, layers, policy, tmp_path):
        cube = ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        )
        try:
            cube.ingest_batch(workload(5))
            cube.advance_to(6 * TPQ)
            cube.snapshot(tmp_path / "snap")
        finally:
            cube.close()
        return tmp_path / "snap"

    def test_tampered_manifest_refuses_restore(
        self, layers, policy, tmp_path
    ):
        snap = self.snapshot(layers, policy, tmp_path)
        manifest_path = snap / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["current_quarter"] = 2  # rot one field, keep old checksum
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(CorruptionError, match="failed its checksum"):
            ShardedStreamCube.read_manifest(snap)

    def test_checksum_absent_is_accepted(self, layers, policy, tmp_path):
        """Manifests written before the checksum existed keep restoring."""
        snap = self.snapshot(layers, policy, tmp_path)
        manifest_path = snap / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        del payload["checksum"]
        manifest_path.write_text(json.dumps(payload))
        manifest = ShardedStreamCube.read_manifest(snap)
        assert manifest["n_shards"] == 2

    def test_written_manifest_checksum_verifies(
        self, layers, policy, tmp_path
    ):
        snap = self.snapshot(layers, policy, tmp_path)
        payload = json.loads((snap / "manifest.json").read_text())
        assert payload["checksum"] == payload_checksum(payload)
