"""Shared fixtures for the sharded-service tests: schemas and workloads."""

from __future__ import annotations

import random

import pytest

from repro.cube.layers import CriticalLayers
from repro.cubing.policy import GlobalSlopeThreshold
from repro.stream.generator import DatasetSpec
from repro.stream.records import StreamRecord

TPQ = 4  # small quarters keep the tests fast


@pytest.fixture
def layers() -> CriticalLayers:
    """A D2L2C3 fanout schema (9 leaves per dimension)."""
    return DatasetSpec(2, 2, 3, 1).build_layers()


@pytest.fixture
def policy() -> GlobalSlopeThreshold:
    return GlobalSlopeThreshold(0.1)


def workload(
    seed: int,
    quarters: int = 6,
    per_tick: int = 12,
    leaf_card: int = 9,
    n_dims: int = 2,
) -> list[StreamRecord]:
    """A quarter-ordered random workload with realistic irregularities.

    Ticks inside each quarter are shuffled (the ordering contract only
    constrains quarters), some quarters are quiet for most cells, and cells
    appear late — everything the zero-backfill and alignment logic must
    survive.
    """
    rng = random.Random(seed)
    records: list[StreamRecord] = []
    for quarter in range(quarters):
        quarter_records: list[StreamRecord] = []
        for tick in range(quarter * TPQ, (quarter + 1) * TPQ):
            for _ in range(rng.randrange(per_tick // 2, per_tick + 1)):
                values = tuple(
                    rng.randrange(leaf_card) for _ in range(n_dims)
                )
                quarter_records.append(
                    StreamRecord(values, tick, rng.uniform(-1.0, 5.0))
                )
        # Within-quarter shuffle: legal, and exercises order-free sums.
        rng.shuffle(quarter_records)
        records.extend(quarter_records)
    return records
