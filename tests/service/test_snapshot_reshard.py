"""Cube snapshots and online resharding: exact across any shard count.

The elasticity contract: ``snapshot(dir)`` / ``restore(dir)`` round-trips a
sharded cube bit-identically (mid-quarter included), and re-partitioning —
``reshard(j)`` in memory or ``restore(dir, n_shards=j)`` from disk — moves
every cell's exact state to its new owner, so windows, refreshes, and
exception sets are invariant across k -> j for any k, j.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CodecError, SchemaError
from repro.service.sharding import ShardedStreamCube
from repro.stream.records import StreamRecord
from repro.stream.wal import QuarterWAL

from tests.service.conftest import TPQ, workload

SHARD_COUNTS = (1, 2, 7)
END = 6 * TPQ


def loaded_cube(layers, policy, records, k, advance=True):
    cube = ShardedStreamCube(layers, policy, n_shards=k, ticks_per_quarter=TPQ)
    cube.ingest_batch(records)
    if advance:
        cube.advance_to(END)
    return cube


def assert_cubes_equal(a: ShardedStreamCube, b: ShardedStreamCube) -> None:
    assert a.current_quarter == b.current_quarter
    assert a.records_ingested == b.records_ingested
    assert a.tracked_cells == b.tracked_cells
    assert a.window_isbs(0, END - 1) == b.window_isbs(0, END - 1)
    assert a.m_cells(4) == b.m_cells(4)
    ra, rb = a.refresh(4), b.refresh(4)
    assert ra.o_layer_exceptions() == rb.o_layer_exceptions()
    assert ra.retained_exceptions == rb.retained_exceptions
    assert a.change_exceptions() == b.change_exceptions()
    assert a.o_layer_change_exceptions() == b.o_layer_change_exceptions()


class TestSnapshotRestore:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_round_trip_bit_identical(self, tmp_path, layers, policy, k):
        with loaded_cube(layers, policy, workload(3), k) as cube:
            manifest = cube.snapshot(tmp_path)
            assert manifest["n_shards"] == k
            restored = ShardedStreamCube.restore(tmp_path, layers, policy)
            with restored:
                assert restored.n_shards == k
                assert_cubes_equal(cube, restored)

    def test_mid_quarter_snapshot_keeps_accumulators(
        self, tmp_path, layers, policy
    ):
        records = workload(5)
        split = len(records) // 2
        with loaded_cube(
            layers, policy, records[:split], 3, advance=False
        ) as cube:
            cube.snapshot(tmp_path)
            with ShardedStreamCube.restore(tmp_path, layers, policy) as restored:
                # Continue both with the same tail: identical futures.
                cube.ingest_batch(records[split:])
                cube.advance_to(END)
                restored.ingest_batch(records[split:])
                restored.advance_to(END)
                assert_cubes_equal(cube, restored)

    def test_snapshot_cleans_up_stale_generations(
        self, tmp_path, layers, policy
    ):
        records = workload(7)
        split = len(records) // 2
        with loaded_cube(
            layers, policy, records[:split], 2, advance=False
        ) as cube:
            cube.snapshot(tmp_path)
            first = set(p.name for p in tmp_path.glob("shard-*.json"))
            cube.ingest_batch(records[split:])
            cube.advance_to(END)
            cube.snapshot(tmp_path)
            second = set(p.name for p in tmp_path.glob("shard-*.json"))
            assert len(second) == 2
            assert first.isdisjoint(second)  # old generation removed

    def test_snapshots_of_identical_counters_get_distinct_generations(
        self, tmp_path, layers, policy
    ):
        """prune_idle changes state the counters cannot see; the generation
        tag must still advance so the previous snapshot's files survive."""
        cube = ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        )
        with cube:
            idle, active = (8, 8), (0, 0)
            cube.ingest(StreamRecord(idle, 1, 1.0))
            for q in range(8):
                cube.ingest(StreamRecord(active, q * TPQ, 2.0))
            cube.advance_to(8 * TPQ)
            cube.snapshot(tmp_path)
            first = {p.name for p in tmp_path.glob("shard-*.json")}
            cube.prune_idle(4)  # no counter moves, but state changed
            cube.snapshot(tmp_path)
            second = {p.name for p in tmp_path.glob("shard-*.json")}
            assert first.isdisjoint(second)
            with ShardedStreamCube.restore(tmp_path, layers, policy) as back:
                assert back.tracked_cells == 1  # the pruned snapshot won

    def test_generation_counter_survives_restart(self, tmp_path, layers, policy):
        """A restored cube writing into the same directory must not reuse
        generation tags an earlier process left there."""
        with loaded_cube(layers, policy, workload(31), 2) as cube:
            cube.snapshot(tmp_path)
            first = {p.name for p in tmp_path.glob("shard-*.json")}
        with ShardedStreamCube.restore(tmp_path, layers, policy) as back:
            back.prune_idle(4)
            back.snapshot(tmp_path)
            second = {p.name for p in tmp_path.glob("shard-*.json")}
            assert first.isdisjoint(second)

    def test_bad_batch_leaves_cube_and_wal_untouched(
        self, tmp_path, layers, policy
    ):
        from repro.errors import HierarchyError

        wal = QuarterWAL(tmp_path / "wal.jsonl")
        cube = ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ, wal=wal
        )
        with cube:
            good = workload(37)
            cube.ingest_batch(good)
            seq = wal.last_seq
            bad = StreamRecord((99, 99), 6 * TPQ, 1.0)
            with pytest.raises(HierarchyError):
                cube.ingest_batch([good[-1], bad])
            with pytest.raises(HierarchyError):
                cube.ingest(bad)
            assert wal.last_seq == seq  # nothing journaled
            assert cube.records_ingested == len(good)
            cube.advance_to(6 * TPQ)
            # Replay of the journal reproduces the cube cleanly.
            recovered = ShardedStreamCube(
                layers, policy, n_shards=3, ticks_per_quarter=TPQ
            )
            with recovered:
                QuarterWAL(tmp_path / "wal.jsonl").replay(recovered)
                assert recovered.window_isbs(0, 6 * TPQ - 1) == (
                    cube.window_isbs(0, 6 * TPQ - 1)
                )

    def test_restore_under_wrong_schema_raises(self, tmp_path, layers, policy):
        from repro.stream.generator import DatasetSpec

        with loaded_cube(layers, policy, workload(9), 2) as cube:
            cube.snapshot(tmp_path)
        other = DatasetSpec(3, 2, 3, 1).build_layers()
        with pytest.raises(SchemaError):
            ShardedStreamCube.restore(tmp_path, other, policy)

    def test_missing_manifest_raises(self, tmp_path, layers, policy):
        with pytest.raises(CodecError, match="manifest"):
            ShardedStreamCube.restore(tmp_path, layers, policy)

    def test_missing_shard_file_raises(self, tmp_path, layers, policy):
        with loaded_cube(layers, policy, workload(9), 2) as cube:
            cube.snapshot(tmp_path)
        victim = next(tmp_path.glob("shard-01-*.json"))
        victim.unlink()
        with pytest.raises(CodecError, match="missing file"):
            ShardedStreamCube.restore(tmp_path, layers, policy)

    def test_unsupported_version_raises(self, tmp_path, layers, policy):
        with loaded_cube(layers, policy, workload(9), 1) as cube:
            cube.snapshot(tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        manifest["version"] = 99
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CodecError, match="version"):
            ShardedStreamCube.restore(tmp_path, layers, policy)

    def test_manifest_records_app_config(self, tmp_path, layers, policy):
        with loaded_cube(layers, policy, workload(9), 2) as cube:
            cube.snapshot(tmp_path, extra={"dims": 2, "threshold": 0.1})
        manifest = ShardedStreamCube.read_manifest(tmp_path)
        assert manifest["app"] == {"dims": 2, "threshold": 0.1}

    def test_prune_composes_with_restore(self, tmp_path, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ
        )
        with cube:
            idle, active = (8, 8), (0, 0)
            cube.ingest(StreamRecord(idle, 1, 1.0))
            for q in range(8):
                cube.ingest(StreamRecord(active, q * TPQ, 2.0))
            cube.advance_to(8 * TPQ)
            assert cube.prune_idle(4) == 1
            cube.snapshot(tmp_path)
            with ShardedStreamCube.restore(tmp_path, layers, policy) as back:
                assert back.tracked_cells == cube.tracked_cells
                assert back.prune_idle(4) == 0  # pruned cells stayed pruned
            # ... and pruning survives a reshard the same way.
            with cube.reshard(5) as wide:
                assert wide.tracked_cells == cube.tracked_cells
                assert wide.prune_idle(4) == 0


class TestReshard:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("j", SHARD_COUNTS)
    def test_reshard_is_exact(self, layers, policy, k, j):
        with loaded_cube(layers, policy, workload(11), k) as cube:
            with cube.reshard(j) as resharded:
                assert resharded.n_shards == j
                assert_cubes_equal(cube, resharded)

    @pytest.mark.parametrize("k,j", [(1, 2), (2, 7), (7, 2)])
    def test_reshard_mid_quarter_then_continue(self, layers, policy, k, j):
        """Resharding between batches must not disturb the future stream."""
        records = workload(13)
        split = len(records) * 2 // 3
        with loaded_cube(layers, policy, records, k) as uninterrupted:
            with loaded_cube(
                layers, policy, records[:split], k, advance=False
            ) as before:
                resharded = before.reshard(j)
            with resharded:
                resharded.ingest_batch(records[split:])
                resharded.advance_to(END)
                assert_cubes_equal(uninterrupted, resharded)

    @pytest.mark.parametrize("j", SHARD_COUNTS)
    def test_restore_with_override_equals_reshard(
        self, tmp_path, layers, policy, j
    ):
        with loaded_cube(layers, policy, workload(17), 2) as cube:
            cube.snapshot(tmp_path)
            restored = ShardedStreamCube.restore(
                tmp_path, layers, policy, n_shards=j
            )
            with restored:
                assert restored.n_shards == j
                assert_cubes_equal(cube, restored)

    def test_reshard_partitions_by_stable_hash(self, layers, policy):
        from repro.service.sharding import stable_shard_index

        with loaded_cube(layers, policy, workload(19), 3) as cube:
            with cube.reshard(5) as resharded:
                for i, shard in enumerate(resharded.shards):
                    for key in shard._cells:
                        assert stable_shard_index(key, 5) == i

    def test_reshard_rejects_bad_count(self, layers, policy):
        from repro.errors import ServiceError

        with loaded_cube(layers, policy, workload(19), 2) as cube:
            with pytest.raises(ServiceError, match="n_shards"):
                cube.reshard(0)


class TestWalSnapshotInterplay:
    def test_snapshot_records_wal_seq_and_replay_completes(
        self, tmp_path, layers, policy
    ):
        records = workload(23)
        split = len(records) // 2
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        cube = ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ, wal=wal
        )
        with cube:
            cube.ingest_batch(records[:split])
            manifest = cube.snapshot(tmp_path)
            assert manifest["wal_seq"] == wal.last_seq
            cube.ingest_batch(records[split:])
            cube.advance_to(END)
            # Crash: recover from snapshot + journal tail.
            recovery_wal = QuarterWAL(tmp_path / "wal.jsonl")
            restored = ShardedStreamCube.restore(
                tmp_path, layers, policy, wal=recovery_wal
            )
            with restored:
                replayed = recovery_wal.replay(
                    restored, after_seq=manifest["wal_seq"]
                )
                assert replayed == 2  # post-snapshot batch + advance
                assert_cubes_equal(cube, restored)

    def test_recovery_into_different_shard_count(
        self, tmp_path, layers, policy
    ):
        """Crash recovery and resharding compose: restore k=3 as j=7."""
        records = workload(29)
        split = len(records) // 3
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        cube = ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ, wal=wal
        )
        with cube:
            cube.ingest_batch(records[:split])
            manifest = cube.snapshot(tmp_path)
            cube.ingest_batch(records[split:])
            cube.advance_to(END)
            restored = ShardedStreamCube.restore(
                tmp_path, layers, policy, n_shards=7
            )
            with restored:
                QuarterWAL(tmp_path / "wal.jsonl").replay(
                    restored, after_seq=manifest["wal_seq"]
                )
                assert restored.n_shards == 7
                assert_cubes_equal(cube, restored)
