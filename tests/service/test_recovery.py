"""Crash recovery through the service and CLI layers.

Covers the acceptance path end to end: a service with ``--snapshot-dir``
journals every batch, ``POST /admin/snapshot`` checkpoints on demand, the
periodic trigger checkpoints on a quarter cadence, and after a simulated
crash — between quarters or mid-quarter — ``build_service(--restore DIR)``
serves queries identical to an uninterrupted service.  One subprocess test
drives the real ``python -m repro serve`` process through SIGTERM and
asserts the graceful-shutdown final snapshot restores.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.__main__ import build_service
from repro.service.http import StreamCubeService
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube

from tests.service.conftest import TPQ, workload

REPO_ROOT = Path(__file__).resolve().parents[2]


def serve_args(tmp_path, **overrides) -> argparse.Namespace:
    """The ``python -m repro serve`` argument namespace the CLI would build."""
    defaults = dict(
        shards=2,
        port=0,
        host="127.0.0.1",
        dims=2,
        levels=2,
        fanout=3,
        threshold=0.1,
        ticks_per_quarter=TPQ,
        window=4,
        restore=None,
        snapshot_dir=str(tmp_path / "snaps"),
        snapshot_every_quarters=0,
        storage_dir=None,
        storage_backend="file",
        hot_quarters=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


def rows(records) -> list[dict]:
    return [{"values": list(r.values), "t": r.t, "z": r.z} for r in records]


def ok(service: StreamCubeService, method: str, path: str, payload=None):
    status, body = service.handle(method, path, payload)
    assert status == 200, body
    return body


QUERIES = [
    {"op": "cell", "coord": [1, 1], "values": [0, 0]},
    {"op": "watch_list"},
    {"op": "observation_deck"},
    {"op": "top_slopes", "coord": [1, 1], "k": 5},
    {"op": "exceptions"},
]


def query_bodies(service: StreamCubeService) -> list[dict]:
    return [ok(service, "POST", "/query", q) for q in QUERIES]


class TestAdminSnapshot:
    def test_snapshot_route_writes_and_compacts(self, tmp_path):
        service = build_service(serve_args(tmp_path))
        try:
            ok(service, "POST", "/ingest", {"records": rows(workload(3))})
            body = ok(service, "POST", "/admin/snapshot")
            assert body["shards"] == 2
            assert Path(body["path"]).joinpath("manifest.json").exists()
            stats = ok(service, "GET", "/stats")["durability"]
            # One bootstrap snapshot at build time plus the admin one.
            assert stats["snapshots_written"] == 2
            assert stats["wal_seq"] == 1
            # The journal compacted through the snapshot: nothing to replay.
            from repro.stream.wal import QuarterWAL

            wal = QuarterWAL(Path(body["path"]) / "wal.jsonl")
            assert list(wal.entries(after_seq=body["wal_seq"])) == []
        finally:
            service.close()

    def test_snapshot_route_without_dir_is_400(self, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        )
        service = StreamCubeService(cube, QueryRouter(cube))
        try:
            status, body = service.handle("POST", "/admin/snapshot")
            assert status == 400
            assert body["type"] == "ServiceError"
            assert "snapshot" in body["error"]
        finally:
            service.close()

    def test_periodic_snapshots_every_k_quarters(self, tmp_path):
        service = build_service(
            serve_args(tmp_path, snapshot_every_quarters=2)
        )
        try:
            records = workload(5)
            for record in records:  # tiny batches: cross quarters gradually
                ok(
                    service,
                    "POST",
                    "/ingest",
                    {"records": rows([record])},
                )
            ok(service, "POST", "/advance", {"t": 6 * TPQ})
            stats = ok(service, "GET", "/stats")["durability"]
            # Bootstrap at quarter 0 + 6 quarters sealed at K=2 -> 3 more.
            assert stats["snapshots_written"] == 4
            assert stats["last_snapshot_quarter"] == 6
        finally:
            service.close()


class TestRestoreCLI:
    @pytest.mark.parametrize("kill", ["between_quarters", "mid_quarter"])
    def test_restore_serves_identical_queries_after_crash(
        self, tmp_path, kill
    ):
        records = workload(7)
        # Cut either exactly at a quarter boundary or mid-quarter.
        if kill == "between_quarters":
            cut = next(
                i
                for i, r in enumerate(records)
                if r.t // TPQ == 4
            )
        else:
            cut = next(
                i
                for i, r in enumerate(records)
                if r.t // TPQ == 4 and r.t % TPQ == 2
            )

        # The uninterrupted reference service.
        reference = build_service(
            serve_args(tmp_path, snapshot_dir=str(tmp_path / "ref"))
        )
        crashed = build_service(serve_args(tmp_path))
        try:
            ok(reference, "POST", "/ingest", {"records": rows(records)})
            ok(reference, "POST", "/advance", {"t": 6 * TPQ})

            ok(crashed, "POST", "/ingest", {"records": rows(records[:cut])})
            ok(crashed, "POST", "/admin/snapshot")
            # Everything after the snapshot lives only in the WAL.
            ok(crashed, "POST", "/ingest", {"records": rows(records[cut:])})
            ok(crashed, "POST", "/advance", {"t": 6 * TPQ})
        finally:
            # Simulated crash: the process dies without a final snapshot.
            crashed.cube.close()

        restored = build_service(
            serve_args(
                tmp_path,
                restore=str(tmp_path / "snaps"),
                shards=None,  # keep the snapshot's count
            )
        )
        try:
            assert restored.cube.current_quarter == 6
            assert (
                restored.cube.records_ingested
                == reference.cube.records_ingested
            )
            assert query_bodies(restored) == query_bodies(reference)
        finally:
            restored.close()
            reference.close()

    def test_restore_with_reshard_serves_identical_queries(self, tmp_path):
        records = workload(9)
        reference = build_service(
            serve_args(tmp_path, snapshot_dir=str(tmp_path / "ref"))
        )
        original = build_service(serve_args(tmp_path, shards=3))
        try:
            for service in (reference, original):
                ok(service, "POST", "/ingest", {"records": rows(records)})
                ok(service, "POST", "/advance", {"t": 6 * TPQ})
            ok(original, "POST", "/admin/snapshot")
        finally:
            original.cube.close()
        restored = build_service(
            serve_args(
                tmp_path, restore=str(tmp_path / "snaps"), shards=7
            )
        )
        try:
            assert restored.cube.n_shards == 7
            assert query_bodies(restored) == query_bodies(reference)
        finally:
            restored.close()
            reference.close()

    def test_fresh_start_refuses_dir_with_existing_snapshot(self, tmp_path):
        from repro.errors import ServiceError

        original = build_service(serve_args(tmp_path))
        original.close()  # bootstrap manifest now exists in snaps/
        with pytest.raises(ServiceError, match="already holds a snapshot"):
            build_service(serve_args(tmp_path))

    def test_crash_before_first_snapshot_recovers_from_wal_alone(
        self, tmp_path
    ):
        """A journal-only directory (no manifest) restores by full replay."""
        from repro.cubing.policy import GlobalSlopeThreshold
        from repro.stream.generator import DatasetSpec
        from repro.stream.wal import QuarterWAL

        records = workload(13)
        snaps = tmp_path / "onlywal"
        wal = QuarterWAL(snaps / "wal.jsonl")
        cube = ShardedStreamCube(
            DatasetSpec(2, 2, 3, 1).build_layers(),  # the serve_args schema
            GlobalSlopeThreshold(0.1),
            n_shards=2,
            ticks_per_quarter=TPQ,
            wal=wal,
        )
        with cube:
            cube.ingest_batch(records)
            cube.advance_to(6 * TPQ)  # crash: journaled but never snapshotted
        wal.close()
        restored = build_service(
            serve_args(
                tmp_path,
                restore=str(snaps),
                snapshot_dir=str(snaps),
            )
        )
        try:
            assert restored.cube.records_ingested == len(records)
            assert restored.cube.current_quarter == 6
        finally:
            restored.close()

    def test_restore_uses_recorded_app_config(self, tmp_path):
        original = build_service(serve_args(tmp_path, dims=2, fanout=3))
        try:
            ok(original, "POST", "/ingest", {"records": rows(workload(3))})
            ok(original, "POST", "/admin/snapshot")
        finally:
            original.cube.close()
        # Deliberately wrong CLI flags: the manifest's app config wins.
        restored = build_service(
            serve_args(
                tmp_path,
                restore=str(tmp_path / "snaps"),
                dims=5,
                fanout=11,
                shards=None,
            )
        )
        try:
            assert restored.cube.layers.schema.n_dims == 2
            assert restored.app_config["fanout"] == 3
        finally:
            restored.close()


@pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or sys.platform == "win32",
    reason="POSIX signals required",
)
class TestGracefulShutdown:
    def test_sigterm_drains_and_snapshots(self, tmp_path):
        """The real process: serve, ingest, SIGTERM, restore the final
        snapshot."""
        port = _free_port()
        snaps = tmp_path / "snaps"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                str(port),
                "--shards",
                "2",
                "--dims",
                "2",
                "--levels",
                "2",
                "--fanout",
                "3",
                "--ticks-per-quarter",
                str(TPQ),
                "--snapshot-dir",
                str(snaps),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            _wait_for_port(port, proc)
            records = workload(11)
            _post(port, "/ingest", {"records": rows(records)})
            # Leave the stream mid-quarter: the final snapshot must carry
            # the unsealed accumulators too.
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=15)
            assert proc.returncode == 0, out
            assert "final snapshot" in out
            assert (snaps / "manifest.json").exists()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        restored = build_service(
            serve_args(tmp_path, restore=str(snaps), shards=None)
        )
        try:
            assert restored.cube.records_ingested == len(records)
            assert restored.cube.current_quarter == 5  # t up to 6*TPQ-1
        finally:
            restored.close()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for_port(port: int, proc: subprocess.Popen, timeout: float = 15.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if proc.poll() is not None:
            out, _ = proc.communicate()
            raise AssertionError(f"serve exited early:\n{out}")
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=0.2):
                return
        except OSError:
            time.sleep(0.05)
    raise AssertionError("serve did not start listening in time")


def _post(port: int, path: str, payload: dict) -> dict:
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=10) as response:
        return json.loads(response.read())
