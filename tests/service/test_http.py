"""The JSON service: dispatch-level tests plus one live-socket round trip."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.io import cells_from_payload, isb_from_dict
from repro.service.http import StreamCubeService, make_server
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.storage import StorageConfig

from tests.service.conftest import TPQ, workload


@pytest.fixture
def service(layers, policy):
    cube = ShardedStreamCube(
        layers, policy, n_shards=2, ticks_per_quarter=TPQ
    )
    service = StreamCubeService(cube, QueryRouter(cube, window_quarters=4))
    yield service
    service.close()


@pytest.fixture
def loaded(service):
    records = workload(3)
    rows = [
        {"values": list(r.values), "t": r.t, "z": r.z} for r in records
    ]
    status, _ = service.handle("POST", "/ingest", {"records": rows})
    assert status == 200
    service.handle("POST", "/advance", {"t": 6 * TPQ})
    return service


class TestDispatch:
    def test_health(self, loaded):
        status, body = loaded.handle("GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["shards"] == 2
        assert body["current_quarter"] == 6
        assert body["records_ingested"] > 0

    def test_stats(self, loaded):
        loaded.handle(
            "POST", "/query", {"op": "point", "coord": [1, 1], "values": [0, 0]}
        )
        status, body = loaded.handle("GET", "/stats")
        assert status == 200
        assert body["router"]["cache_misses"] >= 1
        assert len(body["shard_cells"]) == 2

    def test_point_round_trips_isb(self, loaded):
        status, body = loaded.handle(
            "POST", "/query", {"op": "point", "coord": [1, 1], "values": [0, 0]}
        )
        assert status == 200
        isb = isb_from_dict(body["isb"])
        assert isb == loaded.router.point((1, 1), (0, 0))

    def test_slice_and_exceptions(self, loaded):
        status, body = loaded.handle(
            "POST",
            "/query",
            {"op": "slice", "coord": [1, 1], "fixed": {"d0": 0}},
        )
        assert status == 200
        cells = cells_from_payload(body["cells"])
        assert cells == loaded.router.slice((1, 1), {"d0": 0})

        status, body = loaded.handle("POST", "/query", {"op": "exceptions"})
        assert status == 200
        coords = {tuple(entry["coord"]) for entry in body["cuboids"]}
        assert loaded.cube.layers.o_coord in coords

    def test_change_exceptions(self, loaded):
        status, body = loaded.handle(
            "POST", "/query", {"op": "change_exceptions", "layer": "o"}
        )
        assert status == 200
        assert cells_from_payload(body["cells"]) == (
            loaded.router.change_exceptions(1, "o")
        )

    def test_domain_error_maps_to_400(self, loaded):
        status, body = loaded.handle(
            "POST", "/query", {"op": "point", "coord": [9, 9], "values": [0, 0]}
        )
        assert status == 400
        assert "error" in body and body["type"]

    def test_unknown_op_and_route(self, loaded):
        status, body = loaded.handle("POST", "/query", {"op": "magic"})
        assert status == 400
        status, body = loaded.handle("GET", "/nope")
        assert status == 404

    def test_malformed_query_fields_map_to_400(self, loaded):
        """Missing or mistyped /query fields are a client error, never an
        unanswered (dropped) request."""
        for payload in (
            {"op": "point"},  # missing coord/values
            {"op": "point", "coord": [1, 1], "values": [0, 0], "window": "x"},
            {"op": "top_slopes", "coord": [1, 1], "k": "many"},
            {"op": "roll_up", "coord": [1, 1], "values": [0, 0]},  # no dim
        ):
            status, body = loaded.handle("POST", "/query", payload)
            assert status == 400, payload
            assert "error" in body, payload

    def test_malformed_ingest_rejected(self, service):
        status, body = service.handle("POST", "/ingest", {"records": "nope"})
        assert status == 400
        status, body = service.handle(
            "POST", "/ingest", {"records": [{"values": [0, 0]}]}
        )
        assert status == 400
        assert service.cube.records_ingested == 0


class TestBatchQueries:
    def test_batch_returns_per_spec_results_and_errors(self, loaded):
        status, body = loaded.handle(
            "POST",
            "/query",
            {
                "queries": [
                    {"op": "watch_list"},
                    {"op": "top_slopes", "coord": [1, 1], "k": 3},
                    {"op": "cell", "coord": [9, 9], "values": [0, 0]},
                ]
            },
        )
        assert status == 200
        assert body["count"] == 3
        watch, top, bad = body["results"]
        assert watch["ok"] is True
        assert cells_from_payload(watch["cells"]) == loaded.router.watch_list()
        assert top["ok"] is True
        assert len(top["cells"]) <= 3
        assert bad["ok"] is False
        assert bad["type"] == "SchemaError"
        assert bad["error"]

    def test_batch_shares_one_view_refresh(self, loaded):
        before = loaded.router.refreshes
        status, _ = loaded.handle(
            "POST",
            "/query",
            {
                "queries": [
                    {"op": "cell", "coord": [1, 1], "values": [0, 0]},
                    {"op": "slice", "coord": [1, 1], "fixed": {"d0": 0}},
                    {"op": "observation_deck"},
                    {"op": "siblings", "coord": [2, 2], "values": [0, 0],
                     "dim": "d0"},
                ]
            },
        )
        assert status == 200
        assert loaded.router.refreshes == before + 1

    def test_batch_matches_single_requests(self, loaded):
        single = [
            loaded.handle("POST", "/query", q)[1]
            for q in (
                {"op": "cell", "coord": [1, 1], "values": [0, 0]},
                {"op": "watch_list"},
            )
        ]
        status, body = loaded.handle(
            "POST",
            "/query",
            {"queries": [
                {"op": "cell", "coord": [1, 1], "values": [0, 0]},
                {"op": "watch_list"},
            ]},
        )
        assert status == 200
        for got, expected in zip(body["results"], single):
            assert {k: v for k, v in got.items() if k != "ok"} == expected

    def test_batch_requires_a_list(self, loaded):
        status, body = loaded.handle("POST", "/query", {"queries": "nope"})
        assert status == 400
        assert body["type"] == "ServiceError"

    def test_legacy_point_alias_matches_cell(self, loaded):
        _, old = loaded.handle(
            "POST", "/query", {"op": "point", "coord": [1, 1], "values": [0, 0]}
        )
        _, new = loaded.handle(
            "POST", "/query", {"op": "cell", "coord": [1, 1], "values": [0, 0]}
        )
        # Same answer; the legacy op name is echoed back to legacy clients.
        assert old["isb"] == new["isb"]
        assert old["op"] == "point"
        assert new["op"] == "cell"


@pytest.fixture
def tiered_service(layers, policy, tmp_path):
    cube = ShardedStreamCube(
        layers,
        policy,
        n_shards=2,
        ticks_per_quarter=TPQ,
        storage=StorageConfig(
            root=tmp_path / "cold", backend="file", hot_quarters=1
        ),
    )
    service = StreamCubeService(
        cube,
        QueryRouter(cube, window_quarters=4),
        snapshot_dir=tmp_path / "snapshots",
    )
    rows = [
        {"values": list(r.values), "t": r.t, "z": r.z} for r in workload(3)
    ]
    status, _ = service.handle("POST", "/ingest", {"records": rows})
    assert status == 200
    service.handle("POST", "/advance", {"t": 6 * TPQ})
    yield service
    service.close()


class TestStorageStats:
    def test_storage_block_is_null_without_tiered_storage(self, loaded):
        status, body = loaded.handle("GET", "/stats")
        assert status == 200
        assert body["storage"] is None

    def test_storage_block_reports_the_cold_tier(self, tiered_service):
        status, body = tiered_service.handle("GET", "/stats")
        assert status == 200
        storage = body["storage"]
        assert storage["backend"] == "file"
        assert storage["generation"] == 1
        assert storage["hot_quarters"] == 1
        assert storage["pages"] > 0
        assert storage["rows"] > 0
        assert storage["bytes_on_disk"] > 0
        assert storage["pages_spilled"] > 0
        assert storage["cold_slots"] > 0
        assert len(storage["shards"]) == 2
        assert storage["pages"] == sum(
            shard["pages"] for shard in storage["shards"]
        )

    def test_cold_faults_show_up_after_a_deep_window(self, tiered_service):
        _, before = tiered_service.handle("GET", "/stats")
        # A five-quarter window starts mid-hour, so its decomposition needs
        # quarter slots that were demoted (the resident hour slots only
        # cover hour-aligned prefixes).
        status, _ = tiered_service.handle(
            "POST", "/query", {"op": "watch_list", "window": 5}
        )
        assert status == 200
        _, after = tiered_service.handle("GET", "/stats")
        assert (
            after["storage"]["cold_faults"]
            > before["storage"]["cold_faults"]
        )

    def test_admin_snapshot_compacts_the_cold_tier(self, tiered_service):
        status, body = tiered_service.handle("POST", "/admin/snapshot", {})
        assert status == 200
        assert body["shards"] == 2
        import json as jsonlib

        manifest = jsonlib.loads(
            (tiered_service.snapshot_dir / "manifest.json").read_text()
        )
        assert manifest["storage"]["backend"] == "file"
        assert manifest["storage"]["hot_quarters"] == 1
        # The stores survive checkpoint compaction and keep answering.
        status, body = tiered_service.handle("GET", "/stats")
        assert status == 200
        assert body["storage"]["pages"] > 0


class TestStatsEndpoint:
    def test_stats_expose_cache_views_and_batches(self, loaded):
        loaded.handle(
            "POST", "/query", {"op": "cell", "coord": [1, 1], "values": [0, 0]}
        )
        loaded.handle(
            "POST", "/query", {"op": "cell", "coord": [1, 1], "values": [0, 0]}
        )
        loaded.handle("POST", "/query", {"queries": [{"op": "watch_list"}]})
        status, body = loaded.handle("GET", "/stats")
        assert status == 200
        router = body["router"]
        assert router["cache_hits"] >= 1
        assert router["cache_misses"] >= 1
        assert router["cache_entries"] >= 1
        assert router["cache_capacity"] >= router["cache_entries"]
        assert router["views"] == 1
        assert router["batches"] == 1
        # Three requests, but the repeated cell query is a cache hit and
        # hits are not executions: only the first cell and the batched
        # watch_list actually ran.
        assert router["specs_executed"] == 2
        assert router["single_flight_fallbacks"] == 0
        assert len(body["shard_cells"]) == 2
        assert sum(body["shard_cells"]) > 0

    def test_stats_expose_inproc_parallel_block(self, loaded):
        status, body = loaded.handle("GET", "/stats")
        assert status == 200
        parallel = body["parallel"]
        assert parallel["backend"] == "inproc"
        assert parallel["workers"] == 2
        assert parallel["pids"] == []
        assert parallel["restarts"] == 0
        assert parallel["rpc_round_trips"] == 0
        assert parallel["queue_high_water"] == [0, 0]

    def test_stats_expose_process_parallel_block(self, layers, policy):
        cube = ShardedStreamCube(
            layers,
            policy,
            n_shards=2,
            ticks_per_quarter=TPQ,
            backend="process",
        )
        try:
            service = StreamCubeService(
                cube, QueryRouter(cube, window_quarters=4)
            )
            records = workload(3, quarters=2)
            rows = [
                {"values": list(r.values), "t": r.t, "z": r.z}
                for r in records
            ]
            status, _ = service.handle(
                "POST", "/ingest", {"records": rows}
            )
            assert status == 200
            status, body = service.handle("GET", "/stats")
            assert status == 200
            parallel = body["parallel"]
            assert parallel["backend"] == "process"
            assert parallel["workers"] == 2
            assert len(parallel["pids"]) == 2
            assert all(
                isinstance(pid, int) for pid in parallel["pids"]
            )
            assert parallel["rpc_round_trips"] > 0
            assert parallel["restarts"] == 0
        finally:
            cube.close()


class TestSubscriptionEndpoints:
    def _seal_next(self, service):
        quarter = service.cube.current_quarter
        t0 = quarter * TPQ
        rows = [
            {"values": [0, 0], "t": t, "z": 5.0 + t}
            for t in range(t0, t0 + TPQ)
        ]
        status, _ = service.handle("POST", "/ingest", {"records": rows})
        assert status == 200
        status, _ = service.handle(
            "POST", "/advance", {"t": (quarter + 1) * TPQ}
        )
        assert status == 200
        assert service.subscriptions.flush(10.0)

    def test_subscribe_list_update_unsubscribe(self, loaded):
        # Drain the dispatch round triggered by the fixture's own seals:
        # a subscription registered while that round is still pending
        # legitimately rides along and would add an extra update here.
        assert loaded.subscriptions.flush(10.0)
        status, body = loaded.handle("POST", "/subscribe", {"watch": True})
        assert status == 200
        sub_id = body["subscription"]

        status, body = loaded.handle("GET", "/subscriptions")
        assert status == 200
        assert [s["id"] for s in body["subscriptions"]] == [sub_id]
        assert body["subscriptions"][0]["op"] == "watch_list"
        assert body["subscriptions"][0]["every_k_quarters"] == 1

        self._seal_next(loaded)
        # Query-string form, exactly as a long-polling client sends it.
        status, body = loaded.handle(
            "GET", f"/updates?subscription={sub_id}&since=0&timeout=0"
        )
        assert status == 200
        assert len(body["updates"]) == 1
        update = body["updates"][0]
        assert update["seq"] == 1
        assert update["quarter"] == loaded.cube.current_quarter
        assert update["epoch"] == list(loaded.cube.epoch_vector())
        assert "cells" in update["result"]

        # Acking via since= filters the already-seen update out.
        status, body = loaded.handle(
            "GET", f"/updates?subscription={sub_id}&since=1"
        )
        assert status == 200
        assert body["updates"] == [] and body["last_seq"] == 1

        status, body = loaded.handle("DELETE", f"/subscribe/{sub_id}")
        assert status == 200 and body == {"removed": sub_id}
        status, body = loaded.handle("DELETE", f"/subscribe/{sub_id}")
        assert status == 404

    def test_spec_subscription_payload(self, loaded):
        status, body = loaded.handle(
            "POST",
            "/subscribe",
            {
                "spec": {"op": "observation_deck"},
                "every_k_quarters": 2,
                "queue_limit": 3,
            },
        )
        assert status == 200
        described = loaded.handle("GET", "/subscriptions")[1][
            "subscriptions"
        ][0]
        assert described["op"] == "observation_deck"
        assert described["every_k_quarters"] == 2
        assert described["queue_limit"] == 3

    def test_updates_requires_a_known_subscription(self, loaded):
        status, body = loaded.handle("GET", "/updates")
        assert status == 400 and body["type"] == "ServiceError"
        status, body = loaded.handle(
            "GET", "/updates?subscription=sub-999"
        )
        assert status == 400 and "unknown subscription" in body["error"]

    def test_bad_subscribe_payloads_map_to_400(self, loaded):
        for payload in (
            {},
            {"watch": True, "every_seal": True, "every_k_quarters": 2},
            {"watch": True, "every_k_quarters": 0},
            {"watch": True, "queue_limit": 0},
            {"spec": {"op": "no_such_op"}},
        ):
            status, body = loaded.handle("POST", "/subscribe", payload)
            assert status == 400, payload
            assert "error" in body, payload

    def test_stats_expose_subscriptions_block(self, loaded):
        assert loaded.subscriptions.flush(10.0)
        status, body = loaded.handle("POST", "/subscribe", {"watch": True})
        assert status == 200
        self._seal_next(loaded)
        status, body = loaded.handle("GET", "/stats")
        assert status == 200
        subs = body["subscriptions"]
        assert subs["active"] == 1
        assert subs["created"] == 1
        assert subs["queued"] == 1
        assert subs["seals_signaled"] >= 1
        assert subs["updates_enqueued"] == 1
        assert subs["updates_dropped"] == 0


class TestLiveServer:
    def test_end_to_end_over_sockets(self, service):
        server = make_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{port}"

        def post(path, body):
            req = urllib.request.Request(
                base + path,
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req) as response:
                return json.loads(response.read())

        try:
            records = workload(3)
            rows = [
                {"values": list(r.values), "t": r.t, "z": r.z}
                for r in records
            ]
            assert post("/ingest", {"records": rows})["ingested"] == len(rows)
            assert post("/advance", {"t": 6 * TPQ})["current_quarter"] == 6

            body = post(
                "/query", {"op": "point", "coord": [1, 1], "values": [0, 0]}
            )
            assert isb_from_dict(body["isb"]) == service.router.point(
                (1, 1), (0, 0)
            )

            body = post("/query", {"op": "watch_list"})
            assert cells_from_payload(body["cells"]) == (
                service.router.watch_list()
            )

            with urllib.request.urlopen(base + "/health") as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post("/query", {"op": "magic"})
            assert excinfo.value.code == 400

            # The push surface over real sockets: subscribe, seal a
            # quarter, long-poll the update, unsubscribe via DELETE.
            assert service.subscriptions.flush(10.0)
            sub_id = post("/subscribe", {"watch": True})["subscription"]
            t0 = 6 * TPQ
            seal_rows = [
                {"values": [0, 0], "t": t, "z": 5.0} for t in range(t0, t0 + TPQ)
            ]
            post("/ingest", {"records": seal_rows})
            post("/advance", {"t": 7 * TPQ})
            with urllib.request.urlopen(
                f"{base}/updates?subscription={sub_id}&since=0&timeout=5"
            ) as response:
                updates = json.loads(response.read())["updates"]
            assert len(updates) == 1 and updates[0]["seq"] == 1
            delete = urllib.request.Request(
                f"{base}/subscribe/{sub_id}", method="DELETE"
            )
            with urllib.request.urlopen(delete) as response:
                assert json.loads(response.read()) == {"removed": sub_id}
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(delete)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
