"""Cube lifecycle: ``close()`` is idempotent and failed inits leak nothing.

A cube owns real resources now — worker processes, cold-store handles,
thread pools — so closing twice, closing a half-built cube, and the
context-manager path all need pinning down.
"""

from __future__ import annotations

import sqlite3

import pytest

import repro.service.sharding as sharding
from repro.errors import ServiceError, StreamError
from repro.service.sharding import ShardedStreamCube
from repro.storage import StorageConfig

from tests.service.conftest import TPQ, workload


class TestCloseIdempotence:
    def test_double_close_inproc(self, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        )
        cube.ingest_batch(workload(1, quarters=1))
        cube.close()
        cube.close()  # second close is a no-op, not an error

    def test_double_close_process(self, layers, policy):
        cube = ShardedStreamCube(
            layers,
            policy,
            n_shards=2,
            ticks_per_quarter=TPQ,
            backend="process",
        )
        cube.ingest_batch(workload(1, quarters=1))
        cube.close()
        cube.close()

    def test_context_manager_closes(self, layers, policy, tmp_path):
        storage = StorageConfig(
            root=tmp_path / "cold", backend="sqlite", hot_quarters=2
        )
        with ShardedStreamCube(
            layers,
            policy,
            n_shards=2,
            ticks_per_quarter=TPQ,
            storage=storage,
        ) as cube:
            cube.ingest_batch(workload(1, quarters=4))
            cube.advance_to(4 * TPQ)
            stores = cube._stores
        assert cube._closed
        for store in stores:
            with pytest.raises(sqlite3.ProgrammingError):
                store.stats()

    def test_close_then_close_with_stores(self, layers, policy, tmp_path):
        storage = StorageConfig(
            root=tmp_path / "cold", backend="sqlite", hot_quarters=2
        )
        cube = ShardedStreamCube(
            layers,
            policy,
            n_shards=2,
            ticks_per_quarter=TPQ,
            storage=storage,
        )
        cube.close()
        cube.close()  # must not re-close the sqlite handles


class TestFailedInit:
    def test_invalid_shard_count_before_any_resource(self, layers, policy):
        with pytest.raises(ServiceError, match="n_shards"):
            ShardedStreamCube(
                layers, policy, n_shards=0, ticks_per_quarter=TPQ
            )

    def test_engine_failure_closes_opened_stores(
        self, layers, policy, tmp_path, monkeypatch
    ):
        """Stores open before the engines build; if an engine constructor
        raises, the constructor's own close() must release them."""
        captured = {}
        real = sharding.open_shard_stores

        def capturing(config, n_shards, shard_key):
            generation, stores = real(config, n_shards, shard_key)
            captured["stores"] = stores
            return generation, stores

        monkeypatch.setattr(sharding, "open_shard_stores", capturing)
        storage = StorageConfig(
            root=tmp_path / "cold", backend="sqlite", hot_quarters=2
        )
        with pytest.raises(StreamError, match="ticks_per_quarter"):
            ShardedStreamCube(
                layers,
                policy,
                n_shards=2,
                ticks_per_quarter=0,  # engine ctor rejects this
                storage=storage,
            )
        assert len(captured["stores"]) == 2
        for store in captured["stores"]:
            with pytest.raises(sqlite3.ProgrammingError):
                store.stats()

    def test_backend_failure_closes_stores(
        self, layers, policy, tmp_path, monkeypatch
    ):
        """Same guarantee when the backend itself fails to build."""
        captured = {}
        real = sharding.open_shard_stores

        def capturing(config, n_shards, shard_key):
            generation, stores = real(config, n_shards, shard_key)
            captured["stores"] = stores
            return generation, stores

        def exploding(*args, **kwargs):
            raise RuntimeError("backend wiring failed")

        monkeypatch.setattr(sharding, "open_shard_stores", capturing)
        monkeypatch.setattr(sharding, "InprocBackend", exploding)
        storage = StorageConfig(
            root=tmp_path / "cold", backend="sqlite", hot_quarters=2
        )
        with pytest.raises(RuntimeError, match="backend wiring"):
            ShardedStreamCube(
                layers,
                policy,
                n_shards=2,
                ticks_per_quarter=TPQ,
                storage=storage,
            )
        for store in captured["stores"]:
            with pytest.raises(sqlite3.ProgrammingError):
                store.stats()

    def test_failed_init_cube_close_still_idempotent(self, layers, policy):
        try:
            ShardedStreamCube(
                layers, policy, n_shards=0, ticks_per_quarter=TPQ
            )
        except ServiceError:
            pass  # nothing to close — and close() already ran safely
