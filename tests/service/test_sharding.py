"""Shard-count invariance: a partitioned cube equals a single engine exactly.

The core property of the service layer (Theorem 3.2's losslessness made
operational): for any quarter-ordered workload and any shard count, the
merged m-layer ISBs and the exception sets are *bit-identical* to a single
:class:`StreamCubeEngine` fed the same records.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ServiceError, StreamError
from repro.service.merge import disjoint_union
from repro.service.sharding import ShardedStreamCube, stable_shard_index
from repro.stream.engine import StreamCubeEngine
from repro.stream.records import StreamRecord

from tests.service.conftest import TPQ, workload

SHARD_COUNTS = (1, 2, 7)


def single_engine(layers, policy, records, end_tick):
    engine = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
    engine.ingest_many(records)
    engine.advance_to(end_tick)
    return engine


def sharded(layers, policy, records, end_tick, k, batch_size=None):
    cube = ShardedStreamCube(
        layers, policy, n_shards=k, ticks_per_quarter=TPQ
    )
    if batch_size is None:
        cube.ingest_batch(records)
    else:
        for i in range(0, len(records), batch_size):
            cube.ingest_batch(records[i : i + batch_size])
    cube.advance_to(end_tick)
    return cube


class TestShardInvariance:
    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_m_layer_bit_identical(self, layers, policy, k, seed):
        records = workload(seed)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        with sharded(layers, policy, records, end, k) as cube:
            # dict equality on frozen dataclasses is exact float equality.
            assert cube.m_cells(4) == engine.m_cells(4)
            assert cube.window_isbs(0, end - 1) == engine.window_isbs(
                0, end - 1
            )

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_exception_sets_bit_identical(self, layers, policy, k, seed):
        records = workload(seed)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        with sharded(layers, policy, records, end, k) as cube:
            assert cube.change_exceptions() == engine.change_exceptions()
            assert cube.change_exceptions(2) == engine.change_exceptions(2)

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_batched_ingest_equals_one_batch(self, layers, policy, k):
        records = workload(7)
        end = 6 * TPQ
        with sharded(layers, policy, records, end, k) as one, sharded(
            layers, policy, records, end, k, batch_size=37
        ) as many:
            assert one.m_cells(4) == many.m_cells(4)

    def test_shard_counts_agree_with_each_other(self, layers, policy):
        """Everything — including float-sensitive merged aggregates — is
        identical across shard counts, thanks to the canonical merge order."""
        records = workload(19)
        end = 6 * TPQ
        results = []
        for k in SHARD_COUNTS:
            with sharded(layers, policy, records, end, k) as cube:
                result = cube.refresh(4)
                results.append(
                    (
                        cube.m_cells(4),
                        dict(result.o_layer.items()),
                        result.o_layer_exceptions(),
                        cube.o_layer_change_exceptions(),
                    )
                )
        for other in results[1:]:
            assert other == results[0]

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_refresh_matches_single_engine(self, layers, policy, k):
        """Merged cubing agrees with the single engine's cubing; coarser
        cuboids only up to float roundoff (fold order differs), exception
        *sets* exactly."""
        records = workload(23)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        expected = engine.refresh(4)
        with sharded(layers, policy, records, end, k) as cube:
            got = cube.refresh(4)
            assert set(got.cuboids) == set(expected.cuboids)
            for coord, cuboid in expected.cuboids.items():
                merged = got.cuboids[coord]
                assert set(merged.cells) == set(cuboid.cells)
                for values, isb in cuboid.items():
                    other = merged[values]
                    assert isb.interval == other.interval
                    assert math.isclose(isb.base, other.base, rel_tol=1e-9)
                    assert math.isclose(isb.slope, other.slope, rel_tol=1e-9)
            assert set(got.o_layer_exceptions()) == set(
                expected.o_layer_exceptions()
            )
            assert set(got.retained_exceptions) == set(
                expected.retained_exceptions
            )
            for coord, cells in expected.retained_exceptions.items():
                assert set(got.retained_exceptions[coord]) == set(cells)

    @pytest.mark.parametrize("k", SHARD_COUNTS)
    def test_o_layer_change_matches_single_engine(self, layers, policy, k):
        records = workload(29)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        expected = engine.o_layer_change_exceptions()
        with sharded(layers, policy, records, end, k) as cube:
            got = cube.o_layer_change_exceptions()
            assert set(got) == set(expected)
            for key, isb in expected.items():
                assert math.isclose(got[key].slope, isb.slope, rel_tol=1e-9)


class TestPartitioning:
    def test_stable_hash_is_deterministic(self):
        assert stable_shard_index((3, "a"), 7) == stable_shard_index(
            (3, "a"), 7
        )
        # int 1 and string "1" are different keys.
        assert stable_shard_index((1,), 1000) != stable_shard_index(
            ("1",), 1000
        )

    def test_keys_land_on_their_owner(self, layers, policy):
        records = workload(5)
        end = 6 * TPQ
        with sharded(layers, policy, records, end, 5) as cube:
            for i, shard in enumerate(cube.shards):
                for key in shard.m_cells(4):
                    assert cube.shard_index(key) == i

    def test_partitions_spread(self, layers, policy):
        records = workload(13)
        end = 6 * TPQ
        with sharded(layers, policy, records, end, 4) as cube:
            assert all(count > 0 for count in cube.shard_cells)

    def test_n_shards_validated(self, layers, policy):
        with pytest.raises(ServiceError):
            ShardedStreamCube(layers, policy, n_shards=0)


class TestShardedIngestion:
    def test_bad_batch_mutates_nothing(self, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ
        )
        good = [StreamRecord((0, 0), t, 1.0) for t in range(TPQ)]
        bad = good + [
            StreamRecord((1, 1), 2 * TPQ, 1.0),
            StreamRecord((2, 2), 0, 1.0),  # goes back a quarter
        ]
        with pytest.raises(StreamError):
            cube.ingest_batch(bad)
        assert cube.records_ingested == 0
        assert cube.tracked_cells == 0
        cube.close()

    def test_sealed_quarter_rejected(self, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        )
        cube.ingest_batch(
            [StreamRecord((0, 0), TPQ, 1.0)]  # seals quarter 0 on ingest
        )
        with pytest.raises(StreamError):
            cube.ingest_batch([StreamRecord((1, 1), 0, 1.0)])
        cube.close()

    def test_single_ingest_aligns_shards(self, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ
        )
        cube.ingest(StreamRecord((0, 0), 0, 1.0))
        cube.ingest(StreamRecord((0, 0), TPQ, 1.0))  # crosses a boundary
        assert all(
            shard.current_quarter == 1 for shard in cube.shards
        )
        cube.close()

    def test_empty_batch_is_noop(self, layers, policy):
        with ShardedStreamCube(layers, policy, n_shards=2) as cube:
            assert cube.ingest_batch([]) == 0

    def test_prune_idle_sums_over_shards(self, layers, policy):
        cube = ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ
        )
        records = [
            StreamRecord((v, v), t, 1.0)
            for t in range(TPQ)
            for v in range(6)
        ]
        cube.ingest_batch(records)
        keep = [
            StreamRecord((0, 0), t, 1.0) for t in range(TPQ, 4 * TPQ)
        ]
        cube.ingest_batch(keep)
        cube.advance_to(4 * TPQ)
        dropped = cube.prune_idle(2)
        assert dropped == 5
        assert cube.tracked_cells == 1
        cube.close()


class TestDisjointUnion:
    def test_duplicate_key_rejected(self):
        from repro.regression.isb import ISB

        isb = ISB(0, 3, 1.0, 0.0)
        with pytest.raises(ServiceError):
            disjoint_union([{(0, 0): isb}, {(0, 0): isb}])

    def test_canonical_order_is_shard_independent(self):
        from repro.regression.isb import ISB

        isb = ISB(0, 3, 1.0, 0.0)
        a = {(2, 1): isb, (0, 0): isb}
        b = {(1, 2): isb}
        ab = disjoint_union([a, b])
        ba = disjoint_union([b, a])
        assert list(ab) == list(ba)
