"""Query error paths: one spec, one validation, one error envelope.

Because every surface funnels through ``execute``, a bad plan must fail
identically through the Python API and the HTTP endpoint: same exception
type, same message, mapped to a 400 ``{"error", "type"}`` envelope on the
wire.  Covers the satellite checklist: invalid coord, bad dimension name,
roll-up past the o-layer, drill past the m-layer, siblings at ``*``.
"""

from __future__ import annotations

import pytest

from repro.cube.hierarchy import ALL, FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.cubing.policy import GlobalSlopeThreshold
from repro.errors import QueryError, ReproError, SchemaError
from repro.query import Q, execute
from repro.query.spec import spec_from_dict
from repro.service.http import StreamCubeService
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.stream.records import StreamRecord


@pytest.fixture
def service():
    """A loaded service whose o-layer has a '*' dimension (for siblings)."""
    schema = CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 2)),
            Dimension("b", FanoutHierarchy("b", 2, 2)),
        ]
    )
    layers = CriticalLayers(schema, (2, 2), (0, 1))
    cube = ShardedStreamCube(
        layers, GlobalSlopeThreshold(0.1), n_shards=2, ticks_per_quarter=4
    )
    records = [
        StreamRecord((i, j), t, float(i + j) + 0.1 * t)
        for t in range(8)
        for i in range(4)
        for j in range(4)
    ]
    cube.ingest_batch(records)
    cube.advance_to(8)
    yield StreamCubeService(cube, QueryRouter(cube, window_quarters=2))
    cube.close()


ERROR_SPECS = [
    # (case id, spec) — every satellite error path.
    ("coord-out-of-schema", Q.cell((9, 9), (0, 0))),
    ("coord-outside-lattice", Q.cell((2, 0), (0, ALL))),
    ("bad-dimension-name", Q.drill_down((1, 1), (0, 0), "nope")),
    ("bad-cell-values", Q.cell((2, 2), (99, 0))),
    ("roll-up-past-o-layer", Q.roll_up((0, 1), (ALL, 0), "a")),
    ("drill-past-m-layer", Q.drill_down((2, 2), (0, 0), "a")),
    ("siblings-at-star", Q.siblings((0, 1), (ALL, 0), "a")),
    ("missing-required-field", Q.cell()),
    ("missing-dim", Q.roll_up((1, 1), (0, 0))),
]


class TestSameEnvelopeOnBothSurfaces:
    @pytest.mark.parametrize(
        "case,spec", ERROR_SPECS, ids=[case for case, _ in ERROR_SPECS]
    )
    def test_python_and_http_raise_identically(self, service, case, spec):
        view = service.router.view()
        with pytest.raises(ReproError) as excinfo:
            execute(view, spec)
        exc = excinfo.value

        status, body = service.handle("POST", "/query", spec.to_dict())
        assert status == 400, case
        assert body["type"] == type(exc).__name__, case
        assert body["error"] == str(exc), case

    @pytest.mark.parametrize(
        "case,spec", ERROR_SPECS, ids=[case for case, _ in ERROR_SPECS]
    )
    def test_batch_entry_carries_the_same_envelope(self, service, case, spec):
        view = service.router.view()
        with pytest.raises(ReproError) as excinfo:
            execute(view, spec)
        exc = excinfo.value

        status, body = service.handle(
            "POST", "/query", {"queries": [{"op": "watch_list"}, spec.to_dict()]}
        )
        assert status == 200  # batches report per-spec errors, not 400s
        good, bad = body["results"]
        assert good["ok"] is True
        assert bad["ok"] is False
        assert bad["type"] == type(exc).__name__, case
        assert bad["error"] == str(exc), case

    def test_construction_errors_match_decode_errors(self, service):
        """Specs invalid at construction (bad k) fail the same on the wire."""
        with pytest.raises(QueryError) as excinfo:
            Q.top_slopes((1, 1), k=0)
        payload = {"op": "top_slopes", "coord": [1, 1], "k": 0}
        with pytest.raises(QueryError) as wire_excinfo:
            spec_from_dict(payload)
        assert str(wire_excinfo.value) == str(excinfo.value)

        status, body = service.handle("POST", "/query", payload)
        assert status == 400
        assert body["type"] == "QueryError"
        assert body["error"] == str(excinfo.value)


class TestExpectedTypes:
    """Pin the exception classes so envelopes stay stable for clients."""

    def test_types(self, service):
        view = service.router.view()
        expectations = {
            "coord-out-of-schema": SchemaError,
            "coord-outside-lattice": SchemaError,
            "bad-dimension-name": SchemaError,
            "roll-up-past-o-layer": QueryError,
            "drill-past-m-layer": QueryError,
            "siblings-at-star": QueryError,
            "missing-required-field": QueryError,
            "missing-dim": QueryError,
        }
        by_case = dict(ERROR_SPECS)
        for case, exc_type in expectations.items():
            with pytest.raises(exc_type):
                execute(view, by_case[case])
