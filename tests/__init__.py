"""Test package marker (unique module paths for duplicate basenames)."""
