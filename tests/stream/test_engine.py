"""Tests for the online stream-cube engine (Section 4.5)."""

from __future__ import annotations

import math

import pytest

from repro.cube.hierarchy import ALL, FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.cubing.policy import GlobalSlopeThreshold
from repro.errors import StreamError
from repro.regression.isb import isb_of_series
from repro.stream.engine import StreamCubeEngine, engine_frame_levels
from repro.stream.records import StreamRecord
from repro.tilt.frame import TiltLevelSpec


@pytest.fixture
def layers() -> CriticalLayers:
    schema = CubeSchema(
        [
            Dimension("g", FanoutHierarchy("g", 2, 2)),
            Dimension("l", FanoutHierarchy("l", 2, 2)),
        ]
    )
    return CriticalLayers(schema, (2, 2), (1, 1))


def make_engine(layers, threshold=0.0, tpq=4) -> StreamCubeEngine:
    """Small quarters (4 ticks) and a compact frame for fast tests."""
    frame_levels = [
        TiltLevelSpec("quarter", tpq, 4),
        TiltLevelSpec("hour", 4 * tpq, 6),
        TiltLevelSpec("day", 24 * tpq, 2),
    ]
    return StreamCubeEngine(
        layers,
        GlobalSlopeThreshold(threshold),
        ticks_per_quarter=tpq,
        frame_levels=frame_levels,
    )


def feed_cell(engine, values, series, t0=0):
    for i, z in enumerate(series):
        engine.ingest(StreamRecord(values=values, t=t0 + i, z=z))


class TestFrameLevels:
    def test_paper_shape(self):
        levels = engine_frame_levels(15)
        assert [lv.name for lv in levels] == ["quarter", "hour", "day", "month"]
        assert [lv.unit_ticks for lv in levels] == [15, 60, 1440, 44640]
        assert [lv.capacity for lv in levels] == [4, 24, 31, 12]


class TestIngestion:
    def test_quarter_sealing(self, layers):
        engine = make_engine(layers)
        feed_cell(engine, (0, 0), [1.0, 2.0, 3.0, 4.0, 5.0])  # crosses t=4
        assert engine.current_quarter == 1
        frame = engine.frame_of((0, 0))
        slots = frame.slots("quarter")
        assert len(slots) == 1
        direct = isb_of_series([1.0, 2.0, 3.0, 4.0])
        assert math.isclose(slots[0].base, direct.base, rel_tol=1e-9)
        assert math.isclose(slots[0].slope, direct.slope, rel_tol=1e-9)

    def test_out_of_order_within_quarter_ok(self, layers):
        engine = make_engine(layers)
        engine.ingest(StreamRecord((0, 0), 2, 1.0))
        engine.ingest(StreamRecord((0, 0), 0, 2.0))  # same quarter
        assert engine.records_ingested == 2

    def test_record_into_sealed_quarter_rejected(self, layers):
        engine = make_engine(layers)
        engine.ingest(StreamRecord((0, 0), 5, 1.0))  # seals quarter 0
        with pytest.raises(StreamError):
            engine.ingest(StreamRecord((0, 0), 3, 1.0))

    def test_advance_to_seals_quiet_quarters(self, layers):
        engine = make_engine(layers)
        engine.ingest(StreamRecord((0, 0), 0, 1.0))
        engine.advance_to(12)  # 3 quarters boundary
        assert engine.current_quarter == 3
        frame = engine.frame_of((0, 0))
        assert len(frame.slots("quarter")) == 3
        # Quiet quarters are flat zero.
        assert frame.slots("quarter")[-1].base == 0.0

    def test_late_cell_backfilled_with_zeros(self, layers):
        engine = make_engine(layers)
        feed_cell(engine, (0, 0), [1.0] * 8)  # quarters 0,1 sealed
        engine.ingest(StreamRecord((3, 3), 8, 2.0))
        engine.advance_to(12)
        frame = engine.frame_of((3, 3))
        slots = frame.slots("quarter")
        assert len(slots) == 3
        assert slots[0].base == 0.0 and slots[1].base == 0.0

    def test_invalid_cell_values_rejected(self, layers):
        engine = make_engine(layers)
        with pytest.raises(Exception):
            engine.ingest(StreamRecord((99, 0), 0, 1.0))

    def test_unknown_cell_frame_lookup(self, layers):
        engine = make_engine(layers)
        with pytest.raises(StreamError):
            engine.frame_of((0, 0))

    def test_tpq_validation(self, layers):
        with pytest.raises(StreamError):
            StreamCubeEngine(
                layers, GlobalSlopeThreshold(0.0), ticks_per_quarter=0
            )


class TestBatchIngestion:
    def test_out_of_order_batch_rejected_before_any_mutation(self, layers):
        engine = make_engine(layers)
        batch = [
            StreamRecord((0, 0), 0, 1.0),
            StreamRecord((0, 0), 5, 1.0),  # quarter 1
            StreamRecord((1, 1), 2, 1.0),  # back to quarter 0: bad
        ]
        with pytest.raises(StreamError, match="quarter-ordered"):
            engine.ingest_many(batch)
        # No partial state: nothing ingested, no quarter sealed.
        assert engine.records_ingested == 0
        assert engine.tracked_cells == 0
        assert engine.current_quarter == 0

    def test_batch_into_sealed_quarter_rejected(self, layers):
        engine = make_engine(layers)
        engine.ingest(StreamRecord((0, 0), 5, 1.0))  # seals quarter 0
        with pytest.raises(StreamError, match="sealed"):
            engine.ingest_many([StreamRecord((1, 1), 3, 1.0)])
        assert engine.records_ingested == 1

    def test_within_quarter_disorder_allowed(self, layers):
        engine = make_engine(layers)
        engine.ingest_many(
            [
                StreamRecord((0, 0), 2, 1.0),
                StreamRecord((0, 0), 0, 2.0),  # same quarter: fine
                StreamRecord((0, 0), 3, 3.0),
            ]
        )
        assert engine.records_ingested == 3


class TestWindows:
    def test_m_cells_window_matches_raw(self, layers):
        engine = make_engine(layers)
        series = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5]
        feed_cell(engine, (0, 0), series)
        engine.advance_to(8)
        cells = engine.m_cells(window_quarters=2)
        assert set(cells) == {(0, 0)}
        direct = isb_of_series(series)
        got = cells[(0, 0)]
        assert got.interval == (0, 7)
        assert math.isclose(got.base, direct.base, rel_tol=1e-9)
        assert math.isclose(got.slope, direct.slope, rel_tol=1e-9)

    def test_m_cells_requires_enough_history(self, layers):
        engine = make_engine(layers)
        feed_cell(engine, (0, 0), [1.0] * 4)
        with pytest.raises(StreamError):
            engine.m_cells(window_quarters=4)

    def test_change_exceptions_flags_jump(self, layers):
        engine = make_engine(layers, threshold=0.2)
        # Cell (0,0): flat 1.0 then flat 5.0 -> big two-point slope.
        # Cell (1,1): flat throughout.
        for t in range(4):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
            engine.ingest(StreamRecord((1, 1), t, 1.0))
        for t in range(4, 8):
            engine.ingest(StreamRecord((0, 0), t, 5.0))
            engine.ingest(StreamRecord((1, 1), t, 1.0))
        engine.advance_to(8)
        changed = engine.change_exceptions()
        assert (0, 0) in changed
        assert (1, 1) not in changed
        assert changed[(0, 0)].slope > 0.2

    def test_change_exceptions_needs_two_windows(self, layers):
        engine = make_engine(layers)
        feed_cell(engine, (0, 0), [1.0] * 4)
        with pytest.raises(StreamError):
            engine.change_exceptions()

    def test_o_layer_change_detection(self, layers):
        """A jump in one m-cell surfaces at its o-layer ancestor."""
        engine = make_engine(layers, threshold=0.2)
        # m-cells (0,0) and (1,1) share o-parent (0,0); only (0,0) jumps.
        for t in range(4):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
            engine.ingest(StreamRecord((1, 1), t, 1.0))
            engine.ingest(StreamRecord((3, 3), t, 1.0))
        for t in range(4, 8):
            engine.ingest(StreamRecord((0, 0), t, 6.0))
            engine.ingest(StreamRecord((1, 1), t, 1.0))
            engine.ingest(StreamRecord((3, 3), t, 1.0))
        engine.advance_to(8)
        changed = engine.o_layer_change_exceptions()
        assert (0, 0) in changed  # o-layer ancestor of the jumping cell
        assert (1, 1) not in changed  # o-parent of the flat cell

    def test_o_layer_change_aggregates_both_windows(self, layers):
        """Two children each rising by 1 produce an o-parent rise of 2."""
        engine = make_engine(layers, threshold=0.0)
        for t in range(4):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
            engine.ingest(StreamRecord((1, 1), t, 1.0))
        for t in range(4, 8):
            engine.ingest(StreamRecord((0, 0), t, 2.0))
            engine.ingest(StreamRecord((1, 1), t, 2.0))
        engine.advance_to(8)
        changed = engine.o_layer_change_exceptions()
        # Parent means go 2.0 -> 4.0 over 4 ticks: slope 0.5.
        assert math.isclose(changed[(0, 0)].slope, 0.5, rel_tol=1e-9)

    def test_o_layer_change_needs_history(self, layers):
        engine = make_engine(layers)
        feed_cell(engine, (0, 0), [1.0] * 4)
        with pytest.raises(StreamError):
            engine.o_layer_change_exceptions()


class TestRefresh:
    def _fill(self, engine):
        # Two steep cells under one o-parent, two flat elsewhere.
        for t in range(8):
            engine.ingest(StreamRecord((0, 0), t, 1.0 + 2.0 * t))
            engine.ingest(StreamRecord((0, 1), t, 0.5 + 1.0 * t))
            engine.ingest(StreamRecord((3, 3), t, 2.0))
        engine.advance_to(8)

    def test_refresh_mo(self, layers):
        engine = make_engine(layers, threshold=0.5)
        self._fill(engine)
        result = engine.refresh(window_quarters=2, algorithm="mo")
        assert result.stats.algorithm == "m/o-cubing"
        # o-layer cell (0,0) aggregates the two steep m-cells.
        o_exc = result.o_layer_exceptions()
        assert (0, 0) in o_exc

    def test_refresh_popular(self, layers):
        engine = make_engine(layers, threshold=0.5)
        self._fill(engine)
        result = engine.refresh(window_quarters=2, algorithm="popular")
        assert result.stats.algorithm == "popular-path"
        assert (0, 0) in result.o_layer_exceptions()

    def test_refresh_full(self, layers):
        engine = make_engine(layers, threshold=0.5)
        self._fill(engine)
        result = engine.refresh(window_quarters=2, algorithm="full")
        assert result.stats.algorithm == "full-materialization"

    def test_refresh_multiway(self, layers):
        engine = make_engine(layers, threshold=0.5)
        self._fill(engine)
        result = engine.refresh(window_quarters=2, algorithm="multiway")
        assert result.stats.algorithm == "multiway"
        assert (0, 0) in result.o_layer_exceptions()

    def test_refresh_algorithms_agree_on_o_layer(self, layers):
        engine = make_engine(layers, threshold=0.5)
        self._fill(engine)
        mo = engine.refresh(2, "mo")
        pp = engine.refresh(2, "popular")
        assert set(mo.o_layer.cells) == set(pp.o_layer.cells)
        for key in mo.o_layer.cells:
            a, b = mo.o_layer[key], pp.o_layer[key]
            assert math.isclose(a.base, b.base, rel_tol=1e-9)
            assert math.isclose(a.slope, b.slope, rel_tol=1e-9)

    def test_unknown_algorithm_rejected(self, layers):
        engine = make_engine(layers)
        self._fill(engine)
        with pytest.raises(StreamError):
            engine.refresh(2, "magic")  # type: ignore[arg-type]


class TestPruning:
    def test_idle_cells_dropped(self, layers):
        engine = make_engine(layers)
        # (0,0) stays active; (3,3) goes quiet after the first quarter.
        for t in range(4):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
            engine.ingest(StreamRecord((3, 3), t, 1.0))
        for t in range(4, 12):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
        engine.advance_to(12)
        dropped = engine.prune_idle(idle_quarters=2)
        assert dropped == 1
        assert engine.tracked_cells == 1
        with pytest.raises(StreamError):
            engine.frame_of((3, 3))

    def test_active_cells_survive(self, layers):
        engine = make_engine(layers)
        feed_cell(engine, (0, 0), [1.0] * 12)
        engine.advance_to(12)
        assert engine.prune_idle(2) == 0
        assert engine.tracked_cells == 1

    def test_currently_accumulating_cell_survives(self, layers):
        engine = make_engine(layers)
        feed_cell(engine, (0, 0), [1.0] * 8)
        engine.advance_to(8)
        # New cell appears mid-quarter: zero sealed history but accumulating.
        engine.ingest(StreamRecord((3, 3), 8, 1.0))
        assert engine.prune_idle(2) == 0
        assert engine.tracked_cells == 2

    def test_pruned_cell_can_return(self, layers):
        engine = make_engine(layers)
        for t in range(4):
            engine.ingest(StreamRecord((3, 3), t, 1.0))
            engine.ingest(StreamRecord((0, 0), t, 1.0))
        for t in range(4, 12):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
        engine.advance_to(12)
        engine.prune_idle(2)
        engine.ingest(StreamRecord((3, 3), 12, 2.0))
        engine.advance_to(16)
        frame = engine.frame_of((3, 3))
        assert len(frame.slots("quarter")) == 4  # zero-backfilled + live

    def test_validation(self, layers):
        engine = make_engine(layers)
        with pytest.raises(StreamError):
            engine.prune_idle(0)

    def test_noop_before_any_seal(self, layers):
        engine = make_engine(layers)
        engine.ingest(StreamRecord((0, 0), 0, 1.0))
        assert engine.prune_idle(4) == 0


class TestContinuousOperation:
    def test_long_run_promotions_and_windows(self, layers):
        """Stream a full 'day' (96 small quarters) and query at coarse
        granularity — the Section 4.5 loop end to end."""
        engine = make_engine(layers, tpq=2)
        t = 0
        for _ in range(96):
            for _ in range(2):
                engine.ingest(StreamRecord((0, 0), t, 1.0 + 0.01 * t))
                t += 1
        engine.advance_to(t)
        frame = engine.frame_of((0, 0))
        assert len(frame.slots("hour")) > 0
        # A perfectly linear stream keeps slope 0.01 at every granularity.
        hour = frame.slots("hour")[-1]
        assert math.isclose(hour.slope, 0.01, rel_tol=1e-9)

    def test_key_fn_rolls_up_primitive_records(self, layers):
        """The engine maps primitive ids to m-layer cells via key_fn."""
        mapping = {"sensorA": (0, 0), "sensorB": (3, 3)}
        engine = StreamCubeEngine(
            layers,
            GlobalSlopeThreshold(0.0),
            key_fn=lambda r: mapping[r.values[0]],
            ticks_per_quarter=4,
            frame_levels=[TiltLevelSpec("quarter", 4, 8)],
        )
        for t in range(8):
            engine.ingest(StreamRecord(("sensorA",), t, 1.0))
            engine.ingest(StreamRecord(("sensorB",), t, 2.0))
        engine.advance_to(8)
        assert engine.tracked_cells == 2
        assert set(engine.m_cells(2)) == {(0, 0), (3, 3)}
