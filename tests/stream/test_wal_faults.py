"""The quarter WAL under injected append faults and on-disk corruption.

The append seam (site ``wal.append``) must self-repair every transient
fault — EIO, torn short writes, a lying fsync — without ever leaving a
half-line behind, and interior corruption of acknowledged history must
surface as a typed :class:`WalCorruptionError` that names the line,
byte offset and last intact sequence number.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.errors import StorageError, WalCorruptionError
from repro.stream.records import StreamRecord
from repro.stream.wal import QuarterWAL


@pytest.fixture(autouse=True)
def disarm():
    faults.clear()
    yield
    faults.clear()


def arm(kind, **kwargs):
    faults.install(
        {
            "seed": 17,
            "rules": [{"site": "wal.append", "kind": kind, **kwargs}],
        }
    )


def fill(wal, n=3):
    for q in range(n):
        wal.append_batch([StreamRecord((q,), 16 * q, 1.0)], q)


class TestAppendRepair:
    def test_torn_append_is_rolled_back_and_retried(self, tmp_path):
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        fill(wal, 2)
        arm("torn", count=1)
        seq = wal.append_batch([StreamRecord((9,), 32, 2.0)], 2)
        faults.clear()
        # The half-line was truncated away and the append re-ran: every
        # entry (including the repaired one) reads back intact.
        assert wal.repairs == 1
        assert [e.seq for e in wal.entries()] == [1, 2, seq]
        assert list(wal.entries())[-1].records[0].z == 2.0

    def test_transient_eio_append_is_repaired(self, tmp_path):
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        fill(wal, 1)
        arm("eio", count=1)
        wal.append_advance(32, 2)
        assert wal.repairs == 1
        assert [e.kind for e in wal.entries()] == ["batch", "advance"]

    def test_double_append_failure_raises_storage_error(self, tmp_path):
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        fill(wal, 1)
        arm("eio", count=2)
        with pytest.raises(StorageError, match="even after short-write"):
            wal.append_advance(32, 2)
        faults.clear()
        # Journal-before-apply: the rejected entry left no trace, and the
        # journal still accepts appends.
        assert [e.seq for e in wal.entries()] == [1]
        wal.append_advance(32, 2)
        assert wal.last_seq == 3  # the failed append burned seq 2

    def test_torn_repair_survives_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        fill(wal, 2)
        arm("torn", count=1)
        wal.append_batch([StreamRecord((9,), 32, 2.0)], 2)
        wal.close()
        faults.clear()
        reopened = QuarterWAL(path)
        assert reopened.last_seq == 3
        assert len(list(reopened.entries())) == 3

    def test_fsync_lie_is_harmless_in_process(self, tmp_path):
        # A lying fsync only matters across an OS crash; in-process the
        # flushed bytes are visible and the journal stays intact.
        wal = QuarterWAL(tmp_path / "wal.jsonl", sync=True)
        arm("fsync_lie", count=0)
        fill(wal, 3)
        assert wal.repairs == 0
        assert [e.seq for e in wal.entries()] == [1, 2, 3]


class TestInteriorCorruption:
    def corrupt_line(self, path, lineno, mutate):
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[lineno] = mutate(lines[lineno])
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_interior_bad_json_names_line_offset_and_seq(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        fill(wal, 3)
        wal.close()
        # Header is line 1; entries are lines 2-4.  Corrupt line 3 (seq 2).
        self.corrupt_line(path, 2, lambda line: line[: len(line) // 2])
        with pytest.raises(WalCorruptionError) as info:
            list(QuarterWAL(path).entries())
        msg = str(info.value)
        assert "line 3" in msg
        assert "byte offset" in msg
        assert "last intact seq is 1" in msg

    def test_interior_checksum_failure_names_claimed_seq(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        fill(wal, 3)
        wal.close()

        def flip_z(line):
            payload = json.loads(line)
            payload["records"][0][2] = 777.0  # body no longer matches crc
            return json.dumps(payload)

        self.corrupt_line(path, 2, flip_z)
        with pytest.raises(WalCorruptionError, match="claims seq 2"):
            list(QuarterWAL(path).entries())

    def test_corrupt_final_line_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        fill(wal, 3)
        wal.close()
        self.corrupt_line(path, 3, lambda line: line[: len(line) // 2])
        # The final entry was never acknowledged-and-intact: recovery
        # keeps everything before it and raises nothing.
        assert [e.seq for e in QuarterWAL(path).entries()] == [1, 2]


class TestWriteSideCorruptionIsCaughtOnRead:
    def test_bitflip_on_append_fails_checksum_later(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        fill(wal, 2)
        arm("bitflip", count=1)
        wal.append_batch([StreamRecord((9,), 32, 2.0)], 2)
        wal.append_advance(48, 3)  # the corrupt line is now interior
        faults.clear()
        with pytest.raises(WalCorruptionError, match="last intact seq is 2"):
            list(wal.entries())
