"""Tests for the Example 1 power-grid simulator."""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")  # the power-grid simulator draws numpy randomness

from repro.errors import StreamError
from repro.stream.power_grid import USER_GROUPS, PowerGridConfig, PowerGridSimulator


@pytest.fixture
def sim() -> PowerGridSimulator:
    return PowerGridSimulator(
        PowerGridConfig(
            n_cities=2,
            blocks_per_city=2,
            addresses_per_block=2,
            users_per_address=2,
            seed=1,
        )
    )


class TestTopology:
    def test_counts(self, sim):
        assert len(sim.cities) == 2
        assert len(sim.blocks) == 4
        assert len(sim.addresses) == 8
        assert sim.n_users == 16

    def test_every_block_has_a_city(self, sim):
        for block in sim.blocks:
            assert sim._city_of_block[block] in sim.cities

    def test_groups_mixed_per_block(self, sim):
        groups = {g for _, g, _ in sim.users}
        assert groups == set(USER_GROUPS)

    def test_config_validation(self):
        with pytest.raises(StreamError):
            PowerGridConfig(n_cities=0)

    def test_unknown_surge_block_rejected(self):
        with pytest.raises(StreamError):
            PowerGridSimulator(PowerGridConfig(surge_block="nope"))


class TestLayers:
    def test_example4_design(self, sim):
        layers = sim.layers()
        assert layers.schema.names == ("user", "location")
        assert layers.m_coord == (1, 2)
        assert layers.o_coord == (0, 1)
        assert layers.lattice.size == 4

    def test_m_key_fn_maps_to_valid_cells(self, sim):
        layers = sim.layers()
        key_fn = sim.m_key_fn()
        for record in sim.records(2):
            key = key_fn(record)
            layers.schema.validate_values(key, layers.m_coord)


class TestRecords:
    def test_per_minute_per_user(self, sim):
        records = list(sim.records(3))
        assert len(records) == 3 * sim.n_users
        assert [r.t for r in records[: sim.n_users]] == [0] * sim.n_users

    def test_non_negative_loads(self, sim):
        assert all(r.z >= 0 for r in sim.records(5))

    def test_start_minute_offset(self, sim):
        records = list(sim.records(2, start_minute=100))
        assert records[0].t == 100

    def test_industrial_heavier_than_residential(self, sim):
        """The load model's group ordering holds on average."""
        by_group: dict[str, list[float]] = {g: [] for g in USER_GROUPS}
        group_of = {u: g for u, g, _ in sim.users}
        for r in sim.records(60):
            by_group[group_of[r.values[0]]].append(r.z)
        means = {g: sum(v) / len(v) for g, v in by_group.items()}
        assert means["industrial"] > means["residential"]


class TestSurge:
    def test_surge_grows_block_usage(self):
        """The same block's usage with vs without the surge injected."""
        base_cfg = dict(
            n_cities=1,
            blocks_per_city=2,
            addresses_per_block=2,
            users_per_address=1,
            noise=0.0,
            surge_start_minute=0,
            surge_slope_per_minute=0.05,
            seed=2,
        )
        calm_sim = PowerGridSimulator(PowerGridConfig(**base_cfg))
        surge_sim = PowerGridSimulator(
            PowerGridConfig(surge_block="c0-b0", **base_cfg)
        )

        def block_total(sim):
            block_of = dict(sim._block_of_address)
            return sum(
                r.z
                for r in sim.records(30)
                if block_of[r.values[1]] == "c0-b0"
            )

        calm, surged = block_total(calm_sim), block_total(surge_sim)
        # The surge factor averages ~1.7x over the first 30 minutes.
        assert surged > 1.5 * calm

    def test_no_surge_before_start(self):
        cfg = PowerGridConfig(
            n_cities=1,
            blocks_per_city=2,
            addresses_per_block=1,
            users_per_address=1,
            noise=0.0,
            surge_block="c0-b0",
            surge_start_minute=1000,
            seed=3,
        )
        sim = PowerGridSimulator(cfg)
        assert sim._surge_factor(sim.addresses[0], 999) == 1.0
        assert sim._surge_factor(sim.addresses[0], 1001) > 1.0
