"""Sliding-window regression: O(1) maintenance must equal re-merging."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import TiltFrameError
from repro.regression.aggregation import merge_time
from repro.regression.isb import ISB, isb_of_series
from repro.stream.sliding import SlidingWindowRegression


def segments_of(values: list[float], length: int, t_b: int = 0) -> list[ISB]:
    return [
        isb_of_series(values[i : i + length], t_b=t_b + i)
        for i in range(0, len(values) - length + 1, length)
    ]


class TestMaintenance:
    def test_empty_window_raises(self):
        window = SlidingWindowRegression(3)
        assert len(window) == 0
        assert not window.is_full
        with pytest.raises(TiltFrameError, match="empty"):
            window.window

    def test_rejects_zero_width_window(self):
        with pytest.raises(TiltFrameError, match="at least one"):
            SlidingWindowRegression(0)

    def test_single_segment_window(self):
        """window_segments=1: each push replaces the whole window."""
        window = SlidingWindowRegression(1)
        first = ISB(0, 4, 1.0, 0.5)
        second = ISB(5, 9, 2.0, -0.25)
        window.push(first)
        assert window.is_full and window.window == first
        window.push(second)
        assert len(window) == 1
        assert window.window.interval == second.interval
        assert window.window.slope == pytest.approx(second.slope)

    def test_rejects_non_adjacent_segment(self):
        window = SlidingWindowRegression(3)
        window.push(ISB(0, 4, 1.0, 0.0))
        with pytest.raises(TiltFrameError, match="does not follow"):
            window.push(ISB(6, 9, 1.0, 0.0))  # gap at tick 5

    def test_span_tracks_window_contents(self):
        window = SlidingWindowRegression(2)
        window.push(ISB(0, 4, 1.0, 0.0))
        window.push(ISB(5, 9, 1.0, 0.0))
        assert window.span == (0, 9)
        window.push(ISB(10, 14, 1.0, 0.0))
        assert window.span == (5, 14)


class TestEquivalence:
    def test_slide_equals_remerge_over_long_run(self):
        """Every step's O(1) aggregate == merge_time over the raw window."""
        rng = random.Random(17)
        values = [
            2.0 + 0.1 * t + rng.uniform(-0.5, 0.5) for t in range(120)
        ]
        segments = segments_of(values, length=5)
        window = SlidingWindowRegression(4)
        held: list[ISB] = []
        for segment in segments:
            window.push(segment)
            held.append(segment)
            held = held[-4:]
            expected = merge_time(held)
            got = window.window
            assert got.interval == expected.interval
            assert math.isclose(
                got.base, expected.base, rel_tol=1e-9, abs_tol=1e-9
            )
            assert math.isclose(
                got.slope, expected.slope, rel_tol=1e-9, abs_tol=1e-9
            )

    def test_full_window_matches_direct_fit_of_raw_data(self):
        """Theorem 3.3 + its inverse stay exact against raw least squares."""
        rng = random.Random(23)
        values = [1.0 - 0.2 * t + rng.uniform(-0.3, 0.3) for t in range(60)]
        segments = segments_of(values, length=6)
        window = SlidingWindowRegression(5)
        for segment in segments:
            window.push(segment)
        t_b, t_e = window.span
        direct = isb_of_series(values[t_b : t_e + 1], t_b=t_b)
        assert math.isclose(window.window.slope, direct.slope, rel_tol=1e-9)
        assert math.isclose(window.window.base, direct.base, rel_tol=1e-9)

    def test_single_tick_segments(self):
        """Degenerate one-tick segments (flat lines) still slide exactly."""
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
        window = SlidingWindowRegression(3)
        for t, value in enumerate(values):
            window.push(ISB(t, t, value, 0.0))
        expected = isb_of_series(values[-3:], t_b=3)
        assert window.window.interval == (3, 5)
        assert math.isclose(window.window.slope, expected.slope, rel_tol=1e-9)
