"""The quarter WAL: journal-before-apply, seq-gated replay, compaction.

The recovery contract: a snapshot taken at WAL sequence S plus a replay of
entries after S reproduces the uninterrupted engine bit for bit, at *any*
crash point — mid-quarter, between quarters, before or after an explicit
advance.  Compaction after a snapshot must never lose unsnapshotted
entries, and a torn final line (crash mid-append) must not poison recovery.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, StreamError, WalCorruptionError
from repro.stream.engine import StreamCubeEngine
from repro.stream.records import StreamRecord
from repro.stream.wal import QuarterWAL

from tests.stream.test_state import (
    TPQ,
    assert_engines_identical,
    build_layers,
    make_engine,
    random_records,
)


class TestJournal:
    def test_appends_assign_increasing_seqs(self, tmp_path):
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        assert wal.last_seq == 0
        s1 = wal.append_batch([StreamRecord((1, 2), 0, 1.0)], 0)
        s2 = wal.append_advance(8, 2)
        assert (s1, s2) == (1, 2)
        assert wal.last_seq == 2

    def test_empty_batch_is_not_journaled(self, tmp_path):
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        assert wal.append_batch([], 0) == 0
        assert list(wal.entries()) == []

    def test_seq_continues_across_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        wal.append_batch([StreamRecord((1,), 0, 1.0)], 0)
        wal.close()
        reopened = QuarterWAL(path)
        assert reopened.last_seq == 1
        assert reopened.append_advance(4, 1) == 2

    def test_append_after_close_raises(self, tmp_path):
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        wal.close()
        with pytest.raises(StreamError, match="closed"):
            wal.append_advance(4, 1)

    def test_empty_file_gets_a_header_on_open(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.touch()  # crash between create and header write
        wal = QuarterWAL(path)
        wal.append_advance(4, 1)
        wal.close()
        assert [e.seq for e in QuarterWAL(path).entries()] == [1]

    def test_torn_header_only_file_is_recreated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"format": "repro-w')  # torn header write
        wal = QuarterWAL(path)
        wal.append_advance(4, 1)
        wal.close()
        assert [e.seq for e in QuarterWAL(path).entries()] == [1]

    def test_bad_batch_never_reaches_the_journal(self, tmp_path):
        """Schema-invalid records are rejected before journaling, so a WAL
        can never hold a batch that would fail on replay."""
        layers = build_layers()
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        engine = StreamCubeEngine(
            layers, make_engine().policy, ticks_per_quarter=TPQ, wal=wal
        )
        good = random_records(31, 40, 2)
        engine.ingest_many(good)
        from repro.errors import HierarchyError

        bad = [StreamRecord((99, 99), 2 * TPQ, 1.0)]  # out-of-schema leaf
        with pytest.raises(HierarchyError):
            engine.ingest_many(bad)
        with pytest.raises(HierarchyError):
            engine.ingest(bad[0])
        with pytest.raises(HierarchyError):
            # Mixed batch — a fine record plus the bad one: all-or-nothing.
            engine.ingest_many([StreamRecord((0, 0), 2 * TPQ, 1.0)] + bad)
        # Neither the engine nor the journal saw any of it ...
        reference = make_engine(layers)
        reference.ingest_many(good)
        assert_engines_identical(engine, reference)
        # ... so replay reproduces the engine without tripping.
        wal.close()
        recovered = make_engine(layers)
        QuarterWAL(tmp_path / "wal.jsonl").replay(recovered)
        assert_engines_identical(engine, recovered)

    def test_records_round_trip_with_mixed_value_types(self, tmp_path):
        wal = QuarterWAL(tmp_path / "wal.jsonl")
        records = [
            StreamRecord(("user-7", 3), 2, 0.1 + 0.2),
            StreamRecord((0, "b"), 3, -1e-17),
        ]
        wal.append_batch(records, 0)
        [entry] = wal.entries()
        assert entry.records == records  # tuples, ints/strs, exact floats


class TestRecovery:
    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        wal.append_batch([StreamRecord((1,), 0, 1.0)], 0)
        wal.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 2, "kind": "batch", "qu')  # torn append
        reopened = QuarterWAL(path)
        assert [e.seq for e in reopened.entries()] == [1]
        assert reopened.last_seq == 1

    def test_corruption_mid_file_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        wal.append_batch([StreamRecord((1,), 0, 1.0)], 0)
        wal.append_advance(4, 1)
        wal.close()
        lines = path.read_text().splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WalCorruptionError, match="line 2"):
            list(QuarterWAL(path).entries())

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"seq": 1, "kind": "advance", "quarter": 1, "t": 4}\n')
        with pytest.raises(CodecError, match="header"):
            list(QuarterWAL(path).entries())

    def test_unknown_version_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('{"format": "repro-wal", "version": 99}\n')
        with pytest.raises(CodecError, match="version"):
            list(QuarterWAL(path).entries())

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        QuarterWAL(path).close()
        with open(path, "a") as fh:
            fh.write('{"seq": 1, "kind": "mystery", "quarter": 0}\n')
        with pytest.raises(CodecError, match="unknown entry kind"):
            list(QuarterWAL(path).entries())

    def test_replay_does_not_rejournal(self, tmp_path):
        layers = build_layers()
        records = random_records(11, 60, 3)
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        source = StreamCubeEngine(
            layers, make_engine().policy, ticks_per_quarter=TPQ, wal=wal
        )
        source.ingest_many(records)
        before = wal.last_seq
        target = make_engine(layers)
        target.wal = wal  # recovery idiom: journal attached during replay
        wal.replay(target)
        assert wal.last_seq == before  # nothing re-appended
        assert target.wal is wal  # reattached afterwards
        assert_engines_identical(source, target)


class TestCompaction:
    def test_truncate_through_keeps_newer_entries(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        for q in range(4):
            wal.append_batch([StreamRecord((q,), q * TPQ, 1.0)], q)
        assert wal.truncate_through(2) == 2
        assert [e.seq for e in wal.entries()] == [3, 4]
        # Appends continue with the old numbering after compaction.
        assert wal.append_advance(16, 4) == 5
        assert wal.truncate_through(0) == 0  # nothing below the mark

    def test_truncated_file_reopens_cleanly(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = QuarterWAL(path)
        for q in range(3):
            wal.append_batch([StreamRecord((q,), q * TPQ, 1.0)], q)
        wal.truncate_through(2)
        wal.close()
        reopened = QuarterWAL(path)
        assert reopened.last_seq == 3
        assert [e.seq for e in reopened.entries()] == [3]


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    snap_at=st.floats(min_value=0.0, max_value=1.0),
    crash_at=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=25, deadline=None)
def test_crash_anywhere_recovers_bit_identical(tmp_path_factory, seed, snap_at, crash_at):
    """snapshot at any point, crash at any later point, recover exactly.

    The run is a sequence of small batches plus a final advance; the
    snapshot lands after batch ``floor(snap_at * n)``, the crash after
    batch ``floor(crash_at * n)`` at or past it.  Recovery = restore the
    snapshot + replay WAL entries past its wal_seq; the recovered engine
    must match the uninterrupted engine bit for bit once fed the
    post-crash tail.
    """
    tmp_path = tmp_path_factory.mktemp("wal")
    layers = build_layers()
    records = random_records(seed, 120, 4)
    rng = random.Random(seed)
    batches = []
    i = 0
    while i < len(records):
        step = rng.randrange(1, 25)
        batches.append(records[i : i + step])
        i += step
    snap_idx = int(snap_at * len(batches))
    crash_idx = max(snap_idx, int(crash_at * len(batches)))

    uninterrupted = make_engine(layers)
    for batch in batches:
        uninterrupted.ingest_many(batch)
    uninterrupted.advance_to(4 * TPQ)

    wal = QuarterWAL(tmp_path / "wal.jsonl")
    live = StreamCubeEngine(
        layers, uninterrupted.policy, ticks_per_quarter=TPQ, wal=wal
    )
    state = live.snapshot() if snap_idx == 0 else None
    for j, batch in enumerate(batches[:crash_idx]):
        live.ingest_many(batch)
        if j + 1 == snap_idx:
            state = live.snapshot()
    assert state is not None  # crash_idx >= snap_idx guarantees it
    wal.close()  # crash

    recovery_wal = QuarterWAL(tmp_path / "wal.jsonl")
    recovered = StreamCubeEngine.restore(
        state, layers, uninterrupted.policy, wal=recovery_wal
    )
    recovery_wal.replay(recovered, after_seq=state.wal_seq)
    for batch in batches[crash_idx:]:
        recovered.ingest_many(batch)
    recovered.advance_to(4 * TPQ)
    assert_engines_identical(uninterrupted, recovered)
    assert recovered.window_isbs(0, 4 * TPQ - 1) == uninterrupted.window_isbs(
        0, 4 * TPQ - 1
    )
