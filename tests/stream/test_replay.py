"""Tests for record capture and replay."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.stream.power_grid import PowerGridConfig, PowerGridSimulator
from repro.stream.records import StreamRecord
from repro.stream.replay import capture, replay_records, write_records


@pytest.fixture
def records():
    return [
        StreamRecord(("u1", "a1"), 0, 1.5),
        StreamRecord(("u2", "a1"), 0, 2.0),
        StreamRecord(("u1", "a1"), 1, 1.75),
    ]


class TestWriteReplay:
    def test_round_trip(self, tmp_path, records):
        path = tmp_path / "stream.jsonl"
        assert write_records(records, path) == 3
        assert list(replay_records(path)) == records

    def test_empty_lines_skipped(self, tmp_path, records):
        path = tmp_path / "stream.jsonl"
        write_records(records, path)
        path.write_text(path.read_text() + "\n\n")
        assert list(replay_records(path)) == records

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"values": ["u1"], "t": 0, "z": 1.0}\nnot-json\n')
        with pytest.raises(StreamError, match="bad.jsonl:2"):
            list(replay_records(path))

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"values": ["u1"], "t": 0}\n')
        with pytest.raises(StreamError):
            list(replay_records(path))

    def test_lazy_iteration(self, tmp_path, records):
        path = tmp_path / "stream.jsonl"
        write_records(records, path)
        it = replay_records(path)
        assert next(it) == records[0]


class TestCapture:
    def test_tee_passes_through_and_persists(self, tmp_path, records):
        path = tmp_path / "tee.jsonl"
        tee = capture(iter(records), path)
        passed = list(tee)
        assert passed == records
        assert tee.written == 3
        assert list(replay_records(path)) == records

    def test_replayed_engine_run_is_identical(self, tmp_path):
        """Capture a live simulation, replay it, get identical cube state."""
        pytest.importorskip("numpy")  # drives the power-grid simulator
        from repro.cubing.policy import GlobalSlopeThreshold
        from repro.stream.engine import StreamCubeEngine
        from repro.tilt.frame import TiltLevelSpec

        sim = PowerGridSimulator(
            PowerGridConfig(
                n_cities=1,
                blocks_per_city=2,
                addresses_per_block=1,
                users_per_address=1,
                seed=7,
            )
        )
        layers = sim.layers()

        def fresh_engine():
            return StreamCubeEngine(
                layers,
                GlobalSlopeThreshold(0.0),
                key_fn=sim.m_key_fn(),
                ticks_per_quarter=15,
                frame_levels=[TiltLevelSpec("quarter", 15, 8)],
            )

        path = tmp_path / "session.jsonl"
        live = fresh_engine()
        for record in capture(sim.records(30), path):
            live.ingest(record)
        live.advance_to(30)

        replayed = fresh_engine()
        replayed.ingest_many(replay_records(path))
        replayed.advance_to(30)

        assert live.m_cells(2) == replayed.m_cells(2)


class TestEmptyStreams:
    def test_write_empty_stream(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_records([], path) == 0
        assert path.exists()
        assert list(replay_records(path)) == []

    def test_replay_blank_lines_only(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text("\n\n\n")
        assert list(replay_records(path)) == []

    def test_capture_empty_iterator(self, tmp_path):
        path = tmp_path / "empty-tee.jsonl"
        tee = capture(iter([]), path)
        assert list(tee) == []
        assert tee.written == 0
        assert list(replay_records(path)) == []

    def test_replayed_empty_stream_leaves_engine_untouched(self, tmp_path):
        from repro.cubing.policy import GlobalSlopeThreshold
        from repro.stream.engine import StreamCubeEngine
        from repro.stream.generator import DatasetSpec

        path = tmp_path / "empty.jsonl"
        write_records([], path)
        engine = StreamCubeEngine(
            DatasetSpec(2, 2, 3, 1).build_layers(),
            GlobalSlopeThreshold(0.1),
            ticks_per_quarter=4,
        )
        engine.ingest_many(replay_records(path))
        assert engine.records_ingested == 0
        assert engine.tracked_cells == 0
