"""Engine snapshot/restore: bit-identical state extraction and re-loading.

The durability contract of :mod:`repro.stream.state`: ``snapshot()`` at any
moment — mid-quarter included — then ``restore()`` (optionally through the
JSON codec) yields an engine whose every observable (window ISBs, refresh
results, pending accumulators, counters, pruning behaviour) is bit-identical
to the original, and whose *future* (continuing to ingest the same records)
is bit-identical too.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.hierarchy import FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.cubing.policy import GlobalSlopeThreshold
from repro.errors import CodecError, SchemaError, StreamError
from repro.io import (
    engine_state_from_dict,
    engine_state_to_dict,
    frame_from_dict,
    frame_to_dict,
    tilt_level_from_dict,
    tilt_level_to_dict,
)
from repro.stream.engine import StreamCubeEngine
from repro.stream.records import StreamRecord
from repro.stream.state import EngineState
from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame

TPQ = 4


def build_layers() -> CriticalLayers:
    schema = CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 3)),
            Dimension("b", FanoutHierarchy("b", 2, 3)),
        ]
    )
    return CriticalLayers(schema, m_coord=(2, 2), o_coord=(1, 1))


def make_engine(layers=None) -> StreamCubeEngine:
    return StreamCubeEngine(
        layers if layers is not None else build_layers(),
        GlobalSlopeThreshold(0.1),
        ticks_per_quarter=TPQ,
    )


def random_records(seed: int, n: int, quarters: int) -> list[StreamRecord]:
    rng = random.Random(seed)
    out = []
    ticks = sorted(rng.randrange(quarters * TPQ) for _ in range(n))
    for t in ticks:
        values = (rng.randrange(9), rng.randrange(9))
        out.append(StreamRecord(values, t, rng.uniform(-2.0, 5.0)))
    return out


def assert_engines_identical(a: StreamCubeEngine, b: StreamCubeEngine) -> None:
    assert a.current_quarter == b.current_quarter
    assert a.records_ingested == b.records_ingested
    assert set(a._cells) == set(b._cells)
    for key in a._cells:
        sa, sb = a._cells[key], b._cells[key]
        assert sa.tick_sums == sb.tick_sums
        assert sa.last_active_quarter == sb.last_active_quarter
        assert list(sa.frame.all_slots()) == list(sb.frame.all_slots())
        assert sa.frame.now == sb.frame.now
        assert sa.frame.evicted_slots == sb.frame.evicted_slots


class TestTiltFrameCodec:
    def test_round_trip_bit_identical(self):
        frame = TiltTimeFrame(
            [TiltLevelSpec("q", 4, 4), TiltLevelSpec("h", 16, 6)], origin=0
        )
        rng = random.Random(3)
        from repro.regression.isb import ISB

        for i in range(23):
            lo = i * 4
            frame.insert(ISB(lo, lo + 3, rng.uniform(-1, 1), rng.uniform(-1, 1)))
        back = frame_from_dict(frame_to_dict(frame))
        assert list(back.all_slots()) == list(frame.all_slots())
        assert back.now == frame.now
        assert back.origin == frame.origin
        assert back.evicted_slots == frame.evicted_slots
        assert back.aligned_with(frame)

    def test_json_survives_floats(self):
        frame = TiltTimeFrame([TiltLevelSpec("q", 1, 8)])
        from repro.regression.isb import ISB

        frame.insert(ISB(0, 0, 0.1 + 0.2, -1e-17))
        wire = json.loads(json.dumps(frame_to_dict(frame)))
        back = frame_from_dict(wire)
        assert list(back.all_slots()) == list(frame.all_slots())

    def test_level_spec_round_trip(self):
        spec = TiltLevelSpec("day", 96, 31)
        assert tilt_level_from_dict(tilt_level_to_dict(spec)) == spec

    def test_shared_levels_identity(self):
        frame = TiltTimeFrame([TiltLevelSpec("q", 4, 4)])
        levels = frame.levels
        back = frame_from_dict(frame_to_dict(frame), levels=levels)
        assert back.levels is levels

    def test_shared_levels_mismatch_raises(self):
        frame = TiltTimeFrame([TiltLevelSpec("q", 4, 4)])
        with pytest.raises(CodecError, match="do not match"):
            frame_from_dict(
                frame_to_dict(frame), levels=(TiltLevelSpec("q", 8, 4),)
            )

    def test_over_capacity_slots_rejected(self):
        frame = TiltTimeFrame([TiltLevelSpec("q", 1, 2)])
        from repro.regression.isb import ISB

        frame.insert(ISB(0, 0, 1.0, 0.0))
        payload = frame_to_dict(frame)
        payload["slots"][0] = payload["slots"][0] * 5
        with pytest.raises(CodecError):
            frame_from_dict(payload)


class TestEngineSnapshot:
    def test_round_trip_in_memory(self):
        engine = make_engine()
        engine.ingest_many(random_records(1, 200, 5))
        restored = StreamCubeEngine.restore(
            engine.snapshot(), engine.layers, engine.policy
        )
        assert_engines_identical(engine, restored)

    def test_round_trip_through_json(self):
        engine = make_engine()
        engine.ingest_many(random_records(2, 150, 4))
        wire = json.loads(json.dumps(engine_state_to_dict(engine.snapshot())))
        restored = StreamCubeEngine.restore(
            engine_state_from_dict(wire), engine.layers, engine.policy
        )
        assert_engines_identical(engine, restored)

    def test_snapshot_is_independent_of_live_engine(self):
        engine = make_engine()
        records = random_records(3, 120, 4)
        engine.ingest_many(records[:60])
        state = engine.snapshot()
        before = engine_state_to_dict(state)
        engine.ingest_many(records[60:])  # mutate the live engine
        engine.advance_to(4 * TPQ)
        assert engine_state_to_dict(state) == before

    def test_restore_under_wrong_schema_raises(self):
        engine = make_engine()
        engine.ingest_many(random_records(4, 50, 3))
        schema = CubeSchema([Dimension("a", FanoutHierarchy("a", 2, 3))])
        other = CriticalLayers(schema, m_coord=(2,), o_coord=(1,))
        with pytest.raises(SchemaError):
            StreamCubeEngine.restore(engine.snapshot(), other, engine.policy)

    def test_restore_under_wrong_ticks_per_quarter_raises(self):
        engine = make_engine()
        engine.ingest_many(random_records(5, 50, 3))
        other = StreamCubeEngine(
            engine.layers, engine.policy, ticks_per_quarter=TPQ + 1
        )
        with pytest.raises(StreamError, match="ticks_per_quarter"):
            other.load_state(engine.snapshot())

    def test_misaligned_snapshot_frame_raises(self):
        engine = make_engine()
        engine.ingest_many(random_records(6, 80, 4))
        state = engine.snapshot()
        key = next(iter(state.cells))
        broken = dict(state.cells)
        victim = broken[key]
        stale = engine._zero_frame.clone()
        stale._next_tick += TPQ  # desync the clock
        broken[key] = type(victim)(
            frame=stale,
            tick_sums=victim.tick_sums,
            last_active_quarter=victim.last_active_quarter,
        )
        bad = EngineState(
            ticks_per_quarter=state.ticks_per_quarter,
            frame_levels=state.frame_levels,
            current_quarter=state.current_quarter,
            records_ingested=state.records_ingested,
            zero_frame=state.zero_frame,
            cells=broken,
        )
        with pytest.raises(StreamError, match="not aligned"):
            StreamCubeEngine.restore(bad, engine.layers, engine.policy)

    def test_restored_engine_keeps_bulk_fast_paths(self):
        """Restored frames must share one levels tuple (identity alignment)."""
        engine = make_engine()
        engine.ingest_many(random_records(7, 100, 4))
        wire = engine_state_to_dict(engine.snapshot())
        state = engine_state_from_dict(wire)
        restored = StreamCubeEngine.restore(state, engine.layers, engine.policy)
        frames = [s.frame for s in restored._cells.values()]
        assert all(f.levels is restored._zero_frame.levels for f in frames)

    def test_prune_composes_with_restore(self):
        """Pruned cells stay pruned; last_active_quarter survives."""
        engine = make_engine()
        active, idle = (0, 0), (8, 8)
        engine.ingest(StreamRecord(idle, 1, 1.0))
        for q in range(8):
            engine.ingest(StreamRecord(active, q * TPQ, 2.0))
        engine.advance_to(8 * TPQ)
        dropped = engine.prune_idle(4)
        assert dropped == 1
        restored = StreamCubeEngine.restore(
            engine_state_from_dict(
                json.loads(
                    json.dumps(engine_state_to_dict(engine.snapshot()))
                )
            ),
            engine.layers,
            engine.policy,
        )
        assert idle not in restored._cells
        assert (
            restored._cells[active].last_active_quarter
            == engine._cells[active].last_active_quarter
        )
        # Pruning again on the restored engine drops nothing new.
        assert restored.prune_idle(4) == 0


def v1_payload(engine: StreamCubeEngine) -> dict:
    """The pre-packed (version 1) wire shape of an engine's snapshot."""
    state = engine.snapshot()
    payload = engine_state_to_dict(state)
    payload["version"] = 1
    payload["cells"] = [
        {
            "values": list(values),
            "frame": frame_to_dict(cell.frame),
            "tick_sums": [[t, z] for t, z in cell.tick_sums.items()],
            "last_active_quarter": cell.last_active_quarter,
        }
        for values, cell in state.cells.items()
    ]
    return payload


class TestPackedStateCodec:
    """Format version 2: packed base64 slot columns, version-1 compat."""

    def loaded_engine(self, seed=9) -> StreamCubeEngine:
        engine = make_engine()
        engine.ingest_many(random_records(seed, 150, 6))
        return engine

    def test_version_2_rows_are_packed(self):
        payload = engine_state_to_dict(self.loaded_engine().snapshot())
        assert payload["version"] == 2
        assert payload["cells"]
        for row in payload["cells"]:
            assert set(row) <= {"v", "s", "q", "t", "c"}
            assert isinstance(row["s"], str)

    def test_version_1_payload_still_loads(self):
        engine = self.loaded_engine()
        wire = json.loads(json.dumps(v1_payload(engine)))
        restored = StreamCubeEngine.restore(
            engine_state_from_dict(wire), engine.layers, engine.policy
        )
        assert_engines_identical(engine, restored)

    def test_packed_form_is_substantially_smaller(self):
        engine = self.loaded_engine()
        packed = len(json.dumps(engine_state_to_dict(engine.snapshot())))
        verbose = len(json.dumps(v1_payload(engine)))
        assert packed < verbose / 2

    def test_unknown_version_rejected(self):
        payload = engine_state_to_dict(self.loaded_engine().snapshot())
        payload["version"] = 3
        with pytest.raises(CodecError, match="version"):
            engine_state_from_dict(payload)

    def test_torn_slot_blob_rejected(self):
        payload = engine_state_to_dict(self.loaded_engine().snapshot())
        payload["cells"][0]["s"] = payload["cells"][0]["s"][: -12]
        with pytest.raises(CodecError):
            engine_state_from_dict(payload)

    def test_garbage_base64_rejected(self):
        payload = engine_state_to_dict(self.loaded_engine().snapshot())
        payload["cells"][0]["s"] = "!!!not base64!!!"
        with pytest.raises(CodecError):
            engine_state_from_dict(payload)

    def test_torn_accumulator_column_rejected(self):
        engine = self.loaded_engine()
        payload = engine_state_to_dict(engine.snapshot())
        row = next(r for r in payload["cells"] if "t" in r)
        import base64

        raw = base64.b64decode(row["t"])
        row["t"] = base64.b64encode(raw[:-3]).decode("ascii")
        with pytest.raises(CodecError, match="torn"):
            engine_state_from_dict(payload)

    def test_duplicate_cell_rejected(self):
        payload = engine_state_to_dict(self.loaded_engine().snapshot())
        payload["cells"].append(dict(payload["cells"][0]))
        with pytest.raises(CodecError, match="duplicate"):
            engine_state_from_dict(payload)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    cut=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=25, deadline=None)
def test_snapshot_restore_continue_is_bit_identical(seed, cut):
    """snapshot anywhere -> restore -> keep ingesting == uninterrupted run."""
    layers = build_layers()
    records = random_records(seed, 160, 5)
    split = max(1, int(len(records) * cut))
    uninterrupted = make_engine(layers)
    uninterrupted.ingest_many(records)
    uninterrupted.advance_to(5 * TPQ)

    first = make_engine(layers)
    first.ingest_many(records[:split])
    state = engine_state_from_dict(
        json.loads(json.dumps(engine_state_to_dict(first.snapshot())))
    )
    resumed = StreamCubeEngine.restore(
        state, layers, GlobalSlopeThreshold(0.1)
    )
    resumed.ingest_many(records[split:])
    resumed.advance_to(5 * TPQ)
    assert_engines_identical(uninterrupted, resumed)
    assert resumed.window_isbs(0, 5 * TPQ - 1) == uninterrupted.window_isbs(
        0, 5 * TPQ - 1
    )
    ru = uninterrupted.refresh(4)
    rr = resumed.refresh(4)
    assert rr.o_layer_exceptions() == ru.o_layer_exceptions()
    assert rr.retained_exceptions == ru.retained_exceptions
