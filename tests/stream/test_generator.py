"""Tests for the DxLyCzTn dataset generator."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.stream.generator import DatasetSpec, generate_dataset


class TestSpecParsing:
    def test_parse_paper_name(self):
        spec = DatasetSpec.parse("D3L3C10T100K")
        assert spec == DatasetSpec(3, 3, 10, 100_000)

    def test_parse_plain_tuple_count(self):
        assert DatasetSpec.parse("D2L2C5T750").n_tuples == 750

    def test_name_round_trip(self):
        for name in ("D3L3C10T100K", "D2L4C7T512", "D1L2C2T1K"):
            assert DatasetSpec.parse(name).name == name

    def test_parse_rejects_garbage(self):
        for bad in ("X3L3C10T1K", "D3L3C10", "D3L3C10T", ""):
            with pytest.raises(SchemaError):
                DatasetSpec.parse(bad)

    def test_spec_validation(self):
        with pytest.raises(SchemaError):
            DatasetSpec(0, 3, 10, 100)
        with pytest.raises(SchemaError):
            DatasetSpec(3, 1, 10, 100)  # need m != o
        with pytest.raises(SchemaError):
            DatasetSpec(3, 3, 1, 100)
        with pytest.raises(SchemaError):
            DatasetSpec(3, 3, 10, 0)


class TestLayersConstruction:
    def test_lattice_has_l_pow_d_cuboids(self):
        layers = DatasetSpec(3, 3, 10, 1).build_layers()
        assert layers.lattice.size == 27

    def test_o_layer_at_level_one(self):
        layers = DatasetSpec(2, 4, 5, 1).build_layers()
        assert layers.o_coord == (1, 1)
        assert layers.m_coord == (4, 4)

    def test_cardinalities_follow_fanout(self):
        layers = DatasetSpec(1, 3, 10, 1).build_layers()
        h = layers.schema.hierarchy(0)
        assert [h.cardinality(l) for l in (1, 2, 3)] == [10, 100, 1000]


class TestGeneration:
    def test_deterministic_given_seed(self):
        a = generate_dataset("D2L2C4T200", seed=3)
        b = generate_dataset("D2L2C4T200", seed=3)
        assert a.cells == b.cells

    def test_different_seed_different_data(self):
        a = generate_dataset("D2L2C4T200", seed=3)
        b = generate_dataset("D2L2C4T200", seed=4)
        assert a.cells != b.cells

    def test_cell_count_tracks_tuples_minus_collisions(self):
        data = generate_dataset("D2L2C3T500", seed=1)
        assert data.n_cells + data.collisions == 500

    def test_values_are_valid_leaves(self):
        data = generate_dataset("D2L3C3T100", seed=2)
        layers = data.layers
        for values in data.cells:
            layers.schema.validate_values(values, layers.m_coord)

    def test_window_interval(self):
        data = generate_dataset("D2L2C3T50", seed=1, window_ticks=8)
        assert data.window == (0, 7)
        assert all(isb.interval == (0, 7) for isb in data.cells.values())

    def test_zipf_skews_leaf_popularity(self):
        pytest.importorskip("numpy")  # zipf draws require numpy
        # Leaf space (1000) well above tuple count so saturation cannot
        # mask the skew.
        uniform = generate_dataset("D1L3C10T2K", seed=5)
        skewed = generate_dataset("D1L3C10T2K", seed=5, zipf_a=1.5)
        # Zipf concentrates mass: fewer distinct cells than uniform.
        assert skewed.n_cells < uniform.n_cells

    def test_zipf_validation(self):
        with pytest.raises(SchemaError):
            generate_dataset("D1L2C3T10", zipf_a=1.0)

    def test_slope_spread_nontrivial(self):
        pytest.importorskip("numpy")  # spread bound calibrated for the numpy draw stream
        data = generate_dataset("D2L2C4T1K", seed=6, slope_scale=0.1)
        slopes = [abs(i.slope) for i in data.cells.values()]
        assert max(slopes) > 10 * (sum(slopes) / len(slopes)) * 0.5

    def test_subset_takes_prefix(self):
        data = generate_dataset("D2L2C4T300", seed=7)
        sub = data.subset(100)
        assert sub.n_cells == 100
        assert set(sub.cells) <= set(data.cells)

    def test_subset_cached(self):
        data = generate_dataset("D2L2C4T300", seed=7)
        assert data.subset(50) is data.subset(50)

    def test_subset_too_large_rejected(self):
        data = generate_dataset("D2L2C4T100", seed=7)
        with pytest.raises(SchemaError):
            data.subset(10_000)

    def test_spec_accepts_object_or_string(self):
        spec = DatasetSpec(2, 2, 3, 50)
        a = generate_dataset(spec, seed=1)
        b = generate_dataset("D2L2C3T50", seed=1)
        assert a.cells == b.cells
