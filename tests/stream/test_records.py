"""Tests for stream records and ordering helpers."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.stream.records import StreamRecord, sort_records, validate_monotonic


class TestStreamRecord:
    def test_fields(self):
        r = StreamRecord(values=("u1", "a1"), t=5, z=1.5)
        assert r.values == ("u1", "a1")
        assert r.t == 5 and r.z == 1.5

    def test_frozen(self):
        r = StreamRecord(values=("u1",), t=0, z=0.0)
        with pytest.raises(AttributeError):
            r.t = 1  # type: ignore[misc]


class TestOrderingHelpers:
    def test_sort_records(self):
        records = [
            StreamRecord(("a",), 3, 1.0),
            StreamRecord(("b",), 1, 2.0),
            StreamRecord(("c",), 2, 3.0),
        ]
        assert [r.t for r in sort_records(records)] == [1, 2, 3]

    def test_sort_stable_for_equal_ticks(self):
        records = [
            StreamRecord(("a",), 1, 1.0),
            StreamRecord(("b",), 1, 2.0),
        ]
        assert [r.values[0] for r in sort_records(records)] == ["a", "b"]

    def test_validate_monotonic_passes_ordered(self):
        records = [StreamRecord(("a",), t, 0.0) for t in (1, 1, 2, 5)]
        assert list(validate_monotonic(records)) == records

    def test_validate_monotonic_raises_on_regression(self):
        records = [
            StreamRecord(("a",), 2, 0.0),
            StreamRecord(("a",), 1, 0.0),
        ]
        with pytest.raises(StreamError):
            list(validate_monotonic(records))
