"""Grouped batch ingestion leaves the engine bit-identical to per-record.

``ingest_many`` takes the grouped fast path (bucket once per batch, one
kernel fit per sealed quarter, bulk tilt-frame promotion); these tests pin
that an engine fed that way is *exactly* — dict equality on frozen ISB
dataclasses, i.e. exact float equality — the engine a record-at-a-time
``ingest`` loop produces.  This is the contract the sharded service's
shard-count invariance rests on.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.hierarchy import FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.cubing.policy import GlobalSlopeThreshold
from repro.stream.engine import StreamCubeEngine
from repro.stream.records import StreamRecord

TPQ = 4


@pytest.fixture
def layers():
    schema = CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 3)),
            Dimension("b", FanoutHierarchy("b", 2, 3)),
        ]
    )
    return CriticalLayers(schema, m_coord=(2, 2), o_coord=(1, 1))


def make_engine(layers):
    return StreamCubeEngine(
        layers, GlobalSlopeThreshold(0.0), ticks_per_quarter=TPQ
    )


def random_batch(seed: int, n_records: int, n_quarters: int):
    """A quarter-ordered batch with shuffled ticks inside each quarter."""
    rng = random.Random(seed)
    records = []
    for q in range(n_quarters):
        quarter_records = []
        for _ in range(rng.randrange(0, n_records // n_quarters + 1)):
            t = q * TPQ + rng.randrange(TPQ)
            values = (rng.randrange(9), rng.randrange(9))
            quarter_records.append(
                StreamRecord(values, t, rng.uniform(-10.0, 10.0))
            )
        rng.shuffle(quarter_records)  # any tick order within a quarter
        records.extend(quarter_records)
    return records


def assert_engines_identical(a: StreamCubeEngine, b: StreamCubeEngine):
    assert a.records_ingested == b.records_ingested
    assert a.tracked_cells == b.tracked_cells
    assert a.current_quarter == b.current_quarter
    keys_a = sorted(a._cells)
    assert keys_a == sorted(b._cells)
    for key in keys_a:
        sa, sb = a._cells[key], b._cells[key]
        # Same pending per-tick sums, bit for bit.
        assert sa.tick_sums == sb.tick_sums
        assert sa.last_active_quarter == sb.last_active_quarter
        # Same retained slots at every granularity, bit for bit.
        assert list(sa.frame.all_slots()) == list(sb.frame.all_slots())
        assert sa.frame.now == sb.frame.now


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_quarters=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_batch_equals_record_at_a_time(seed, n_quarters):
    # hypothesis can't inject pytest fixtures; build layers inline.
    schema = CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 3)),
            Dimension("b", FanoutHierarchy("b", 2, 3)),
        ]
    )
    layers = CriticalLayers(schema, m_coord=(2, 2), o_coord=(1, 1))
    records = random_batch(seed, 60, n_quarters)
    grouped = make_engine(layers)
    scalar = make_engine(layers)
    grouped.ingest_many(records)
    for record in records:
        scalar.ingest(record)
    assert_engines_identical(grouped, scalar)


class TestGroupedIngest:
    def test_multiple_batches_mid_quarter(self, layers):
        """Partial-quarter batches hit the sequential-fallback accumulator."""
        rng = random.Random(5)
        grouped = make_engine(layers)
        scalar = make_engine(layers)
        for start in range(0, 4 * TPQ, 2):  # two ticks per batch: mid-quarter
            batch = [
                StreamRecord(
                    (rng.randrange(9), rng.randrange(9)),
                    start + (i % 2),
                    rng.uniform(-5, 5),
                )
                for i in range(10)
            ]
            batch.sort(key=lambda r: r.t // TPQ)
            grouped.ingest_many(batch)
            for record in batch:
                scalar.ingest(record)
        assert_engines_identical(grouped, scalar)

    def test_large_groups_vector_path(self, layers):
        """>= 16 records per (cell, quarter) exercises the bincount path."""
        rng = random.Random(9)
        records = []
        for q in range(3):
            for _ in range(40):  # one hot cell per quarter
                records.append(
                    StreamRecord(
                        (1, 2), q * TPQ + rng.randrange(TPQ),
                        rng.uniform(-2, 2),
                    )
                )
        grouped = make_engine(layers)
        scalar = make_engine(layers)
        grouped.ingest_many(records)
        for record in records:
            scalar.ingest(record)
        assert_engines_identical(grouped, scalar)

    def test_repeated_ticks_accumulate_in_record_order(self, layers):
        """Same-tick records sum left to right on both paths."""
        values = [1e16, 1.0, 1.0, -1e16]
        records = [StreamRecord((0, 0), 0, z) for z in values]
        grouped = make_engine(layers)
        scalar = make_engine(layers)
        grouped.ingest_many(records)
        for record in records:
            scalar.ingest(record)
        assert_engines_identical(grouped, scalar)

    def test_windows_match_after_seal(self, layers):
        records = random_batch(3, 80, 5)
        grouped = make_engine(layers)
        scalar = make_engine(layers)
        grouped.ingest_many(records)
        for record in records:
            scalar.ingest(record)
        grouped.advance_to(5 * TPQ)
        scalar.advance_to(5 * TPQ)
        # dict equality on frozen dataclasses == exact float equality
        assert grouped.window_isbs(0, 5 * TPQ - 1) == scalar.window_isbs(
            0, 5 * TPQ - 1
        )


class TestPruneIdleO1:
    def test_idle_cell_dropped_without_frame_probe(self, layers):
        engine = make_engine(layers)
        for t in range(TPQ):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
            engine.ingest(StreamRecord((3, 3), t, 1.0))
        for t in range(TPQ, 3 * TPQ):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
        engine.advance_to(3 * TPQ)
        assert engine.prune_idle(2) == 1
        assert engine.tracked_cells == 1

    def test_zero_reporting_cell_counts_as_active(self, layers):
        """A sensor streaming zeros has records — it is alive, not idle."""
        engine = make_engine(layers)
        for t in range(3 * TPQ):
            engine.ingest(StreamRecord((0, 0), t, 0.0))
        engine.advance_to(3 * TPQ)
        assert engine.prune_idle(2) == 0
        assert engine.tracked_cells == 1

    def test_uncoverable_window_prunes_nothing(self, layers):
        from repro.tilt.frame import TiltLevelSpec

        engine = StreamCubeEngine(
            layers,
            GlobalSlopeThreshold(0.0),
            ticks_per_quarter=TPQ,
            frame_levels=[TiltLevelSpec("quarter", TPQ, 2)],
        )
        for t in range(TPQ):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
        engine.advance_to(6 * TPQ)  # far beyond 2 retained quarter slots
        # 5 idle quarters, but only 2 retained: idleness is unprovable.
        assert engine.prune_idle(5) == 0
        assert engine.tracked_cells == 1

    def test_accumulating_cell_survives(self, layers):
        engine = make_engine(layers)
        for t in range(2 * TPQ):
            engine.ingest(StreamRecord((0, 0), t, 1.0))
        engine.advance_to(2 * TPQ)
        engine.ingest(StreamRecord((3, 3), 2 * TPQ, 1.0))
        assert engine.prune_idle(2) == 0
        assert engine.tracked_cells == 2
