"""Typed codec errors: every decoder fails with a contextual CodecError.

The satellite contract: no decoder in :mod:`repro.io` (or the state codecs
built on it) ever surfaces a raw ``KeyError``/``TypeError``/``ValueError``
from a malformed payload — always a :class:`~repro.errors.CodecError`
naming the codec and the problem, and ``CodecError`` slots under
``SchemaError``/``ReproError`` so existing guards keep working.
"""

from __future__ import annotations

import json

import pytest

from repro import io
from repro.errors import CodecError, ReproError, SchemaError
from repro.regression.isb import ISB
from repro.stream.state import EngineState


class TestHierarchy:
    def test_codec_error_is_schema_and_repro_error(self):
        assert issubclass(CodecError, SchemaError)
        assert issubclass(CodecError, ReproError)


class TestIsbCodec:
    def test_missing_field_names_it(self):
        with pytest.raises(CodecError, match=r"isb: payload missing field 'slope'"):
            io.isb_from_dict({"t_b": 0, "t_e": 3, "base": 1.0})

    def test_mistyped_field_is_codec_error(self):
        with pytest.raises(CodecError, match="isb: malformed payload"):
            io.isb_from_dict({"t_b": 0, "t_e": 3, "base": "xyz", "slope": 0.0})

    def test_non_mapping_payload_is_codec_error(self):
        with pytest.raises(CodecError, match="isb"):
            io.isb_from_dict(None)  # type: ignore[arg-type]


class TestCellsCodec:
    def test_missing_values_field(self):
        with pytest.raises(CodecError, match="cells"):
            io.cells_from_payload([{"isb": io.isb_to_dict(ISB(0, 1, 0, 0))}])

    def test_duplicate_cells_rejected(self):
        row = {"values": [1, 2], "isb": io.isb_to_dict(ISB(0, 1, 0.0, 0.0))}
        with pytest.raises(CodecError, match="duplicate cell"):
            io.cells_from_payload([row, dict(row)])

    def test_load_cells_rejects_non_json(self, tmp_path):
        path = tmp_path / "cells.json"
        path.write_text("{ not json")
        with pytest.raises(CodecError, match="not valid JSON"):
            io.load_cells(path)

    def test_load_cells_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "cells.json"
        path.write_text(json.dumps({"format": "other", "version": 1}))
        with pytest.raises(CodecError, match="not a repro-cells payload"):
            io.load_cells(path)

    def test_load_cells_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "cells.json"
        path.write_text(
            json.dumps({"format": "repro-cells", "version": 99, "cells": []})
        )
        with pytest.raises(CodecError, match="unsupported version 99"):
            io.load_cells(path)

    def test_load_cells_rejects_malformed_rows(self, tmp_path):
        path = tmp_path / "cells.json"
        path.write_text(
            json.dumps(
                {"format": "repro-cells", "version": 1, "cells": [{"bad": 1}]}
            )
        )
        with pytest.raises(CodecError):
            io.load_cells(path)


class TestExceptionsCodec:
    def test_load_exceptions_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "exc.json"
        path.write_text(json.dumps({"format": "repro-cells", "version": 1}))
        with pytest.raises(CodecError, match="not a repro-exceptions payload"):
            io.load_exceptions(path)

    def test_load_exceptions_rejects_malformed_cuboids(self, tmp_path):
        path = tmp_path / "exc.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-exceptions",
                    "version": 1,
                    "cuboids": [{"coord": "nope"}],
                }
            )
        )
        with pytest.raises(CodecError, match="exceptions"):
            io.load_exceptions(path)


class TestFrameCodec:
    def test_wrong_format_tag(self):
        with pytest.raises(CodecError, match="not a repro-tilt-frame"):
            io.frame_from_dict({"format": "nope", "version": 1})

    def test_missing_slots_field(self):
        payload = {
            "format": "repro-tilt-frame",
            "version": 1,
            "levels": [{"name": "q", "unit_ticks": 4, "capacity": 4}],
            "origin": 0,
            "next_tick": 0,
            "evicted": 0,
        }
        with pytest.raises(CodecError, match="tilt_frame"):
            io.frame_from_dict(payload)

    def test_invalid_level_spec_is_codec_error(self):
        with pytest.raises(CodecError, match="tilt_level"):
            io.tilt_level_from_dict({"name": "q", "unit_ticks": 0, "capacity": 4})


class TestEngineStateCodec:
    def test_wrong_format_tag(self):
        with pytest.raises(CodecError, match="not a repro-engine-state"):
            EngineState.from_dict({"format": "nope", "version": 1})

    def test_malformed_cell_row(self):
        payload = {
            "format": "repro-engine-state",
            "version": 1,
            "ticks_per_quarter": 4,
            "frame_levels": [{"name": "q", "unit_ticks": 4, "capacity": 4}],
            "current_quarter": 0,
            "records_ingested": 0,
            "wal_seq": 0,
            "zero_frame": {
                "format": "repro-tilt-frame",
                "version": 1,
                "levels": [{"name": "q", "unit_ticks": 4, "capacity": 4}],
                "origin": 0,
                "next_tick": 0,
                "evicted": 0,
                "slots": [[]],
            },
            "cells": [{"values": [1, 2]}],  # no frame / tick_sums
        }
        with pytest.raises(CodecError, match="engine_state"):
            EngineState.from_dict(payload)
