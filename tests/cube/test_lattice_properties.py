"""Property-based tests for the cuboid lattice over random shapes."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.hierarchy import FanoutHierarchy
from repro.cube.lattice import CuboidLattice, PopularPath
from repro.cube.schema import CubeSchema, Dimension


@st.composite
def lattices(draw):
    n_dims = draw(st.integers(min_value=1, max_value=4))
    depths = [draw(st.integers(min_value=1, max_value=4)) for _ in range(n_dims)]
    dims = [
        Dimension(f"d{i}", FanoutHierarchy(f"d{i}", depth, 2))
        for i, depth in enumerate(depths)
    ]
    schema = CubeSchema(dims)
    m = tuple(depths)
    o = tuple(draw(st.integers(min_value=0, max_value=d)) for d in depths)
    if o == m:
        # Force at least one dimension coarser so the lattice is non-trivial.
        i = draw(st.integers(min_value=0, max_value=n_dims - 1))
        o = o[:i] + (max(0, o[i] - 1),) + o[i + 1 :]
        if o == m:
            o = tuple(0 for _ in m)
    return CuboidLattice(schema, m, o)


@given(lattice=lattices())
@settings(max_examples=60, deadline=None)
def test_size_matches_enumeration(lattice):
    assert len(list(lattice.coords())) == lattice.size


@given(lattice=lattices())
@settings(max_examples=60, deadline=None)
def test_parents_children_are_inverse_relations(lattice):
    for coord in lattice.coords():
        for parent in lattice.parents(coord):
            assert coord in lattice.children(parent)
        for child in lattice.children(coord):
            assert coord in lattice.parents(child)


@given(lattice=lattices())
@settings(max_examples=60, deadline=None)
def test_bottom_up_order_topological(lattice):
    order = lattice.bottom_up_order()
    assert set(order) == set(lattice.coords())
    position = {c: i for i, c in enumerate(order)}
    for coord in lattice.coords():
        for child in lattice.children(coord):
            assert position[child] < position[coord]


@given(lattice=lattices())
@settings(max_examples=60, deadline=None)
def test_m_layer_unique_bottom_o_layer_unique_top(lattice):
    no_children = [c for c in lattice.coords() if not lattice.children(c)]
    no_parents = [c for c in lattice.coords() if not lattice.parents(c)]
    assert no_children == [lattice.m_coord]
    assert no_parents == [lattice.o_coord]


@given(lattice=lattices())
@settings(max_examples=60, deadline=None)
def test_default_popular_path_is_valid_and_spans(lattice):
    path = PopularPath.default(lattice)
    assert path.m_coord == lattice.m_coord
    assert path.o_coord == lattice.o_coord
    assert len(path) == 1 + sum(
        m - o for m, o in zip(lattice.m_coord, lattice.o_coord)
    )
    for coord in path:
        assert coord in lattice


@given(lattice=lattices())
@settings(max_examples=60, deadline=None)
def test_closest_descendant_is_descendant_and_minimal(lattice):
    computed = list(lattice.coords())
    for coord in lattice.coords():
        best = lattice.closest_descendant(coord, computed)
        assert best is not None
        assert lattice.is_descendant_cuboid(best, coord)
        # Nothing strictly cheaper qualifies.
        for other in computed:
            if lattice.is_descendant_cuboid(other, coord):
                assert lattice.max_cells(best) <= lattice.max_cells(other)
