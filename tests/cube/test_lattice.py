"""Tests for the cuboid lattice and popular paths (Fig 6, Example 5)."""

from __future__ import annotations

import pytest

from repro.cube.lattice import CuboidLattice, PopularPath
from repro.errors import LayerError, SchemaError


class TestExample5Lattice:
    def test_example5_twelve_cuboids(self, example5_layers):
        """Fig 6: exactly 2 * 3 * 2 = 12 cuboids between the layers."""
        assert example5_layers.lattice.size == 12
        assert len(list(example5_layers.lattice.coords())) == 12

    def test_membership(self, example5_layers):
        lat = example5_layers.lattice
        assert (1, 0, 1) in lat  # o-layer
        assert (2, 2, 2) in lat  # m-layer
        assert (1, 1, 2) in lat
        assert (0, 0, 1) not in lat  # A above o-layer
        assert (1, 0) not in lat  # wrong arity

    def test_parents_children_inverse(self, example5_layers):
        lat = example5_layers.lattice
        for coord in lat.coords():
            for parent in lat.parents(coord):
                assert coord in lat.children(parent)
            for child in lat.children(coord):
                assert coord in lat.parents(child)

    def test_m_layer_has_no_children(self, example5_layers):
        lat = example5_layers.lattice
        assert lat.children(example5_layers.m_coord) == []

    def test_o_layer_has_no_parents(self, example5_layers):
        lat = example5_layers.lattice
        assert lat.parents(example5_layers.o_coord) == []

    def test_bottom_up_order_is_topological(self, example5_layers):
        lat = example5_layers.lattice
        order = lat.bottom_up_order()
        assert order[0] == example5_layers.m_coord
        assert order[-1] == example5_layers.o_coord
        position = {c: i for i, c in enumerate(order)}
        for coord in lat.coords():
            for child in lat.children(coord):
                assert position[child] < position[coord]

    def test_top_down_is_reverse_flavor(self, example5_layers):
        lat = example5_layers.lattice
        order = lat.top_down_order()
        assert order[0] == example5_layers.o_coord
        assert order[-1] == example5_layers.m_coord

    def test_max_cells_uses_cardinalities(self, example5_layers):
        lat = example5_layers.lattice
        # m-layer (A2,B2,C2): 10 * 12 * 8
        assert lat.max_cells((2, 2, 2)) == 960
        # o-layer (A1,*,C1): 2 * 1 * 4
        assert lat.max_cells((1, 0, 1)) == 8

    def test_closest_descendant_prefers_small(self, example5_layers):
        lat = example5_layers.lattice
        target = (1, 0, 1)
        # (1, 1, 1): 2*3*4 = 24 cells bound; m-layer bound is 960.
        got = lat.closest_descendant(target, [(2, 2, 2), (1, 1, 1)])
        assert got == (1, 1, 1)

    def test_closest_descendant_none_when_no_candidate(self, example5_layers):
        lat = example5_layers.lattice
        assert lat.closest_descendant((2, 2, 2), [(1, 0, 1)]) is None

    def test_require_rejects_outside(self, example5_layers):
        with pytest.raises(SchemaError):
            example5_layers.lattice.require((0, 0, 0))

    def test_o_finer_than_m_rejected(self, example5_layers):
        schema = example5_layers.schema
        with pytest.raises(LayerError):
            CuboidLattice(schema, m_coord=(1, 1, 1), o_coord=(2, 0, 0))


class TestPopularPath:
    def test_example5_paper_path(self, example5_layers):
        """The dark-line path of Fig 6: <(A1,C1), B1, B2, A2, C2>."""
        lat = example5_layers.lattice
        path = PopularPath.from_drill_sequence(lat, ["B", "B", "A", "C"])
        assert path.o_coord == (1, 0, 1)
        assert path.m_coord == (2, 2, 2)
        assert path.coords == (
            (2, 2, 2),
            (2, 2, 1),
            (1, 2, 1),
            (1, 1, 1),
            (1, 0, 1),
        )

    def test_example5_attribute_order(self, example5_layers):
        """The H-tree order implied by the paper's path:
        A1, C1 (o-layer attrs), then B1, B2, A2, C2."""
        lat = example5_layers.lattice
        path = PopularPath.from_drill_sequence(lat, ["B", "B", "A", "C"])
        # (dim, level): A=0, B=1, C=2.
        assert path.attribute_order == (
            (0, 1),
            (2, 1),
            (1, 1),
            (1, 2),
            (0, 2),
            (2, 2),
        )

    def test_default_path_is_valid_chain(self, example5_layers):
        path = PopularPath.default(example5_layers.lattice)
        assert path.m_coord == example5_layers.m_coord
        assert path.o_coord == example5_layers.o_coord
        assert len(path) == 1 + sum(
            m - o for m, o in zip(example5_layers.m_coord, example5_layers.o_coord)
        )

    def test_path_containment(self, example5_layers):
        path = PopularPath.default(example5_layers.lattice)
        for coord in path:
            assert coord in path

    def test_invalid_step_rejected(self):
        with pytest.raises(LayerError):
            PopularPath(((2, 2), (1, 1)))  # two levels dropped at once

    def test_non_monotone_rejected(self):
        with pytest.raises(LayerError):
            PopularPath(((1, 1), (2, 1)))  # goes finer, not coarser

    def test_empty_rejected(self):
        with pytest.raises(LayerError):
            PopularPath(())

    def test_overdrill_rejected(self, example5_layers):
        with pytest.raises(LayerError):
            PopularPath.from_drill_sequence(
                example5_layers.lattice, ["B", "B", "B", "A", "C"]
            )

    def test_underdrill_rejected(self, example5_layers):
        with pytest.raises(LayerError):
            PopularPath.from_drill_sequence(example5_layers.lattice, ["B"])

    def test_drill_by_index(self, example5_layers):
        path = PopularPath.from_drill_sequence(
            example5_layers.lattice, [1, 1, 0, 2]
        )
        assert path.coords[0] == (2, 2, 2)
