"""Tests for materialized cuboids and their roll-ups."""

from __future__ import annotations

import math

import pytest

from repro.cube.cuboid import Cuboid
from repro.cube.hierarchy import ALL, FanoutHierarchy
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import QueryError, SchemaError
from repro.regression.isb import ISB


@pytest.fixture
def schema() -> CubeSchema:
    return CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 2)),
            Dimension("b", FanoutHierarchy("b", 2, 2)),
        ]
    )


@pytest.fixture
def base(schema) -> Cuboid:
    """A 2x2-leaf cuboid at the finest coordinate."""
    cells = {
        (0, 0): ISB(0, 9, 1.0, 0.1),
        (1, 0): ISB(0, 9, 2.0, 0.2),
        (2, 1): ISB(0, 9, 3.0, 0.3),
        (3, 3): ISB(0, 9, 4.0, 0.4),
    }
    return Cuboid(schema, (2, 2), cells)


class TestMappingInterface:
    def test_len_iter_contains(self, base):
        assert len(base) == 4
        assert set(base) == {(0, 0), (1, 0), (2, 1), (3, 3)}
        assert (0, 0) in base and (9, 9) not in base

    def test_getitem_and_get(self, base):
        assert base[(0, 0)].base == 1.0
        assert base.get((9, 9)) is None
        with pytest.raises(QueryError):
            _ = base[(9, 9)]


class TestRollUp:
    def test_roll_up_one_dim(self, schema, base):
        up = base.roll_up((1, 2))
        # leaves 0,1 share parent 0; leaves 2,3 share parent 1 (fanout 2).
        assert set(up) == {(0, 0), (1, 1), (1, 3)}
        merged = up[(0, 0)]
        assert math.isclose(merged.base, 3.0)  # 1.0 + 2.0
        assert math.isclose(merged.slope, 0.3)

    def test_roll_up_to_apex(self, schema, base):
        apex = base.roll_up((0, 0))
        assert set(apex) == {(ALL, ALL)}
        isb = apex[(ALL, ALL)]
        assert math.isclose(isb.base, 10.0)
        assert math.isclose(isb.slope, 1.0)

    def test_roll_up_identity(self, base):
        same = base.roll_up((2, 2))
        assert set(same) == set(base)

    def test_roll_up_rejects_downward(self, schema):
        c = Cuboid(schema, (1, 1), {(0, 0): ISB(0, 1, 0, 0)})
        with pytest.raises(SchemaError):
            c.roll_up((2, 1))

    def test_roll_up_cell_single_target(self, base):
        isb = base.roll_up_cell((1, 2), (0, 0))
        assert isb is not None
        assert math.isclose(isb.base, 3.0)

    def test_roll_up_cell_missing_target(self, base):
        assert base.roll_up_cell((1, 2), (0, 3)) is None

    def test_roll_up_cell_matches_full_roll_up(self, base):
        full = base.roll_up((1, 1))
        for values, isb in full.items():
            single = base.roll_up_cell((1, 1), values)
            assert single is not None
            assert math.isclose(single.base, isb.base)
            assert math.isclose(single.slope, isb.slope)


class TestFiltered:
    def test_filtered_by_slope(self, base):
        steep = base.filtered(lambda v, isb: isb.slope >= 0.3)
        assert set(steep) == {(2, 1), (3, 3)}

    def test_filtered_preserves_coord(self, base):
        assert base.filtered(lambda v, i: True).coord == base.coord
