"""Tests for concept hierarchies."""

from __future__ import annotations

import pytest

from repro.cube.hierarchy import ALL, ExplicitHierarchy, FanoutHierarchy
from repro.errors import HierarchyError


@pytest.fixture
def location() -> ExplicitHierarchy:
    """city > block > address, 2 cities / 4 blocks / 8 addresses."""
    blocks = {f"b{i}": f"city{i // 2}" for i in range(4)}
    addresses = {f"a{i}": f"b{i // 2}" for i in range(8)}
    return ExplicitHierarchy(
        "location",
        ["city", "block", "address"],
        ["city0", "city1"],
        [blocks, addresses],
    )


class TestExplicitHierarchy:
    def test_depth_and_level_names(self, location):
        assert location.depth == 3
        assert location.level_name(0) == ALL
        assert location.level_name(1) == "city"
        assert location.level_name(3) == "address"

    def test_level_index_round_trip(self, location):
        for level in range(4):
            assert location.level_index(location.level_name(level)) == level

    def test_level_index_unknown(self, location):
        with pytest.raises(HierarchyError):
            location.level_index("country")

    def test_level_name_out_of_range(self, location):
        with pytest.raises(HierarchyError):
            location.level_name(4)

    def test_parent_chain(self, location):
        assert location.parent("a5", 3) == "b2"
        assert location.parent("b2", 2) == "city1"
        assert location.parent("city1", 1) == ALL

    def test_parent_unknown_value(self, location):
        with pytest.raises(HierarchyError):
            location.parent("nope", 3)

    def test_ancestor_multi_level(self, location):
        assert location.ancestor("a5", 3, 1) == "city1"
        assert location.ancestor("a5", 3, 0) == ALL
        assert location.ancestor("a5", 3, 3) == "a5"

    def test_ancestor_rejects_downward(self, location):
        with pytest.raises(HierarchyError):
            location.ancestor("city0", 1, 2)

    def test_cardinality(self, location):
        assert location.cardinality(0) == 1
        assert location.cardinality(1) == 2
        assert location.cardinality(2) == 4
        assert location.cardinality(3) == 8

    def test_contains(self, location):
        assert location.contains("b3", 2)
        assert not location.contains("b3", 1)
        assert location.contains(ALL, 0)

    def test_values(self, location):
        assert location.values(1) == frozenset({"city0", "city1"})

    def test_validate_value(self, location):
        location.validate_value("a0", 3)
        with pytest.raises(HierarchyError):
            location.validate_value("a0", 2)
        location.validate_value(ALL, 0)
        with pytest.raises(HierarchyError):
            location.validate_value("a0", 0)

    def test_construction_rejects_unknown_parent(self):
        with pytest.raises(HierarchyError):
            ExplicitHierarchy(
                "x", ["l1", "l2"], ["v1"], [{"c1": "missing-parent"}]
            )

    def test_construction_rejects_wrong_map_count(self):
        with pytest.raises(HierarchyError):
            ExplicitHierarchy("x", ["l1", "l2"], ["v1"], [])

    def test_construction_rejects_duplicate_level_names(self):
        with pytest.raises(HierarchyError):
            ExplicitHierarchy("x", ["l1", "l1"], ["v1"], [{"c": "v1"}])

    def test_construction_rejects_empty_levels(self):
        with pytest.raises(HierarchyError):
            ExplicitHierarchy("x", [], ["v1"])


class TestFanoutHierarchy:
    def test_cardinalities(self):
        h = FanoutHierarchy("d", depth=3, fanout=10)
        assert [h.cardinality(l) for l in range(4)] == [1, 10, 100, 1000]

    def test_parent(self):
        h = FanoutHierarchy("d", depth=3, fanout=10)
        assert h.parent(537, 3) == 53
        assert h.parent(53, 2) == 5
        assert h.parent(5, 1) == ALL

    def test_ancestor_closed_form(self):
        h = FanoutHierarchy("d", depth=4, fanout=3)
        v = 77  # level-4 value
        step = h.parent(h.parent(v, 4), 3)
        assert h.ancestor(v, 4, 2) == step
        assert h.ancestor(v, 4, 0) == ALL

    def test_contains_range(self):
        h = FanoutHierarchy("d", depth=2, fanout=4)
        assert h.contains(15, 2)
        assert not h.contains(16, 2)
        assert not h.contains(-1, 2)
        assert not h.contains("x", 1)

    def test_leaf_for_wraps(self):
        h = FanoutHierarchy("d", depth=2, fanout=4)
        assert h.leaf_for(16) == 0
        assert h.leaf_for(17) == 1

    def test_invalid_member_raises(self):
        h = FanoutHierarchy("d", depth=2, fanout=4)
        with pytest.raises(HierarchyError):
            h.parent(99, 2)

    def test_custom_level_names(self):
        h = FanoutHierarchy("d", 2, 5, level_names=["coarse", "fine"])
        assert h.level_name(1) == "coarse"

    def test_level_name_count_mismatch(self):
        with pytest.raises(HierarchyError):
            FanoutHierarchy("d", 3, 5, level_names=["a", "b"])

    def test_rejects_bad_parameters(self):
        with pytest.raises(HierarchyError):
            FanoutHierarchy("d", 0, 10)
        with pytest.raises(HierarchyError):
            FanoutHierarchy("d", 2, 0)

    def test_consistency_with_generic_walk(self):
        """Closed-form ancestor equals repeated parent application."""
        h = FanoutHierarchy("d", depth=5, fanout=3)
        v = 200
        walked = v
        for level in range(5, 1, -1):
            walked = h.parent(walked, level)
        assert h.ancestor(v, 5, 1) == walked
