"""Tests for the cube schema."""

from __future__ import annotations

import pytest

from repro.cube.hierarchy import ALL, FanoutHierarchy
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import SchemaError


@pytest.fixture
def schema() -> CubeSchema:
    return CubeSchema(
        [
            Dimension("user", FanoutHierarchy("user", 2, 3)),
            Dimension("location", FanoutHierarchy("location", 3, 2)),
        ]
    )


class TestLookup:
    def test_names_and_count(self, schema):
        assert schema.n_dims == 2
        assert schema.names == ("user", "location")

    def test_dim_index(self, schema):
        assert schema.dim_index("location") == 1
        with pytest.raises(SchemaError):
            schema.dim_index("nope")

    def test_dimension_by_name_or_index(self, schema):
        assert schema.dimension("user").name == "user"
        assert schema.dimension(1).name == "location"

    def test_hierarchy_shortcut(self, schema):
        assert schema.hierarchy("user").depth == 2

    def test_rejects_duplicate_names(self):
        dim = Dimension("x", FanoutHierarchy("x", 1, 2))
        with pytest.raises(SchemaError):
            CubeSchema([dim, dim])

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            CubeSchema([])


class TestCoordValidation:
    def test_validate_coord_ok(self, schema):
        assert schema.validate_coord([1, 3]) == (1, 3)
        assert schema.validate_coord((0, 0)) == (0, 0)

    def test_validate_coord_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_coord([1])

    def test_validate_coord_out_of_range(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_coord([3, 1])  # user depth is 2
        with pytest.raises(SchemaError):
            schema.validate_coord([-1, 1])

    def test_validate_values(self, schema):
        assert schema.validate_values((2, 5), (1, 3)) == (2, 5)
        assert schema.validate_values((ALL, 0), (0, 1)) == (ALL, 0)

    def test_validate_values_bad_member(self, schema):
        with pytest.raises(Exception):
            schema.validate_values((99, 0), (1, 1))

    def test_validate_values_wrong_arity(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_values((1,), (1, 1))


class TestLevelNames:
    def test_coord_of_level_names(self, schema):
        coord = schema.coord_of_level_names(("user1", "location2"))
        assert coord == (1, 2)

    def test_star_maps_to_zero(self, schema):
        assert schema.coord_of_level_names((ALL, "location1")) == (0, 1)

    def test_describe_coord_round_trip(self, schema):
        coord = (2, 0)
        names = schema.describe_coord(coord)
        assert schema.coord_of_level_names(names) == coord

    def test_wrong_count(self, schema):
        with pytest.raises(SchemaError):
            schema.coord_of_level_names(("user1",))


class TestSpecialCoords:
    def test_finest(self, schema):
        assert schema.finest_coord() == (2, 3)

    def test_apex(self, schema):
        assert schema.apex_coord() == (0, 0)
