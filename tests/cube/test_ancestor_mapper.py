"""Tests for the cached ancestor mappers (the hot-path roll-up closures)."""

from __future__ import annotations

import pytest

from repro.cube.hierarchy import ALL, ExplicitHierarchy, FanoutHierarchy
from repro.errors import HierarchyError


@pytest.fixture
def explicit() -> ExplicitHierarchy:
    blocks = {f"b{i}": f"c{i // 2}" for i in range(4)}
    addresses = {f"a{i}": f"b{i // 2}" for i in range(8)}
    return ExplicitHierarchy(
        "loc", ["city", "block", "addr"], ["c0", "c1"], [blocks, addresses]
    )


@pytest.fixture
def fanout() -> FanoutHierarchy:
    return FanoutHierarchy("d", depth=4, fanout=3)


class TestFanoutMapper:
    def test_matches_ancestor_everywhere(self, fanout):
        for from_level in range(1, 5):
            for to_level in range(0, from_level + 1):
                mapper = fanout.ancestor_mapper(from_level, to_level)
                for v in range(fanout.cardinality(from_level)):
                    assert mapper(v) == fanout.ancestor(v, from_level, to_level)

    def test_identity(self, fanout):
        mapper = fanout.ancestor_mapper(3, 3)
        assert mapper(17) == 17

    def test_to_star(self, fanout):
        mapper = fanout.ancestor_mapper(2, 0)
        assert mapper(5) == ALL

    def test_downward_rejected(self, fanout):
        with pytest.raises(HierarchyError):
            fanout.ancestor_mapper(1, 2)


class TestExplicitMapper:
    def test_matches_ancestor_everywhere(self, explicit):
        for from_level in range(1, 4):
            for to_level in range(0, from_level + 1):
                mapper = explicit.ancestor_mapper(from_level, to_level)
                for v in explicit.values(from_level):
                    assert mapper(v) == explicit.ancestor(
                        v, from_level, to_level
                    )

    def test_two_level_composition(self, explicit):
        mapper = explicit.ancestor_mapper(3, 1)
        assert mapper("a5") == "c1"

    def test_unknown_value_raises(self, explicit):
        mapper = explicit.ancestor_mapper(3, 2)
        with pytest.raises(KeyError):
            mapper("nope")

    def test_downward_rejected(self, explicit):
        with pytest.raises(HierarchyError):
            explicit.ancestor_mapper(0, 1)


class TestBaseClassFallback:
    def test_generic_mapper_on_custom_subclass(self):
        """A hierarchy that does not override ancestor_mapper still works."""

        class Minimal(FanoutHierarchy):
            # Force the generic ConceptHierarchy implementation.
            ancestor_mapper = None  # type: ignore[assignment]

        h = FanoutHierarchy("d", 2, 2)
        from repro.cube.hierarchy import ConceptHierarchy

        mapper = ConceptHierarchy.ancestor_mapper(h, 2, 1)
        for v in range(4):
            assert mapper(v) == h.ancestor(v, 2, 1)
        star = ConceptHierarchy.ancestor_mapper(h, 2, 0)
        assert star(3) == ALL
        ident = ConceptHierarchy.ancestor_mapper(h, 2, 2)
        assert ident(3) == 3
