"""Tests for the critical layers specification."""

from __future__ import annotations

import pytest

from repro.cube.hierarchy import FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import LayerError


@pytest.fixture
def schema() -> CubeSchema:
    return CubeSchema(
        [
            Dimension("u", FanoutHierarchy("u", 2, 3, ["group", "user"])),
            Dimension("l", FanoutHierarchy("l", 2, 3, ["city", "block"])),
        ]
    )


class TestConstruction:
    def test_valid_pair(self, schema):
        layers = CriticalLayers(schema, (2, 2), (1, 0))
        assert layers.m_coord == (2, 2)
        assert layers.o_coord == (1, 0)

    def test_from_level_names(self, schema):
        layers = CriticalLayers.from_level_names(
            schema, m_levels=("user", "block"), o_levels=("group", "*")
        )
        assert layers.m_coord == (2, 2)
        assert layers.o_coord == (1, 0)

    def test_rejects_o_finer_than_m(self, schema):
        with pytest.raises(LayerError):
            CriticalLayers(schema, (1, 1), (2, 0))

    def test_rejects_equal_layers(self, schema):
        with pytest.raises(LayerError):
            CriticalLayers(schema, (1, 1), (1, 1))


class TestDerived:
    def test_lattice_size(self, schema):
        layers = CriticalLayers(schema, (2, 2), (1, 0))
        assert layers.lattice.size == 2 * 3

    def test_intermediate_coords_excludes_layers(self, schema):
        layers = CriticalLayers(schema, (2, 2), (1, 0))
        mids = layers.intermediate_coords
        assert layers.m_coord not in mids
        assert layers.o_coord not in mids
        assert len(mids) == layers.lattice.size - 2

    def test_describe_mentions_level_names(self, schema):
        layers = CriticalLayers.from_level_names(
            schema, ("user", "block"), ("group", "*")
        )
        text = layers.describe()
        assert "user" in text and "block" in text
        assert "group" in text and "*" in text

    def test_example4_power_grid_design(self):
        """Fig 5: m-layer (user_group, street_block), o-layer (*, city)."""
        schema = CubeSchema(
            [
                Dimension(
                    "user", FanoutHierarchy("user", 1, 3, ["user_group"])
                ),
                Dimension(
                    "location",
                    FanoutHierarchy("location", 2, 4, ["city", "street_block"]),
                ),
            ]
        )
        layers = CriticalLayers.from_level_names(
            schema, ("user_group", "street_block"), ("*", "city")
        )
        assert layers.m_coord == (1, 2)
        assert layers.o_coord == (0, 1)
        assert layers.lattice.size == 4
