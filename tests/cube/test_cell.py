"""Tests for cell relations (Section 2.1 definitions)."""

from __future__ import annotations

import pytest

from repro.cube.cell import (
    CellRef,
    is_ancestor,
    is_descendant,
    is_sibling,
    roll_up_values,
)
from repro.cube.hierarchy import ALL, FanoutHierarchy
from repro.cube.schema import CubeSchema, Dimension
from repro.errors import SchemaError


@pytest.fixture
def schema() -> CubeSchema:
    return CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 3)),
            Dimension("b", FanoutHierarchy("b", 2, 3)),
        ]
    )


class TestRollUpValues:
    def test_roll_up_one_dim(self, schema):
        out = roll_up_values(schema, (7, 4), (2, 2), (1, 2))
        assert out == (2, 4)  # 7 // 3 = 2

    def test_roll_up_to_star(self, schema):
        out = roll_up_values(schema, (7, 4), (2, 2), (0, 0))
        assert out == (ALL, ALL)

    def test_identity(self, schema):
        assert roll_up_values(schema, (7, 4), (2, 2), (2, 2)) == (7, 4)

    def test_rejects_downward(self, schema):
        with pytest.raises(SchemaError):
            roll_up_values(schema, (1, 1), (1, 1), (2, 1))


class TestKdCells:
    def test_k_counts_non_star(self):
        assert CellRef((1, 1), (0, 2)).k == 2
        assert CellRef((0, 1), (ALL, 2)).k == 1
        assert CellRef((0, 0), (ALL, ALL)).k == 0


class TestAncestorDescendant:
    def test_direct_ancestor(self, schema):
        parent = CellRef((1, 2), (2, 4))
        child = CellRef((2, 2), (7, 4))
        assert is_ancestor(schema, parent, child)
        assert is_descendant(schema, child, parent)

    def test_not_ancestor_wrong_branch(self, schema):
        parent = CellRef((1, 2), (1, 4))  # 7 // 3 == 2, not 1
        child = CellRef((2, 2), (7, 4))
        assert not is_ancestor(schema, parent, child)

    def test_cell_not_its_own_ancestor(self, schema):
        cell = CellRef((1, 1), (1, 1))
        assert not is_ancestor(schema, cell, cell)

    def test_star_cell_is_ancestor_of_all(self, schema):
        apex = CellRef((0, 0), (ALL, ALL))
        leaf = CellRef((2, 2), (8, 8))
        assert is_ancestor(schema, apex, leaf)

    def test_finer_coord_cannot_be_ancestor(self, schema):
        fine = CellRef((2, 2), (7, 4))
        coarse = CellRef((1, 2), (2, 4))
        assert not is_ancestor(schema, fine, coarse)

    def test_multi_level_ancestor(self, schema):
        grand = CellRef((0, 1), (ALL, 1))
        child = CellRef((2, 2), (7, 4))  # b: 4 -> 4//3 = 1
        assert is_ancestor(schema, grand, child)


class TestSiblings:
    def test_siblings_share_parent(self, schema):
        # level-2 values 6 and 7 share parent 2 (fanout 3).
        a = CellRef((2, 1), (6, 0))
        b = CellRef((2, 1), (7, 0))
        assert is_sibling(schema, a, b)
        assert is_sibling(schema, b, a)

    def test_not_siblings_different_parent(self, schema):
        a = CellRef((2, 1), (5, 0))  # parent 1
        b = CellRef((2, 1), (7, 0))  # parent 2
        assert not is_sibling(schema, a, b)

    def test_not_siblings_two_dims_differ(self, schema):
        a = CellRef((2, 2), (6, 1))
        b = CellRef((2, 2), (7, 2))
        assert not is_sibling(schema, a, b)

    def test_not_sibling_of_itself(self, schema):
        a = CellRef((2, 1), (6, 0))
        assert not is_sibling(schema, a, a)

    def test_different_cuboids_never_siblings(self, schema):
        a = CellRef((2, 1), (6, 0))
        b = CellRef((1, 1), (2, 0))
        assert not is_sibling(schema, a, b)

    def test_level1_siblings_share_star_parent(self, schema):
        a = CellRef((1, 0), (0, ALL))
        b = CellRef((1, 0), (1, ALL))
        assert is_sibling(schema, a, b)
