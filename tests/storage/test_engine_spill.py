"""The engine's spill/fault seam: bounded hot set, exact deep windows.

The contract under test, for both backends:

* windows answerable from resident slots stay bit-identical to a
  storage-free engine fed the same traffic;
* windows reaching past the hot horizon — which the storage-free engine
  *cannot answer at all* — fault cold pages back and agree with the
  brute-force oracle;
* resident state stays bounded by the hot set while history grows;
* snapshot/restore round-trips the cold bookkeeping, and restoring a
  spilled snapshot without reattaching a store is refused loudly.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cubing.policy import GlobalSlopeThreshold
from repro.errors import StreamError, TiltFrameError
from repro.io import engine_state_from_dict, engine_state_to_dict
from repro.storage import open_cold_store
from repro.stream.engine import StreamCubeEngine
from repro.stream.generator import DatasetSpec
from repro.stream.records import StreamRecord
from repro.verify.oracle import RawStreamOracle, assert_cells_equal

TPQ = 1  # single-tick quarters reach deep tilt levels in few records
HOT = 2
POOL = [(0, 0), (1, 2), (4, 4), (7, 1), (3, 8)]


def build():
    return (
        DatasetSpec(2, 2, 3, 1).build_layers(),
        GlobalSlopeThreshold(0.05),
    )


def traffic(seed: int, quarters: int, start: int = 0) -> list[StreamRecord]:
    rng = random.Random(seed)
    records = []
    for q in range(start, start + quarters):
        for key in POOL:
            if rng.random() < 0.8:
                records.append(
                    StreamRecord(key, q * TPQ, rng.uniform(-3.0, 3.0))
                )
    return records


def make_trio(tmp_path, backend, quarters=60, hot=HOT, seed=11):
    layers, policy = build()
    store = open_cold_store(tmp_path / "cold", backend=backend)
    engine = StreamCubeEngine(
        layers, policy, ticks_per_quarter=TPQ, storage=store, hot_quarters=hot
    )
    reference = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
    oracle = RawStreamOracle(layers, policy, ticks_per_quarter=TPQ)
    records = traffic(seed, quarters)
    for sink in (engine, reference):
        sink.ingest_many(records)
    oracle.ingest(records)
    t = quarters * TPQ
    engine.advance_to(t)
    reference.advance_to(t)
    oracle.advance_to(t)
    return engine, reference, oracle, store


@pytest.fixture(params=("file", "sqlite"))
def backend(request):
    return request.param


class TestSpillAndFault:
    def test_sealing_spills_pages(self, tmp_path, backend):
        engine, _, _, store = make_trio(tmp_path, backend)
        stats = engine.storage_stats()
        assert stats["pages_spilled"] > 0
        assert stats["cold_slots"] > 0
        assert stats["pages"] == store.stats().pages > 0
        assert stats["backend"] == backend
        assert stats["hot_quarters"] == HOT
        store.close()

    def test_hot_windows_bit_identical_to_storage_free_engine(
        self, tmp_path, backend
    ):
        engine, reference, _, store = make_trio(tmp_path, backend)
        end = 60 * TPQ
        for quarters_back in (1, 2, 3):
            t_b, t_e = end - quarters_back * TPQ, end - 1
            assert engine.window_isbs(t_b, t_e) == reference.window_isbs(
                t_b, t_e
            )
        store.close()

    def test_deep_windows_need_the_cold_store_and_match_the_oracle(
        self, tmp_path, backend
    ):
        engine, reference, oracle, store = make_trio(tmp_path, backend)
        end = 60 * TPQ
        # The storage-free engine promoted its early fine slots away: the
        # first quarter alone is simply not answerable any more.
        with pytest.raises((StreamError, TiltFrameError)):
            reference.window_isbs(0, TPQ - 1)
        faults_before = engine.storage_stats()["cold_faults"]
        for t_b, t_e in ((0, TPQ - 1), (0, 4 * TPQ - 1), (0, end - 1)):
            assert_cells_equal(
                engine.window_isbs(t_b, t_e),
                oracle.window_isbs(t_b, t_e),
                f"deep window [{t_b},{t_e}]",
            )
        stats = engine.storage_stats()
        assert stats["cold_faults"] > faults_before
        assert stats["page_cache_entries"] <= 32
        store.close()

    def test_resident_state_is_bounded_by_the_hot_set(self, tmp_path, backend):
        def resident(engine):
            return sum(
                len(cell.frame.slots(i))
                for cell in engine._cells.values()
                for i in range(len(engine._frame_levels))
            )

        eng_mid, ref_mid, _, s1 = make_trio(
            tmp_path / "mid", backend, quarters=120
        )
        eng_long, ref_long, _, s2 = make_trio(
            tmp_path / "long", backend, quarters=216
        )
        # Demotion keeps far less resident than natural tilt retention...
        assert resident(eng_long) < resident(ref_long)
        # ...and another 96 quarters of history barely move the hot set
        # (one more day slot per cell at most), while nothing was lost:
        per_cell = len(eng_long._cells)
        assert resident(eng_long) - resident(eng_mid) <= 2 * per_cell
        assert (
            eng_long.storage_stats()["cold_slots"]
            > eng_mid.storage_stats()["cold_slots"]
        )
        s1.close()
        s2.close()


class TestDurabilityWithStorage:
    def test_snapshot_restore_round_trips_cold_state(self, tmp_path, backend):
        engine, _, oracle, store = make_trio(tmp_path, backend)
        wire = json.loads(json.dumps(engine_state_to_dict(engine.snapshot())))
        restored = StreamCubeEngine.restore(
            engine_state_from_dict(wire),
            engine.layers,
            engine.policy,
            storage=store,
            hot_quarters=HOT,
        )
        end = 60 * TPQ
        for t_b, t_e in ((0, TPQ - 1), (0, end - 1), (end - TPQ, end - 1)):
            assert restored.window_isbs(t_b, t_e) == engine.window_isbs(
                t_b, t_e
            )
        assert_cells_equal(
            restored.window_isbs(0, end - 1),
            oracle.window_isbs(0, end - 1),
            "restored deep window",
        )
        assert (
            restored.storage_stats()["cold_slots"]
            == engine.storage_stats()["cold_slots"]
        )
        store.close()

    def test_restore_without_store_is_refused(self, tmp_path, backend):
        engine, _, _, store = make_trio(tmp_path, backend)
        state = engine.snapshot()
        with pytest.raises(StreamError, match="storage"):
            StreamCubeEngine.restore(state, engine.layers, engine.policy)
        store.close()

    def test_spilling_restart_continues_bit_identically(
        self, tmp_path, backend
    ):
        """Stop mid-stream, restore against the same store, keep ingesting:
        indistinguishable from the uninterrupted spilling engine."""
        layers, policy = build()
        quarters = 80
        records = traffic(23, quarters)
        split = len(records) * 2 // 3

        straight_store = open_cold_store(
            tmp_path / "straight", backend=backend
        )
        straight = StreamCubeEngine(
            layers, policy, ticks_per_quarter=TPQ,
            storage=straight_store, hot_quarters=HOT,
        )
        straight.ingest_many(records)
        straight.advance_to(quarters * TPQ)

        resumed_store = open_cold_store(tmp_path / "resumed", backend=backend)
        first = StreamCubeEngine(
            layers, policy, ticks_per_quarter=TPQ,
            storage=resumed_store, hot_quarters=HOT,
        )
        first.ingest_many(records[:split])
        state = engine_state_from_dict(
            json.loads(json.dumps(engine_state_to_dict(first.snapshot())))
        )
        resumed = StreamCubeEngine.restore(
            state, layers, policy,
            storage=resumed_store, hot_quarters=HOT,
        )
        resumed.ingest_many(records[split:])
        resumed.advance_to(quarters * TPQ)

        end = quarters * TPQ
        for t_b, t_e in ((0, TPQ - 1), (0, end - 1), (end - 2 * TPQ, end - 1)):
            assert resumed.window_isbs(t_b, t_e) == straight.window_isbs(
                t_b, t_e
            )
        straight_store.close()
        resumed_store.close()


class TestLateBornCells:
    def test_late_cell_reads_zero_rows_from_pre_birth_pages(
        self, tmp_path, backend
    ):
        """A cell first seen long after early slots were demoted must see
        its zero-backfill in deep windows — served by the cold pages' zero
        row, bit-identical to what a resident frame would have held."""
        layers, policy = build()
        store = open_cold_store(tmp_path / "cold", backend=backend)
        engine = StreamCubeEngine(
            layers, policy, ticks_per_quarter=TPQ,
            storage=store, hot_quarters=HOT,
        )
        oracle = RawStreamOracle(layers, policy, ticks_per_quarter=TPQ)
        early = traffic(5, 40)
        late_key = (8, 8)
        late = [
            StreamRecord(late_key, q * TPQ, 1.0 + 0.1 * q)
            for q in range(40, 50)
        ]
        for batch in (early, late):
            engine.ingest_many(batch)
            oracle.ingest(batch)
        engine.advance_to(50 * TPQ)
        oracle.advance_to(50 * TPQ)
        cells = engine.window_isbs(0, 50 * TPQ - 1)
        assert late_key in cells
        assert_cells_equal(
            cells,
            oracle.window_isbs(0, 50 * TPQ - 1),
            "window with late-born cell",
        )
        store.close()
