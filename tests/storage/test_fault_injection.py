"""Cold stores under injected faults: retry, repair, quarantine.

Both backends run the same ladder: a transient read fault is retried
away, a transient write fault is rolled back and retried, and persistent
corruption (a bit flipped *before* the bytes hit disk) ends in quarantine
plus a typed :class:`CorruptionError` that names the rebuild path.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import CorruptionError, StorageError
from repro.storage import open_cold_store

from tests.storage.test_stores import BACKENDS, page


@pytest.fixture(autouse=True)
def disarm():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    s = open_cold_store(tmp_path / "store", backend=request.param)
    yield s
    s.close()


def arm(site, kind, **kwargs):
    faults.install(
        {"seed": 13, "rules": [{"site": site, "kind": kind, **kwargs}]}
    )


class TestReadFaults:
    def test_transient_eio_is_retried(self, store):
        store.put_segment(page())
        arm("store.read", "eio", count=1)
        assert store.get_segment(0, 0, 3) == page()
        assert store.stats().read_retries == 1
        assert store.stats().quarantined == 0

    def test_transient_bitflip_is_retried(self, store):
        store.put_segment(page())
        arm("store.read", "bitflip", count=1)
        assert store.get_segment(0, 0, 3) == page()
        assert store.stats().read_retries == 1

    def test_persistent_failure_quarantines(self, store):
        store.put_segment(page())
        arm("store.read", "eio", count=0)  # unlimited: retry fails too
        with pytest.raises(CorruptionError, match="quarantined"):
            store.get_segment(0, 0, 3)
        faults.clear()
        # The poisoned page is gone: a healthy re-read cannot resurrect
        # it; recovery is an idempotent re-put (snapshot + WAL replay).
        with pytest.raises(StorageError, match="no page"):
            store.get_segment(0, 0, 3)
        assert store.stats().quarantined == 1
        store.put_segment(page())
        assert store.get_segment(0, 0, 3) == page()

    def test_quarantine_error_names_the_rebuild_path(self, store):
        store.put_segment(page())
        arm("store.read", "eio", count=0)
        with pytest.raises(CorruptionError, match="snapshot \\+ WAL replay"):
            store.get_segment(0, 0, 3)


class TestWriteFaults:
    def test_transient_eio_write_is_repaired(self, store):
        arm("store.write", "eio", count=1)
        store.put_segment(page())
        assert store.stats().write_repairs == 1
        faults.clear()
        assert store.get_segment(0, 0, 3) == page()

    def test_torn_write_is_rolled_back_and_retried(self, store):
        store.put_segment(page(0, 0, 3))
        arm("store.write", "torn", count=1)
        store.put_segment(page(0, 4, 7))
        faults.clear()
        # Both the pre-existing and the repaired page read back clean.
        assert store.get_segment(0, 0, 3) == page(0, 0, 3)
        assert store.get_segment(0, 4, 7) == page(0, 4, 7)
        assert store.stats().write_repairs == 1

    def test_write_bitflip_is_caught_at_read_time(self, store):
        """Silent on-disk corruption: the write succeeds, the checksum
        catches it on first read, and quarantine makes re-put possible."""
        arm("store.write", "bitflip", count=1)
        store.put_segment(page())
        faults.clear()
        with pytest.raises(CorruptionError, match="quarantined"):
            store.get_segment(0, 0, 3)
        store.put_segment(page())  # the rebuild path: idempotent re-put
        assert store.get_segment(0, 0, 3) == page()

    def test_double_write_failure_raises_storage_error(self, store):
        arm("store.write", "eio", count=2)
        # file: "even after rollback"; sqlite: "even after retry" (its
        # journal is the rollback).  Both name the first and final error.
        with pytest.raises(StorageError, match="even after"):
            store.put_segment(page())


class TestLatency:
    def test_latency_rule_neither_raises_nor_corrupts(self, store):
        arm("*", "latency", count=0, seconds=0.0)
        store.put_segment(page())
        assert store.get_segment(0, 0, 3) == page()
