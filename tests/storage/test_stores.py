"""Both cold-store backends against the one contract, plus the shard layout.

Every behavioural test runs against the file and the sqlite backend through
one parametrized fixture; backend-specific durability quirks (torn tails in
append-only segments) get their own tests.
"""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import (
    ColdPage,
    StorageConfig,
    open_cold_store,
    open_shard_stores,
    prune_stale_generations,
    shard_store_path,
)

BACKENDS = ("file", "sqlite")


def page(level=0, t_b=0, t_e=3, rows=((0, 0), (1, 1)), bump=0.0) -> ColdPage:
    keys = [tuple(k) for k in rows]
    return ColdPage(
        level,
        t_b,
        t_e,
        keys,
        [float(i) + bump for i in range(len(keys))],
        [0.5 * i - bump for i in range(len(keys))],
        zero_base=1.5,
        zero_slope=-0.25,
    )


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    s = open_cold_store(tmp_path / "store", backend=request.param)
    yield s
    s.close()


class TestContract:
    def test_put_get_round_trip(self, store):
        p = page()
        store.put_segment(p)
        assert store.get_segment(0, 0, 3) == p

    def test_missing_key_is_an_error_not_empty(self, store):
        store.put_segment(page())
        with pytest.raises(StorageError, match="no page"):
            store.get_segment(0, 4, 7)

    def test_reput_is_idempotent_latest_wins(self, store):
        store.put_segment(page(bump=0.0))
        store.put_segment(page(bump=7.0))  # crash-recovery re-derivation
        got = store.get_segment(0, 0, 3)
        assert got == page(bump=7.0)
        assert store.stats().pages == 1

    def test_scan_is_sorted(self, store):
        for level, t_b in ((1, 16), (0, 4), (0, 0), (2, 0)):
            store.put_segment(page(level, t_b, t_b + 3))
        assert store.scan() == [(0, 0, 3), (0, 4, 7), (1, 16, 19), (2, 0, 3)]

    def test_stats_counters(self, store):
        assert store.stats().pages == 0
        store.put_segment(page(0, 0, 3))
        store.put_segment(page(0, 4, 7, rows=((2, 2),)))
        store.get_segment(0, 0, 3)
        stats = store.stats()
        assert stats.backend == store.backend
        assert stats.pages == 2
        assert stats.rows == 3
        assert stats.puts == 2
        assert stats.gets == 1
        assert stats.bytes_on_disk > 0
        assert stats.to_dict()["pages"] == 2

    def test_persistence_across_reopen(self, store, tmp_path):
        p = page(1, 8, 11)
        store.put_segment(p)
        store.close()
        reopened = open_cold_store(tmp_path / "store", backend=store.backend)
        try:
            assert reopened.scan() == [(1, 8, 11)]
            assert reopened.get_segment(1, 8, 11) == p
            # Operation counters are per-instance, not historical.
            assert reopened.stats().puts == 0
        finally:
            reopened.close()

    def test_compact_reclaims_superseded_pages(self, store):
        for bump in (0.0, 1.0, 2.0, 3.0):
            store.put_segment(page(bump=bump))
        store.put_segment(page(0, 4, 7))
        before = store.stats().bytes_on_disk
        freed = store.compact()
        if store.backend == "file":
            # Append-only segments really hold the three superseded
            # occurrences until compaction rewrites the partition; sqlite
            # replaced them in place, so 0 freed is contract-compliant.
            assert freed > 0
            assert store.stats().bytes_on_disk < before
            assert store.compact() == 0  # nothing left to reclaim
        else:
            assert freed >= 0
        # Live content is untouched either way.
        assert store.get_segment(0, 0, 3) == page(bump=3.0)
        assert store.get_segment(0, 4, 7) == page(0, 4, 7)

    def test_context_manager_closes(self, tmp_path):
        with open_cold_store(tmp_path / "cm", backend="sqlite") as s:
            s.put_segment(page())
        with open_cold_store(tmp_path / "cm", backend="sqlite") as s:
            assert s.stats().pages == 1


class TestFileBackendDurability:
    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        with open_cold_store(tmp_path / "s", backend="file") as s:
            s.put_segment(page(0, 0, 3))
            s.put_segment(page(0, 4, 7))
        # A crash mid-append tears the tail of exactly one segment file.
        (seg,) = sorted((tmp_path / "s").glob("L*.seg"))
        whole = seg.read_bytes()
        seg.write_bytes(whole + b"\x40\x00\x00\x00RCP1torn")
        with open_cold_store(tmp_path / "s", backend="file") as s:
            assert s.scan() == [(0, 0, 3), (0, 4, 7)]
            assert s.get_segment(0, 4, 7) == page(0, 4, 7)
        assert seg.read_bytes() == whole  # tail dropped for future appends

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="unknown cold-store backend"):
            open_cold_store(tmp_path / "x", backend="shoebox")


def shard_key(values, n):
    return hash(values) % n


class TestShardLayout:
    def config(self, tmp_path, backend="file"):
        return StorageConfig(root=tmp_path / "root", backend=backend)

    def test_fresh_root_creates_generation_one(self, tmp_path):
        config = self.config(tmp_path)
        generation, stores = open_shard_stores(config, 3, shard_key)
        try:
            assert generation == 1
            assert (tmp_path / "root" / "g0001.ok").exists()
            for i in range(3):
                assert shard_store_path(
                    config.root, 1, i, 3, "file"
                ).exists()
        finally:
            for s in stores:
                s.close()

    def test_reopen_same_shard_count_reuses_generation(self, tmp_path):
        config = self.config(tmp_path)
        generation, stores = open_shard_stores(config, 2, shard_key)
        stores[0].put_segment(page())
        for s in stores:
            s.close()
        generation2, stores = open_shard_stores(config, 2, shard_key)
        try:
            assert generation2 == generation == 1
            assert stores[0].get_segment(0, 0, 3) == page()
        finally:
            for s in stores:
                s.close()

    def test_reshard_repartitions_rows_by_key(self, tmp_path):
        config = self.config(tmp_path)
        _, stores = open_shard_stores(config, 1, shard_key)
        keys = [(i, i + 1) for i in range(6)]
        stores[0].put_segment(
            ColdPage(
                0, 0, 3, keys, [float(i) for i in range(6)], [0.0] * 6,
                zero_base=9.0, zero_slope=-9.0,
            )
        )
        for s in stores:
            s.close()
        generation, stores = open_shard_stores(config, 3, shard_key)
        try:
            assert generation == 2
            seen = {}
            for j, s in enumerate(stores):
                got = s.get_segment(0, 0, 3)  # every shard holds the page
                assert got.zero_isb().base == 9.0  # zero row survives
                for key, base in zip(got.keys, got.base):
                    assert shard_key(key, 3) == j
                    seen[key] = base
            assert seen == {k: float(i) for i, k in enumerate(keys)}
        finally:
            for s in stores:
                s.close()

    def test_prune_stale_generations(self, tmp_path):
        config = self.config(tmp_path)
        _, stores = open_shard_stores(config, 1, shard_key)
        stores[0].put_segment(page())
        for s in stores:
            s.close()
        generation, stores = open_shard_stores(config, 2, shard_key)
        for s in stores:
            s.close()
        assert (tmp_path / "root" / "g0001.ok").exists()
        removed = prune_stale_generations(config, generation)
        assert removed == 1
        assert not (tmp_path / "root" / "g0001.ok").exists()
        assert not shard_store_path(config.root, 1, 0, 1, "file").exists()
        assert (tmp_path / "root" / "g0002.ok").exists()

    def test_backend_mismatch_rejected(self, tmp_path):
        _, stores = open_shard_stores(self.config(tmp_path), 1, shard_key)
        for s in stores:
            s.close()
        with pytest.raises(StorageError, match="backend"):
            open_shard_stores(
                self.config(tmp_path, backend="sqlite"), 1, shard_key
            )

    def test_partial_generation_without_marker_is_inert(self, tmp_path):
        """A crash mid-reshard leaves stores without a marker; the next
        open ignores them and starts generation one cleanly."""
        config = self.config(tmp_path)
        orphan = shard_store_path(config.root, 3, 0, 2, "file")
        orphan.mkdir(parents=True)
        generation, stores = open_shard_stores(config, 2, shard_key)
        try:
            assert generation == 1
        finally:
            for s in stores:
                s.close()

    def test_config_validation(self, tmp_path):
        with pytest.raises(StorageError, match="backend"):
            StorageConfig(root=tmp_path, backend="shoebox")
        with pytest.raises(StorageError, match="hot_quarters"):
            StorageConfig(root=tmp_path, hot_quarters=0)
        with pytest.raises(StorageError, match="n_shards"):
            open_shard_stores(self.config(tmp_path), 0, shard_key)
