"""Sharded cubes over per-shard cold stores: equivalence, reshard, prune.

Sharding must stay invisible under spilling: a sharded cube whose shards
each spill to their own store answers bit-identically to one spilling
engine, through snapshots, k→j reshards (which repartition the cold pages
into a fresh generation) and checkpoint-time compaction (which prunes the
stale generations).
"""

from __future__ import annotations

import random

import pytest

from repro.cubing.policy import GlobalSlopeThreshold
from repro.service.sharding import ShardedStreamCube
from repro.storage import StorageConfig, open_cold_store
from repro.stream.engine import StreamCubeEngine
from repro.stream.generator import DatasetSpec
from repro.stream.records import StreamRecord
from repro.verify.oracle import RawStreamOracle, assert_cells_equal

TPQ = 1
HOT = 2
QUARTERS = 64
POOL = [(0, 0), (1, 2), (4, 4), (7, 1), (3, 8), (6, 6)]


def build():
    return (
        DatasetSpec(2, 2, 3, 1).build_layers(),
        GlobalSlopeThreshold(0.05),
    )


def traffic(seed: int, quarters: int, start: int = 0) -> list[StreamRecord]:
    rng = random.Random(seed)
    return [
        StreamRecord(key, q * TPQ, rng.uniform(-3.0, 3.0))
        for q in range(start, start + quarters)
        for key in POOL
        if rng.random() < 0.8
    ]


@pytest.fixture(params=("file", "sqlite"))
def backend(request):
    return request.param


def make_pair(tmp_path, backend, n_shards=3):
    layers, policy = build()
    config = StorageConfig(
        root=tmp_path / "cube-store", backend=backend, hot_quarters=HOT
    )
    cube = ShardedStreamCube(
        layers,
        policy,
        n_shards=n_shards,
        ticks_per_quarter=TPQ,
        storage=config,
        hot_quarters=HOT,
    )
    store = open_cold_store(tmp_path / "engine-store", backend=backend)
    engine = StreamCubeEngine(
        layers, policy, ticks_per_quarter=TPQ, storage=store, hot_quarters=HOT
    )
    records = traffic(29, QUARTERS)
    cube.ingest_batch(records)
    engine.ingest_many(records)
    t = QUARTERS * TPQ
    cube.advance_to(t)
    engine.advance_to(t)
    return cube, engine, store, config, layers, policy, records


def deep_and_hot_bounds():
    end = QUARTERS * TPQ
    return ((0, TPQ - 1), (0, end - 1), (end - 2 * TPQ, end - 1))


class TestShardingEquivalence:
    def test_spilling_cube_matches_spilling_engine_bit_for_bit(
        self, tmp_path, backend
    ):
        cube, engine, store, *_ = make_pair(tmp_path, backend)
        try:
            for t_b, t_e in deep_and_hot_bounds():
                assert cube.window_isbs(t_b, t_e) == engine.window_isbs(
                    t_b, t_e
                )
        finally:
            cube.close()
            store.close()

    def test_storage_stats_aggregate_shards(self, tmp_path, backend):
        cube, engine, store, *_ = make_pair(tmp_path, backend)
        try:
            cube.window_isbs(0, TPQ - 1)  # force at least one fault
            stats = cube.storage_stats()
            assert stats["backend"] == backend
            assert stats["generation"] == 1
            assert stats["hot_quarters"] == HOT
            assert len(stats["shards"]) == 3
            for key in ("pages", "rows", "pages_spilled", "cold_slots"):
                assert stats[key] == sum(s[key] for s in stats["shards"])
                assert stats[key] > 0
            assert stats["cold_faults"] > 0
        finally:
            cube.close()
            store.close()


class TestDurabilityAndElasticity:
    def test_manifest_records_storage_and_restore_continues(
        self, tmp_path, backend
    ):
        cube, engine, store, config, layers, policy, _ = make_pair(
            tmp_path, backend
        )
        restored = None
        try:
            manifest = cube.snapshot(tmp_path / "snap")
            block = manifest["storage"]
            assert block["backend"] == backend
            assert block["hot_quarters"] == HOT
            assert block["generation"] == 1
            assert block["n_shards"] == 3
            restored = ShardedStreamCube.restore(
                tmp_path / "snap", layers, policy, storage=config
            )
            for t_b, t_e in deep_and_hot_bounds():
                assert restored.window_isbs(t_b, t_e) == cube.window_isbs(
                    t_b, t_e
                )
        finally:
            if restored is not None:
                restored.close()
            cube.close()
            store.close()

    def test_reshard_repartitions_cold_pages_and_stays_identical(
        self, tmp_path, backend
    ):
        cube, engine, store, config, layers, policy, records = make_pair(
            tmp_path, backend
        )
        resharded = None
        try:
            resharded = cube.reshard(2)
            assert resharded.storage_stats()["generation"] == 2
            for t_b, t_e in deep_and_hot_bounds():
                assert resharded.window_isbs(t_b, t_e) == cube.window_isbs(
                    t_b, t_e
                )
            # The resharded cube keeps spilling into its own generation.
            more = traffic(31, 16, start=QUARTERS)
            resharded.ingest_batch(more)
            engine.ingest_many(more)
            t = (QUARTERS + 16) * TPQ
            resharded.advance_to(t)
            engine.advance_to(t)
            assert resharded.window_isbs(0, t - 1) == engine.window_isbs(
                0, t - 1
            )
        finally:
            if resharded is not None:
                resharded.close()
            cube.close()
            store.close()

    def test_compact_storage_prunes_stale_generations(self, tmp_path, backend):
        cube, engine, store, config, *_ = make_pair(tmp_path, backend)
        resharded = None
        try:
            resharded = cube.reshard(2)
            cube.close()
            root = tmp_path / "cube-store"
            assert (root / "g0001.ok").exists()
            resharded.compact_storage()
            assert not (root / "g0001.ok").exists()
            assert (root / "g0002.ok").exists()
            # Only generation-2 store files remain.
            leftovers = {
                p.name for p in root.iterdir() if not p.name.startswith("g0002")
            }
            assert leftovers == set()
            # And the survivor still answers deep history.
            assert (
                resharded.window_isbs(0, TPQ - 1)
                == engine.window_isbs(0, TPQ - 1)
            )
        finally:
            if resharded is not None:
                resharded.close()
            store.close()

    def test_oracle_agreement_end_to_end(self, tmp_path, backend):
        cube, engine, store, config, layers, policy, records = make_pair(
            tmp_path, backend
        )
        try:
            oracle = RawStreamOracle(layers, policy, ticks_per_quarter=TPQ)
            oracle.ingest(records)
            oracle.advance_to(QUARTERS * TPQ)
            end = QUARTERS * TPQ
            assert_cells_equal(
                cube.window_isbs(0, end - 1),
                oracle.window_isbs(0, end - 1),
                "sharded deep window",
            )
        finally:
            cube.close()
            store.close()
