"""Tiered storage: page codec, cold-store backends, spill/fault paths."""
