"""The packed columnar page codec: bit-exact round trips, hard failures.

Runs unchanged with or without numpy (``REPRO_FORCE_NO_NUMPY=1``): the two
float codec paths must produce identical bytes.
"""

from __future__ import annotations

import struct

import pytest

from repro.errors import StorageError
from repro.storage.pages import (
    PAGE_HEADER_BYTES,
    PAGE_VERSION,
    ColdPage,
    pack_f64,
    read_page_header,
    unpack_f64,
)

AWKWARD = (0.0, -0.0, 0.1 + 0.2, -1e-17, 2.2250738585072014e-308, 1e300)


def sample_page() -> ColdPage:
    return ColdPage(
        level=1,
        t_b=16,
        t_e=31,
        keys=[(0, 0), (1, 2), ("a", 3)],
        base=[0.1 + 0.2, -0.0, 1e300],
        slope=[-1e-17, 4.25, 0.5],
        zero_base=2.5,
        zero_slope=-0.125,
    )


class TestFloatColumns:
    def test_pack_unpack_round_trip_bit_exact(self):
        packed = pack_f64(AWKWARD)
        assert len(packed) == 8 * len(AWKWARD)
        back = unpack_f64(packed, len(AWKWARD))
        assert [struct.pack("<d", x) for x in back] == [
            struct.pack("<d", x) for x in AWKWARD
        ]

    def test_unpack_at_offset(self):
        packed = b"junk" + pack_f64((1.5, -2.5))
        assert unpack_f64(packed, 2, offset=4) == (1.5, -2.5)


class TestColdPage:
    def test_encode_decode_round_trip(self):
        page = sample_page()
        blob = page.encode()
        assert len(blob) == page.encoded_size
        back = ColdPage.decode(blob)
        assert back == page
        # Bit-exact: re-encoding the decoded page reproduces the bytes.
        assert back.encode() == blob

    def test_empty_page_round_trips(self):
        page = ColdPage(0, 0, 3, [], [], [], zero_base=-0.0, zero_slope=0.0)
        back = ColdPage.decode(page.encode())
        assert back.n_rows == 0
        assert back.interval == (0, 3)

    def test_known_key_row(self):
        page = sample_page()
        isb = page.isb((1, 2))
        assert (isb.t_b, isb.t_e) == (16, 31)
        assert isb.base == -0.0 and isb.slope == 4.25

    def test_missing_key_answers_the_zero_row(self):
        """A cell born after the spill reads its zero-backfill, not an error."""
        page = sample_page()
        assert page.isb((7, 7)) == page.zero_isb()
        assert page.zero_isb().base == 2.5
        assert page.zero_isb().slope == -0.125

    def test_construction_validation(self):
        with pytest.raises(StorageError, match="empty interval"):
            ColdPage(0, 5, 4, [], [], [])
        with pytest.raises(StorageError, match="negative level"):
            ColdPage(-1, 0, 3, [], [], [])
        with pytest.raises(StorageError, match="row mismatch"):
            ColdPage(0, 0, 3, [(0,)], [1.0, 2.0], [0.0])


class TestHeader:
    def test_read_page_header_fields(self):
        page = sample_page()
        level, t_b, t_e, n_rows, keys_len, _, zb, zs = read_page_header(
            page.encode()
        )
        assert (level, t_b, t_e, n_rows) == (1, 16, 31, 3)
        assert keys_len > 0
        assert (zb, zs) == (2.5, -0.125)

    def test_truncated_header_rejected(self):
        with pytest.raises(StorageError, match="header truncated"):
            read_page_header(sample_page().encode()[: PAGE_HEADER_BYTES - 1])

    def test_bad_magic_rejected(self):
        blob = bytearray(sample_page().encode())
        blob[:4] = b"NOPE"
        with pytest.raises(StorageError, match="magic"):
            ColdPage.decode(bytes(blob))

    def test_unknown_version_rejected(self):
        blob = bytearray(sample_page().encode())
        struct.pack_into("<H", blob, 4, PAGE_VERSION + 1)
        with pytest.raises(StorageError, match="version"):
            ColdPage.decode(bytes(blob))


class TestCorruption:
    def test_flipped_body_byte_fails_checksum(self):
        blob = bytearray(sample_page().encode())
        blob[-1] ^= 0xFF
        with pytest.raises(StorageError, match="checksum"):
            ColdPage.decode(bytes(blob))

    def test_truncated_body_rejected(self):
        blob = sample_page().encode()
        with pytest.raises(StorageError, match="truncated"):
            ColdPage.decode(blob[:-8])

    def test_row_count_keys_disagreement_rejected(self):
        """A page declaring more rows than its keys block holds is corrupt
        even when the checksum was forged to match."""
        import zlib

        page = sample_page()
        blob = bytearray(page.encode())
        # Pretend the keys block holds one fewer row than declared, then
        # re-sign the page so only the count check can object.  The crc
        # covers header + body with the crc field zeroed, so the forgery
        # signs exactly the way encode() does.
        keys_blob = b'[[0,0],["a",3]]'
        body = (
            keys_blob
            + pack_f64(page.base)
            + pack_f64(page.slope)
        )
        unsigned = struct.pack(
            "<4sHHqqIIIdd",
            b"RCP1",
            PAGE_VERSION,
            page.level,
            page.t_b,
            page.t_e,
            page.n_rows,  # still claims 3 rows
            len(keys_blob),
            0,
            page.zero_base,
            page.zero_slope,
        )
        crc = zlib.crc32(body, zlib.crc32(unsigned))
        rebuilt = (
            unsigned[:32] + struct.pack("<I", crc) + unsigned[36:] + body
        )
        assert len(rebuilt) != len(blob)
        with pytest.raises(StorageError, match="declares 3 rows"):
            ColdPage.decode(rebuilt)
