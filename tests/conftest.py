"""Shared fixtures, hypothesis profiles, and the numpy-absent test mode.

Hypothesis profiles (pick with ``HYPOTHESIS_PROFILE=<name>``, default
``ci``):

* ``ci`` — 20 examples, no deadline, **derandomized**: every run draws the
  same seeds, so the tier-1 gate cannot flake on a fresh unlucky example.
* ``dev`` — 10 randomized examples for quick local iteration.
* ``nightly`` — 200 randomized examples (10x the ci sweep), meant for the
  scheduled chaos-scenario workflow; keeps exploring new seeds.

Numpy-absent mode: ``REPRO_FORCE_NO_NUMPY=1`` makes ``import numpy`` raise
inside this process even when numpy is installed, faithfully reproducing
the stripped-install CI leg locally.  Modules with vectorized fast paths
fall back to their scalar implementations; test modules that genuinely
need numpy guard themselves with ``pytest.importorskip("numpy")``.
"""

from __future__ import annotations

import importlib.abc
import math
import os
import sys

# ----------------------------------------------------------------------
# Optional numpy-absent mode — must run before anything imports numpy.
# ----------------------------------------------------------------------
if os.environ.get("REPRO_FORCE_NO_NUMPY"):

    class _NumpyBlocker(importlib.abc.MetaPathFinder):
        def find_spec(self, fullname, path=None, target=None):
            if fullname == "numpy" or fullname.startswith("numpy."):
                raise ModuleNotFoundError(
                    "numpy is blocked by REPRO_FORCE_NO_NUMPY"
                )
            return None

    for _mod in [m for m in sys.modules if m.split(".")[0] == "numpy"]:
        del sys.modules[_mod]
    sys.meta_path.insert(0, _NumpyBlocker())

import pytest
from hypothesis import settings

from repro.cube.hierarchy import ExplicitHierarchy, FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.regression.isb import ISB
from repro.stream.generator import generate_dataset
from repro.timeseries.series import TimeSeries

try:
    import numpy as np

    HAVE_NUMPY = True
except ModuleNotFoundError:  # stripped install or REPRO_FORCE_NO_NUMPY
    np = None
    HAVE_NUMPY = False

# ----------------------------------------------------------------------
# Hypothesis profiles
# ----------------------------------------------------------------------
settings.register_profile(
    "ci", max_examples=20, deadline=None, derandomize=True
)
settings.register_profile("dev", max_examples=10, deadline=None)
settings.register_profile("nightly", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def isb_close(a: ISB, b: ISB, tol: float = 1e-9) -> bool:
    """Numeric ISB equality with matching intervals."""
    return (
        a.interval == b.interval
        and math.isclose(a.base, b.base, rel_tol=tol, abs_tol=tol)
        and math.isclose(a.slope, b.slope, rel_tol=tol, abs_tol=tol)
    )


@pytest.fixture
def example2_series() -> TimeSeries:
    """The paper's Example 2 time series over [0, 9]."""
    return TimeSeries(
        0, (0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56)
    )


def _example5_dim(name: str, card1: int, card2: int) -> Dimension:
    """A 2-deep explicit hierarchy with chosen per-level cardinalities."""
    level1 = [f"{name.lower()}1_{i}" for i in range(card1)]
    parent_map = {
        f"{name.lower()}2_{j}": level1[j * card1 // card2]
        for j in range(card2)
    }
    hierarchy = ExplicitHierarchy(
        name, [f"{name}1", f"{name}2"], level1, [parent_map]
    )
    return Dimension(name, hierarchy)


@pytest.fixture
def example5_layers() -> CriticalLayers:
    """Example 5's cube: m-layer (A2,B2,C2), o-layer (A1,*,C1), 12 cuboids.

    Cardinalities honour the paper's ordering
    card(A1) < card(B1) < card(C1) < card(C2) < card(A2) < card(B2):
    2 < 3 < 4 < 8 < 10 < 12.
    """
    schema = CubeSchema(
        [
            _example5_dim("A", 2, 10),
            _example5_dim("B", 3, 12),
            _example5_dim("C", 4, 8),
        ]
    )
    return CriticalLayers(schema, m_coord=(2, 2, 2), o_coord=(1, 0, 1))


@pytest.fixture
def small_dataset():
    """A small deterministic D3L3C4 dataset (fast cubing tests)."""
    return generate_dataset("D3L3C4T500", seed=11)


@pytest.fixture
def tiny_dataset():
    """A minimal D2L2C3 dataset (very fast tests)."""
    return generate_dataset("D2L2C3T120", seed=5)


@pytest.fixture
def fanout_layers() -> CriticalLayers:
    """A bare D2L3C3 schema without data."""
    dims = [
        Dimension("x", FanoutHierarchy("x", 3, 3)),
        Dimension("y", FanoutHierarchy("y", 3, 3)),
    ]
    schema = CubeSchema(dims)
    return CriticalLayers(schema, m_coord=(3, 3), o_coord=(1, 1))


def random_series(rng, n: int, t_b: int = 0) -> TimeSeries:
    """A noisy random trend series for oracle-based property tests.

    ``rng`` is a ``numpy.random.Generator``; callers live in test modules
    that importorskip numpy.
    """
    base = rng.uniform(-5, 5)
    slope = rng.uniform(-1, 1)
    noise = rng.normal(0, 0.5, size=n)
    values = tuple(base + slope * (t_b + i) + noise[i] for i in range(n))
    return TimeSeries(t_b, values)
