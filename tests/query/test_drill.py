"""Tests for exception-guided drilling."""

from __future__ import annotations

import pytest

from repro.cube.hierarchy import FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import GlobalSlopeThreshold
from repro.query.drill import ExceptionDriller
from repro.regression.isb import ISB


@pytest.fixture
def hot_cube():
    """A cube with one 'hot' chain: leaf (0,0) is steep, rest are flat."""
    schema = CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 2)),
            Dimension("b", FanoutHierarchy("b", 2, 2)),
        ]
    )
    layers = CriticalLayers(schema, (2, 2), (1, 1))
    cells = {
        (0, 0): ISB(0, 9, 1.0, 5.0),
        (1, 1): ISB(0, 9, 1.0, 0.01),
        (2, 2): ISB(0, 9, 1.0, 0.02),
        (3, 3): ISB(0, 9, 1.0, -0.01),
    }
    policy = GlobalSlopeThreshold(1.0)
    return layers, mo_cubing(layers, cells, policy)


class TestDrillTree:
    def test_roots_are_o_layer_exceptions(self, hot_cube):
        layers, result = hot_cube
        roots = ExceptionDriller(result).drill_tree()
        assert len(roots) == 1
        assert roots[0].coord == layers.o_coord
        assert roots[0].values == (0, 0)

    def test_supporters_chain_reaches_m_layer(self, hot_cube):
        layers, result = hot_cube
        roots = ExceptionDriller(result).drill_tree()
        leaves = [
            n for n in roots[0].walk() if n.coord == layers.m_coord
        ]
        assert any(n.values == (0, 0) for n in leaves)

    def test_all_nodes_exceptional(self, hot_cube):
        _, result = hot_cube
        roots = ExceptionDriller(result).drill_tree()
        for root in roots:
            for node in root.walk():
                assert result.policy.is_exception(node.isb, node.coord)

    def test_max_depth_bounds_drilling(self, hot_cube):
        layers, result = hot_cube
        roots = ExceptionDriller(result).drill_tree(max_depth=1)
        for root in roots:
            for node in root.walk():
                assert sum(node.coord) <= sum(layers.o_coord) + 1

    def test_flat_cube_has_no_roots(self, hot_cube):
        layers, _ = hot_cube
        cells = {(0, 0): ISB(0, 9, 1.0, 0.01)}
        result = mo_cubing(layers, cells, GlobalSlopeThreshold(1.0))
        assert ExceptionDriller(result).drill_tree() == []

    def test_render_includes_dimension_names(self, hot_cube):
        layers, result = hot_cube
        roots = ExceptionDriller(result).drill_tree()
        text = roots[0].render(layers.schema.names)
        assert "a=" in text and "b=" in text
        assert "slope=" in text


class TestSupporters:
    def test_supporters_of_specific_cell(self, hot_cube):
        layers, result = hot_cube
        driller = ExceptionDriller(result)
        node = driller.supporters((0, 0))
        assert node.values == (0, 0)
        assert node.children  # the hot chain continues below

    def test_supporters_of_flat_cell_no_children(self, hot_cube):
        layers, result = hot_cube
        driller = ExceptionDriller(result)
        node = driller.supporters((1, 1))
        assert node.children == []
