"""The execution engine: spec answers equal legacy answers and the oracle.

The acceptance contract of the declarative API: every operation of
:class:`RegressionCubeView` is expressible as a spec, ``execute(view, spec)``
returns the same answer as the legacy method, specs round-trip through the
JSON codec, and whole-cuboid scans serve from *complete* materialized
cuboids (popular-path cuboids included) without changing answers.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.lattice import PopularPath
from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import GlobalSlopeThreshold, calibrate_threshold
from repro.cubing.popular_path import popular_path_cubing
from repro.errors import QueryError
from repro.io import result_to_dict, spec_from_dict, spec_to_dict
from repro.query import Q, RegressionCubeView, execute, execute_batch
from repro.regression.isb import ISB
from repro.stream.generator import DatasetSpec, generate_dataset
from tests.conftest import isb_close


@pytest.fixture(scope="module")
def setup():
    data = generate_dataset("D2L3C3T300", seed=8)
    oracle = full_materialization(data.layers, data.cells)
    tau = calibrate_threshold(intermediate_slopes(oracle), 0.1)
    policy = GlobalSlopeThreshold(tau)
    oracle = full_materialization(data.layers, data.cells, policy)
    mo_view = RegressionCubeView(mo_cubing(data.layers, data.cells, policy))
    pp_view = RegressionCubeView(
        popular_path_cubing(data.layers, data.cells, policy)
    )
    return data, oracle, mo_view, pp_view


def sample_cells(oracle, coord, n=3):
    return list(oracle.cuboids[coord].cells)[:n]


class TestEquivalenceWithLegacy:
    """execute(view, spec) == the view method, for every operation."""

    @pytest.mark.parametrize("which", ["mo", "pp"])
    def test_all_ops_match_methods(self, setup, which):
        data, oracle, mo_view, pp_view = setup
        view = mo_view if which == "mo" else pp_view
        m, o = data.layers.m_coord, data.layers.o_coord
        mid = data.layers.intermediate_coords[0]
        cell = next(iter(view.result.m_layer.cells))
        dim0 = data.layers.schema.names[0]

        pairs = [
            (Q.cell(m, cell), view.cell(m, cell)),
            (Q.slice(o, {dim0: 0}), view.slice(o, {dim0: 0})),
            (Q.roll_up(m, cell, dim0), view.roll_up(m, cell, dim0)),
            (
                Q.drill_down(o, (0, 0), dim0),
                view.drill_down(o, (0, 0), dim0),
            ),
            (Q.siblings(m, cell, dim0), view.siblings(m, cell, dim0)),
            (Q.top_slopes(mid, k=4), view.top_slopes(mid, 4)),
            (Q.observation_deck(), view.observation_deck()),
            (Q.watch_list(), view.watch_list()),
        ]
        for spec, legacy in pairs:
            assert execute(view, spec).value == legacy, spec.op
            # ... and the spec survives the wire.
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_sibling_deviation_matches(self, setup):
        data, oracle, view, _ = setup
        m = data.layers.m_coord
        dim0 = data.layers.schema.names[0]
        for cell in sample_cells(oracle, m, n=20):
            try:
                legacy = view.sibling_deviation(m, cell, dim0)
            except QueryError:
                continue
            got = execute(view, Q.sibling_deviation(m, cell, dim0)).value
            assert math.isclose(got, legacy, rel_tol=1e-12)
            return
        pytest.skip("no cell with siblings in the sample")


class TestEquivalenceWithOracle:
    def test_cell_sweep_every_cuboid(self, setup):
        data, oracle, mo_view, pp_view = setup
        for coord in data.layers.lattice.coords():
            for values in sample_cells(oracle, coord):
                expected = oracle.cuboids[coord][values]
                for view in (mo_view, pp_view):
                    got = execute(view, Q.cell(coord, values)).value
                    assert isb_close(got, expected, tol=1e-7)

    def test_slice_sweep_every_cuboid(self, setup):
        data, oracle, mo_view, pp_view = setup
        dim0 = data.layers.schema.names[0]
        for coord in data.layers.lattice.coords():
            anchor = next(iter(oracle.cuboids[coord].cells))
            expected = {
                v: isb
                for v, isb in oracle.cuboids[coord].items()
                if v[0] == anchor[0]
            }
            for view in (mo_view, pp_view):
                got = execute(view, Q.slice(coord, {dim0: anchor[0]})).value
                assert set(got) == set(expected)
                for v, isb in got.items():
                    assert isb_close(isb, expected[v], tol=1e-7)

    def test_top_slopes_sweep_every_cuboid(self, setup):
        data, oracle, mo_view, pp_view = setup
        for coord in data.layers.lattice.coords():
            steepest = max(
                abs(isb.slope) for isb in oracle.cuboids[coord].cells.values()
            )
            for view in (mo_view, pp_view):
                ranked = execute(view, Q.top_slopes(coord, k=3)).value
                slopes = [abs(isb.slope) for _, isb in ranked]
                assert slopes == sorted(slopes, reverse=True)
                assert math.isclose(slopes[0], steepest, rel_tol=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(data_=st.data())
    def test_property_cell_matches_oracle_and_legacy(self, setup, data_):
        data, oracle, mo_view, pp_view = setup
        coord = data_.draw(
            st.sampled_from(sorted(data.layers.lattice.coords()))
        )
        values = data_.draw(
            st.sampled_from(sorted(oracle.cuboids[coord].cells))
        )
        view = data_.draw(st.sampled_from([mo_view, pp_view]))
        spec = Q.cell(coord, values)
        got = execute(view, spec).value
        assert got == view.cell(coord, values)
        assert isb_close(got, oracle.cuboids[coord][values], tol=1e-7)
        assert spec_from_dict(spec_to_dict(spec)) == spec


class TestCompleteCuboidServing:
    """Satellite: whole-cuboid scans use materialized *complete* cuboids."""

    @pytest.fixture
    def poisoned(self):
        """A full materialization with a sentinel cell planted mid-lattice.

        The sentinel is not derivable from the m-layer, so any answer
        containing it *must* have been served from the materialized cuboid.
        """
        layers = DatasetSpec(2, 2, 3, 1).build_layers()
        cells = {
            (i, j): ISB(0, 3, 1.0, 0.01 * (i + 1)) for i in range(9) for j in range(9)
        }
        result = full_materialization(layers, cells, GlobalSlopeThreshold(1.0))
        mid = layers.intermediate_coords[0]
        sentinel_key = next(iter(result.cuboids[mid].cells))
        sentinel = ISB(0, 3, 123.0, 9.0)
        result.cuboids[mid].cells[sentinel_key] = sentinel
        return result, mid, sentinel_key, sentinel

    def test_slice_serves_from_complete_cuboid(self, poisoned):
        result, mid, key, sentinel = poisoned
        view = RegressionCubeView(result)
        assert view.slice(mid, {})[key] == sentinel

    def test_top_slopes_serves_from_complete_cuboid(self, poisoned):
        result, mid, key, sentinel = poisoned
        view = RegressionCubeView(result)
        assert view.top_slopes(mid, k=1) == [(key, sentinel)]

    def test_partial_cuboids_fall_back_to_m_layer(self, poisoned):
        result, mid, key, sentinel = poisoned
        result.complete_coords = frozenset()  # demote: nothing complete
        view = RegressionCubeView(result)
        assert view.slice(mid, {})[key] != sentinel
        assert view.top_slopes(mid, k=1)[0][1] != sentinel

    def test_popular_path_marks_exactly_the_path(self, setup):
        data, _, _, pp_view = setup
        path = PopularPath.default(data.layers.lattice)
        result = pp_view.result
        for coord in data.layers.lattice.coords():
            assert result.is_complete(coord) == (
                coord in path.coords
                or coord in (data.layers.m_coord, data.layers.o_coord)
            )


class TestTopSlopesRobustness:
    """Satellite: empty cuboids yield [], bad k raises QueryError."""

    def test_empty_cube(self):
        layers = DatasetSpec(2, 2, 3, 1).build_layers()
        result = mo_cubing(layers, {}, GlobalSlopeThreshold(0.1))
        view = RegressionCubeView(result)
        assert view.top_slopes(layers.o_coord, k=5) == []
        assert view.top_slopes(layers.intermediate_coords[0], k=5) == []

    def test_bad_k_raises_instead_of_empty_list(self, setup):
        data, _, view, _ = setup
        with pytest.raises(QueryError):
            view.top_slopes(data.layers.o_coord, k=0)
        with pytest.raises(QueryError):
            view.top_slopes(data.layers.o_coord, k=-3)


class TestBatchesAndEnvelopes:
    def test_batch_reports_results_and_errors_in_order(self, setup):
        data, _, view, _ = setup
        o = data.layers.o_coord
        items = execute_batch(
            view,
            Q.batch(
                Q.watch_list(),
                Q.cell((9, 9), (0, 0)),  # invalid: out of schema range
                Q.top_slopes(o, k=2),
            ),
        )
        assert [item.ok for item in items] == [True, False, True]
        assert items[0].result.value == view.watch_list()
        assert items[1].error_type == "SchemaError"
        assert items[1].error
        assert items[2].result.value == view.top_slopes(o, 2)

    def test_batch_accepts_wire_dicts(self, setup):
        data, _, view, _ = setup
        items = execute_batch(
            view, [{"op": "watch_list"}, {"op": "magic"}]
        )
        assert items[0].ok and not items[1].ok
        assert items[1].error_type == "QueryError"

    def test_execute_accepts_wire_dict(self, setup):
        data, _, view, _ = setup
        got = execute(view, {"op": "observation_deck"}).value
        assert got == view.observation_deck()

    def test_execute_rejects_batchquery(self, setup):
        _, _, view, _ = setup
        with pytest.raises(QueryError):
            execute(view, Q.batch(Q.watch_list()))

    def test_result_envelope_shapes(self, setup):
        data, _, view, _ = setup
        m, o = data.layers.m_coord, data.layers.o_coord
        cell = next(iter(view.result.m_layer.cells))
        dim0 = data.layers.schema.names[0]
        payload = result_to_dict(execute(view, Q.cell(m, cell)))
        assert payload["op"] == "cell" and set(payload["isb"]) == {
            "t_b", "t_e", "base", "slope",
        }
        payload = result_to_dict(execute(view, Q.roll_up(m, cell, dim0)))
        assert set(payload) == {"op", "coord", "values", "isb"}
        payload = result_to_dict(execute(view, Q.top_slopes(o, k=2)))
        assert payload["op"] == "top_slopes"
        assert all(set(row) == {"values", "isb"} for row in payload["cells"])
        payload = result_to_dict(execute(view, Q.watch_list()))
        assert isinstance(payload["cells"], list)
