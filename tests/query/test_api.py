"""Tests for the OLAP query facade."""

from __future__ import annotations

import math

import pytest

from repro.cube.hierarchy import ALL
from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import GlobalSlopeThreshold, calibrate_threshold
from repro.errors import QueryError
from repro.query.api import RegressionCubeView
from tests.conftest import isb_close


@pytest.fixture(scope="module")
def setup():
    from repro.stream.generator import generate_dataset

    data = generate_dataset("D2L3C3T300", seed=8)
    oracle = full_materialization(data.layers, data.cells)
    tau = calibrate_threshold(intermediate_slopes(oracle), 0.1)
    policy = GlobalSlopeThreshold(tau)
    result = mo_cubing(data.layers, data.cells, policy)
    oracle = full_materialization(data.layers, data.cells, policy)
    return data, oracle, RegressionCubeView(result)


class TestPointQueries:
    def test_materialized_cell_returned_directly(self, setup):
        data, oracle, view = setup
        o = data.layers.o_coord
        for values, isb in oracle.o_layer.items():
            assert isb_close(view.cell(o, values), isb, tol=1e-7)

    def test_unmaterialized_cell_computed_on_the_fly(self, setup):
        data, oracle, view = setup
        # Pick a non-exception intermediate cell: absent from the result but
        # recoverable by rolling up the m-layer.
        for coord in data.layers.intermediate_coords:
            for values, isb in oracle.cuboids[coord].items():
                if values not in view.result.cuboids[coord]:
                    got = view.cell(coord, values)
                    assert isb_close(got, isb, tol=1e-7)
                    return
        pytest.skip("every intermediate cell was exceptional")

    def test_cell_without_data_raises(self, setup):
        data, oracle, view = setup
        # Find a valid m-layer key with no supporting data.
        import itertools

        m = data.layers.m_coord
        card = data.layers.schema.hierarchy(0).cardinality(m[0])
        for key in itertools.product(range(card), repeat=2):
            if key not in oracle.m_layer:
                with pytest.raises(QueryError):
                    view.cell(m, key)
                break
        else:
            pytest.skip("dataset saturates the m-layer key space")

    def test_invalid_values_raise(self, setup):
        data, _, view = setup
        with pytest.raises(Exception):
            view.cell(data.layers.o_coord, (99, 99))

    def test_cell_by_level_names(self, setup):
        data, oracle, view = setup
        names = data.layers.schema.describe_coord(data.layers.o_coord)
        values = next(iter(oracle.o_layer.cells))
        got = view.cell_by_level_names(names, values)
        assert isb_close(got, oracle.o_layer[values], tol=1e-7)

    def test_coord_outside_lattice_rejected(self, setup):
        data, _, view = setup
        with pytest.raises(Exception):
            view.cell((0, 0), (ALL, ALL))  # apex is above the o-layer


class TestSliceAndTop:
    def test_slice_fixes_dimension(self, setup):
        data, oracle, view = setup
        o = data.layers.o_coord
        some = next(iter(oracle.o_layer.cells))
        fixed = {data.layers.schema.names[0]: some[0]}
        sliced = view.slice(o, fixed)
        assert sliced
        assert all(v[0] == some[0] for v in sliced)
        for values, isb in sliced.items():
            assert isb_close(isb, oracle.o_layer[values], tol=1e-7)

    def test_slice_on_unmaterialized_cuboid(self, setup):
        data, oracle, view = setup
        coord = data.layers.intermediate_coords[0]
        some = next(iter(oracle.cuboids[coord].cells))
        fixed = {data.layers.schema.names[0]: some[0]}
        sliced = view.slice(coord, fixed)
        expected = {
            v: isb
            for v, isb in oracle.cuboids[coord].items()
            if v[0] == some[0]
        }
        assert set(sliced) == set(expected)

    def test_top_slopes_sorted(self, setup):
        data, _, view = setup
        top = view.top_slopes(data.layers.o_coord, k=3)
        slopes = [abs(isb.slope) for _, isb in top]
        assert slopes == sorted(slopes, reverse=True)
        assert len(top) <= 3

    def test_observation_deck_and_watch_list(self, setup):
        _, oracle, view = setup
        deck = view.observation_deck()
        watch = view.watch_list()
        assert set(watch) <= set(deck)
        assert set(deck) == set(oracle.o_layer.cells)


class TestRollUpDrillDown:
    def test_roll_up_step(self, setup):
        data, oracle, view = setup
        m = data.layers.m_coord
        values = next(iter(view.result.m_layer.cells))
        dim0 = data.layers.schema.names[0]
        parent_coord, parent_values, isb = view.roll_up(m, values, dim0)
        assert parent_coord[0] == m[0] - 1
        assert isb_close(isb, oracle.cuboids[parent_coord][parent_values], tol=1e-7)

    def test_roll_up_past_o_layer_rejected(self, setup):
        data, oracle, view = setup
        o = data.layers.o_coord
        values = next(iter(oracle.o_layer.cells))
        with pytest.raises(QueryError):
            view.roll_up(o, values, data.layers.schema.names[0])

    def test_drill_down_children_partition_parent(self, setup):
        data, oracle, view = setup
        o = data.layers.o_coord
        dim0 = data.layers.schema.names[0]
        for values, isb in oracle.o_layer.items():
            children = view.drill_down(o, values, dim0)
            if not children:
                continue
            base_sum = math.fsum(c.base for c in children.values())
            slope_sum = math.fsum(c.slope for c in children.values())
            assert math.isclose(base_sum, isb.base, rel_tol=1e-6)
            assert math.isclose(slope_sum, isb.slope, rel_tol=1e-6, abs_tol=1e-9)
            return
        pytest.fail("no o-layer cell had children")

    def test_drill_down_past_m_layer_rejected(self, setup):
        data, _, view = setup
        m = data.layers.m_coord
        values = next(iter(view.result.m_layer.cells))
        with pytest.raises(QueryError):
            view.drill_down(m, values, data.layers.schema.names[0])
