"""QuerySpec plans: builder fluency, canonical identity, JSON codecs."""

from __future__ import annotations

import pytest

from repro.errors import HierarchyError, QueryError, SchemaError
from repro.io import batch_from_dict, batch_to_dict, spec_from_dict, spec_to_dict
from repro.query.spec import (
    BatchQuery,
    CellSpec,
    Q,
    QuerySpec,
    SliceSpec,
    TopSlopesSpec,
)
from repro.stream.generator import DatasetSpec


@pytest.fixture(scope="module")
def schema():
    return DatasetSpec(2, 2, 3, 1).build_layers().schema


def every_op_specs():
    """One representative spec per operation (the full family)."""
    return [
        Q.cell((1, 1), (0, 0)),
        Q.slice((1, 2), {"d0": 0}),
        Q.roll_up((2, 2), (3, 3), "d0"),
        Q.drill_down((1, 1), (0, 0), "d1"),
        Q.siblings((2, 2), (3, 3), "d0"),
        Q.sibling_deviation((2, 2), (3, 3), "d1"),
        Q.top_slopes((1, 1), k=7),
        Q.observation_deck(),
        Q.watch_list(window=6),
    ]


class TestBuilder:
    def test_fluent_equals_kwargs(self):
        fluent = Q.cell().at((1, 1)).of(0, 0).window(8)
        direct = Q.cell((1, 1), (0, 0), window=8)
        assert fluent == direct
        assert fluent.cache_key() == direct.cache_key()

    def test_steps_return_new_frozen_specs(self):
        base = Q.cell((1, 1), (0, 0))
        windowed = base.window(8)
        assert base.window_quarters is None
        assert windowed.window_quarters == 8
        with pytest.raises(Exception):
            base.coord = (2, 2)  # frozen

    def test_normalization_makes_equal_plans_equal(self):
        assert Q.cell([1, 1], [0, 0]) == Q.cell((1, 1), (0, 0))
        a = Q.slice((1, 1), {"d0": 0, "d1": 2})
        b = Q.slice((1, 1)).where(d1=2, d0=0)
        assert a == b
        assert a.cache_key() == b.cache_key()

    def test_of_accepts_tuple_or_varargs(self):
        assert Q.cell((1, 1)).of(0, 3) == Q.cell((1, 1)).of((0, 3))

    def test_chained_where_accumulates_constraints(self):
        chained = Q.slice((1, 1)).where(d0=3).where(d1=4)
        assert chained == Q.slice((1, 1), {"d0": 3, "d1": 4})
        # A later call overrides the same dimension, never drops others.
        assert Q.slice((1, 1)).where(d0=3).where(d0=5) == (
            Q.slice((1, 1), {"d0": 5})
        )

    def test_field_guard_on_foreign_fluent_step(self):
        with pytest.raises(QueryError):
            Q.watch_list().at((1, 1))
        with pytest.raises(QueryError):
            Q.cell((1, 1), (0, 0)).top(3)

    def test_window_and_k_validated_at_construction(self):
        with pytest.raises(QueryError):
            Q.cell((1, 1), (0, 0), window=0)
        with pytest.raises(QueryError):
            Q.top_slopes((1, 1), k=0)
        with pytest.raises(QueryError):
            Q.top_slopes((1, 1), k="many")

    def test_garbage_fields_rejected(self):
        with pytest.raises(QueryError):
            Q.cell(coord="nope")
        with pytest.raises(QueryError):
            Q.cell((1, 1), values="nope")
        with pytest.raises(QueryError):
            Q.roll_up((1, 1), (0, 0), dim=3)
        with pytest.raises(QueryError):
            Q.slice((1, 1), fixed=[("d0",)])

    def test_cache_key_distinguishes_plans(self):
        keys = {spec.cache_key() for spec in every_op_specs()}
        assert len(keys) == len(every_op_specs())
        assert Q.cell((1, 1), (0, 0)).cache_key() != (
            Q.cell((1, 1), (0, 0), window=2).cache_key()
        )


class TestResolve:
    def test_level_names_resolve_to_coordinates(self, schema):
        names = schema.describe_coord((1, 2))
        spec = Q.cell(tuple(names), (0, 0)).resolve(schema, require=False)
        assert spec.coord == (1, 2)

    def test_bound_builder_resolves_at_construction(self, schema):
        names = schema.describe_coord((2, 1))
        q = Q.bind(schema)
        assert q.cell(tuple(names), (0, 0)).coord == (2, 1)

    def test_bound_builder_validates_eagerly(self, schema):
        q = Q.bind(schema)
        with pytest.raises(SchemaError):
            q.cell((9, 9), (0, 0))
        with pytest.raises(SchemaError):
            q.roll_up((1, 1), (0, 0), "nope")
        with pytest.raises(HierarchyError):
            q.cell((2, 2), (99, 0))
        with pytest.raises(HierarchyError):
            q.cell(("not_a_level", "d11"), (0, 0))

    def test_required_fields_enforced_on_full_resolve(self, schema):
        with pytest.raises(QueryError):
            Q.cell().resolve(schema)
        with pytest.raises(QueryError):
            Q.roll_up((1, 1), (0, 0)).resolve(schema)
        # Partial resolve (the builder's eager mode) tolerates gaps.
        assert Q.cell().resolve(schema, require=False) == Q.cell()

    def test_fixed_dimensions_checked(self, schema):
        with pytest.raises(SchemaError):
            Q.slice((1, 1), {"nope": 0}).resolve(schema)


class TestCodec:
    @pytest.mark.parametrize(
        "spec", every_op_specs(), ids=lambda s: s.op
    )
    def test_round_trip_every_op(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_round_trip_with_window_and_mixed_values(self):
        spec = Q.cell((1, 2), ("*", 3), window=8)
        payload = spec_to_dict(spec)
        assert payload == {
            "op": "cell",
            "coord": [1, 2],
            "values": ["*", 3],
            "window": 8,
        }
        assert spec_from_dict(payload) == spec

    def test_legacy_point_alias(self):
        decoded = spec_from_dict(
            {"op": "point", "coord": [1, 1], "values": [0, 0]}
        )
        assert isinstance(decoded, CellSpec)
        assert decoded == Q.cell((1, 1), (0, 0))

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            spec_from_dict({"op": "magic"})
        with pytest.raises(QueryError):
            spec_from_dict({"coord": [1, 1]})

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError):
            spec_from_dict({"op": "cell", "coord": [1, 1], "valeus": [0, 0]})
        with pytest.raises(QueryError):
            spec_from_dict({"op": "watch_list", "coord": [1, 1]})


class TestBatch:
    def test_build_iterate_add(self):
        batch = Q.batch(Q.watch_list(), Q.top_slopes((1, 1)))
        assert len(batch) == 2
        batch = batch.add(Q.observation_deck())
        assert [spec.op for spec in batch] == [
            "watch_list",
            "top_slopes",
            "observation_deck",
        ]

    def test_only_specs_allowed(self):
        with pytest.raises(QueryError):
            BatchQuery(({"op": "watch_list"},))  # type: ignore[arg-type]

    def test_round_trip(self):
        batch = Q.batch(*every_op_specs())
        assert batch_from_dict(batch_to_dict(batch)) == batch

    def test_decode_requires_queries_list(self):
        with pytest.raises(QueryError):
            batch_from_dict({"queries": "nope"})

    def test_cache_key_covers_members_in_order(self):
        a = Q.batch(Q.watch_list(), Q.observation_deck())
        b = Q.batch(Q.observation_deck(), Q.watch_list())
        assert a.cache_key() != b.cache_key()


class TestFamily:
    def test_every_view_operation_has_a_spec(self):
        ops = {spec.op for spec in every_op_specs()}
        assert ops == {
            "cell",
            "slice",
            "roll_up",
            "drill_down",
            "siblings",
            "sibling_deviation",
            "top_slopes",
            "observation_deck",
            "watch_list",
        }

    def test_specs_are_hashable(self):
        assert len({spec for spec in every_op_specs()}) == len(every_op_specs())

    def test_defaults(self):
        assert TopSlopesSpec().k == 5
        assert SliceSpec().fixed is None
        assert isinstance(Q.slice((1, 1)), QuerySpec)
