"""Tests for sibling queries and sibling-deviation analysis."""

from __future__ import annotations

import math

import pytest

from repro.cube.hierarchy import FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import GlobalSlopeThreshold
from repro.errors import QueryError
from repro.query.api import RegressionCubeView
from repro.regression.isb import ISB


@pytest.fixture
def view():
    schema = CubeSchema(
        [
            Dimension("a", FanoutHierarchy("a", 2, 2)),
            Dimension("b", FanoutHierarchy("b", 2, 2)),
        ]
    )
    layers = CriticalLayers(schema, (2, 2), (1, 1))
    # Leaves 0 and 1 share parent 0 on dim a; leaf (0,0) trends alone.
    cells = {
        (0, 0): ISB(0, 9, 1.0, 2.0),
        (1, 0): ISB(0, 9, 1.0, 0.1),
        (2, 0): ISB(0, 9, 1.0, 0.1),  # parent 1: not a sibling of 0/1
        (0, 1): ISB(0, 9, 1.0, 0.2),
    }
    result = mo_cubing(layers, cells, GlobalSlopeThreshold(0.5))
    return RegressionCubeView(result)


class TestSiblings:
    def test_siblings_share_parent_and_other_dims(self, view):
        sibs = view.siblings((2, 2), (0, 0), "a")
        # Only (1, 0) qualifies: same b value, same a-parent (0).
        assert set(sibs) == {(1, 0)}

    def test_cell_itself_excluded(self, view):
        sibs = view.siblings((2, 2), (0, 0), "a")
        assert (0, 0) not in sibs

    def test_different_parent_excluded(self, view):
        sibs = view.siblings((2, 2), (0, 0), "a")
        assert (2, 0) not in sibs

    def test_other_dim_must_match(self, view):
        sibs = view.siblings((2, 2), (0, 0), "a")
        assert (0, 1) not in sibs

    def test_star_dimension_rejected(self, view):
        layers = view.layers
        # Build an o-layer at '*' for dim a to exercise the guard.
        from repro.cube.layers import CriticalLayers as CL

        star_layers = CL(layers.schema, (2, 2), (0, 1))
        from repro.cubing.mo_cubing import mo_cubing
        from repro.cubing.policy import GlobalSlopeThreshold

        result = mo_cubing(
            star_layers,
            dict(view.result.m_layer.items()),
            GlobalSlopeThreshold(0.5),
        )
        star_view = RegressionCubeView(result)
        with pytest.raises(QueryError):
            star_view.siblings(star_layers.o_coord, ("*", 0), "a")

    def test_no_siblings_empty(self, view):
        # (2, 0) has a-parent 1, whose only other child is 3 — absent.
        sibs = view.siblings((2, 2), (2, 0), "a")
        assert sibs == {}


class TestSiblingDeviation:
    def test_lone_trender_deviates(self, view):
        deviation = view.sibling_deviation((2, 2), (0, 0), "a")
        assert math.isclose(deviation, 2.0 - 0.1, rel_tol=1e-9)

    def test_symmetric_view_from_the_flat_sibling(self, view):
        deviation = view.sibling_deviation((2, 2), (1, 0), "a")
        assert math.isclose(deviation, 0.1 - 2.0, rel_tol=1e-9)

    def test_no_siblings_raises(self, view):
        with pytest.raises(QueryError):
            view.sibling_deviation((2, 2), (2, 0), "a")
