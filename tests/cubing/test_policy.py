"""Tests for exception policies and threshold calibration."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.cubing.policy import (
    GlobalSlopeThreshold,
    PerCuboidSlopeThreshold,
    PerDimensionLevelThreshold,
    calibrate_threshold,
    two_point_isb,
)
from repro.errors import CubingError
from repro.regression.isb import ISB


class TestGlobalThreshold:
    def test_absolute_slope_judged(self):
        pol = GlobalSlopeThreshold(0.5)
        assert pol.is_exception(ISB(0, 9, 0.0, 0.6), (1, 1))
        assert pol.is_exception(ISB(0, 9, 0.0, -0.6), (1, 1))
        assert not pol.is_exception(ISB(0, 9, 0.0, 0.4), (1, 1))

    def test_boundary_inclusive(self):
        """The paper: exceptional if slope >= threshold."""
        pol = GlobalSlopeThreshold(0.5)
        assert pol.is_exception(ISB(0, 9, 0.0, 0.5), (1,))

    def test_zero_threshold_flags_everything(self):
        pol = GlobalSlopeThreshold(0.0)
        assert pol.is_exception(ISB(0, 9, 0.0, 0.0), (1,))

    def test_negative_threshold_rejected(self):
        with pytest.raises(CubingError):
            GlobalSlopeThreshold(-1.0)


class TestPerCuboidThreshold:
    def test_override_applies(self):
        pol = PerCuboidSlopeThreshold(0.5, {(1, 1): 0.1})
        isb = ISB(0, 9, 0.0, 0.2)
        assert pol.is_exception(isb, (1, 1))
        assert not pol.is_exception(isb, (2, 2))

    def test_negative_values_rejected(self):
        with pytest.raises(CubingError):
            PerCuboidSlopeThreshold(0.5, {(1, 1): -0.1})

    def test_threshold_for_default(self):
        pol = PerCuboidSlopeThreshold(0.3)
        assert pol.threshold_for((5, 5)) == 0.3


class TestPerDimensionLevelThreshold:
    def test_max_combine_default(self):
        pol = PerDimensionLevelThreshold(
            0.1, {(0, 1): 0.5, (1, 2): 0.2}
        )
        assert pol.threshold_for((1, 2)) == 0.5  # max(0.5, 0.2)
        assert pol.threshold_for((2, 2)) == 0.2  # max(default 0.1, 0.2)

    def test_min_combine(self):
        pol = PerDimensionLevelThreshold(
            0.4, {(0, 1): 0.5}, combine=min
        )
        assert pol.threshold_for((1, 1)) == 0.4  # min(0.5, default 0.4)


class TestTwoPointISB:
    def test_slope_through_window_means(self):
        prev = ISB(0, 3, 1.0, 0.0)  # mean 1.0 at t=1.5
        cur = ISB(4, 7, 3.0, 0.0)  # mean 3.0 at t=5.5
        change = two_point_isb(prev, cur)
        assert change.interval == (0, 7)
        assert math.isclose(change.slope, 0.5)  # (3-1)/(5.5-1.5)
        assert math.isclose(change.predict(1.5), 1.0)
        assert math.isclose(change.predict(5.5), 3.0)

    def test_requires_adjacency(self):
        with pytest.raises(CubingError):
            two_point_isb(ISB(0, 3, 1, 0), ISB(5, 8, 1, 0))

    def test_flat_windows_zero_change(self):
        prev = ISB(0, 3, 2.0, 0.0)
        cur = ISB(4, 7, 2.0, 0.0)
        assert two_point_isb(prev, cur).slope == 0.0


class TestCalibration:
    def test_rate_hits_target_on_population(self):
        rng = np.random.default_rng(0)
        slopes = rng.laplace(0, 0.1, size=10_000)
        for rate in (0.001, 0.01, 0.1, 0.5):
            tau = calibrate_threshold(slopes, rate)
            achieved = float(np.mean(np.abs(slopes) >= tau))
            assert abs(achieved - rate) < 0.01

    def test_full_rate_is_zero_threshold(self):
        assert calibrate_threshold([0.1, 0.2], 1.0) == 0.0

    def test_empty_population_rejected(self):
        with pytest.raises(CubingError):
            calibrate_threshold([], 0.1)

    def test_bad_rate_rejected(self):
        with pytest.raises(CubingError):
            calibrate_threshold([0.1], 0.0)
        with pytest.raises(CubingError):
            calibrate_threshold([0.1], 1.5)

    def test_signs_ignored(self):
        tau_pos = calibrate_threshold([0.1, 0.2, 0.3, 0.4], 0.5)
        tau_mix = calibrate_threshold([-0.1, 0.2, -0.3, 0.4], 0.5)
        assert tau_pos == tau_mix
