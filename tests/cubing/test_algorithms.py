"""Cross-algorithm correctness: Algorithms 1 & 2, BUC, full materialization.

The oracle chain:
  raw m-layer cells --full materialization--> every cell of every cuboid
  Algorithm 1 output == full output filtered to exceptions (+ o/m layers)
  BUC output        == Algorithm 1 output
  Algorithm 2 output == Framework 4.1 closure (footnote 7: a subset of A1)
"""

from __future__ import annotations

import math

import pytest

from repro.cube.lattice import PopularPath
from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.buc import buc_cubing
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import GlobalSlopeThreshold, calibrate_threshold
from repro.cubing.popular_path import popular_path_cubing
from repro.cubing.result import framework_closure
from repro.errors import CubingError
from tests.conftest import isb_close


@pytest.fixture(scope="module")
def dataset():
    from repro.stream.generator import generate_dataset

    return generate_dataset("D3L3C4T500", seed=11)


@pytest.fixture(scope="module")
def policy(dataset):
    full = full_materialization(dataset.layers, dataset.cells)
    tau = calibrate_threshold(intermediate_slopes(full), 0.05)
    return GlobalSlopeThreshold(tau)


@pytest.fixture(scope="module")
def full(dataset, policy):
    return full_materialization(dataset.layers, dataset.cells, policy)


@pytest.fixture(scope="module")
def mo(dataset, policy):
    return mo_cubing(dataset.layers, dataset.cells, policy)


@pytest.fixture(scope="module")
def popular(dataset, policy):
    return popular_path_cubing(dataset.layers, dataset.cells, policy)


@pytest.fixture(scope="module")
def buc(dataset, policy):
    return buc_cubing(dataset.layers, dataset.cells, policy)


class TestFullMaterialization:
    def test_all_cuboids_present(self, dataset, full):
        assert set(full.cuboids) == set(dataset.layers.lattice.coords())

    def test_m_layer_is_input(self, dataset, full):
        assert dict(full.m_layer.items()) == dataset.cells

    def test_apexward_totals_conserved(self, dataset, full):
        """Every cuboid's cells sum (bases/slopes) to the same totals."""
        base_total = math.fsum(i.base for i in dataset.cells.values())
        slope_total = math.fsum(i.slope for i in dataset.cells.values())
        for coord, cuboid in full.cuboids.items():
            assert math.isclose(
                math.fsum(c.base for c in cuboid.cells.values()),
                base_total,
                rel_tol=1e-6,
            ), coord
            assert math.isclose(
                math.fsum(c.slope for c in cuboid.cells.values()),
                slope_total,
                rel_tol=1e-6,
            ), coord

    def test_cuboid_cells_bounded(self, dataset, full):
        lat = dataset.layers.lattice
        for coord, cuboid in full.cuboids.items():
            assert len(cuboid) <= min(len(dataset.cells), lat.max_cells(coord))

    def test_direct_rollup_equivalence(self, dataset, full):
        """Each cuboid equals a one-shot roll-up of the m-layer."""
        m = full.m_layer
        for coord in dataset.layers.lattice.coords():
            direct = m.roll_up(coord)
            got = full.cuboids[coord]
            assert set(direct) == set(got)
            for key in direct:
                assert isb_close(direct[key], got[key], tol=1e-7)


class TestAlgorithm1:
    def test_o_and_m_layers_match_full(self, full, mo):
        for coord in (mo.layers.o_coord, mo.layers.m_coord):
            assert set(mo.cuboids[coord]) == set(full.cuboids[coord])
            for key, isb in mo.cuboids[coord].items():
                assert isb_close(isb, full.cuboids[coord][key], tol=1e-7)

    def test_intermediates_are_exactly_the_exceptions(self, full, mo, policy):
        for coord in mo.layers.intermediate_coords:
            expected = {
                k
                for k, isb in full.cuboids[coord].items()
                if policy.is_exception(isb, coord)
            }
            assert set(mo.retained_exceptions[coord]) == expected
            assert set(mo.cuboids[coord]) == expected

    def test_exception_values_match_full(self, full, mo):
        for coord, cells in mo.retained_exceptions.items():
            for key, isb in cells.items():
                assert isb_close(isb, full.cuboids[coord][key], tol=1e-7)

    def test_work_counters_populated(self, mo):
        s = mo.stats
        assert s.cells_computed > 0
        assert s.cuboids_computed == mo.layers.lattice.size
        assert s.htree_nodes > 0
        assert s.header_entries > 0
        assert s.runtime_s > 0


class TestAlgorithm2:
    def test_output_equals_framework_closure(self, dataset, full, popular, policy):
        path = PopularPath.default(dataset.layers.lattice)
        closure = framework_closure(
            full.cuboids, dataset.layers, policy, path.coords
        )
        for coord in dataset.layers.intermediate_coords:
            assert set(popular.retained_exceptions[coord]) == set(
                closure[coord]
            ), coord

    def test_footnote7_subset_of_algorithm1(self, mo, popular):
        for coord in mo.layers.intermediate_coords:
            assert set(popular.retained_exceptions[coord]) <= set(
                mo.retained_exceptions[coord]
            )

    def test_path_cuboids_fully_computed_and_exact(self, dataset, full, popular):
        path = PopularPath.default(dataset.layers.lattice)
        for coord in path:
            assert set(popular.cuboids[coord]) == set(full.cuboids[coord])
            for key, isb in popular.cuboids[coord].items():
                assert isb_close(isb, full.cuboids[coord][key], tol=1e-7)

    def test_drilled_cells_exact(self, dataset, full, popular):
        for coord, cells in popular.retained_exceptions.items():
            for key, isb in cells.items():
                assert isb_close(isb, full.cuboids[coord][key], tol=1e-7)

    def test_custom_path_same_o_layer(self, dataset, policy, full):
        lat = dataset.layers.lattice
        # Reverse drill order: last dim first.
        seq = []
        for i in reversed(range(dataset.layers.schema.n_dims)):
            seq.extend([i] * (lat.m_coord[i] - lat.o_coord[i]))
        path = PopularPath.from_drill_sequence(lat, seq)
        result = popular_path_cubing(
            dataset.layers, dataset.cells, policy, path
        )
        assert set(result.o_layer) == set(full.o_layer)
        for key, isb in result.o_layer.items():
            assert isb_close(isb, full.o_layer[key], tol=1e-7)

    def test_custom_path_closure_semantics(self, dataset, policy, full):
        lat = dataset.layers.lattice
        seq = []
        for i in reversed(range(dataset.layers.schema.n_dims)):
            seq.extend([i] * (lat.m_coord[i] - lat.o_coord[i]))
        path = PopularPath.from_drill_sequence(lat, seq)
        result = popular_path_cubing(
            dataset.layers, dataset.cells, policy, path
        )
        closure = framework_closure(
            full.cuboids, dataset.layers, policy, path.coords
        )
        for coord in dataset.layers.intermediate_coords:
            assert set(result.retained_exceptions[coord]) == set(
                closure[coord]
            )

    def test_mismatched_path_rejected(self, dataset, policy, fanout_layers):
        path = PopularPath.default(fanout_layers.lattice)
        with pytest.raises(CubingError):
            popular_path_cubing(dataset.layers, dataset.cells, policy, path)

    def test_zero_exceptions_skips_all_offpath(self, dataset):
        """An unreachable threshold means no off-path cuboid is computed."""
        impossible = GlobalSlopeThreshold(1e9)
        result = popular_path_cubing(dataset.layers, dataset.cells, impossible)
        path = PopularPath.default(dataset.layers.lattice)
        off_path = [
            c for c in dataset.layers.lattice.coords() if c not in path
        ]
        assert result.stats.cuboids_skipped == len(off_path)
        assert result.total_retained_exceptions == 0

    def test_full_exception_rate_computes_everything(self, dataset, full, mo):
        everything = GlobalSlopeThreshold(0.0)
        result = popular_path_cubing(dataset.layers, dataset.cells, everything)
        for coord in dataset.layers.intermediate_coords:
            assert set(result.retained_exceptions[coord]) == set(
                full.cuboids[coord].cells
            )


class TestBUC:
    def test_matches_algorithm1_exceptions(self, mo, buc):
        for coord in mo.layers.intermediate_coords:
            assert set(buc.retained_exceptions[coord]) == set(
                mo.retained_exceptions[coord]
            )

    def test_layers_match_full(self, full, buc):
        for coord in (buc.layers.o_coord, buc.layers.m_coord):
            assert set(buc.cuboids[coord]) == set(full.cuboids[coord])

    def test_cell_values_match_full(self, full, buc):
        for coord, cells in buc.retained_exceptions.items():
            for key, isb in cells.items():
                assert isb_close(isb, full.cuboids[coord][key], tol=1e-6)


class TestResultAccessors:
    def test_describe_mentions_algorithm(self, mo):
        assert "m/o-cubing" in mo.describe()

    def test_exceptions_at_unknown_coord_empty(self, mo):
        assert mo.exceptions_at((9, 9, 9)) == {}

    def test_cuboid_lookup_raises_for_missing(self, mo):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            mo.cuboid((9, 9, 9))

    def test_o_layer_exceptions_subset_of_o_layer(self, mo):
        exc = mo.o_layer_exceptions()
        assert set(exc) <= set(mo.o_layer.cells)
