"""Tests for cubing statistics and the analytic memory model."""

from __future__ import annotations

import pytest

from repro.cubing.stats import CELL_KEY_BYTES_PER_DIM, CubingStats
from repro.htree.header import HEADER_ENTRY_BYTES
from repro.htree.node import HTREE_NODE_BYTES
from repro.regression.isb import ISB_STRUCT_BYTES


class TestTransientTracking:
    def test_peak_tracks_high_watermark(self):
        s = CubingStats("x")
        s.transient_alloc(100)
        s.transient_alloc(50)
        s.transient_free(100)
        s.transient_alloc(20)
        assert s.transient_peak_cells == 150

    def test_peak_never_decreases(self):
        s = CubingStats("x")
        s.transient_alloc(10)
        s.transient_free(10)
        assert s.transient_peak_cells == 10


class TestMemoryModel:
    def test_bytes_total_formula(self):
        s = CubingStats("x", n_dims=3)
        s.htree_nodes = 10
        s.htree_leaf_isbs = 4
        s.htree_interior_isbs = 2
        s.header_entries = 5
        s.retained_cells = 7
        s.transient_peak_cells = 3
        cell = ISB_STRUCT_BYTES + 3 * CELL_KEY_BYTES_PER_DIM
        expected = (
            10 * HTREE_NODE_BYTES
            + 6 * ISB_STRUCT_BYTES
            + 5 * HEADER_ENTRY_BYTES
            + (7 + 3) * cell
        )
        assert s.bytes_total() == expected

    def test_megabytes_scaling(self):
        s = CubingStats("x", n_dims=1)
        s.retained_cells = 1024 * 1024 // (
            ISB_STRUCT_BYTES + CELL_KEY_BYTES_PER_DIM
        )
        assert 0.9 < s.megabytes < 1.1

    def test_empty_stats_zero_bytes(self):
        assert CubingStats("x").bytes_total() == 0


class TestModelOrdering:
    """The relative claims the model must support (see DESIGN.md)."""

    def test_popular_path_charges_interior_storage(self):
        """Same tree, but Algorithm 2 stores ISBs in interior nodes too."""
        mo = CubingStats("m/o", n_dims=2)
        pp = CubingStats("pp", n_dims=2)
        for s in (mo, pp):
            s.htree_nodes = 1000
            s.htree_leaf_isbs = 400
        pp.htree_interior_isbs = 600
        assert pp.bytes_total() > mo.bytes_total()

    def test_retained_exceptions_dominate_at_high_rates(self):
        low = CubingStats("m/o", n_dims=2)
        high = CubingStats("m/o", n_dims=2)
        low.retained_cells = 10
        high.retained_cells = 10_000
        assert high.bytes_total() > 100 * low.bytes_total()
