"""Tests for multiway simultaneous regression cubing."""

from __future__ import annotations

import pytest

from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.multiway import multiway_cubing
from repro.cubing.policy import GlobalSlopeThreshold, calibrate_threshold
from repro.errors import AggregationError
from repro.regression.isb import ISB
from tests.conftest import isb_close


@pytest.fixture(scope="module")
def dataset():
    from repro.stream.generator import generate_dataset

    return generate_dataset("D3L3C4T500", seed=11)


@pytest.fixture(scope="module")
def policy(dataset):
    full = full_materialization(dataset.layers, dataset.cells)
    return GlobalSlopeThreshold(
        calibrate_threshold(intermediate_slopes(full), 0.05)
    )


class TestCorrectness:
    def test_matches_algorithm1_exceptions(self, dataset, policy):
        mo = mo_cubing(dataset.layers, dataset.cells, policy)
        mw = multiway_cubing(dataset.layers, dataset.cells, policy)
        for coord in dataset.layers.intermediate_coords:
            assert set(mw.retained_exceptions[coord]) == set(
                mo.retained_exceptions[coord]
            )

    def test_o_layer_values_match_oracle(self, dataset, policy):
        oracle = full_materialization(dataset.layers, dataset.cells, policy)
        mw = multiway_cubing(dataset.layers, dataset.cells, policy)
        assert set(mw.o_layer.cells) == set(oracle.o_layer.cells)
        for key, isb in mw.o_layer.items():
            assert isb_close(isb, oracle.o_layer[key], tol=1e-7)

    def test_exception_isbs_match_oracle(self, dataset, policy):
        oracle = full_materialization(dataset.layers, dataset.cells, policy)
        mw = multiway_cubing(dataset.layers, dataset.cells, policy)
        for coord, cells in mw.retained_exceptions.items():
            for key, isb in cells.items():
                assert isb_close(isb, oracle.cuboids[coord][key], tol=1e-7)

    def test_single_scan(self, dataset, policy):
        mw = multiway_cubing(dataset.layers, dataset.cells, policy)
        assert mw.stats.rows_scanned == len(dataset.cells)

    def test_m_layer_preserved(self, dataset, policy):
        mw = multiway_cubing(dataset.layers, dataset.cells, policy)
        assert dict(mw.m_layer.items()) == dataset.cells


class TestValidation:
    def test_mixed_windows_rejected(self, dataset, policy):
        cells = dict(dataset.cells)
        key = next(iter(cells))
        cells[key] = ISB(0, 99, 0.0, 0.0)  # everyone else is [0, 15]
        with pytest.raises(AggregationError):
            multiway_cubing(dataset.layers, cells, policy)

    def test_empty_input_yields_empty_cuboids(self, dataset, policy):
        mw = multiway_cubing(dataset.layers, {}, policy)
        assert len(mw.m_layer) == 0
        assert len(mw.o_layer) == 0
        assert mw.total_retained_exceptions == 0
