"""Cross-algorithm agreement on string-valued, non-uniform hierarchies.

The D*L*C* generator uses uniform integer fanout hierarchies; real schemas
(power grid, Example 5) have explicit, unevenly sized ones.  These tests run
every algorithm over the Example 5 schema — whose per-level cardinalities
are deliberately irregular — and check the same oracle equivalences as the
fanout-based suite.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.cube.lattice import PopularPath
from repro.cubing.buc import buc_cubing
from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.multiway import multiway_cubing
from repro.cubing.policy import GlobalSlopeThreshold, calibrate_threshold
from repro.cubing.popular_path import popular_path_cubing
from repro.cubing.result import framework_closure
from repro.regression.isb import ISB
from tests.conftest import isb_close


@pytest.fixture()
def example5_cells(example5_layers):
    """Random m-layer cells over the Example 5 value space."""
    rng = np.random.default_rng(31)
    a_vals = [f"a2_{i}" for i in range(10)]
    b_vals = [f"b2_{i}" for i in range(12)]
    c_vals = [f"c2_{i}" for i in range(8)]
    cells = {}
    for _ in range(300):
        key = (
            str(rng.choice(a_vals)),
            str(rng.choice(b_vals)),
            str(rng.choice(c_vals)),
        )
        isb = ISB(0, 11, float(rng.uniform(0, 4)), float(rng.laplace(0, 0.1)))
        if key in cells:
            prior = cells[key]
            isb = ISB(0, 11, prior.base + isb.base, prior.slope + isb.slope)
        cells[key] = isb
    return cells


@pytest.fixture()
def example5_policy(example5_layers, example5_cells):
    full = full_materialization(example5_layers, example5_cells)
    tau = calibrate_threshold(intermediate_slopes(full), 0.1)
    return GlobalSlopeThreshold(tau)


class TestExample5Agreement:
    def test_mo_equals_oracle(self, example5_layers, example5_cells, example5_policy):
        oracle = full_materialization(
            example5_layers, example5_cells, example5_policy
        )
        mo = mo_cubing(example5_layers, example5_cells, example5_policy)
        for coord in example5_layers.intermediate_coords:
            expected = {
                k
                for k, isb in oracle.cuboids[coord].items()
                if example5_policy.is_exception(isb, coord)
            }
            assert set(mo.retained_exceptions[coord]) == expected

    def test_multiway_equals_mo(
        self, example5_layers, example5_cells, example5_policy
    ):
        mo = mo_cubing(example5_layers, example5_cells, example5_policy)
        mw = multiway_cubing(example5_layers, example5_cells, example5_policy)
        for coord in example5_layers.intermediate_coords:
            assert set(mw.retained_exceptions[coord]) == set(
                mo.retained_exceptions[coord]
            )

    def test_buc_equals_mo(self, example5_layers, example5_cells, example5_policy):
        mo = mo_cubing(example5_layers, example5_cells, example5_policy)
        bu = buc_cubing(example5_layers, example5_cells, example5_policy)
        for coord in example5_layers.intermediate_coords:
            assert set(bu.retained_exceptions[coord]) == set(
                mo.retained_exceptions[coord]
            )

    def test_popular_path_closure_on_paper_path(
        self, example5_layers, example5_cells, example5_policy
    ):
        """Algorithm 2 along the paper's own Fig 6 dark-line path."""
        path = PopularPath.from_drill_sequence(
            example5_layers.lattice, ["B", "B", "A", "C"]
        )
        pp = popular_path_cubing(
            example5_layers, example5_cells, example5_policy, path
        )
        oracle = full_materialization(
            example5_layers, example5_cells, example5_policy
        )
        closure = framework_closure(
            oracle.cuboids, example5_layers, example5_policy, path.coords
        )
        for coord in example5_layers.intermediate_coords:
            assert set(pp.retained_exceptions[coord]) == set(closure[coord])

    def test_o_layer_cells_identical_across_algorithms(
        self, example5_layers, example5_cells, example5_policy
    ):
        results = [
            mo_cubing(example5_layers, example5_cells, example5_policy),
            popular_path_cubing(
                example5_layers, example5_cells, example5_policy
            ),
            buc_cubing(example5_layers, example5_cells, example5_policy),
            multiway_cubing(example5_layers, example5_cells, example5_policy),
        ]
        reference = results[0].o_layer
        for other in results[1:]:
            assert set(other.o_layer.cells) == set(reference.cells)
            for key, isb in other.o_layer.items():
                assert isb_close(isb, reference[key], tol=1e-7)

    def test_star_values_in_o_layer_keys(
        self, example5_layers, example5_cells, example5_policy
    ):
        """The o-layer (A1, *, C1) keys carry the ALL sentinel for B."""
        mo = mo_cubing(example5_layers, example5_cells, example5_policy)
        for key in mo.o_layer.cells:
            assert key[1] == "*"
            assert key[0].startswith("a1_")
            assert key[2].startswith("c1_")
