"""Property-based cross-algorithm tests on randomly generated cubes."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.lattice import PopularPath
from repro.cubing.buc import buc_cubing
from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import GlobalSlopeThreshold, calibrate_threshold
from repro.cubing.popular_path import popular_path_cubing
from repro.cubing.result import framework_closure
from repro.stream.generator import DatasetSpec, generate_dataset


@st.composite
def cube_cases(draw):
    spec = DatasetSpec(
        n_dims=draw(st.integers(min_value=1, max_value=3)),
        n_levels=draw(st.integers(min_value=2, max_value=3)),
        fanout=draw(st.integers(min_value=2, max_value=4)),
        n_tuples=draw(st.integers(min_value=1, max_value=120)),
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rate = draw(st.sampled_from([0.01, 0.1, 0.5, 1.0]))
    return spec, seed, rate


@given(case=cube_cases())
@settings(max_examples=25, deadline=None)
def test_algorithms_agree_on_random_cubes(case):
    spec, seed, rate = case
    data = generate_dataset(spec, seed=seed)
    oracle = full_materialization(data.layers, data.cells)
    slopes = intermediate_slopes(oracle)
    tau = calibrate_threshold(slopes, rate) if slopes else 0.0
    policy = GlobalSlopeThreshold(tau)
    oracle = full_materialization(data.layers, data.cells, policy)

    mo = mo_cubing(data.layers, data.cells, policy)
    pp = popular_path_cubing(data.layers, data.cells, policy)
    bu = buc_cubing(data.layers, data.cells, policy)

    # Algorithm 1 == exceptions of the oracle; BUC == Algorithm 1.
    for coord in data.layers.intermediate_coords:
        expected = {
            k
            for k, isb in oracle.cuboids[coord].items()
            if policy.is_exception(isb, coord)
        }
        assert set(mo.retained_exceptions[coord]) == expected
        assert set(bu.retained_exceptions[coord]) == expected
        # footnote 7: Algorithm 2 ⊆ Algorithm 1
        assert set(pp.retained_exceptions[coord]) <= expected

    # Algorithm 2 == Framework 4.1 closure.
    path = PopularPath.default(data.layers.lattice)
    closure = framework_closure(
        oracle.cuboids, data.layers, policy, path.coords
    )
    for coord in data.layers.intermediate_coords:
        assert set(pp.retained_exceptions[coord]) == set(closure[coord])

    # o-layer identical everywhere.
    o_keys = set(oracle.o_layer.cells)
    assert set(mo.o_layer.cells) == o_keys
    assert set(pp.o_layer.cells) == o_keys
    assert set(bu.o_layer.cells) == o_keys
