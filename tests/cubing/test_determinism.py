"""Determinism contracts: identical inputs produce identical outputs.

The benchmark conclusions lean on deterministic work counters; these tests
pin that determinism (and the generators' seeding) so a regression in it
cannot silently turn the benchmarks into noise.
"""

from __future__ import annotations

from repro.cubing.buc import buc_cubing
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.multiway import multiway_cubing
from repro.cubing.policy import GlobalSlopeThreshold
from repro.cubing.popular_path import popular_path_cubing
from repro.stream.generator import generate_dataset

_ALGORITHMS = [mo_cubing, popular_path_cubing, buc_cubing, multiway_cubing]


def _counters(result):
    s = result.stats
    return (
        s.cells_computed,
        s.rows_scanned,
        s.cuboids_computed,
        s.cuboids_skipped,
        s.retained_cells,
        s.htree_nodes,
        s.header_entries,
        s.transient_peak_cells,
        s.bytes_total(),
    )


class TestRunToRunDeterminism:
    def test_work_counters_identical_across_runs(self):
        data = generate_dataset("D3L2C4T300", seed=19)
        policy = GlobalSlopeThreshold(0.1)
        for algorithm in _ALGORITHMS:
            first = algorithm(data.layers, data.cells, policy)
            second = algorithm(data.layers, data.cells, policy)
            assert _counters(first) == _counters(second), algorithm.__name__

    def test_outputs_identical_across_runs(self):
        data = generate_dataset("D3L2C4T300", seed=19)
        policy = GlobalSlopeThreshold(0.1)
        for algorithm in _ALGORITHMS:
            first = algorithm(data.layers, data.cells, policy)
            second = algorithm(data.layers, data.cells, policy)
            assert first.retained_exceptions == second.retained_exceptions

    def test_generator_bitwise_reproducible(self):
        a = generate_dataset("D3L3C5T1K", seed=99)
        b = generate_dataset("D3L3C5T1K", seed=99)
        assert a.cells == b.cells
        assert a.collisions == b.collisions

    def test_insertion_order_does_not_change_mo_output(self):
        """Cell ordering affects dict iteration; outputs must not care."""
        data = generate_dataset("D2L2C4T200", seed=5)
        policy = GlobalSlopeThreshold(0.1)
        forward = mo_cubing(data.layers, data.cells, policy)
        reversed_cells = dict(reversed(list(data.cells.items())))
        backward = mo_cubing(data.layers, reversed_cells, policy)
        assert forward.retained_exceptions.keys() == backward.retained_exceptions.keys()
        for coord in forward.retained_exceptions:
            assert set(forward.retained_exceptions[coord]) == set(
                backward.retained_exceptions[coord]
            )
