"""Unit tests for the Framework 4.1 closure on a hand-built cube."""

from __future__ import annotations

import pytest

from repro.cube.cuboid import Cuboid
from repro.cube.hierarchy import ALL, FanoutHierarchy
from repro.cube.layers import CriticalLayers
from repro.cube.schema import CubeSchema, Dimension
from repro.cubing.full import full_materialization
from repro.cubing.policy import GlobalSlopeThreshold
from repro.cubing.result import framework_closure
from repro.regression.isb import ISB


@pytest.fixture
def one_dim_layers() -> CriticalLayers:
    """One dimension, three levels: the simplest drillable lattice."""
    schema = CubeSchema([Dimension("d", FanoutHierarchy("d", 3, 2))])
    return CriticalLayers(schema, m_coord=(3,), o_coord=(1,))


def build_cells(slopes: dict[int, float]) -> dict[tuple[int], ISB]:
    """m-layer cells (leaf ids -> chosen slopes, base 0)."""
    return {
        (leaf,): ISB(0, 9, 0.0, slope) for leaf, slope in slopes.items()
    }


class TestClosureSemantics:
    def test_exception_without_exception_parent_dropped(self, one_dim_layers):
        """A steep mid-level cell under a flat o-layer parent is *not*
        retained by the closure (no drill path reaches it)."""
        # Leaves 0..3 under level-1 value 0: slopes cancel at the top.
        cells = build_cells({0: 5.0, 1: -5.0, 2: 5.0, 3: -5.0})
        policy = GlobalSlopeThreshold(1.0)
        full = full_materialization(one_dim_layers, cells, policy)
        # Mid-level (level 2): cells (0,)=0.0 and (1,)=0.0 — flat; leaves
        # steep. o-layer: flat. Seeds: o-layer exceptions = none;
        # path = None -> nothing retained.
        closure = framework_closure(full.cuboids, one_dim_layers, policy)
        assert all(not kept for kept in closure.values())

    def test_chain_retained_when_parents_exceptional(self, one_dim_layers):
        """A steep leaf whose ancestors are all steep survives the drill."""
        cells = build_cells({0: 5.0, 1: 0.0, 2: 0.0, 3: 0.0})
        policy = GlobalSlopeThreshold(1.0)
        full = full_materialization(one_dim_layers, cells, policy)
        closure = framework_closure(full.cuboids, one_dim_layers, policy)
        # level-1 cell (0,): slope 5 -> o-layer exception (seed).
        # level-2 cell (0,): slope 5 -> parent exceptional -> retained.
        assert (0,) in closure[(2,)]
        # m-layer is never in the closure output dict.
        assert (3,) not in closure

    def test_path_seeding_widens_retention(self, one_dim_layers):
        """With every cuboid on the 'path', all exceptions are retained —
        equivalent to Algorithm 1's output."""
        cells = build_cells({0: 5.0, 1: -5.0, 2: 5.0, 3: -5.0})
        policy = GlobalSlopeThreshold(1.0)
        full = full_materialization(one_dim_layers, cells, policy)
        all_coords = list(one_dim_layers.lattice.coords())
        closure = framework_closure(
            full.cuboids, one_dim_layers, policy, path_coords=all_coords
        )
        # level-3 is the m-layer (excluded); level-2 cells are flat here,
        # but any exceptional cell in a seeded cuboid is retained.
        for coord, kept in closure.items():
            expected = {
                k
                for k, isb in full.cuboids[coord].items()
                if policy.is_exception(isb, coord)
            }
            assert set(kept) == expected

    def test_multi_dim_any_parent_suffices(self):
        """A cell drilled from either of two parent cuboids is retained."""
        schema = CubeSchema(
            [
                Dimension("a", FanoutHierarchy("a", 2, 2)),
                Dimension("b", FanoutHierarchy("b", 2, 2)),
            ]
        )
        layers = CriticalLayers(schema, (2, 2), (1, 1))
        # One hot leaf drives everything above it.
        cells = {
            (0, 0): ISB(0, 9, 0.0, 9.0),
            (3, 3): ISB(0, 9, 0.0, 0.1),
        }
        policy = GlobalSlopeThreshold(1.0)
        full = full_materialization(layers, cells, policy)
        closure = framework_closure(full.cuboids, layers, policy)
        # (1,2) and (2,1) both contain the hot chain; (2,2) is the m-layer.
        assert (0, 0) in closure[(1, 2)]
        assert (0, 0) in closure[(2, 1)]
