"""Package-level contracts: the error hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_domain_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_catching_the_base_catches_subsystem_errors(self):
        with pytest.raises(errors.ReproError):
            raise errors.TiltFrameError("x")
        with pytest.raises(errors.ReproError):
            raise errors.CubingError("x")

    def test_distinct_subsystem_errors_are_siblings(self):
        assert not issubclass(errors.CubingError, errors.TiltFrameError)
        assert not issubclass(errors.StreamError, errors.QueryError)


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_key_entry_points_present(self):
        for name in (
            "ISB",
            "merge_standard",
            "merge_time",
            "mo_cubing",
            "popular_path_cubing",
            "buc_cubing",
            "multiway_cubing",
            "TiltTimeFrame",
            "StreamCubeEngine",
            "RegressionCubeView",
            "ExceptionDriller",
        ):
            assert name in repro.__all__


class TestMainModule:
    def test_demo_runs_and_validates_captions(self, capsys):
        from repro.__main__ import main

        assert main() == 0
        out = capsys.readouterr().out
        assert "Theorem 3.2 vs Fig 2 caption: OK" in out
        assert "Theorem 3.3 vs Fig 3 caption: OK" in out
        assert "footnote 7" in out
