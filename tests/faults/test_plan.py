"""The fault-plan machinery itself: parsing, determinism, bounds, guards.

Everything else in the fault-injection PR trusts this module — the
storage/WAL/RPC seams only ever ask "does a rule fire here, now?" — so
its counters, seeding and validation get direct coverage.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.errors import ServiceError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    PRESETS,
    SUPERVISOR_SITES,
    load_plan,
    preset_plan,
)


@pytest.fixture(autouse=True)
def disarm():
    """Every test leaves the process-global injector clean."""
    faults.clear()
    yield
    faults.clear()


class TestRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown kind"):
            FaultRule(site="store.read", kind="meteor")

    def test_unknown_site_rejected(self):
        with pytest.raises(ServiceError, match="unknown site"):
            FaultRule(site="disk.write", kind="eio")

    def test_wildcard_site_accepted(self):
        assert FaultRule(site="*", kind="latency").site == "*"

    def test_probability_bounds(self):
        with pytest.raises(ServiceError, match="probability"):
            FaultRule(site="store.read", kind="eio", probability=0.0)
        with pytest.raises(ServiceError, match="probability"):
            FaultRule(site="store.read", kind="eio", probability=1.5)

    def test_negative_counters_rejected(self):
        with pytest.raises(ServiceError, match="count/after"):
            FaultRule(site="store.read", kind="eio", count=-1)


class TestPlanParsing:
    def test_from_dict_round_trips(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 7,
                "rules": [
                    {"site": "wal.append", "kind": "torn", "after": 2},
                    {"site": "*", "kind": "latency", "seconds": 0.01},
                ],
            }
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown rule field"):
            FaultPlan.from_dict(
                {"rules": [{"site": "store.read", "kind": "eio", "when": 3}]}
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(ServiceError, match="missing field"):
            FaultPlan.from_dict({"rules": [{"site": "store.read"}]})

    def test_rules_must_be_a_list(self):
        with pytest.raises(ServiceError, match="'rules' must be a list"):
            FaultPlan.from_dict({"rules": "eio"})

    def test_drop_sites_keeps_wildcards(self):
        plan = FaultPlan.from_dict(
            {
                "rules": [
                    {"site": "rpc.send", "kind": "eio"},
                    {"site": "*", "kind": "latency"},
                    {"site": "store.read", "kind": "eio"},
                ]
            }
        )
        kept = plan.drop_sites(SUPERVISOR_SITES)
        assert [r.site for r in kept.rules] == ["*", "store.read"]

    def test_every_preset_parses(self):
        for name in PRESETS:
            plan = preset_plan(name, seed=5)
            assert plan.seed == 5
            assert plan.rules

    def test_unknown_preset_rejected(self):
        with pytest.raises(ServiceError, match="unknown preset"):
            preset_plan("disk-on-fire")

    def test_load_plan_resolves_preset_then_file(self, tmp_path):
        assert load_plan("wal-torn", seed=3).seed == 3
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {"rules": [{"site": "store.read", "kind": "eio"}]}
            )
        )
        plan = load_plan(str(path), seed=9)
        assert plan.seed == 9  # CLI seed fills a file without one
        assert plan.rules[0].site == "store.read"

    def test_load_plan_neither_preset_nor_file(self):
        with pytest.raises(ServiceError, match="neither a preset"):
            load_plan("no/such/plan.json")


class TestInjectorSemantics:
    def plan(self, **rule):
        rule.setdefault("site", "store.read")
        rule.setdefault("kind", "eio")
        return FaultPlan.from_dict({"seed": 11, "rules": [rule]})

    def test_count_bounds_firings(self):
        inj = FaultInjector(self.plan(count=2))
        fired = 0
        for _ in range(10):
            try:
                inj.check("store.read")
            except OSError:
                fired += 1
        assert fired == 2
        assert inj.stats()[0]["fired"] == 2

    def test_after_skips_leading_operations(self):
        inj = FaultInjector(self.plan(after=3, count=1))
        for _ in range(3):
            inj.check("store.read")  # must not raise
        with pytest.raises(OSError):
            inj.check("store.read")

    def test_count_zero_is_unlimited(self):
        inj = FaultInjector(self.plan(count=0))
        for _ in range(5):
            with pytest.raises(OSError):
                inj.check("store.read")

    def test_site_isolation(self):
        inj = FaultInjector(self.plan())
        inj.check("store.write")  # different site: no fire, no raise
        with pytest.raises(OSError):
            inj.check("store.read")

    def test_family_isolation(self):
        """Consulting one guard family never burns another family's rule."""
        inj = FaultInjector(self.plan(kind="torn"))
        inj.check("store.read")  # eio/enospc/latency family: no-op
        assert inj.torn("store.read")

    def test_probability_is_seeded_deterministic(self):
        plan = self.plan(probability=0.5, count=0)
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan)
            runs.append(
                [self._fires(inj, "store.read") for _ in range(20)]
            )
        assert runs[0] == runs[1]
        assert True in runs[0] and False in runs[0]

    @staticmethod
    def _fires(inj, site):
        try:
            inj.check(site)
            return False
        except OSError:
            return True

    def test_corrupt_flips_exactly_one_bit_deterministically(self):
        plan = self.plan(kind="bitflip")
        before = b"0123456789"
        mutated = [
            FaultInjector(plan).corrupt("store.read", before)
            for _ in range(2)
        ]
        assert mutated[0] == mutated[1] != before
        diff = [
            a ^ b for a, b in zip(before, mutated[0])
        ]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_enospc_errno(self):
        inj = FaultInjector(self.plan(kind="enospc"))
        with pytest.raises(OSError) as info:
            inj.check("store.read")
        import errno

        assert info.value.errno == errno.ENOSPC


class TestModuleGuards:
    def test_disarmed_guards_are_noops(self):
        faults.clear()
        faults.check("store.read")
        assert faults.torn("wal.append") is False
        assert faults.corrupt("rpc.send", b"abc") == b"abc"
        assert faults.lie("snapshot.write") is False
        assert faults.stats() is None
        assert faults.active_plan() is None

    def test_install_and_active_plan_round_trip(self):
        plan = preset_plan("wal-torn", seed=4)
        faults.install(plan)
        assert faults.active_plan() == plan.to_dict()

    def test_install_for_worker_drops_supervisor_sites(self):
        faults.install(preset_plan("wal-torn", seed=4))
        # wal-torn is all supervisor-side sites: the worker disarms fully.
        faults.install_for_worker(faults.active_plan())
        assert faults.active() is None

    def test_install_for_worker_keeps_storage_sites(self):
        faults.install(preset_plan("page-bitflip", seed=4))
        faults.install_for_worker(faults.active_plan())
        assert faults.active() is not None
        sites = {r.site for r in faults.active().plan.rules}
        assert sites == {"store.read"}

    def test_install_for_worker_none_disarms_inherited(self):
        faults.install(preset_plan("page-bitflip", seed=4))
        faults.install_for_worker(None)
        assert faults.active() is None
