"""Tests for the H-tree (Fig 7 structure, Example 5 ordering)."""

from __future__ import annotations

import math

import pytest

from repro.cube.hierarchy import ALL
from repro.errors import CubingError, SchemaError
from repro.htree.tree import HTree, cardinality_ascending_order
from repro.regression.isb import ISB


class TestAttributeOrder:
    def test_example5_cardinality_order(self, example5_layers):
        """Example 5 / Fig 7: order is <A1, B1, C1, C2, A2, B2> given
        card(A1)<card(B1)<card(C1)<card(C2)<card(A2)<card(B2)."""
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        # dims: A=0, B=1, C=2.
        assert order == ((0, 1), (1, 1), (2, 1), (2, 2), (0, 2), (1, 2))

    def test_order_covers_all_levels(self, fanout_layers):
        order = cardinality_ascending_order(
            fanout_layers.schema, fanout_layers.m_coord
        )
        assert set(order) == {(d, l) for d in range(2) for l in (1, 2, 3)}


class TestConstruction:
    def test_attribute_set_validated(self, example5_layers):
        with pytest.raises(SchemaError):
            HTree(
                example5_layers.schema,
                example5_layers.m_coord,
                [(0, 1), (1, 1)],  # incomplete
            )

    def test_insert_builds_shared_prefixes(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        isb = ISB(0, 9, 1.0, 0.1)
        # Two m-cells sharing A and B ancestry but different C2 leaves.
        tree.insert(("a2_0", "b2_0", "c2_0"), isb)
        tree.insert(("a2_0", "b2_0", "c2_1"), isb)
        # Shared: a1, b1, c1 differs? c2_0 -> c1_0, c2_1 -> c1_0 (8 c2 over
        # 4 c1: j*4//8) -> shared c1 too; divergence at the C2 attribute.
        assert tree.tuple_count == 2
        assert tree.node_count < 2 * len(order)

    def test_duplicate_cell_merges_theorem32(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        tree.insert(("a2_0", "b2_0", "c2_0"), ISB(0, 9, 1.0, 0.1))
        tree.insert(("a2_0", "b2_0", "c2_0"), ISB(0, 9, 2.0, 0.2))
        cells = dict(tree.leaf_cells())
        assert len(cells) == 1
        isb = next(iter(cells.values()))
        assert math.isclose(isb.base, 3.0)
        assert math.isclose(isb.slope, 0.3, rel_tol=1e-12)

    def test_expand_includes_ancestors(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        expanded = tree.expand(("a2_7", "b2_5", "c2_3"))
        # order: A1, B1, C1, C2, A2, B2
        assert expanded[3] == "c2_3"
        assert expanded[4] == "a2_7"
        assert expanded[5] == "b2_5"
        # ancestors come from the hierarchies
        assert expanded[0].startswith("a1_")
        assert expanded[1].startswith("b1_")
        assert expanded[2].startswith("c1_")

    def test_invalid_m_values_rejected(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        with pytest.raises(Exception):
            tree.insert(("nope", "b2_0", "c2_0"), ISB(0, 1, 0, 0))


class TestTraversal:
    @pytest.fixture
    def loaded(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        cells = [
            ("a2_0", "b2_0", "c2_0"),
            ("a2_0", "b2_4", "c2_2"),
            ("a2_7", "b2_9", "c2_7"),
            ("a2_3", "b2_0", "c2_0"),
        ]
        for i, c in enumerate(cells):
            tree.insert(c, ISB(0, 9, float(i + 1), 0.1 * (i + 1)))
        return tree

    def test_leaves_count(self, loaded):
        assert len(list(loaded.leaves())) == 4

    def test_nodes_at_depth_zero_is_root(self, loaded):
        assert list(loaded.nodes_at_depth(0)) == [loaded.root]

    def test_nodes_at_depth_bounds(self, loaded):
        with pytest.raises(CubingError):
            list(loaded.nodes_at_depth(7))

    def test_header_chains_visit_all_value_nodes(self, loaded):
        # Attribute 0 is A1 (2 values); chains must cover all depth-1 nodes.
        header = loaded.headers[0]
        total = sum(len(list(header.chain(v))) for v in header.values())
        assert total == len(loaded.root.children)

    def test_leaf_cells_keys_are_m_values(self, loaded):
        keys = set(dict(loaded.leaf_cells()))
        assert ("a2_0", "b2_0", "c2_0") in keys
        assert all(len(k) == 3 for k in keys)

    def test_header_entry_count(self, loaded):
        assert loaded.header_entry_count == sum(
            len(h) for h in loaded.headers
        )


class TestCellAddressing:
    @pytest.fixture
    def loaded(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        tree.insert(("a2_7", "b2_5", "c2_3"), ISB(0, 9, 1.0, 0.5))
        return tree

    def test_cell_values_at_m_coord(self, loaded):
        leaf = next(loaded.leaves())
        values = loaded.cell_values(leaf, (2, 2, 2))
        assert values == ("a2_7", "b2_5", "c2_3")

    def test_cell_values_with_star(self, loaded):
        leaf = next(loaded.leaves())
        values = loaded.cell_values(leaf, (1, 0, 1))
        assert values[1] == ALL
        assert values[0].startswith("a1_")
        assert values[2].startswith("c1_")

    def test_cell_values_beyond_prefix_raises(self, loaded):
        shallow = loaded.root.children[
            next(iter(loaded.root.children))
        ]  # depth-1 node: only A1 known
        with pytest.raises(CubingError):
            loaded.cell_values(shallow, (2, 2, 2))

    def test_attr_position_unknown(self, loaded):
        with pytest.raises(CubingError):
            loaded.attr_position(0, 3)


class TestInteriorAggregation:
    def test_aggregate_interior_sums_subtrees(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        tree.insert(("a2_0", "b2_0", "c2_0"), ISB(0, 9, 1.0, 0.1))
        tree.insert(("a2_7", "b2_9", "c2_7"), ISB(0, 9, 2.0, 0.2))
        tree.aggregate_interior()
        assert tree.root.isb is not None
        assert math.isclose(tree.root.isb.base, 3.0)
        assert math.isclose(tree.root.isb.slope, 0.3, rel_tol=1e-12)

    def test_aggregate_requires_leaf_isbs(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        with pytest.raises(CubingError):
            tree.aggregate_interior()  # empty tree: root is a leaf, no ISB


class TestNodeBasics:
    def test_path_values_and_depth(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        leaf = tree.insert(("a2_0", "b2_0", "c2_0"), ISB(0, 9, 1.0, 0.1))
        assert leaf.depth == 6
        assert len(leaf.path_values()) == 6
        assert leaf.is_leaf

    def test_side_links_walk(self, example5_layers):
        order = cardinality_ascending_order(
            example5_layers.schema, example5_layers.m_coord
        )
        tree = HTree(example5_layers.schema, example5_layers.m_coord, order)
        # Same B2 value under different A branches -> side-linked leaves.
        tree.insert(("a2_0", "b2_5", "c2_0"), ISB(0, 9, 1.0, 0.1))
        tree.insert(("a2_7", "b2_5", "c2_0"), ISB(0, 9, 1.0, 0.1))
        header = tree.headers[len(order) - 1]  # B2 attribute (last)
        chain = list(header.chain("b2_5"))
        assert len(chain) == 2
