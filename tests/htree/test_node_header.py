"""Unit tests for H-tree nodes and header tables in isolation."""

from __future__ import annotations

import pytest

from repro.htree.header import HeaderTable
from repro.htree.node import HTreeNode


class TestNode:
    def test_root_depth_zero(self):
        root = HTreeNode(-1, None)
        assert root.depth == 0
        assert root.path_values() == []
        assert root.is_leaf

    def test_depth_counts_edges(self):
        root = HTreeNode(-1, None)
        a = HTreeNode(0, "a", parent=root)
        b = HTreeNode(1, "b", parent=a)
        assert b.depth == 2
        assert b.path_values() == ["a", "b"]

    def test_leaf_flag_follows_children(self):
        root = HTreeNode(-1, None)
        child = HTreeNode(0, "x", parent=root)
        root.children["x"] = child
        assert not root.is_leaf
        assert child.is_leaf

    def test_side_link_walk_single(self):
        node = HTreeNode(0, "v")
        assert list(node.walk_side_links()) == [node]

    def test_side_link_walk_chain(self):
        a = HTreeNode(0, "v")
        b = HTreeNode(0, "v")
        c = HTreeNode(0, "v")
        a.side_link = b
        b.side_link = c
        assert list(a.walk_side_links()) == [a, b, c]


class TestHeaderTable:
    def test_register_builds_chain_in_order(self):
        header = HeaderTable(0)
        nodes = [HTreeNode(0, "v") for _ in range(3)]
        for node in nodes:
            header.register(node)
        assert list(header.chain("v")) == nodes

    def test_distinct_values_separate_chains(self):
        header = HeaderTable(0)
        a = HTreeNode(0, "a")
        b = HTreeNode(0, "b")
        header.register(a)
        header.register(b)
        assert list(header.chain("a")) == [a]
        assert list(header.chain("b")) == [b]
        assert set(header.values()) == {"a", "b"}

    def test_missing_value_empty_chain(self):
        header = HeaderTable(0)
        assert list(header.chain("nope")) == []

    def test_len_counts_distinct_values(self):
        header = HeaderTable(0)
        for value in ("a", "a", "b"):
            header.register(HTreeNode(0, value))
        assert len(header) == 2
        assert "a" in header and "c" not in header
