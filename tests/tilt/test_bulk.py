"""Bulk tilt-frame operations vs the scalar path.

``bulk_insert`` must evolve many aligned frames exactly like per-frame
``insert`` up to kernel/fsum ulp differences (slot structure, clocks and
eviction counters identical; values within 1e-9), and ``window_plan`` /
``slots_at`` must reproduce ``query``'s decomposition.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import TiltFrameError
from repro.regression.isb import ISB
from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame, bulk_insert

LEVELS = [
    TiltLevelSpec("quarter", 2, 4),
    TiltLevelSpec("hour", 8, 6),
    TiltLevelSpec("day", 24, 3),
]


def drive(n_frames: int, n_steps: int, seed: int = 7):
    rng = random.Random(seed)
    scalar = [TiltTimeFrame(LEVELS) for _ in range(n_frames)]
    bulk = [TiltTimeFrame(LEVELS) for _ in range(n_frames)]
    t = 0
    for _ in range(n_steps):
        isbs = [
            ISB(t, t + 1, rng.uniform(-3, 3), rng.uniform(-1, 1))
            for _ in range(n_frames)
        ]
        for frame, isb in zip(scalar, isbs):
            frame.insert(isb)
        bulk_insert(bulk, isbs)
        t += 2
    return scalar, bulk


class TestBulkInsert:
    @pytest.mark.parametrize("n_frames", [1, 2, 9])
    def test_matches_scalar_through_promotions_and_eviction(self, n_frames):
        scalar, bulk = drive(n_frames, 60)  # crosses day slots + eviction
        for fs, fb in zip(scalar, bulk):
            assert fs.now == fb.now
            assert fs.total_retained == fb.total_retained
            assert fs.evicted_slots == fb.evicted_slots
            for (name_a, a), (name_b, b) in zip(
                fs.all_slots(), fb.all_slots()
            ):
                assert name_a == name_b and a.interval == b.interval
                assert math.isclose(a.base, b.base, rel_tol=1e-9, abs_tol=1e-12)
                assert math.isclose(
                    a.slope, b.slope, rel_tol=1e-9, abs_tol=1e-12
                )

    def test_wrong_interval_rejected(self):
        frames = [TiltTimeFrame(LEVELS) for _ in range(3)]
        with pytest.raises(TiltFrameError):
            bulk_insert(frames, [ISB(5, 6, 0.0, 0.0)] * 3)

    def test_length_mismatch_rejected(self):
        frames = [TiltTimeFrame(LEVELS) for _ in range(2)]
        with pytest.raises(TiltFrameError):
            bulk_insert(frames, [ISB(0, 1, 0.0, 0.0)])

    def test_misaligned_frames_fall_back_to_scalar_insert(self):
        ahead = TiltTimeFrame(LEVELS)
        ahead.insert(ISB(0, 1, 1.0, 0.0))
        behind = TiltTimeFrame(LEVELS)
        with pytest.raises(TiltFrameError):
            # per-frame fallback: `behind` expects [0,1], gets [2,3]
            bulk_insert([ahead, behind], [ISB(2, 3, 0.0, 0.0)] * 2)


class TestWindowPlan:
    def test_plan_matches_query_decomposition(self):
        frame = TiltTimeFrame(LEVELS)
        rng = random.Random(3)
        for t in range(0, 40, 2):
            frame.insert(ISB(t, t + 1, rng.uniform(0, 1), 0.0))
        span = frame.span()
        assert span is not None
        plan = frame.window_plan(span[0], span[1])
        pieces = frame.slots_at(plan)
        # Contiguous cover of the span, finest available first.
        assert pieces[0].t_b == span[0] and pieces[-1].t_e == span[1]
        for a, b in zip(pieces, pieces[1:]):
            assert a.t_e + 1 == b.t_b
        direct = frame.query(span[0], span[1])
        from repro.regression.aggregation import merge_time

        assert merge_time(pieces) == direct

    def test_uncoverable_plan_raises(self):
        frame = TiltTimeFrame(LEVELS)
        frame.insert(ISB(0, 1, 1.0, 0.0))
        with pytest.raises(TiltFrameError):
            frame.window_plan(0, 5)

    def test_clone_shares_plan_geometry(self):
        frame = TiltTimeFrame(LEVELS)
        for t in range(0, 16, 2):
            frame.insert(ISB(t, t + 1, 1.0, 0.0))
        twin = frame.clone()
        assert twin.aligned_with(frame)
        assert twin.window_plan(0, 15) == frame.window_plan(0, 15)
