"""Tests for the generic tilt time frame."""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")  # these tests exercise numpy-backed paths

from repro.errors import TiltFrameError
from repro.regression.isb import ISB, isb_of_series
from repro.regression.linear import fit_series
from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame


def two_level_frame(cap_fine: int = 4, cap_coarse: int = 3) -> TiltTimeFrame:
    """quarter(1 tick) x cap_fine, hour(4 ticks) x cap_coarse."""
    return TiltTimeFrame(
        [
            TiltLevelSpec("quarter", 1, cap_fine),
            TiltLevelSpec("hour", 4, cap_coarse),
        ]
    )


def feed(frame: TiltTimeFrame, values: list[float]) -> None:
    """Insert one 1-tick ISB per value (finest unit = 1 tick)."""
    for i, v in enumerate(values):
        frame.insert(ISB(i, i, v, 0.0))


class TestSpecValidation:
    def test_needs_levels(self):
        with pytest.raises(TiltFrameError):
            TiltTimeFrame([])

    def test_unit_must_grow(self):
        with pytest.raises(TiltFrameError):
            TiltTimeFrame(
                [TiltLevelSpec("a", 4, 4), TiltLevelSpec("b", 4, 4)]
            )

    def test_unit_must_divide(self):
        with pytest.raises(TiltFrameError):
            TiltTimeFrame(
                [TiltLevelSpec("a", 2, 4), TiltLevelSpec("b", 5, 4)]
            )

    def test_capacity_must_cover_promotion_ratio(self):
        with pytest.raises(TiltFrameError):
            TiltTimeFrame(
                [TiltLevelSpec("a", 1, 3), TiltLevelSpec("b", 4, 2)]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(TiltFrameError):
            TiltTimeFrame(
                [TiltLevelSpec("a", 1, 4), TiltLevelSpec("a", 4, 2)]
            )

    def test_bad_level_spec(self):
        with pytest.raises(TiltFrameError):
            TiltLevelSpec("x", 0, 1)
        with pytest.raises(TiltFrameError):
            TiltLevelSpec("x", 1, 0)


class TestInsertion:
    def test_contiguity_enforced(self):
        frame = two_level_frame()
        frame.insert(ISB(0, 0, 1.0, 0.0))
        with pytest.raises(TiltFrameError):
            frame.insert(ISB(2, 2, 1.0, 0.0))  # skipped tick 1

    def test_wrong_span_rejected(self):
        frame = two_level_frame()
        with pytest.raises(TiltFrameError):
            frame.insert(ISB(0, 1, 1.0, 0.0))  # finest unit is 1 tick

    def test_now_advances(self):
        frame = two_level_frame()
        feed(frame, [1.0, 2.0, 3.0])
        assert frame.now == 3

    def test_fine_level_capacity_evicts(self):
        frame = two_level_frame(cap_fine=4)
        feed(frame, [float(i) for i in range(6)])
        slots = frame.slots("quarter")
        assert len(slots) == 4
        assert slots[0].t_b == 2  # two oldest evicted


class TestPromotion:
    def test_promotion_at_unit_boundary(self):
        frame = two_level_frame()
        feed(frame, [1.0, 2.0, 3.0, 4.0])
        hours = frame.slots("hour")
        assert len(hours) == 1
        assert hours[0].interval == (0, 3)
        direct = fit_series([1.0, 2.0, 3.0, 4.0])
        assert math.isclose(hours[0].base, direct.base, rel_tol=1e-9)
        assert math.isclose(hours[0].slope, direct.slope, rel_tol=1e-9)

    def test_no_promotion_mid_unit(self):
        frame = two_level_frame()
        feed(frame, [1.0, 2.0, 3.0])
        assert frame.slots("hour") == ()

    def test_cascade_promotion(self):
        frame = TiltTimeFrame(
            [
                TiltLevelSpec("q", 1, 2),
                TiltLevelSpec("h", 2, 2),
                TiltLevelSpec("d", 4, 2),
            ]
        )
        feed(frame, [float(i) for i in range(4)])
        assert len(frame.slots("d")) == 1
        assert frame.slots("d")[0].interval == (0, 3)

    def test_promoted_equals_direct_fit(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, size=16).tolist()
        frame = two_level_frame(cap_fine=4, cap_coarse=4)
        feed(frame, values)
        hours = frame.slots("hour")
        assert len(hours) == 4
        for i, hour in enumerate(hours):
            piece = values[4 * i : 4 * i + 4]
            direct = fit_series(piece, t_b=4 * i)
            assert math.isclose(hour.base, direct.base, rel_tol=1e-9)
            assert math.isclose(hour.slope, direct.slope, rel_tol=1e-9)

    def test_coarsest_eviction_counted(self):
        frame = TiltTimeFrame(
            [TiltLevelSpec("q", 1, 2), TiltLevelSpec("h", 2, 2)]
        )
        feed(frame, [float(i) for i in range(10)])
        # hours formed at ticks 2,4,6,8,10 -> 5 promotions, capacity 2.
        assert frame.evicted_slots == 3

    def test_retained_total_bounded_by_capacity(self):
        frame = two_level_frame()
        feed(frame, [float(i) for i in range(50)])
        assert frame.total_retained <= frame.total_capacity


class TestQueries:
    def test_query_exact_fine_window(self):
        frame = two_level_frame()
        values = [2.0, 4.0, 3.0, 5.0]
        feed(frame, values)
        got = frame.query(1, 3)
        direct = isb_of_series(values[1:], t_b=1)
        assert math.isclose(got.base, direct.base, rel_tol=1e-9)
        assert math.isclose(got.slope, direct.slope, rel_tol=1e-9)

    def test_query_spanning_hour_and_quarters(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 1, size=6).tolist()
        frame = two_level_frame()
        feed(frame, values)
        # [0,3] is the promoted hour; [4,5] are fine quarters.
        got = frame.query(0, 5)
        direct = isb_of_series(values)
        assert math.isclose(got.base, direct.base, rel_tol=1e-9)
        assert math.isclose(got.slope, direct.slope, rel_tol=1e-9)

    def test_query_prefers_finest_slots(self):
        frame = two_level_frame()
        feed(frame, [1.0, 2.0, 3.0, 4.0])
        got = frame.query(3, 3)
        assert got.interval == (3, 3)

    def test_query_unaligned_raises(self):
        frame = two_level_frame(cap_fine=4)
        feed(frame, [float(i) for i in range(8)])
        # tick 1 is inside the promoted hour [0,3]; quarters 0..3 evicted.
        with pytest.raises(TiltFrameError):
            frame.query(1, 5)

    def test_query_beyond_history_raises(self):
        frame = two_level_frame()
        feed(frame, [1.0])
        with pytest.raises(TiltFrameError):
            frame.query(0, 5)

    def test_query_empty_window_raises(self):
        frame = two_level_frame()
        with pytest.raises(TiltFrameError):
            frame.query(3, 2)

    def test_last_window(self):
        frame = two_level_frame()
        values = [1.0, 5.0, 2.0, 7.0]
        feed(frame, values)
        got = frame.last_window("quarter", 2)
        direct = isb_of_series(values[2:], t_b=2)
        assert math.isclose(got.base, direct.base, rel_tol=1e-9)

    def test_last_window_count_checked(self):
        frame = two_level_frame()
        feed(frame, [1.0, 2.0])
        with pytest.raises(TiltFrameError):
            frame.last_window("quarter", 5)
        with pytest.raises(TiltFrameError):
            frame.last_window("quarter", 0)

    def test_span_telescopes(self):
        frame = two_level_frame(cap_fine=4, cap_coarse=3)
        feed(frame, [float(i) for i in range(8)])
        span = frame.span()
        assert span is not None
        assert span[0] == 0  # oldest hour slot reaches back to 0
        assert span[1] == 7

    def test_span_empty(self):
        assert two_level_frame().span() is None

    def test_level_lookup_by_name_and_index(self):
        frame = two_level_frame()
        assert frame.level_index("hour") == 1
        assert frame.level_index(0) == 0
        with pytest.raises(TiltFrameError):
            frame.level_index("day")
        with pytest.raises(TiltFrameError):
            frame.level_index(5)

    def test_all_slots_iteration(self):
        frame = two_level_frame()
        feed(frame, [float(i) for i in range(5)])
        slots = list(frame.all_slots())
        names = {name for name, _ in slots}
        assert names == {"quarter", "hour"}


class TestOracleEquivalence:
    def test_any_retained_window_matches_raw_fit(self):
        """Whatever window the frame can serve, it serves exactly."""
        rng = np.random.default_rng(7)
        values = rng.normal(5, 2, size=40).tolist()
        frame = TiltTimeFrame(
            [
                TiltLevelSpec("q", 1, 4),
                TiltLevelSpec("h", 4, 6),
                TiltLevelSpec("d", 24, 2),
            ]
        )
        feed(frame, values)
        # Collect all slot boundaries and try every aligned window.
        slots = [isb for _, isb in frame.all_slots()]
        for s in slots:
            got = frame.query(s.t_b, frame.now - 1)
            direct = isb_of_series(values[s.t_b :], t_b=s.t_b)
            assert math.isclose(got.base, direct.base, rel_tol=1e-8)
            assert math.isclose(got.slope, direct.slope, rel_tol=1e-8)
