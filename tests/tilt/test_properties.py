"""Property-based tests for tilt frames: whatever is retained is exact."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regression.isb import ISB, isb_of_series
from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame

values_st = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@given(values=st.lists(values_st, min_size=1, max_size=120))
@settings(max_examples=60, deadline=None)
def test_all_retained_slots_match_raw_fit(values):
    """Every slot the frame retains equals the direct fit of its span."""
    frame = TiltTimeFrame(
        [
            TiltLevelSpec("q", 1, 4),
            TiltLevelSpec("h", 4, 6),
            TiltLevelSpec("d", 24, 3),
        ]
    )
    for t, v in enumerate(values):
        frame.insert(ISB(t, t, v, 0.0))
    for _, slot in frame.all_slots():
        direct = isb_of_series(values[slot.t_b : slot.t_e + 1], t_b=slot.t_b)
        scale = max(1.0, abs(direct.base), abs(direct.slope))
        assert abs(slot.base - direct.base) <= 1e-6 * scale
        assert abs(slot.slope - direct.slope) <= 1e-6 * scale


@given(values=st.lists(values_st, min_size=1, max_size=150))
@settings(max_examples=60, deadline=None)
def test_capacity_invariant(values):
    """The retained slot count never exceeds the configured capacity."""
    frame = TiltTimeFrame(
        [
            TiltLevelSpec("q", 1, 2),
            TiltLevelSpec("h", 2, 2),
            TiltLevelSpec("d", 4, 2),
        ]
    )
    for t, v in enumerate(values):
        frame.insert(ISB(t, t, v, 0.0))
        assert frame.total_retained <= frame.total_capacity


@given(
    values=st.lists(values_st, min_size=8, max_size=64),
)
@settings(max_examples=60, deadline=None)
def test_full_history_query_exact_while_covered(values):
    """As long as nothing has aged out, query(0, now-1) is the exact fit."""
    frame = TiltTimeFrame(
        [
            TiltLevelSpec("q", 1, 4),
            TiltLevelSpec("h", 4, 4),
            TiltLevelSpec("d", 16, 8),
        ]
    )
    for t, v in enumerate(values):
        frame.insert(ISB(t, t, v, 0.0))
    if frame.evicted_slots:
        return  # history truncated; full-span query is not promised
    span = frame.span()
    assert span is not None and span[0] == 0
    got = frame.query(0, len(values) - 1)
    direct = isb_of_series(values)
    scale = max(1.0, abs(direct.base), abs(direct.slope))
    assert abs(got.base - direct.base) <= 1e-6 * scale
    assert abs(got.slope - direct.slope) <= 1e-6 * scale
