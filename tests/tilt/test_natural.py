"""Tests for the natural-calendar frame and Example 3's arithmetic."""

from __future__ import annotations

import math

import pytest

from repro.regression.isb import ISB
from repro.tilt.natural import (
    DAYS_PER_MONTH,
    HOURS_PER_DAY,
    MONTHS_PER_YEAR,
    QUARTERS_PER_HOUR,
    example3_savings,
    natural_frame,
)


class TestExample3:
    def test_tilt_units_is_71(self):
        """4 quarters + 24 hours + 31 days + 12 months = 71."""
        assert example3_savings().tilt_units == 71

    def test_full_units_is_35136(self):
        """366 * 24 * 4 = 35,136 quarter-units in a (leap) year."""
        assert example3_savings().full_units == 35_136

    def test_saving_about_495x(self):
        ratio = example3_savings().ratio
        assert 494 < ratio < 496
        assert math.isclose(ratio, 35_136 / 71)


class TestNaturalFrame:
    def test_level_structure(self):
        frame = natural_frame()
        names = [lv.name for lv in frame.levels]
        assert names == ["quarter", "hour", "day", "month"]
        caps = [lv.capacity for lv in frame.levels]
        assert caps == [
            QUARTERS_PER_HOUR,
            HOURS_PER_DAY,
            DAYS_PER_MONTH,
            MONTHS_PER_YEAR,
        ]

    def test_total_capacity_is_71(self):
        assert natural_frame().total_capacity == 71

    def test_unit_sizes(self):
        frame = natural_frame()
        units = [lv.unit_ticks for lv in frame.levels]
        assert units == [1, 4, 96, 2976]

    def test_day_of_usage_promotes_hours(self):
        frame = natural_frame()
        for t in range(96):  # one day of quarters
            frame.insert(ISB(t, t, 1.0 + 0.01 * t, 0.0))
        assert len(frame.slots("hour")) == 24
        assert len(frame.slots("day")) == 1
        assert frame.slots("day")[0].interval == (0, 95)

    def test_quarter_slots_capped_at_4(self):
        frame = natural_frame()
        for t in range(10):
            frame.insert(ISB(t, t, 1.0, 0.0))
        assert len(frame.slots("quarter")) == 4

    def test_last_day_regression_at_hour_precision(self):
        """The paper's 'the last day with the precision of hour'."""
        frame = natural_frame()
        for t in range(100):
            frame.insert(ISB(t, t, 0.5 * t, 0.0))
        day = frame.last_window("hour", 24)
        # A perfectly linear input keeps slope 0.5 at every granularity.
        assert math.isclose(day.slope, 0.5, rel_tol=1e-9)

    def test_origin_offsets_alignment(self):
        frame = natural_frame(origin=8)
        frame.insert(ISB(8, 8, 1.0, 0.0))
        assert frame.now == 9
