"""Tests for the logarithmic tilt frame extension."""

from __future__ import annotations

import pytest

from repro.errors import TiltFrameError
from repro.regression.isb import ISB
from repro.tilt.logarithmic import logarithmic_frame, slots_needed_for_span


class TestConstruction:
    def test_units_double(self):
        frame = logarithmic_frame(4)
        assert [lv.unit_ticks for lv in frame.levels] == [1, 2, 4, 8]

    def test_custom_ratio(self):
        frame = logarithmic_frame(3, ratio=4)
        assert [lv.unit_ticks for lv in frame.levels] == [1, 4, 16]

    def test_default_capacity_is_ratio(self):
        frame = logarithmic_frame(3, ratio=3)
        assert all(lv.capacity == 3 for lv in frame.levels)

    def test_capacity_below_ratio_rejected(self):
        with pytest.raises(TiltFrameError):
            logarithmic_frame(3, ratio=4, capacity=2)

    def test_invalid_parameters(self):
        with pytest.raises(TiltFrameError):
            logarithmic_frame(0)
        with pytest.raises(TiltFrameError):
            logarithmic_frame(2, ratio=1)


class TestBehavior:
    def test_logarithmic_retention(self):
        """History of T ticks is held in O(log T) slots."""
        frame = logarithmic_frame(8)  # covers up to 2^8 = 256 ticks
        for t in range(256):
            frame.insert(ISB(t, t, float(t), 0.0))
        assert frame.total_retained <= frame.total_capacity == 16
        span = frame.span()
        assert span is not None and span[1] == 255
        # The telescoping levels reach back to tick 0.
        assert span[0] == 0

    def test_recent_history_kept_fine(self):
        frame = logarithmic_frame(5)
        for t in range(32):
            frame.insert(ISB(t, t, 1.0, 0.0))
        fine = frame.slots(0)
        assert fine[-1].interval == (31, 31)


class TestSlotsNeeded:
    def test_exact_powers(self):
        assert slots_needed_for_span(2) == 1
        assert slots_needed_for_span(4) == 2
        assert slots_needed_for_span(1024) == 10

    def test_non_powers_round_up(self):
        assert slots_needed_for_span(5) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(TiltFrameError):
            slots_needed_for_span(0)

    def test_sized_frame_covers_requested_span(self):
        span = 100
        n = slots_needed_for_span(span)
        frame = logarithmic_frame(n)
        for t in range(span):
            frame.insert(ISB(t, t, 0.0, 0.0))
        got = frame.span()
        assert got is not None
        assert got[0] == 0 and got[1] == span - 1
