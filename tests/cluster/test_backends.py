"""The backend seam in-process: config validation, dispatch, the host.

:class:`InprocBackend` and :class:`ShardHost` are the halves every
backend shares — covering them here means the process workers run
already-tested dispatch code, with only the socket loop process-only.
"""

from __future__ import annotations

import time
from concurrent.futures import Future

import pytest

from repro.cluster import ClusterConfig, InprocBackend, ShardBackend, ShardHost
from repro.errors import ServiceError
from repro.stream.engine import StreamCubeEngine
from repro.stream.records import StreamRecord

from tests.cluster.conftest import TPQ, workload


def make_engines(layers, policy, n=2):
    return [
        StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
        for _ in range(n)
    ]


class TestClusterConfig:
    def test_defaults_are_inproc(self):
        config = ClusterConfig()
        assert config.backend == "inproc"
        assert config.queue_depth >= 1
        assert config.ingest_chunk >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError, match="unknown shard backend"):
            ClusterConfig(backend="threads")

    def test_queue_depth_must_be_positive(self):
        with pytest.raises(ServiceError, match="queue_depth"):
            ClusterConfig(queue_depth=0)

    def test_ingest_chunk_must_be_positive(self):
        with pytest.raises(ServiceError, match="ingest_chunk"):
            ClusterConfig(ingest_chunk=0)


class TestInprocBackend:
    def test_call_and_counters(self, layers, policy):
        backend = InprocBackend(make_engines(layers, policy))
        try:
            backend.call(0, "ingest", StreamRecord((0, 0), 0, 1.0))
            backend.call(1, "ingest", StreamRecord((1, 1), 0, 2.0))
            backend.broadcast("advance_to", TPQ)
            counters = backend.counters()
            assert [c[0] for c in counters] == [1, 1]
            assert [c[1] for c in counters] == [1, 1]
        finally:
            backend.close()

    def test_map_with_per_shard_args(self, layers, policy):
        backend = InprocBackend(make_engines(layers, policy))
        try:
            backend.map(
                "ingest",
                [
                    (StreamRecord((0, 0), 0, 1.0),),
                    (StreamRecord((1, 1), 1, 2.0),),
                ],
            )
            assert [c[1] for c in backend.counters()] == [1, 1]
        finally:
            backend.close()

    def test_engines_property_exposes_live_engines(self, layers, policy):
        engines = make_engines(layers, policy)
        backend = InprocBackend(engines)
        try:
            assert backend.engines == engines
            assert backend.n_shards == 2
        finally:
            backend.close()

    def test_stats_shape(self, layers, policy):
        backend = InprocBackend(make_engines(layers, policy, n=3))
        try:
            stats = backend.stats()
            assert stats["backend"] == "inproc"
            assert stats["workers"] == 3
            assert stats["pids"] == []
            assert stats["restarts"] == 0
            assert stats["queue_high_water"] == [0, 0, 0]
        finally:
            backend.close()

    def test_base_settle_is_future_result(self, layers, policy):
        future: Future = Future()
        future.set_result("value")
        assert (
            ShardBackend.settle(object(), 0, "ping", (), future) == "value"
        )


class TestShardHost:
    def host(self, layers, policy):
        return ShardHost(
            StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
        )

    def test_unknown_method_rejected(self, layers, policy):
        with pytest.raises(ServiceError, match="unknown shard method"):
            self.host(layers, policy).invoke("load_statee", ())
        # Dunder / private engine internals are not reachable either.
        with pytest.raises(ServiceError, match="unknown shard method"):
            self.host(layers, policy).invoke("_cells", ())

    def test_counters_track_engine(self, layers, policy):
        host = self.host(layers, policy)
        records = workload(3, quarters=2)
        host.invoke("ingest", (records[0],))
        host.invoke("advance_to", (2 * TPQ,))
        quarter, ingested, cells = host.counters()
        assert quarter == 2
        assert ingested == 1
        assert cells == 1

    def test_arm_fault_rejects_unknown_kind(self, layers, policy):
        with pytest.raises(ServiceError, match="unknown fault kind"):
            self.host(layers, policy).invoke(
                "_arm_fault", ("segfault", "ping")
            )

    def test_sleep_fault_is_one_shot(self, layers, policy):
        host = self.host(layers, policy)
        host.invoke("_arm_fault", ("sleep", "ping", 0.05))
        begin = time.monotonic()
        host.invoke("ping", ())
        assert time.monotonic() - begin >= 0.05
        assert host._fault is None  # disarmed
        begin = time.monotonic()
        host.invoke("ping", ())
        assert time.monotonic() - begin < 0.05

    def test_fault_only_fires_on_named_method(self, layers, policy):
        host = self.host(layers, policy)
        host.invoke("_arm_fault", ("sleep", "m_cells", 0.05))
        host.invoke("ping", ())
        assert host._fault is not None  # still armed

    def test_snapshot_to_file_round_trips(self, layers, policy, tmp_path):
        host = self.host(layers, policy)
        host.invoke("ingest", (StreamRecord((2, 2), 0, 3.5),))
        host.invoke("advance_to", (TPQ,))
        target = tmp_path / "shard.json"
        host.invoke("snapshot_to_file", (str(target),))

        import json

        from repro.io import engine_state_from_dict

        state = engine_state_from_dict(
            json.loads(target.read_text(encoding="utf-8"))
        )
        fresh = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
        fresh.load_state(state)
        assert fresh.m_cells(1) == host.engine.m_cells(1)
