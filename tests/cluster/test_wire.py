"""The wire protocol: framing, method codecs, errors, classification.

The equivalence guarantee of the process backend rests on every codec
being an exact inverse — ISBs, engine states and records must round-trip
the wire *bit-identically* (Python's shortest-repr float JSON encoding
makes that possible; these tests pin it down).
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.cluster import wire
from repro.errors import ServiceError, StreamError
from repro.stream.engine import StreamCubeEngine
from repro.stream.records import StreamRecord

from tests.cluster.conftest import TPQ, workload


class TestFraming:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"id": 7, "m": "ping", "a": [], "z": [1.5, "x", None]}
            wire.send_frame(a, payload)
            assert wire.recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_many_frames_in_order(self):
        a, b = socket.socketpair()
        try:
            for i in range(20):
                wire.send_frame(a, {"id": i})
            for i in range(20):
                assert wire.recv_frame(b) == {"id": i}
        finally:
            a.close()
            b.close()

    def test_clean_close_yields_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert wire.recv_frame(b) is None
        finally:
            b.close()

    def test_close_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            # A header promising bytes that never arrive.
            a.sendall(struct.pack(">I", 100) + b"partial")
            a.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                wire.recv_frame(b)
        finally:
            b.close()

    def test_oversized_header_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", wire.MAX_FRAME + 1))
            with pytest.raises(ConnectionError, match="MAX_FRAME"):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()


class TestArgCodecs:
    def test_apply_segments_round_trip(self):
        segments = [
            (0, {(1, "a"): ([0, 1, 1], [0.5, -1.25, 3.0])}),
            (1, {(1, "a"): ([4], [2.0]), (2, "b"): ([5, 6], [0.1, 0.2])}),
        ]
        payload = wire.encode_args("apply_segments", (segments, 6))
        decoded = wire.decode_args("apply_segments", payload)
        assert decoded == (segments, 6)
        # Group order inside a segment is part of the contract.
        assert list(decoded[0][1][1].keys()) == list(segments[1][1].keys())

    def test_validate_segment_keys_round_trip(self):
        segments = [(2, {(0, 0): ([8], [1.0])})]
        payload = wire.encode_args("validate_segment_keys", (segments,))
        assert wire.decode_args("validate_segment_keys", payload) == (
            segments,
        )

    def test_ingest_record_round_trip(self):
        record = StreamRecord((3, 7), 11, -0.1234567890123456789)
        payload = wire.encode_args("ingest", (record,))
        (decoded,) = wire.decode_args("ingest", payload)
        assert decoded == record
        assert decoded.z == record.z  # bit-exact float

    def test_load_state_round_trip(self, layers, policy):
        engine = StreamCubeEngine(
            layers, policy, ticks_per_quarter=TPQ
        )
        engine.ingest_many(workload(5, quarters=3))
        engine.advance_to(3 * TPQ)
        state = engine.snapshot()
        payload = wire.encode_args("load_state", (state,))
        (decoded,) = wire.decode_args("load_state", payload)
        fresh = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
        fresh.load_state(decoded)
        assert fresh.m_cells(3) == engine.m_cells(3)
        assert fresh.records_ingested == engine.records_ingested

    def test_plain_args_pass_through(self):
        assert wire.decode_args(
            "advance_to", wire.encode_args("advance_to", (42,))
        ) == (42,)
        assert wire.decode_args("ping", wire.encode_args("ping", ())) == ()


class TestResultCodecs:
    def test_cell_results_bit_identical(self, layers, policy):
        engine = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
        engine.ingest_many(workload(9, quarters=4))
        engine.advance_to(4 * TPQ)
        cells = engine.m_cells(4)
        assert cells  # non-trivial fixture
        for method in ("m_cells", "window_isbs", "change_exceptions"):
            encoded = wire.encode_result(method, cells)
            assert wire.decode_result(method, encoded) == cells

    def test_snapshot_result_round_trip(self, layers, policy):
        engine = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
        engine.ingest_many(workload(9, quarters=2))
        engine.advance_to(2 * TPQ)
        state = engine.snapshot()
        decoded = wire.decode_result(
            "snapshot", wire.encode_result("snapshot", state)
        )
        fresh = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
        fresh.load_state(decoded)
        assert fresh.m_cells(2) == engine.m_cells(2)

    def test_scalar_results_pass_through(self):
        assert wire.decode_result(
            "prune_idle", wire.encode_result("prune_idle", 3)
        ) == 3
        assert wire.decode_result(
            "ping", wire.encode_result("ping", None)
        ) is None


class TestErrorTransport:
    def test_domain_error_round_trips_by_type(self):
        frame = wire.error_to_wire(StreamError("quarter went backwards"))
        rebuilt = wire.error_from_wire(frame["t"], frame["e"])
        assert isinstance(rebuilt, StreamError)
        assert str(rebuilt) == "quarter went backwards"

    def test_unknown_type_degrades_to_service_error(self):
        frame = wire.error_to_wire(ValueError("boom"))
        rebuilt = wire.error_from_wire(frame["t"], frame["e"])
        assert isinstance(rebuilt, ServiceError)
        assert "ValueError" in str(rebuilt)
        assert "boom" in str(rebuilt)

    def test_non_error_attribute_not_resurrected(self):
        # ``errors`` module attributes that are not ReproError subclasses
        # (e.g. ``Exception`` itself is absent, but guard the lookup path).
        rebuilt = wire.error_from_wire("__name__", "x")
        assert isinstance(rebuilt, ServiceError)


class TestClassification:
    def test_reads_and_snapshot_writes_are_idempotent(self):
        for method in (
            "window_isbs",
            "m_cells",
            "change_exceptions",
            "snapshot",
            "snapshot_to_file",
            "storage_stats",
            "compact_storage",
            "drop_page_cache",
            "validate_segment_keys",
            "ping",
        ):
            assert wire.classify(method) == wire.IDEMPOTENT

    def test_journaled_mutations_are_replay_covered(self):
        for method in ("apply_segments", "ingest", "advance_to"):
            assert wire.classify(method) == wire.REPLAY_COVERED

    def test_everything_else_is_unrecoverable(self):
        for method in ("prune_idle", "load_state", "_arm_fault", "nope"):
            assert wire.classify(method) == wire.UNRECOVERABLE
