"""Process-backed cubes answer bit-identically to a single engine.

The headline guarantee of the process backend: for any workload, shard
count and chunk size, every query of a cube whose shards live in forked
worker processes equals — float for float — the same query against one
in-process :class:`StreamCubeEngine`.  Snapshots, restores and reshards
cross the backend boundary in both directions without loss.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig
from repro.errors import HierarchyError, ServiceError
from repro.service.sharding import ShardedStreamCube
from repro.storage import StorageConfig
from repro.stream.engine import StreamCubeEngine
from repro.stream.records import StreamRecord
from repro.stream.wal import QuarterWAL

from tests.cluster.conftest import TPQ, workload


def single_engine(layers, policy, records, end_tick):
    engine = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
    engine.ingest_many(records)
    engine.advance_to(end_tick)
    return engine


def process_cube(layers, policy, k=2, **kwargs):
    kwargs.setdefault("backend", "process")
    return ShardedStreamCube(
        layers, policy, n_shards=k, ticks_per_quarter=TPQ, **kwargs
    )


class TestBitIdentity:
    @pytest.mark.parametrize("k", (1, 3))
    def test_ingest_batch_equals_engine(self, layers, policy, k):
        records = workload(11)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        with process_cube(layers, policy, k) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            assert cube.m_cells(4) == engine.m_cells(4)
            assert cube.window_isbs(0, end - 1) == engine.window_isbs(
                0, end - 1
            )
            assert cube.change_exceptions() == engine.change_exceptions()
            assert cube.records_ingested == engine.records_ingested
            assert cube.tracked_cells == engine.tracked_cells
            assert cube.current_quarter == engine.current_quarter

    def test_single_record_ingest_path(self, layers, policy):
        records = workload(4, quarters=2)
        end = 2 * TPQ
        engine = single_engine(layers, policy, records, end)
        with process_cube(layers, policy, 2) as cube:
            for record in records:
                cube.ingest(record)
            cube.advance_to(end)
            assert cube.m_cells(2) == engine.m_cells(2)

    def test_tiny_chunks_equal_one_chunk(self, layers, policy):
        """Chunked pipelined dispatch is associative: a 16-record chunk
        size (many chunks per shard per batch) changes nothing."""
        records = workload(23)
        end = 6 * TPQ
        with process_cube(layers, policy, 2) as one, process_cube(
            layers,
            policy,
            2,
            backend=ClusterConfig(backend="process", ingest_chunk=16),
        ) as tiny:
            one.ingest_batch(records)
            one.advance_to(end)
            tiny.ingest_batch(records)
            tiny.advance_to(end)
            assert tiny.m_cells(4) == one.m_cells(4)
            assert tiny.change_exceptions() == one.change_exceptions()

    def test_matches_inproc_backend_exactly(self, layers, policy):
        records = workload(31)
        end = 6 * TPQ
        with ShardedStreamCube(
            layers, policy, n_shards=3, ticks_per_quarter=TPQ
        ) as inproc, process_cube(layers, policy, 3) as proc:
            inproc.ingest_batch(records)
            inproc.advance_to(end)
            proc.ingest_batch(records)
            proc.advance_to(end)
            assert proc.refresh(4).o_layer_exceptions() == inproc.refresh(
                4
            ).o_layer_exceptions()
            assert (
                proc.o_layer_change_exceptions()
                == inproc.o_layer_change_exceptions()
            )


class TestSnapshotAcrossBackends:
    def test_process_snapshot_restores_inproc(
        self, layers, policy, tmp_path
    ):
        records = workload(8)
        end = 6 * TPQ
        with process_cube(layers, policy, 2) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            cube.snapshot(tmp_path / "snap")
            expected = cube.m_cells(4)
        with ShardedStreamCube.restore(
            tmp_path / "snap", layers, policy
        ) as restored:
            assert restored.m_cells(4) == expected

    def test_inproc_snapshot_restores_process(
        self, layers, policy, tmp_path
    ):
        records = workload(8)
        end = 6 * TPQ
        with ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        ) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            cube.snapshot(tmp_path / "snap")
            expected = cube.m_cells(4)
        with ShardedStreamCube.restore(
            tmp_path / "snap", layers, policy, backend="process"
        ) as restored:
            assert restored.m_cells(4) == expected
            assert restored.parallel_stats()["backend"] == "process"

    def test_reshard_under_process_backend(self, layers, policy):
        records = workload(8)
        end = 6 * TPQ
        with process_cube(layers, policy, 2) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            expected = cube.m_cells(4)
            wider = cube.reshard(4)
            try:
                assert wider.n_shards == 4
                assert wider.parallel_stats()["backend"] == "process"
                assert wider.m_cells(4) == expected
                # Ingestion continues seamlessly after the reshard.
                more = [
                    r for r in workload(9, quarters=7) if r.t >= end
                ]
                wider.ingest_batch(more)
                assert (
                    wider.records_ingested
                    == len(records) + len(more)
                )
            finally:
                wider.close()


class TestProcessSurface:
    def test_shards_property_refuses(self, layers, policy):
        with process_cube(layers, policy, 2) as cube:
            with pytest.raises(ServiceError, match="worker processes"):
                cube.shards

    def test_parallel_stats_reports_workers(self, layers, policy):
        with process_cube(layers, policy, 2) as cube:
            cube.ingest_batch(workload(2, quarters=2))
            stats = cube.parallel_stats()
            assert stats["backend"] == "process"
            assert stats["workers"] == 2
            assert len(stats["pids"]) == 2
            assert all(isinstance(pid, int) for pid in stats["pids"])
            assert stats["restarts"] == 0
            assert stats["rpc_round_trips"] > 0
            assert len(stats["queue_high_water"]) == 2

    def test_chaos_hooks_require_process_backend(self, layers, policy):
        with ShardedStreamCube(
            layers, policy, n_shards=2, ticks_per_quarter=TPQ
        ) as cube:
            with pytest.raises(ServiceError, match="process backend"):
                cube.kill_worker(0)
            with pytest.raises(ServiceError, match="process backend"):
                cube.arm_worker_fault(0, "exit", "ping")

    def test_parent_side_validation_keeps_wal_clean(
        self, layers, policy, tmp_path
    ):
        """With a WAL attached, a bad key is rejected *before* journaling
        and before dispatch — the parent validates every key itself."""
        wal = QuarterWAL(tmp_path / "cube.wal")
        with process_cube(layers, policy, 2, wal=wal) as cube:
            cube.ingest_batch(workload(3, quarters=1))
            seq = wal.last_seq
            bad = [StreamRecord(("nope", "nope"), TPQ, 1.0)]
            with pytest.raises(HierarchyError):
                cube.ingest_batch(bad)
            with pytest.raises(HierarchyError):
                cube.ingest(bad[0])
            assert wal.last_seq == seq  # nothing journaled
            # The cube still works after the rejection.
            cube.advance_to(2 * TPQ)
            assert cube.current_quarter == 2


class TestProcessWithStorage:
    @pytest.mark.parametrize("store_backend", ("file", "sqlite"))
    def test_spilling_workers_stay_bit_identical(
        self, layers, policy, tmp_path, store_backend
    ):
        records = workload(13, quarters=8)
        end = 8 * TPQ
        engine = single_engine(layers, policy, records, end)
        storage = StorageConfig(
            root=tmp_path / "cold", backend=store_backend, hot_quarters=2
        )
        with process_cube(layers, policy, 2, storage=storage) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            # A deep window reaching below the hot horizon faults cold
            # pages inside the workers.
            assert cube.window_isbs(0, end - 1) == engine.window_isbs(
                0, end - 1
            )
            stats = cube.storage_stats()
            assert stats["backend"] == store_backend
            assert len(stats["shards"]) == 2
            assert stats["pages_spilled"] > 0
