"""Shard health: states, versioning, partial broadcasts, safe shutdown.

The service layer's degraded mode is built entirely on what this file
pins: the ``healthy / recovering / degraded / dead`` roster, the
``health_version`` counter that invalidates router caches, the
``broadcast_partial`` holes a dead shard leaves behind, and a ``close()``
that never raises for a sick fleet — plus the end-to-end corruption
story: a silently corrupted cold page is quarantined, the shard is
rebuilt from snapshot + WAL replay, and the answer comes back exact.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig
from repro.errors import ServiceError
from repro.service.sharding import ShardedStreamCube
from repro.storage import StorageConfig
from repro.stream.engine import StreamCubeEngine
from repro.stream.wal import QuarterWAL

from tests.cluster.conftest import TPQ, workload


def single_engine(layers, policy, records, end_tick):
    engine = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
    engine.ingest_many(records)
    engine.advance_to(end_tick)
    return engine


def walled_cube(layers, policy, tmp_path, k=2, **config_kwargs):
    config_kwargs.setdefault("backend", "process")
    storage = config_kwargs.pop("storage", None)
    wal = QuarterWAL(tmp_path / "cube.wal")
    return ShardedStreamCube(
        layers,
        policy,
        n_shards=k,
        ticks_per_quarter=TPQ,
        wal=wal,
        storage=storage,
        backend=ClusterConfig(**config_kwargs),
    )


def doom_shard(cube, shard=1):
    """Kill one worker under a zero restart budget: sticky-dead."""
    cube.kill_worker(shard)
    with pytest.raises(ServiceError, match="restart budget"):
        cube.m_cells(4)


class TestHealthRoster:
    def test_fresh_fleet_is_healthy(self, layers, policy, tmp_path):
        with walled_cube(layers, policy, tmp_path) as cube:
            roster = cube.health()
            assert [s["state"] for s in roster] == ["healthy", "healthy"]
            assert [s["shard"] for s in roster] == [0, 1]
            assert all(s["reason"] is None for s in roster)
            assert isinstance(cube.health_version(), int)

    def test_recovered_shard_reports_healthy_with_restarts(
        self, layers, policy, tmp_path
    ):
        with walled_cube(layers, policy, tmp_path) as cube:
            cube.ingest_batch(workload(3))
            cube.advance_to(2 * TPQ)
            before = cube.health_version()
            cube.kill_worker(1)
            cube.m_cells(4)  # detects the crash, revives, retries
            roster = cube.health()
            assert roster[1]["state"] == "healthy"
            assert roster[1]["restarts"] == 1
            # Death and revival are distinct transitions: the version
            # moved more than once, so no cache can span the outage.
            assert cube.health_version() > before + 1

    def test_budget_exhaustion_is_sticky_dead(
        self, layers, policy, tmp_path
    ):
        cube = walled_cube(
            layers, policy, tmp_path, max_restarts=0
        )
        try:
            cube.ingest_batch(workload(3))
            doom_shard(cube)
            roster = cube.health()
            assert roster[1]["state"] == "dead"
            assert "restart budget" in roster[1]["reason"]
            # Sticky: the next call fails fast with the same refusal
            # instead of re-running a recovery that cannot succeed.
            with pytest.raises(ServiceError, match="restart budget"):
                cube.m_cells(4)
            assert cube.health()[1]["restarts"] == 0
        finally:
            cube.close()

    def test_last_quarter_is_the_staleness_bound(
        self, layers, policy, tmp_path
    ):
        cube = walled_cube(
            layers, policy, tmp_path, max_restarts=0
        )
        try:
            cube.ingest_batch(workload(3))  # spans quarters 0..5
            cube.advance_to(6 * TPQ)
            doom_shard(cube)
            assert cube.health()[1]["last_quarter"] == 6
        finally:
            cube.close()


class TestBroadcastPartial:
    def test_strict_mode_still_raises(self, layers, policy, tmp_path):
        cube = walled_cube(
            layers, policy, tmp_path, max_restarts=0
        )
        try:
            cube.ingest_batch(workload(3))
            doom_shard(cube)
            # degraded_reads defaults to False: library users get the
            # loud failure unless they opt in (the HTTP service does).
            with pytest.raises(ServiceError, match="restart budget"):
                cube.change_exceptions()
        finally:
            cube.close()

    def test_degraded_reads_merge_surviving_shards(
        self, layers, policy, tmp_path
    ):
        records = workload(6)  # spans quarters 0..5
        end = 6 * TPQ
        cube = walled_cube(
            layers, policy, tmp_path, max_restarts=0
        )
        try:
            cube.ingest_batch(records)
            cube.advance_to(end)
            doom_shard(cube)
            cube.degraded_reads = True
            partial = cube.window_isbs(0, end - 1)
            holes = cube.consume_degraded()
            assert [h["shard"] for h in holes] == [1]
            assert holes[0]["state"] == "dead"
            assert "restart budget" in holes[0]["reason"]
            assert holes[0]["last_quarter"] == 6
            # The partial answer is exactly the surviving shard's slice
            # of the truth: a subset, never garbage.
            full = single_engine(
                layers, policy, records, end
            ).window_isbs(0, end - 1)
            assert partial
            assert all(full[key] == isb for key, isb in partial.items())
        finally:
            cube.close()

    def test_consume_degraded_drains_and_dedupes(
        self, layers, policy, tmp_path
    ):
        cube = walled_cube(
            layers, policy, tmp_path, max_restarts=0
        )
        try:
            cube.ingest_batch(workload(3))
            cube.advance_to(2 * TPQ)
            doom_shard(cube)
            cube.degraded_reads = True
            cube.m_cells(4)
            cube.change_exceptions()  # same dead shard, one descriptor
            holes = cube.consume_degraded()
            assert [h["shard"] for h in holes] == [1]
            assert cube.consume_degraded() == []  # drained
        finally:
            cube.close()


class TestCloseWithSickFleet:
    def test_close_after_sticky_dead_does_not_raise(
        self, layers, policy, tmp_path
    ):
        """Satellite contract: ``close()`` reaps dead workers silently
        and reports them in the summary instead of raising."""
        cube = walled_cube(
            layers, policy, tmp_path, max_restarts=0
        )
        cube.ingest_batch(workload(3))
        doom_shard(cube)
        cube.close()  # must not raise
        summary = cube.close_summary
        assert summary["backend"] == "process"
        assert summary["reaped"] == [1]
        assert "restart budget" in summary["doomed"][1]
        cube.close()  # idempotent, still quiet

    def test_close_summary_for_healthy_fleet(
        self, layers, policy, tmp_path
    ):
        cube = walled_cube(layers, policy, tmp_path)
        cube.ingest_batch(workload(2))
        cube.close()
        assert cube.close_summary["drained"] == 2
        assert cube.close_summary["reaped"] == []
        assert cube.close_summary["doomed"] == {}


class TestCorruptColdPageRebuild:
    def test_quarantine_then_rebuild_answers_exactly(
        self, layers, policy, tmp_path
    ):
        """Silent media corruption, end to end: a cold page's bytes rot
        on disk, the worker's read fails its checksum and quarantines the
        page, the supervisor rebuilds the shard (respawn + full WAL
        replay re-derives and re-puts every page), and the deep window
        comes back bit-identical to a never-corrupted engine."""
        records = workload(13, quarters=8)
        end = 8 * TPQ
        engine = single_engine(layers, policy, records, end)
        storage = StorageConfig(
            root=tmp_path / "cold", backend="file", hot_quarters=2
        )
        cube = walled_cube(layers, policy, tmp_path, storage=storage)
        try:
            cube.ingest_batch(records)
            cube.advance_to(end)
            segments = sorted((tmp_path / "cold").rglob("L*.seg"))
            assert segments, "no pages spilled; widen the workload"
            # Rot the tail of every segment file: the last byte sits in
            # some page's float column, caught by the whole-page CRC.
            for path in segments:
                raw = bytearray(path.read_bytes())
                raw[-1] ^= 0x40
                path.write_bytes(bytes(raw))
            assert cube.window_isbs(0, end - 1) == engine.window_isbs(
                0, end - 1
            )
            assert cube.parallel_stats()["restarts"] >= 1
            assert [s["state"] for s in cube.health()] == [
                "healthy",
                "healthy",
            ]
        finally:
            cube.close()
