"""Shared fixtures for the cluster tests: same schema/workload as service."""

from __future__ import annotations

import pytest

from repro.cube.layers import CriticalLayers
from repro.cubing.policy import GlobalSlopeThreshold
from repro.stream.generator import DatasetSpec

from tests.service.conftest import TPQ, workload  # noqa: F401  (re-export)


@pytest.fixture
def layers() -> CriticalLayers:
    """A D2L2C3 fanout schema (9 leaves per dimension)."""
    return DatasetSpec(2, 2, 3, 1).build_layers()


@pytest.fixture
def policy() -> GlobalSlopeThreshold:
    return GlobalSlopeThreshold(0.1)
