"""Supervision: crashes, restarts, replay, timeouts and budgets.

Every test kills (or stalls) a live worker and asserts the cube's answers
afterwards are bit-identical to a never-crashed single engine — the
supervisor's whole contract.  Recovery legs cover both the full-WAL
replay path and the snapshot + WAL-tail path through ``recovery_dir``.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig
from repro.errors import ServiceError
from repro.service.sharding import ShardedStreamCube
from repro.stream.engine import StreamCubeEngine
from repro.stream.wal import QuarterWAL

from tests.cluster.conftest import TPQ, workload


def single_engine(layers, policy, records, end_tick):
    engine = StreamCubeEngine(layers, policy, ticks_per_quarter=TPQ)
    engine.ingest_many(records)
    engine.advance_to(end_tick)
    return engine


def walled_cube(layers, policy, tmp_path, k=2, **config_kwargs):
    config_kwargs.setdefault("backend", "process")
    wal = QuarterWAL(tmp_path / "cube.wal")
    cube = ShardedStreamCube(
        layers,
        policy,
        n_shards=k,
        ticks_per_quarter=TPQ,
        wal=wal,
        backend=ClusterConfig(**config_kwargs),
    )
    return cube


class TestCrashRecovery:
    def test_kill_then_full_wal_replay(self, layers, policy, tmp_path):
        records = workload(6)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        with walled_cube(layers, policy, tmp_path) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            cube.kill_worker(1)
            # The next query detects the crash, revives the worker,
            # replays the whole WAL into it, and retries.
            assert cube.m_cells(4) == engine.m_cells(4)
            assert cube.parallel_stats()["restarts"] == 1
            assert (
                cube.change_exceptions() == engine.change_exceptions()
            )

    def test_crash_mid_apply_is_replay_covered(
        self, layers, policy, tmp_path
    ):
        """A worker that dies *inside* apply_segments loses the in-flight
        batch — but the batch was journaled first, so the revival's replay
        re-applies it and the final state is exact."""
        records = workload(17)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        half = len(records) // 2
        with walled_cube(layers, policy, tmp_path) as cube:
            cube.ingest_batch(records[:half])
            cube.arm_worker_fault(0, "exit", "apply_segments")
            cube.ingest_batch(records[half:])
            cube.advance_to(end)
            assert cube.parallel_stats()["restarts"] == 1
            assert cube.m_cells(4) == engine.m_cells(4)
            assert cube.window_isbs(0, end - 1) == engine.window_isbs(
                0, end - 1
            )

    def test_crash_mid_advance_is_replay_covered(
        self, layers, policy, tmp_path
    ):
        records = workload(21, quarters=3)
        end = 4 * TPQ
        engine = single_engine(layers, policy, records, end)
        with walled_cube(layers, policy, tmp_path) as cube:
            cube.ingest_batch(records)
            cube.arm_worker_fault(1, "exit", "advance_to")
            cube.advance_to(end)
            assert cube.current_quarter == 4
            assert cube.m_cells(4) == engine.m_cells(4)

    def test_crash_mid_snapshot_write_is_retried(
        self, layers, policy, tmp_path
    ):
        """snapshot_to_file is idempotent: the killed worker's write is
        atomic (temp + rename), so the retry against the revived worker
        produces a complete, loadable snapshot."""
        records = workload(12)
        end = 6 * TPQ
        with walled_cube(layers, policy, tmp_path) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            expected = cube.m_cells(4)
            cube.arm_worker_fault(0, "exit", "snapshot_to_file")
            cube.snapshot(tmp_path / "snap")
            assert cube.parallel_stats()["restarts"] == 1
        with ShardedStreamCube.restore(
            tmp_path / "snap", layers, policy
        ) as restored:
            assert restored.m_cells(4) == expected

    def test_snapshot_tail_recovery(self, layers, policy, tmp_path):
        """With recovery_dir set, a revival loads the shard's snapshot
        slice and replays only the WAL tail past the manifest's seq."""
        records = workload(14)
        end = 6 * TPQ
        engine = single_engine(layers, policy, records, end)
        half = len(records) // 2
        snap = tmp_path / "snap"
        with walled_cube(
            layers, policy, tmp_path, recovery_dir=str(snap)
        ) as cube:
            cube.ingest_batch(records[:half])
            cube.snapshot(snap)
            cube.ingest_batch(records[half:])
            cube.advance_to(end)
            cube.kill_worker(0)
            assert cube.m_cells(4) == engine.m_cells(4)
            assert cube.parallel_stats()["restarts"] == 1

    def test_rpc_timeout_revives_and_retries(
        self, layers, policy, tmp_path
    ):
        """A stalled worker trips the RPC timeout; the idempotent read is
        retried against the revived worker and still answers exactly."""
        records = workload(10, quarters=4)
        end = 4 * TPQ
        engine = single_engine(layers, policy, records, end)
        with walled_cube(
            layers, policy, tmp_path, rpc_timeout=0.5
        ) as cube:
            cube.ingest_batch(records)
            cube.advance_to(end)
            # The cube's window reads dispatch the explicit-bounds
            # ``window_isbs`` wire method (the parent computes the window
            # under its read cut), so that is where the stall must land.
            cube.arm_worker_fault(1, "sleep", "window_isbs", 2.0)
            assert cube.m_cells(4) == engine.m_cells(4)
            stats = cube.parallel_stats()
            assert stats["restarts"] == 1


class TestRefusals:
    def test_no_wal_refuses_recovery(self, layers, policy):
        with ShardedStreamCube(
            layers,
            policy,
            n_shards=2,
            ticks_per_quarter=TPQ,
            backend="process",
        ) as cube:
            cube.ingest_batch(workload(3, quarters=2))
            cube.kill_worker(0)
            with pytest.raises(ServiceError, match="no WAL"):
                cube.advance_to(3 * TPQ)

    def test_restart_budget_exhaustion(self, layers, policy, tmp_path):
        with walled_cube(
            layers, policy, tmp_path, max_restarts=0
        ) as cube:
            cube.ingest_batch(workload(3, quarters=2))
            cube.kill_worker(1)
            with pytest.raises(ServiceError, match="restart budget"):
                cube.advance_to(3 * TPQ)

    def test_crash_during_prune_is_unrecoverable(
        self, layers, policy, tmp_path
    ):
        with walled_cube(layers, policy, tmp_path) as cube:
            cube.ingest_batch(workload(3, quarters=2))
            cube.arm_worker_fault(0, "exit", "prune_idle")
            with pytest.raises(
                ServiceError, match="neither journaled nor idempotent"
            ):
                cube.prune_idle(1)

    def test_prune_after_snapshot_blocks_recovery(
        self, layers, policy, tmp_path
    ):
        """prune_idle is not journaled, so a WAL replay after a prune
        would resurrect pruned cells — the supervisor refuses instead,
        and the refusal is sticky: the shard stays failed rather than
        silently serving an empty state."""
        snap = tmp_path / "snap"
        with walled_cube(
            layers, policy, tmp_path, recovery_dir=str(snap)
        ) as cube:
            records = workload(16)
            cube.ingest_batch(records)
            cube.advance_to(6 * TPQ)
            cube.snapshot(snap)
            cube.prune_idle(1)
            cube.kill_worker(0)
            with pytest.raises(ServiceError, match="prune_idle"):
                cube.m_cells(4)
            with pytest.raises(ServiceError, match="prune_idle"):
                cube.m_cells(4)

    def test_snapshot_after_prune_reanchors_recovery(
        self, layers, policy, tmp_path
    ):
        """Snapshotting *after* a prune captures the pruned state and
        clears the refusal: the next crash recovers normally."""
        snap = tmp_path / "snap"
        with walled_cube(
            layers, policy, tmp_path, recovery_dir=str(snap)
        ) as cube:
            cube.ingest_batch(workload(16))
            cube.advance_to(6 * TPQ)
            cube.prune_idle(1)
            cube.snapshot(snap)
            expected = cube.m_cells(4)
            cube.kill_worker(0)
            assert cube.m_cells(4) == expected
            assert cube.parallel_stats()["restarts"] == 1

    def test_manifest_shard_count_mismatch_refuses(
        self, layers, policy, tmp_path
    ):
        snap = tmp_path / "snap"
        with walled_cube(
            layers, policy, tmp_path, k=2, recovery_dir=str(snap)
        ) as cube:
            cube.ingest_batch(workload(5, quarters=2))
            cube.snapshot(snap)
        # Rewrite the manifest to claim a different shard count.
        import json

        manifest_path = snap / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["n_shards"] = 5
        # Drop the self-checksum: this simulates an honest manifest from a
        # different shard count, not corruption (which has its own tests).
        manifest.pop("checksum", None)
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with walled_cube(
            layers, policy, tmp_path, k=2, recovery_dir=str(snap)
        ) as cube:
            cube.ingest_batch(
                [r for r in workload(5, quarters=3) if r.t >= 2 * TPQ]
            )
            cube.kill_worker(0)
            with pytest.raises(ServiceError, match="written under"):
                cube.m_cells(2)


class TestBackpressureAndShutdown:
    def test_queue_high_water_rises_under_pileup(
        self, layers, policy, tmp_path
    ):
        """Stalling a worker briefly while several requests queue behind
        the stall drives the high-water gauge above one."""
        with walled_cube(layers, policy, tmp_path, k=1) as cube:
            cube.ingest_batch(workload(3, quarters=2))
            backend = cube._backend
            backend.call(0, "_arm_fault", "sleep", "ping", 0.3)
            futures = [backend.submit(0, "ping") for _ in range(4)]
            for future in futures:
                future.result()
            assert cube.parallel_stats()["queue_high_water"][0] > 1

    def test_backend_close_is_idempotent(self, layers, policy, tmp_path):
        cube = walled_cube(layers, policy, tmp_path)
        cube.ingest_batch(workload(2, quarters=2))
        backend = cube._backend
        cube.close()
        cube.close()
        backend.close()
        with pytest.raises(ServiceError, match="closed"):
            backend.call(0, "ping")

    def test_workers_reaped_on_close(self, layers, policy, tmp_path):
        import os

        cube = walled_cube(layers, policy, tmp_path)
        pids = cube.parallel_stats()["pids"]
        cube.close()
        for pid in pids:
            # After close + join the pid is either gone or a zombie the
            # multiprocessing finalizer already reaped; a live worker
            # would still answer signal 0.
            try:
                os.kill(pid, 0)
                alive = True
            except OSError:
                alive = False
            assert not alive or not _is_running(pid)


def _is_running(pid: int) -> bool:
    try:
        with open(f"/proc/{pid}/stat", encoding="ascii") as handle:
            return handle.read().split()[2] not in ("Z", "X")
    except OSError:
        return False
