"""Tests for JSON persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchemaError
from repro.io import (
    dump_cells,
    dump_exceptions,
    isb_from_dict,
    isb_to_dict,
    load_cells,
    load_exceptions,
)
from repro.regression.isb import ISB


class TestISBPayload:
    def test_round_trip(self):
        isb = ISB(3, 12, -1.5, 0.25)
        assert isb_from_dict(isb_to_dict(isb)) == isb

    def test_missing_field_raises(self):
        with pytest.raises(SchemaError):
            isb_from_dict({"t_b": 0, "t_e": 1, "base": 0.0})


class TestCellsFile:
    def test_round_trip(self, tmp_path):
        cells = {
            (0, 5): ISB(0, 9, 1.0, 0.1),
            ("a", "*"): ISB(0, 9, 2.0, -0.2),
        }
        path = tmp_path / "cells.json"
        dump_cells(cells, path)
        assert load_cells(path) == cells

    def test_value_types_preserved(self, tmp_path):
        cells = {(1, "x"): ISB(0, 1, 0.0, 0.0)}
        path = tmp_path / "cells.json"
        dump_cells(cells, path)
        loaded = load_cells(path)
        key = next(iter(loaded))
        assert isinstance(key[0], int) and isinstance(key[1], str)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SchemaError):
            load_cells(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "cells.json"
        path.write_text(
            json.dumps({"format": "repro-cells", "version": 99, "cells": []})
        )
        with pytest.raises(SchemaError):
            load_cells(path)

    def test_duplicate_cells_rejected(self, tmp_path):
        path = tmp_path / "cells.json"
        row = {"values": [1], "isb": isb_to_dict(ISB(0, 1, 0, 0))}
        path.write_text(
            json.dumps(
                {"format": "repro-cells", "version": 1, "cells": [row, row]}
            )
        )
        with pytest.raises(SchemaError):
            load_cells(path)


class TestExceptionsFile:
    def test_round_trip(self, tmp_path):
        retained = {
            (1, 2): {(0, 3): ISB(0, 9, 1.0, 0.5)},
            (2, 1): {},
        }
        path = tmp_path / "exc.json"
        dump_exceptions(retained, path)
        assert load_exceptions(path) == retained

    def test_from_cubing_result(self, tmp_path, small_dataset):
        from repro.cubing.mo_cubing import mo_cubing
        from repro.cubing.policy import GlobalSlopeThreshold

        result = mo_cubing(
            small_dataset.layers, small_dataset.cells, GlobalSlopeThreshold(0.3)
        )
        path = tmp_path / "exc.json"
        dump_exceptions(result.retained_exceptions, path)
        loaded = load_exceptions(path)
        assert set(loaded) == set(result.retained_exceptions)
        for coord, cells in loaded.items():
            assert cells == result.retained_exceptions[coord]

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "exc.json"
        path.write_text(json.dumps({"format": "repro-cells", "version": 1}))
        with pytest.raises(SchemaError):
            load_exceptions(path)

    def test_generated_dataset_round_trip(self, tmp_path, tiny_dataset):
        path = tmp_path / "dataset.json"
        dump_cells(tiny_dataset.cells, path)
        assert load_cells(path) == tiny_dataset.cells
