"""Stock-series analysis with folding and a logarithmic tilt frame.

Section 6.2 motivates *folding* with "stock closing value": fold a year of
daily ISBs into a monthly closing-price series with ``last``, then regress
the folded series for the monthly trend.  The same section's time-hierarchy
discussion motivates the logarithmic tilt frame: O(log T) slots while recent
history stays fine-grained.

Everything below works on compressed ISBs only — the per-minute raw prices
are discarded as soon as each day is sealed.

Run: ``python examples/stock_folding.py``
"""

from __future__ import annotations

import numpy as np

from repro import ISB, fold_isbs, isb_of_series, logarithmic_frame, merge_time

TRADING_DAYS = 240  # 12 "months" of 20 trading days
MINUTES_PER_DAY = 390


def simulate_daily_isbs(seed: int = 77) -> list[ISB]:
    """One ISB per trading day from simulated minute prices."""
    rng = np.random.default_rng(seed)
    price = 100.0
    daily: list[ISB] = []
    for day in range(TRADING_DAYS):
        drift = 0.03 + 0.02 * np.sin(day / 30.0)  # slow regime change
        minutes = price + np.cumsum(
            rng.normal(drift / MINUTES_PER_DAY, 0.05, size=MINUTES_PER_DAY)
        )
        t_b = day * MINUTES_PER_DAY
        daily.append(isb_of_series(minutes.tolist(), t_b=t_b))
        price = float(minutes[-1])
    return daily


def main() -> None:
    daily = simulate_daily_isbs()
    print(f"sealed {len(daily)} trading days "
          f"({MINUTES_PER_DAY} minutes each) into {len(daily)} ISBs")
    print(f"raw numbers discarded per day: {MINUTES_PER_DAY} -> 4 kept\n")

    # ------------------------------------------------------------------
    # Folding: months of closing values, regressed at the monthly level.
    # ------------------------------------------------------------------
    month_isbs = [
        merge_time(daily[m * 20 : (m + 1) * 20]) for m in range(12)
    ]
    closings = fold_isbs(month_isbs, "last")   # Section 6.2's use case
    averages = fold_isbs(month_isbs, "avg")
    trend = closings.fit()
    print("monthly closing values (from ISBs alone):")
    print("  " + ", ".join(f"{v:.2f}" for v in closings.values))
    print(f"monthly closing trend: {trend.slope:+.3f} per month")
    print(f"monthly average trend: {averages.fit().slope:+.3f} per month\n")

    # ------------------------------------------------------------------
    # Logarithmic tilt frame over the day stream.
    # ------------------------------------------------------------------
    frame = logarithmic_frame(n_levels=9)  # covers 2^9 = 512 days
    for day, isb in enumerate(daily):
        # Re-index each day to one frame tick (day granularity).
        frame.insert(ISB(day, day, isb.mean, 0.0))
    print(f"logarithmic frame: {frame.total_retained} slots retained for "
          f"{TRADING_DAYS} days (capacity {frame.total_capacity})")
    recent = frame.query(TRADING_DAYS - 2, TRADING_DAYS - 1)
    span = frame.span()
    assert span is not None
    print(f"finest recent window: days {recent.t_b}-{recent.t_e}, "
          f"slope {recent.slope:+.3f}/day")
    print(f"history still reachable back to day {span[0]}")


if __name__ == "__main__":
    main()
