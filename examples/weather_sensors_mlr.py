"""Section 6.2 extensions: multiple regression and folding.

The paper's discussion section sketches two generalizations that this
library implements in full:

1. **Multiple linear regression with spatial regressors.**  "For
   environmental monitoring ... networks of sensors placed at different
   geographic locations ... one may wish to do regression not only on the
   time dimension, but also the three spatial dimensions."  Mergeable
   sufficient statistics make the model warehousable exactly like ISBs:
   disjoint observation sets merge by addition.

2. **Non-linear basis functions** (log / polynomial / exponential) — the
   model stays linear in its parameters, so the same machinery applies.

3. **Folding** (the third aggregation type): daily ISBs folded into a
   monthly series with ``avg`` — exactly recoverable from the ISBs alone —
   which then gets its own regression.

Run: ``python examples/weather_sensors_mlr.py``
"""

from __future__ import annotations

import numpy as np

from repro import SufficientStats, fold_isbs, isb_of_series
from repro.regression.basis import (
    logarithmic_design,
    polynomial_design,
    spatio_temporal_design,
)

TRUE_THETA = (12.0, 0.004, -0.0065, 0.002, -0.55)  # base, t, x, y, alt


def sensor_batch(rng, station, n_readings: int) -> SufficientStats:
    """One station's day of readings as mergeable sufficient statistics."""
    x, y, alt = station
    stats = SufficientStats(spatio_temporal_design())
    for t in range(n_readings):
        temp = (
            TRUE_THETA[0]
            + TRUE_THETA[1] * t
            + TRUE_THETA[2] * x
            + TRUE_THETA[3] * y
            + TRUE_THETA[4] * alt
            + rng.normal(0, 0.3)
        )
        stats.add((float(t), x, y, alt), temp)
    return stats


def part1_spatio_temporal() -> None:
    print("== multiple regression over time + 3 spatial dimensions ==")
    rng = np.random.default_rng(4)
    stations = [
        (rng.uniform(0, 100), rng.uniform(0, 100), rng.uniform(0, 3))
        for _ in range(12)
    ]
    # Each station summarizes locally; the warehouse merges statistics only
    # (disjoint observation sets, so the time-dimension merge applies).
    merged = sensor_batch(rng, stations[0], 288)
    for station in stations[1:]:
        merged = merged.merge_time(sensor_batch(rng, station, 288))
    fit = merged.fit()
    print(f"observations merged: {fit.n} (12 stations x 288 readings)")
    print("coefficient          true      recovered")
    for name, true, got in zip(
        ("intercept", "time", "x", "y", "altitude"), TRUE_THETA, fit.theta
    ):
        print(f"  {name:<12} {true:>10.4f} {got:>12.4f}")
    print(f"R^2 = {fit.r2:.4f}\n")


def part2_nonlinear_bases() -> None:
    print("== non-linear basis functions (log / polynomial) ==")
    rng = np.random.default_rng(5)
    # Sensor warm-up follows a log curve: v = 2 + 1.2 * log(t+1).
    log_stats = SufficientStats(logarithmic_design())
    for t in range(200):
        log_stats.add((float(t),), 2.0 + 1.2 * np.log(t + 1.0) + rng.normal(0, 0.05))
    log_fit = log_stats.fit()
    print(f"log model:  v = {log_fit.theta[0]:.3f} + "
          f"{log_fit.theta[1]:.3f} * log(t+1)   (true: 2.0, 1.2)")

    # Diurnal curvature: quadratic in time.
    poly_stats = SufficientStats(polynomial_design(2))
    for t in range(100):
        poly_stats.add(
            (float(t),), 5.0 + 0.8 * t - 0.006 * t * t + rng.normal(0, 0.1)
        )
    poly_fit = poly_stats.fit()
    print(f"poly model: v = {poly_fit.theta[0]:.3f} + "
          f"{poly_fit.theta[1]:.3f} t + {poly_fit.theta[2]:.5f} t^2   "
          "(true: 5.0, 0.8, -0.006)\n")


def part3_folding() -> None:
    print("== folding: daily ISBs -> monthly series -> monthly trend ==")
    rng = np.random.default_rng(6)
    # 360 days of hourly-mean temperatures, warming 0.01 / day.
    daily_isbs = []
    for day in range(360):
        readings = (
            15.0 + 0.01 * day + 5.0 * np.sin(np.arange(24) * np.pi / 12)
            + rng.normal(0, 0.4, size=24)
        )
        daily_isbs.append(
            isb_of_series(readings.tolist(), t_b=day * 24)
        )
    # Group days into 30-day months (Theorem 3.3), then fold with avg —
    # exact from the ISBs alone, no raw data needed.
    from repro import merge_time

    month_isbs = [
        merge_time(daily_isbs[m * 30 : (m + 1) * 30]) for m in range(12)
    ]
    monthly = fold_isbs(month_isbs, "avg")
    fit = monthly.fit()
    print(f"monthly means: {[f'{v:.2f}' for v in monthly.values]}")
    print(f"monthly-level warming trend: {fit.slope:+.4f} deg/month "
          f"(true: {0.01 * 30:+.4f})")


def main() -> None:
    part1_spatio_temporal()
    part2_nonlinear_bases()
    part3_folding()


if __name__ == "__main__":
    main()
