"""Quickstart: the regression-cube pipeline in five minutes.

Walks the paper's core ideas in order:

1. fit a time series and compress it to the 4-number ISB (Section 3.2);
2. aggregate ISBs losslessly over standard and time dimensions
   (Theorems 3.2 / 3.3);
3. register a long history in a tilt time frame (Section 4.1);
4. build a regression cube between the two critical layers and query it
   through the declarative ``QuerySpec`` API (Sections 4.2-4.4);
5. stream into a sharded cube, snapshot it mid-quarter, and restore —
   durable, restartable state beyond the paper;
6. spill sealed history past a hot horizon to an on-disk cold store and
   fault it back for a deep-history window — tiered storage, so resident
   memory is bounded by the hot set, not by the stream's age;
7. run the same cube with each shard in its own forked worker process —
   ingest past the GIL, with every answer bit-identical to the
   in-process backend;
8. serve many query clients concurrently — per-shard read locks,
   seal-epoch-vector cache validation (hits are a lock-free
   comparison), and single-flight collapsing of identical misses.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import (
    GlobalSlopeThreshold,
    ISB,
    calibrate_threshold,
    full_materialization,
    generate_dataset,
    intermediate_slopes,
    isb_of_series,
    merge_standard,
    merge_time,
    mo_cubing,
    natural_frame,
    popular_path_cubing,
)
from repro.io import spec_from_dict, spec_to_dict
from repro.query import Q, RegressionCubeView, execute, execute_batch


def step1_compress() -> None:
    print("== 1. LSE fit and the ISB representation ==")
    series = [0.62, 0.24, 1.03, 0.57, 0.59, 0.57, 0.87, 1.10, 0.71, 0.56]
    isb = isb_of_series(series)  # the paper's Example 2 series
    print(f"raw series: {len(series)} numbers")
    print(f"compressed: {isb}")
    print(f"  predicted usage at t=9: {isb.predict(9):.3f}")
    print(f"  exact series mean recovered from the ISB: {isb.mean:.3f}\n")


def step2_aggregate() -> None:
    print("== 2. Lossless aggregation (Theorems 3.2 and 3.3) ==")
    north = isb_of_series([1.0, 1.2, 1.5, 1.4], t_b=0)
    south = isb_of_series([2.0, 2.1, 1.9, 2.4], t_b=0)
    city = merge_standard([north, south])
    print(f"north block : {north}")
    print(f"south block : {south}")
    print(f"whole city  : {city}   (bases and slopes just add)")

    q1 = isb_of_series([1.0, 1.1, 1.3, 1.2], t_b=0)
    q2 = isb_of_series([1.4, 1.6, 1.5, 1.8], t_b=4)
    halfhour = merge_time([q1, q2])
    print(f"quarter 1   : {q1}")
    print(f"quarter 2   : {q2}")
    print(f"half hour   : {halfhour}   (Theorem 3.3, raw data never touched)\n")


def step3_tilt_frame() -> None:
    print("== 3. The tilt time frame (Fig 4) ==")
    frame = natural_frame()
    for t in range(4 * 24 * 3):  # three days of quarter-hours
        frame.insert(ISB(t, t, 1.0 + 0.002 * t, 0.0))
    print(f"after 3 days of quarters: {frame}")
    day = frame.last_window("hour", 24)
    print(f"last day at hour precision: slope={day.slope:+.4f}")
    print(f"slots retained: {frame.total_retained} (capacity 71)\n")


def step4_cube() -> None:
    print("== 4. Exception-based regression cubing ==")
    data = generate_dataset("D3L3C10T5K", seed=42)
    print(f"dataset: {data.spec.name} -> {data.n_cells} m-layer streams")
    print(f"lattice: {data.layers.lattice.size} cuboids "
          f"({data.layers.describe()})")

    # Calibrate the exception threshold to flag ~1% of aggregated cells.
    oracle = full_materialization(data.layers, data.cells)
    tau = calibrate_threshold(intermediate_slopes(oracle), 0.01)
    policy = GlobalSlopeThreshold(tau)
    print(f"threshold for a 1% exception rate: |slope| >= {tau:.4f}")

    mo = mo_cubing(data.layers, data.cells, policy)
    pp = popular_path_cubing(data.layers, data.cells, policy)
    print("\nAlgorithm 1 (m/o H-cubing):")
    print(mo.describe())
    print("\nAlgorithm 2 (popular-path):")
    print(pp.describe())

    # Query through the declarative API: build a plan with the Q builder,
    # hand it to the one execution engine.  The same specs (as JSON) drive
    # the HTTP service's POST /query endpoint.
    view = RegressionCubeView(mo)
    o_coord = data.layers.o_coord
    top_spec = Q.top_slopes(o_coord, k=3)
    assert spec_from_dict(spec_to_dict(top_spec)) == top_spec  # JSON round trip
    top = execute(view, top_spec).value
    print("\ntop o-layer slopes (the analyst's watch list):")
    for values, isb in top:
        print(f"  cell {values}: slope={isb.slope:+.4f}")

    # Batches share one view; per-spec results come back in order.
    items = execute_batch(
        view, Q.batch(Q.watch_list(), Q.observation_deck())
    )
    watch, deck = (item.result.value for item in items)
    print(f"batched: {len(watch)} of {len(deck)} o-layer cells are exceptional")


def step5_durability() -> None:
    print("\n== 5. Durable, elastic streaming state ==")
    import random
    import tempfile

    from repro import StreamRecord
    from repro.service import ShardedStreamCube
    from repro.stream.generator import DatasetSpec

    layers = DatasetSpec(2, 2, 4, 1).build_layers()
    cube = ShardedStreamCube(
        layers, GlobalSlopeThreshold(0.1), n_shards=2, ticks_per_quarter=15
    )
    rng = random.Random(9)
    records = [
        StreamRecord((rng.randrange(16), rng.randrange(16)), t, rng.uniform(0, 3))
        for t in range(5 * 15)
        for _ in range(4)
    ]
    cube.ingest_batch(records)  # quarter 5 is still accumulating: mid-quarter
    snapdir = tempfile.mkdtemp()
    manifest = cube.snapshot(snapdir)
    print(
        f"snapshot: {manifest['tracked_cells']} cells on "
        f"{manifest['n_shards']} shards at quarter "
        f"{manifest['current_quarter']} -> {snapdir}"
    )

    # Restore — and reshard at the same time: same state, 3 shards.
    restored = ShardedStreamCube.restore(
        snapdir, layers, GlobalSlopeThreshold(0.1), n_shards=3
    )
    assert restored.window_isbs(0, 4 * 15 - 1) == cube.window_isbs(0, 4 * 15 - 1)
    print(
        f"restored on {restored.n_shards} shards: windows bit-identical, "
        "unsealed accumulators included"
    )
    cube.close()
    restored.close()


def step6_tiered_storage() -> None:
    print("\n== 6. Tiered storage: spill sealed history, fault it back ==")
    import random
    import tempfile
    from pathlib import Path

    from repro import StreamRecord
    from repro.storage import open_cold_store
    from repro.stream.engine import StreamCubeEngine
    from repro.stream.generator import DatasetSpec

    layers = DatasetSpec(2, 2, 4, 1).build_layers()
    store = open_cold_store(
        Path(tempfile.mkdtemp()) / "cold", backend="file"
    )
    engine = StreamCubeEngine(
        layers,
        GlobalSlopeThreshold(0.1),
        ticks_per_quarter=1,
        storage=store,
        hot_quarters=2,
    )
    rng = random.Random(5)
    pool = [(rng.randrange(16), rng.randrange(16)) for _ in range(12)]
    engine.ingest_many(
        [
            StreamRecord(key, q, rng.uniform(0, 3))
            for q in range(480)
            for key in pool
        ]
    )
    engine.advance_to(480)  # 480 single-tick quarters = 2.5 tilt "days"
    stats = engine.storage_stats()
    print(
        f"sealed 480 quarters: {stats['pages_spilled']} pages "
        f"({stats['cold_slots']} slots) spilled to "
        f"{stats['bytes_on_disk']:,} bytes on disk"
    )
    # The very first quarter left RAM long ago; the window faults its
    # page back from the cold store transparently.
    window = engine.window_isbs(0, 0)
    print(
        f"deep window [0,0]: {len(window)} cells answered with "
        f"{engine.storage_stats()['cold_faults']} cold faults"
    )
    store.close()


def step7_process_parallel() -> None:
    print("\n== 7. Process-parallel shards: same answers, many cores ==")
    import random

    from repro import StreamRecord
    from repro.service import ShardedStreamCube
    from repro.stream.generator import DatasetSpec

    layers = DatasetSpec(2, 2, 4, 1).build_layers()
    policy = GlobalSlopeThreshold(0.1)
    rng = random.Random(13)
    records = [
        StreamRecord((rng.randrange(16), rng.randrange(16)), t, rng.uniform(0, 3))
        for t in range(4 * 15)
        for _ in range(4)
    ]
    # backend="process" forks one supervised worker per shard; every
    # query crosses the RPC boundary and still answers bit-identically.
    with ShardedStreamCube(
        layers, policy, n_shards=2, ticks_per_quarter=15
    ) as inproc, ShardedStreamCube(
        layers, policy, n_shards=2, ticks_per_quarter=15, backend="process"
    ) as forked:
        inproc.ingest_batch(records)
        inproc.advance_to(4 * 15)
        forked.ingest_batch(records)
        forked.advance_to(4 * 15)
        assert forked.m_cells(4) == inproc.m_cells(4)
        stats = forked.parallel_stats()
        print(
            f"{stats['workers']} worker processes (pids {stats['pids']}), "
            f"{stats['rpc_round_trips']} RPC round trips: "
            "m-layer bit-identical to the in-process backend"
        )


def step8_concurrent_serving() -> None:
    print("\n== 8. Concurrent serving: lock-free hits, single-flight misses ==")
    import random
    import threading

    from repro import StreamRecord
    from repro.service import QueryRouter, ShardedStreamCube
    from repro.stream.generator import DatasetSpec

    layers = DatasetSpec(2, 2, 4, 1).build_layers()
    rng = random.Random(21)
    with ShardedStreamCube(
        layers, GlobalSlopeThreshold(0.1), n_shards=4, ticks_per_quarter=15
    ) as cube:
        cube.ingest_batch(
            StreamRecord(
                (rng.randrange(16), rng.randrange(16)), t, rng.uniform(0, 3)
            )
            for t in range(4 * 15)
            for _ in range(4)
        )
        cube.advance_to(4 * 15)
        router = QueryRouter(cube, window_quarters=4)
        # Queries take per-shard *read* locks, so clients run in parallel;
        # each answer is cached with the cube's seal-epoch vector and a
        # hit is served from a lock-free vector comparison.  Identical
        # concurrent misses collapse to one execution (single-flight).
        clients = [
            threading.Thread(target=router.observation_deck)
            for _ in range(8)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join()
        stats = router.stats()
        print(
            f"8 concurrent clients, epoch vector {cube.epoch_vector()}: "
            f"{stats['specs_executed']} specs served by "
            f"{stats['cache_misses']} execution(s) — "
            f"{stats['cache_hits']} lock-free hits, "
            f"{stats['single_flight_joins']} single-flight joins"
        )
        # `python -m repro serve --request-threads N` puts the same router
        # behind a bounded HTTP pool: probes and queries never wait on
        # ingest, and /stats reports these counters live.


def main() -> None:
    step1_compress()
    step2_aggregate()
    step3_tilt_frame()
    step4_cube()
    step5_durability()
    step6_tiered_storage()
    step7_process_parallel()
    step8_concurrent_serving()


if __name__ == "__main__":
    main()
