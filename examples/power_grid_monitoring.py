"""Example 1 end to end: on-line power-grid monitoring.

The paper's motivating scenario: a power station collects per-minute usage
per user and address; the cube design of Example 4 — m-layer
``(user_group, street_block)`` at quarter precision, o-layer ``(*, city)``
at hour precision — watches for unusual trends and drills down to the
responsible street block.

This script streams two hours of readings with a usage surge injected into
one street block half-way, refreshes the cube every quarter, and shows the
analyst's view: the o-layer watch list and the exception drill tree that
localizes the surge.

Run: ``python examples/power_grid_monitoring.py``
"""

from __future__ import annotations

from repro import GlobalSlopeThreshold
from repro.query.drill import ExceptionDriller
from repro.stream.engine import StreamCubeEngine
from repro.stream.power_grid import PowerGridConfig, PowerGridSimulator
from repro.tilt.frame import TiltLevelSpec

SURGE_BLOCK = "c1-b2"
SURGE_START_MINUTE = 60
MINUTES = 120


def main() -> None:
    config = PowerGridConfig(
        n_cities=3,
        blocks_per_city=4,
        addresses_per_block=4,
        users_per_address=2,
        noise=0.02,
        surge_block=SURGE_BLOCK,
        surge_start_minute=SURGE_START_MINUTE,
        surge_slope_per_minute=0.03,
        seed=2026,
    )
    sim = PowerGridSimulator(config)
    layers = sim.layers()
    print("cube design (Example 4):", layers.describe())
    print(f"grid: {len(sim.cities)} cities, {len(sim.blocks)} blocks, "
          f"{sim.n_users} users")
    print(f"anomaly: block {SURGE_BLOCK} starts surging at minute "
          f"{SURGE_START_MINUTE}\n")

    engine = StreamCubeEngine(
        layers,
        GlobalSlopeThreshold(0.02),
        key_fn=sim.m_key_fn(),
        ticks_per_quarter=15,
        frame_levels=[
            TiltLevelSpec("quarter", 15, 4),
            TiltLevelSpec("hour", 60, 24),
        ],
    )

    # ------------------------------------------------------------------
    # Stream minute-by-minute; report at each quarter boundary.
    # ------------------------------------------------------------------
    for quarter_end in range(15, MINUTES + 1, 15):
        engine.ingest_many(sim.records(15, start_minute=quarter_end - 15))
        engine.advance_to(quarter_end)
        if engine.current_quarter < 1:
            continue
        window = min(4, engine.current_quarter)
        result = engine.refresh(window_quarters=window, algorithm="popular")
        watch = result.o_layer_exceptions()
        flagged = ", ".join(
            f"{v[1]} ({isb.slope:+.3f})" for v, isb in sorted(watch.items())
        )
        print(
            f"quarter {engine.current_quarter:2d} "
            f"(minute {quarter_end:3d}): "
            f"{len(watch)} o-layer exception(s)"
            + (f" -> {flagged}" if flagged else "")
        )

    # ------------------------------------------------------------------
    # The analyst drills into the flagged city.
    # ------------------------------------------------------------------
    print("\n== exception-guided drill-down (observation deck) ==")
    result = engine.refresh(window_quarters=4, algorithm="mo")
    driller = ExceptionDriller(result)
    roots = driller.drill_tree()
    if not roots:
        print("no exceptions at the o-layer")
        return
    for root in roots:
        print(root.render(layers.schema.names))

    blocks = {
        node.values[1]
        for root in roots
        for node in root.walk()
        if node.coord == layers.m_coord
    }
    print(f"\nlocalized to street block(s): {sorted(blocks)}")
    print(f"injected surge block was:     {SURGE_BLOCK}")


if __name__ == "__main__":
    main()
