"""Network-traffic trend anomalies with popular-path cubing.

One of the paper's Section 1 application domains: "network traffic ...
tele-communication data flow".  A backbone operator tracks per-link,
per-protocol byte counts.  The cube:

* dimensions: link (region > pop > link), traffic class (class > protocol)
* m-layer: (link, protocol); o-layer: (region, class)
* measure: regression of the byte-rate series over the analysis window

A slow-building exfiltration-style ramp is injected on one link/protocol;
the exception framework surfaces it at the o-layer and popular-path cubing
retains exactly the drill path of exception cells (Framework 4.1), which is
then compared against Algorithm 1's full exception set (footnote 7).

Run: ``python examples/network_traffic_anomaly.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    CriticalLayers,
    CubeSchema,
    Dimension,
    ExplicitHierarchy,
    GlobalSlopeThreshold,
    isb_of_series,
    mo_cubing,
    popular_path_cubing,
)

WINDOW = 48  # five-minute ticks: four hours of history
RAMP_LINK = "pop-eu1-l2"
RAMP_PROTOCOL = "dns"


def build_layers() -> CriticalLayers:
    regions = ["na", "eu"]
    pops = {
        "pop-na1": "na",
        "pop-na2": "na",
        "pop-eu1": "eu",
        "pop-eu2": "eu",
    }
    links = {
        f"{pop}-l{i}": pop for pop in pops for i in range(3)
    }
    link_dim = Dimension(
        "link",
        ExplicitHierarchy(
            "link", ["region", "pop", "link"], regions, [pops, links]
        ),
    )
    classes = ["bulk", "interactive"]
    protocols = {
        "http": "bulk",
        "ftp": "bulk",
        "smtp": "bulk",
        "dns": "interactive",
        "ssh": "interactive",
    }
    class_dim = Dimension(
        "traffic",
        ExplicitHierarchy(
            "traffic", ["class", "protocol"], classes, [protocols]
        ),
    )
    schema = CubeSchema([link_dim, class_dim])
    return CriticalLayers.from_level_names(
        schema, m_levels=("link", "protocol"), o_levels=("region", "class")
    )


def synthesize_traffic(layers: CriticalLayers, seed: int = 9):
    """Byte-rate series per (link, protocol), with one injected ramp."""
    rng = np.random.default_rng(seed)
    link_hier = layers.schema.hierarchy("link")
    traffic_hier = layers.schema.hierarchy("traffic")
    base_rate = {"http": 80.0, "ftp": 30.0, "smtp": 12.0, "dns": 6.0, "ssh": 4.0}

    cells = {}
    for link in sorted(link_hier.values(3)):
        for protocol in sorted(traffic_hier.values(2)):
            level = base_rate[protocol] * rng.uniform(0.6, 1.4)
            t = np.arange(WINDOW, dtype=float)
            series = level + rng.normal(0, level * 0.03, size=WINDOW)
            series += level * 0.1 * np.sin(2 * np.pi * t / 24)
            if link == RAMP_LINK and protocol == RAMP_PROTOCOL:
                series += 1.4 * t  # the slow exfiltration ramp
            cells[(link, protocol)] = isb_of_series(series.tolist())
    return cells


def main() -> None:
    layers = build_layers()
    print("cube design:", layers.describe())
    cells = synthesize_traffic(layers)
    print(f"m-layer: {len(cells)} (link, protocol) streams over "
          f"{WINDOW} ticks")
    print(f"injected ramp: {RAMP_LINK}/{RAMP_PROTOCOL}\n")

    policy = GlobalSlopeThreshold(0.6)
    pp = popular_path_cubing(layers, cells, policy)
    mo = mo_cubing(layers, cells, policy)

    print("o-layer (region, class) watch list:")
    for values, isb in sorted(pp.o_layer_exceptions().items()):
        print(f"  {values}: slope={isb.slope:+.2f} bytes/tick^2")

    print("\nexception cells retained by popular-path (Framework 4.1):")
    for coord in layers.lattice.top_down_order():
        kept = pp.exceptions_at(coord)
        if not kept:
            continue
        names = layers.schema.describe_coord(coord)
        for values, isb in sorted(kept.items()):
            print(f"  {names} {values}: slope={isb.slope:+.2f}")

    total_pp = pp.total_retained_exceptions
    total_mo = mo.total_retained_exceptions
    print(
        f"\nfootnote 7 in action: popular-path retained {total_pp} "
        f"exception cells, m/o-cubing {total_mo} (superset)"
    )

    culprit = [
        values
        for values, _ in pp.m_layer.items()
        if policy.is_exception(pp.m_layer[values], layers.m_coord)
    ]
    print(f"m-layer culprits: {culprit}")


if __name__ == "__main__":
    main()
