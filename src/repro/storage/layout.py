"""Per-shard cold store sets with generation tags.

A sharded cube needs one cold store per shard, and a k→j reshard needs the
cold pages repartitioned — without disturbing the generation a still-live
cube may be reading.  The layout under one storage root::

    root/
      g0001.ok                        # marker: {"generation", "n_shards", "backend"}
      g0001-shard-00-of-03/           # file backend: a directory of .seg files
      g0001-shard-01-of-03/
      g0001-shard-02-of-03/
      g0002.ok
      g0002-shard-00-of-05.sqlite     # sqlite backend: one db file per shard
      ...

:func:`open_shard_stores` opens the newest complete generation when its
shard count matches, and otherwise *repartitions* it into a fresh
generation: every page key in the union of the old stores is re-split row
by row with the caller's ``shard_key`` (the same stable hash the cube
routes records with), empty pages included — a shard with no rows for an
interval still needs the zero row for late-born cells.  The marker file is
written only after every new store is populated, so a crash mid-reshard
leaves the old generation authoritative and the partial one inert.

Old generations are never pruned at open (a live cube may hold them);
:func:`prune_stale_generations` runs from the checkpoint/compaction path.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable

from repro.errors import StorageError
from repro.storage.base import ColdStore, open_cold_store
from repro.storage.pages import ColdPage

__all__ = [
    "StorageConfig",
    "open_shard_stores",
    "prune_stale_generations",
    "shard_store_path",
]

Values = tuple[Hashable, ...]
ShardKey = Callable[[Values, int], int]

_MARKER_RE = re.compile(r"^g(\d{4})\.ok$")


@dataclass(frozen=True)
class StorageConfig:
    """Tiered-storage configuration of one sharded cube (or ``serve``).

    ``root`` holds every generation of per-shard stores; ``backend`` is
    ``"file"`` or ``"sqlite"``; ``hot_quarters`` is the hot horizon each
    shard engine keeps resident before demoting sealed slots.
    """

    root: str | Path
    backend: str = "file"
    hot_quarters: int = 4

    def __post_init__(self) -> None:
        if self.backend not in ("file", "sqlite"):
            raise StorageError(
                f"unknown storage backend {self.backend!r} "
                "(expected 'file' or 'sqlite')"
            )
        if self.hot_quarters < 1:
            raise StorageError("hot_quarters must be >= 1")


def shard_store_path(
    root: str | Path, generation: int, shard: int, n_shards: int, backend: str
) -> Path:
    """The store path of one shard in one generation."""
    name = f"g{generation:04d}-shard-{shard:02d}-of-{n_shards:02d}"
    if backend == "sqlite":
        name += ".sqlite"
    return Path(root) / name


def _marker_path(root: Path, generation: int) -> Path:
    return root / f"g{generation:04d}.ok"


def _read_generations(root: Path) -> list[dict]:
    """Complete generations under ``root``, oldest first."""
    out = []
    for path in sorted(root.iterdir()) if root.exists() else []:
        match = _MARKER_RE.match(path.name)
        if not match:
            continue
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
            meta = {
                "generation": int(meta["generation"]),
                "n_shards": int(meta["n_shards"]),
                "backend": str(meta["backend"]),
            }
        except (ValueError, KeyError, TypeError) as exc:
            raise StorageError(
                f"storage marker {path} is malformed ({exc})"
            ) from None
        if meta["generation"] != int(match.group(1)):
            raise StorageError(
                f"storage marker {path} disagrees with its own name"
            )
        out.append(meta)
    return sorted(out, key=lambda m: m["generation"])


def _write_marker(root: Path, generation: int, n_shards: int, backend: str) -> None:
    path = _marker_path(root, generation)
    tmp = path.with_suffix(".ok.tmp")
    tmp.write_text(
        json.dumps(
            {
                "generation": generation,
                "n_shards": n_shards,
                "backend": backend,
            }
        ),
        encoding="utf-8",
    )
    os.replace(tmp, path)


def _open_generation(
    config: StorageConfig, generation: int, n_shards: int
) -> list[ColdStore]:
    return [
        open_cold_store(
            shard_store_path(
                config.root, generation, i, n_shards, config.backend
            ),
            backend=config.backend,
        )
        for i in range(n_shards)
    ]


def open_shard_stores(
    config: StorageConfig,
    n_shards: int,
    shard_key: ShardKey,
) -> tuple[int, list[ColdStore]]:
    """Open (creating or repartitioning as needed) ``n_shards`` cold stores.

    Returns ``(generation, stores)``.  ``shard_key(values, n_shards)`` must
    be the same stable routing the cube applies to records — repartitioned
    rows land on the shard that will seal that cell's future quarters.
    """
    if n_shards < 1:
        raise StorageError("n_shards must be >= 1")
    root = Path(config.root)
    root.mkdir(parents=True, exist_ok=True)
    generations = _read_generations(root)
    if not generations:
        stores = _open_generation(config, 1, n_shards)
        _write_marker(root, 1, n_shards, config.backend)
        return 1, stores
    newest = generations[-1]
    if newest["backend"] != config.backend:
        raise StorageError(
            f"storage root {root} holds {newest['backend']!r} stores; "
            f"configured backend is {config.backend!r}"
        )
    if newest["n_shards"] == n_shards:
        return newest["generation"], _open_generation(
            config, newest["generation"], n_shards
        )
    return _repartition(config, newest, n_shards, shard_key)


def _repartition(
    config: StorageConfig,
    newest: dict,
    n_shards: int,
    shard_key: ShardKey,
) -> tuple[int, list[ColdStore]]:
    """Split the newest generation's pages row-by-row into a fresh one."""
    root = Path(config.root)
    old_stores = _open_generation(config, newest["generation"], newest["n_shards"])
    generation = newest["generation"] + 1
    try:
        new_stores = _open_generation(config, generation, n_shards)
        keys: set[tuple[int, int, int]] = set()
        for store in old_stores:
            keys.update(store.scan())
        for level, t_b, t_e in sorted(keys):
            pages = []
            for store in old_stores:
                try:
                    pages.append(store.get_segment(level, t_b, t_e))
                except StorageError:
                    continue  # that shard held no rows for this interval
            if not pages:  # pragma: no cover - scan/get raced nothing here
                continue
            zero = pages[0]
            split: list[tuple[list[Values], list[float], list[float]]] = [
                ([], [], []) for _ in range(n_shards)
            ]
            for page in pages:
                for key, base, slope in zip(page.keys, page.base, page.slope):
                    j = shard_key(key, n_shards)
                    split[j][0].append(key)
                    split[j][1].append(base)
                    split[j][2].append(slope)
            for j, (skeys, sbase, sslope) in enumerate(split):
                # Empty pages are still written: a shard with no rows for
                # this interval still answers late-born cells' fault-ins
                # with the zero row.
                new_stores[j].put_segment(
                    ColdPage(
                        level,
                        t_b,
                        t_e,
                        skeys,
                        sbase,
                        sslope,
                        zero_base=zero.zero_base,
                        zero_slope=zero.zero_slope,
                    )
                )
    finally:
        for store in old_stores:
            store.close()
    _write_marker(root, generation, n_shards, config.backend)
    return generation, new_stores


def prune_stale_generations(
    config: StorageConfig, keep_generation: int
) -> int:
    """Delete every generation older than ``keep_generation``.

    Only the checkpoint path calls this (after a successful snapshot +
    compaction), when no live cube can still be reading the old sets.
    Returns the number of generations removed.
    """
    root = Path(config.root)
    removed = 0
    for meta in _read_generations(root):
        generation = meta["generation"]
        if generation >= keep_generation:
            continue
        for i in range(meta["n_shards"]):
            path = shard_store_path(
                root, generation, i, meta["n_shards"], meta["backend"]
            )
            if path.is_dir():
                shutil.rmtree(path)
            elif path.exists():
                path.unlink()
        _marker_path(root, generation).unlink()
        removed += 1
    return removed
