"""The cold-store backend interface and factory.

A :class:`ColdStore` is a durable map from ``(level, t_b, t_e)`` to one
:class:`~repro.storage.pages.ColdPage`.  The contract every backend obeys:

* ``put_segment`` is **idempotent by key**: re-putting the same interval —
  the crash-recovery path re-derives pages deterministically from the WAL —
  must leave the store answering with the latest page, never erroring.
* ``get_segment`` raises :class:`~repro.errors.StorageError` for a missing
  key; the engine treats that as corruption, not as "no data" (the
  :class:`~repro.storage.spill.ColdIndex` knows exactly what was demoted).
* ``scan`` lists every stored key in sorted order — what reshard
  repartitioning iterates.
* ``compact`` reclaims space held by superseded or deleted rows and
  returns the bytes freed; correctness never depends on calling it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.storage.pages import ColdPage

__all__ = ["ColdStore", "StoreStats", "open_cold_store"]


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time summary of one cold store.

    ``pages``/``rows`` count live (latest-occurrence) pages; ``puts`` and
    ``gets`` are lifetime operation counters of this store *instance* —
    they reset on reopen, which is what the ``/stats`` block wants (spill
    and fault-in activity of the running process, not of all history).
    """

    backend: str
    pages: int
    rows: int
    bytes_on_disk: int
    puts: int
    gets: int
    #: Reads that failed once (I/O error or checksum) and succeeded on the
    #: immediate re-read — transient faults the store absorbed.
    read_retries: int = 0
    #: Failed appends rolled back and successfully retried.
    write_repairs: int = 0
    #: Pages dropped from the index because they were unreadable on both
    #: attempts; each raised a :class:`~repro.errors.CorruptionError`.
    quarantined: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "pages": self.pages,
            "rows": self.rows,
            "bytes_on_disk": self.bytes_on_disk,
            "puts": self.puts,
            "gets": self.gets,
            "read_retries": self.read_retries,
            "write_repairs": self.write_repairs,
            "quarantined": self.quarantined,
        }


class ColdStore(abc.ABC):
    """Abstract cold store; see the module docstring for the contract."""

    backend = "abstract"

    @abc.abstractmethod
    def put_segment(self, page: ColdPage) -> None:
        """Durably store ``page`` under its ``(level, t_b, t_e)`` key."""

    @abc.abstractmethod
    def get_segment(self, level: int, t_b: int, t_e: int) -> ColdPage:
        """The stored page for a key; :class:`StorageError` if absent."""

    @abc.abstractmethod
    def scan(self) -> list[tuple[int, int, int]]:
        """Every stored ``(level, t_b, t_e)`` key, sorted."""

    @abc.abstractmethod
    def stats(self) -> StoreStats:
        """Current :class:`StoreStats` for this store."""

    @abc.abstractmethod
    def compact(self) -> int:
        """Reclaim superseded space; returns bytes freed (may be 0)."""

    def close(self) -> None:
        """Release any held resources (default: nothing to release)."""

    def __enter__(self) -> "ColdStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_cold_store(path: str | Path, backend: str = "file") -> ColdStore:
    """Open (creating if needed) a cold store of the named backend.

    ``"file"`` expects/creates a directory of partitioned ``.seg`` files;
    ``"sqlite"`` a single database file.  Imports are function-local so the
    two backends stay independently importable.
    """
    if backend == "file":
        from repro.storage.files import FileColdStore

        return FileColdStore(path)
    if backend == "sqlite":
        from repro.storage.sqlite_store import SqliteColdStore

        return SqliteColdStore(path)
    raise StorageError(
        f"unknown cold-store backend {backend!r} (expected 'file' or 'sqlite')"
    )
