"""Sqlite backend for cold pages: the same page codec, stored as blobs.

One database file per store; a single ``pages`` table keyed by
``(level, t_b, t_e)`` with the encoded page as a blob.  ``INSERT OR
REPLACE`` gives the idempotent-put contract for free, sqlite's journal
gives torn-write safety, and ``VACUUM`` implements :meth:`compact`.

``sqlite3`` is in the standard library, so this backend adds no
dependency; the connection is opened with ``check_same_thread=False`` and
guarded by a lock because the sharded cube drives its shards from a thread
pool.
"""

from __future__ import annotations

import errno
import sqlite3
import threading
from pathlib import Path

from repro import faults
from repro.errors import CorruptionError, StorageError
from repro.storage.base import ColdStore, StoreStats
from repro.storage.pages import ColdPage

__all__ = ["SqliteColdStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS pages (
    level  INTEGER NOT NULL,
    t_b    INTEGER NOT NULL,
    t_e    INTEGER NOT NULL,
    n_rows INTEGER NOT NULL,
    data   BLOB    NOT NULL,
    PRIMARY KEY (level, t_b, t_e)
)
"""


class SqliteColdStore(ColdStore):
    """See the module docstring; the database file is created if absent."""

    backend = "sqlite"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        with self._lock:
            self._conn.execute(_SCHEMA)
            self._conn.commit()
        self._puts = 0
        self._gets = 0
        self._read_retries = 0
        self._write_repairs = 0
        self._quarantined = 0

    def put_segment(self, page: ColdPage) -> None:
        blob = page.encode()
        try:
            self._insert(page, blob)
        except (OSError, sqlite3.Error) as first:
            # sqlite's journal makes the failed transaction vanish, so a
            # straight retry is the whole repair; a second failure means
            # the database is genuinely unwritable.
            try:
                self._insert(page, blob)
            except (OSError, sqlite3.Error) as exc:
                raise StorageError(
                    f"cold store insert into {self.path} failed even "
                    f"after retry (first: {first}; retry: {exc})"
                ) from exc
            self._write_repairs += 1
        self._puts += 1

    def _insert(self, page: ColdPage, blob: bytes) -> None:
        faults.check("store.write")
        # A write-side bit flip reaches the row silently; the page
        # checksum catches it on the next read, where quarantine runs.
        blob = faults.corrupt("store.write", blob)
        if faults.torn("store.write"):
            # sqlite cannot tear a committed row, so a torn write here
            # is a transaction that never commits.
            raise OSError(errno.EIO, "injected torn write at store.write")
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO pages "
                "(level, t_b, t_e, n_rows, data) VALUES (?, ?, ?, ?, ?)",
                (page.level, page.t_b, page.t_e, page.n_rows, blob),
            )
            self._conn.commit()

    def get_segment(self, level: int, t_b: int, t_e: int) -> ColdPage:
        with self._lock:
            row = self._conn.execute(
                "SELECT data FROM pages WHERE level = ? AND t_b = ? AND t_e = ?",
                (level, t_b, t_e),
            ).fetchone()
        if row is None:
            raise StorageError(
                f"cold store {self.path} has no page for level {level} "
                f"[{t_b},{t_e}]"
            )
        try:
            page = self._decode(row[0])
        except (OSError, StorageError):
            try:
                page = self._decode(row[0])
            except (OSError, StorageError) as exc:
                raise self._quarantine(level, t_b, t_e, exc) from exc
            self._read_retries += 1
        self._gets += 1
        return page

    def _decode(self, blob: bytes) -> ColdPage:
        faults.check("store.read")
        return ColdPage.decode(faults.corrupt("store.read", bytes(blob)))

    def _quarantine(
        self, level: int, t_b: int, t_e: int, cause: Exception
    ) -> CorruptionError:
        with self._lock:
            self._conn.execute(
                "DELETE FROM pages WHERE level = ? AND t_b = ? AND t_e = ?",
                (level, t_b, t_e),
            )
            self._conn.commit()
        self._quarantined += 1
        return CorruptionError(
            f"cold store {self.path} page for level {level} "
            f"[{t_b},{t_e}] is unreadable and has been quarantined "
            f"({cause}); rebuild it from snapshot + WAL replay"
        )

    def scan(self) -> list[tuple[int, int, int]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT level, t_b, t_e FROM pages ORDER BY level, t_b, t_e"
            ).fetchall()
        return [(int(a), int(b), int(c)) for a, b, c in rows]

    def stats(self) -> StoreStats:
        with self._lock:
            pages, rows = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(n_rows), 0) FROM pages"
            ).fetchone()
        on_disk = self.path.stat().st_size if self.path.exists() else 0
        return StoreStats(
            backend=self.backend,
            pages=int(pages),
            rows=int(rows),
            bytes_on_disk=on_disk,
            puts=self._puts,
            gets=self._gets,
            read_retries=self._read_retries,
            write_repairs=self._write_repairs,
            quarantined=self._quarantined,
        )

    def compact(self) -> int:
        before = self.path.stat().st_size if self.path.exists() else 0
        with self._lock:
            self._conn.commit()
            self._conn.execute("VACUUM")
        after = self.path.stat().st_size if self.path.exists() else 0
        return max(0, before - after)

    def close(self) -> None:
        with self._lock:
            self._conn.close()
