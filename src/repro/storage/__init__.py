"""Tiered storage: pluggable cold stores for sealed ISB history.

The tilt time frame keeps every sealed slot of every cell resident, which
the paper's own arithmetic says is the wrong default at scale — sealed
history dominates storage while queries overwhelmingly touch the recent
hot set.  This package splits the two tiers: hot state (the unsealed
quarter plus the most recent tilt slots) stays in RAM; everything older is
*demoted* into a :class:`~repro.storage.base.ColdStore` as packed columnar
pages (:class:`~repro.storage.pages.ColdPage`) and faulted back
transparently when a deep-history window needs it.

Layout of the package:

* :mod:`repro.storage.pages` — the checksummed binary page codec shared by
  every backend (one page per ``(level, interval)``, all cells' rows).
* :mod:`repro.storage.base` — the backend interface (``put_segment`` /
  ``get_segment`` / ``scan`` / ``stats`` / ``compact``) and the factory.
* :mod:`repro.storage.files` — append-only partitioned ``.seg`` files,
  mmap reads, latest-occurrence-wins compaction.
* :mod:`repro.storage.sqlite_store` — the same pages as blobs in a
  single-file sqlite database (stdlib ``sqlite3``; no new dependency).
* :mod:`repro.storage.spill` — the :class:`~repro.storage.spill.ColdIndex`
  span bookkeeping and the demotion-cutoff arithmetic the engine uses.
* :mod:`repro.storage.layout` — per-shard store sets with generation
  tags, so a k→j reshard repartitions cold pages without disturbing the
  generation a live cube is still reading.
"""

from repro.storage.base import ColdStore, StoreStats, open_cold_store
from repro.storage.files import FileColdStore
from repro.storage.layout import (
    StorageConfig,
    open_shard_stores,
    prune_stale_generations,
    shard_store_path,
)
from repro.storage.pages import PAGE_VERSION, ColdPage, pack_f64, unpack_f64
from repro.storage.spill import ColdIndex, demotion_cutoffs
from repro.storage.sqlite_store import SqliteColdStore

__all__ = [
    "PAGE_VERSION",
    "ColdPage",
    "ColdStore",
    "StoreStats",
    "open_cold_store",
    "FileColdStore",
    "SqliteColdStore",
    "ColdIndex",
    "demotion_cutoffs",
    "StorageConfig",
    "open_shard_stores",
    "prune_stale_generations",
    "shard_store_path",
    "pack_f64",
    "unpack_f64",
]
