"""Append-only partitioned file backend for cold pages.

One directory per store; inside it, one segment file per ``(level, slot
bucket)`` partition, named ``L{level:02d}-{bucket:06d}.seg`` where
``bucket = t_b // partition_ticks``.  Appends are length-prefixed encoded
pages; nothing is ever rewritten in place, so a crash can only tear the
*tail* of one file, which the open-time scan truncates (the torn page was
never acknowledged and is re-derivable from the WAL).

Reads go through ``mmap``: the page's bytes are sliced straight out of the
mapping (then materialized, so the mapping closes immediately) and decoded
with ``frombuffer`` on the numpy path — no seek/read shuffle, no partial
parses.

Re-putting an existing key appends a new occurrence; the in-memory index
keeps the **latest** occurrence per key, and :meth:`FileColdStore.compact`
rewrites each partition keeping only live occurrences (temp file +
``os.replace``, crash-safe).
"""

from __future__ import annotations

import errno
import mmap
import os
import struct
from pathlib import Path

from repro import faults
from repro.errors import CorruptionError, StorageError
from repro.storage.base import ColdStore, StoreStats
from repro.storage.pages import PAGE_HEADER_BYTES, ColdPage, read_page_header

__all__ = ["FileColdStore"]

_LEN = struct.Struct("<I")

#: Default ticks per partition file: one bucket per 4096 base ticks keeps
#: file counts low for hot workloads without ever mapping giant files.
DEFAULT_PARTITION_TICKS = 4096

# (path, offset-of-page-bytes, page-length, n_rows) per live key.
_Entry = tuple[Path, int, int, int]


class FileColdStore(ColdStore):
    """See the module docstring; ``root`` is created if absent."""

    backend = "file"

    def __init__(
        self,
        root: str | Path,
        partition_ticks: int = DEFAULT_PARTITION_TICKS,
    ) -> None:
        if partition_ticks < 1:
            raise StorageError("partition_ticks must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.partition_ticks = partition_ticks
        self._index: dict[tuple[int, int, int], _Entry] = {}
        self._puts = 0
        self._gets = 0
        self._read_retries = 0
        self._write_repairs = 0
        self._quarantined: list[tuple[int, int, int]] = []
        for path in sorted(self.root.glob("L*.seg")):
            self._scan_file(path)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def _partition_path(self, level: int, t_b: int) -> Path:
        bucket = t_b // self.partition_ticks
        return self.root / f"L{level:02d}-{bucket:06d}.seg"

    def _scan_file(self, path: Path) -> None:
        """Index one segment file by headers; truncate a torn tail."""
        data = path.read_bytes()
        offset = 0
        good = 0
        while offset < len(data):
            if offset + _LEN.size > len(data):
                break  # torn length prefix
            (length,) = _LEN.unpack_from(data, offset)
            start = offset + _LEN.size
            if start + length > len(data) or length < PAGE_HEADER_BYTES:
                break  # torn page bytes
            try:
                level, t_b, t_e, n_rows, keys_len, _, _, _ = read_page_header(
                    memoryview(data)[start : start + PAGE_HEADER_BYTES]
                )
            except StorageError:
                break  # header of a torn/garbled append
            if length != PAGE_HEADER_BYTES + keys_len + 16 * n_rows:
                break  # length prefix disagrees with the header: torn
            self._index[(level, t_b, t_e)] = (path, start, length, n_rows)
            offset = start + length
            good = offset
        if good < len(data):
            # Anything after the last whole page was a torn append that was
            # never acknowledged; drop it so future appends start clean.
            with open(path, "r+b") as fh:
                fh.truncate(good)

    # ------------------------------------------------------------------
    # ColdStore interface
    # ------------------------------------------------------------------
    def put_segment(self, page: ColdPage) -> None:
        blob = page.encode()
        path = self._partition_path(page.level, page.t_b)
        offset = path.stat().st_size if path.exists() else 0
        try:
            self._append_blob(path, blob)
        except OSError as first:
            # A failed append may have left partial bytes behind.  The
            # page is re-derivable (spill re-puts are idempotent), so
            # roll the file back to the pre-append size and try once
            # more; a second failure means the device is refusing
            # writes and surfaces as a typed StorageError.
            if path.exists():
                with open(path, "r+b") as fh:
                    fh.truncate(offset)
            try:
                self._append_blob(path, blob)
            except OSError as exc:
                raise StorageError(
                    f"cold store append to {path} failed even after "
                    f"rollback (first: {first}; retry: {exc})"
                ) from exc
            self._write_repairs += 1
        self._index[(page.level, page.t_b, page.t_e)] = (
            path,
            offset + _LEN.size,
            len(blob),
            page.n_rows,
        )
        self._puts += 1

    def _append_blob(self, path: Path, blob: bytes) -> None:
        faults.check("store.write")
        # A write-side bit flip reaches the disk silently: the checksum
        # only catches it on the next read, where quarantine takes over.
        blob = faults.corrupt("store.write", blob)
        with open(path, "ab") as fh:
            fh.write(_LEN.pack(len(blob)))
            if faults.torn("store.write"):
                fh.write(blob[: max(1, len(blob) // 2)])
                fh.flush()
                raise OSError(
                    errno.EIO, "injected torn write at store.write"
                )
            fh.write(blob)
            fh.flush()

    def get_segment(self, level: int, t_b: int, t_e: int) -> ColdPage:
        key = (level, t_b, t_e)
        entry = self._index.get(key)
        if entry is None:
            raise StorageError(
                f"cold store {self.root} has no page for level {level} "
                f"[{t_b},{t_e}]"
            )
        path, offset, length, _ = entry
        try:
            page = self._read_page(path, offset, length)
        except (OSError, StorageError):
            # Transient read faults (EIO, a flipped bit on the way in)
            # don't survive a second pass over the same bytes; real
            # on-disk corruption does, and gets quarantined.
            try:
                page = self._read_page(path, offset, length)
            except (OSError, StorageError) as exc:
                raise self._quarantine(key, exc) from exc
            self._read_retries += 1
        self._gets += 1
        return page

    def _read_page(self, path: Path, offset: int, length: int) -> ColdPage:
        faults.check("store.read")
        with open(path, "rb") as fh:
            with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as mm:
                data = bytes(mm[offset : offset + length])
        return ColdPage.decode(faults.corrupt("store.read", data))

    def _quarantine(
        self, key: tuple[int, int, int], cause: Exception
    ) -> CorruptionError:
        del self._index[key]
        self._quarantined.append(key)
        level, t_b, t_e = key
        return CorruptionError(
            f"cold store {self.root} page for level {level} "
            f"[{t_b},{t_e}] is unreadable and has been quarantined "
            f"({cause}); rebuild it from snapshot + WAL replay"
        )

    def scan(self) -> list[tuple[int, int, int]]:
        return sorted(self._index)

    def stats(self) -> StoreStats:
        on_disk = sum(
            p.stat().st_size for p in self.root.glob("L*.seg")
        )
        return StoreStats(
            backend=self.backend,
            pages=len(self._index),
            rows=sum(entry[3] for entry in self._index.values()),
            bytes_on_disk=on_disk,
            puts=self._puts,
            gets=self._gets,
            read_retries=self._read_retries,
            write_repairs=self._write_repairs,
            quarantined=len(self._quarantined),
        )

    def compact(self) -> int:
        """Drop superseded occurrences by rewriting each partition file."""
        by_path: dict[Path, list[tuple[tuple[int, int, int], _Entry]]] = {}
        for key, entry in self._index.items():
            by_path.setdefault(entry[0], []).append((key, entry))
        reclaimed = 0
        for path in sorted(self.root.glob("L*.seg")):
            live = sorted(by_path.get(path, ()), key=lambda kv: kv[1][1])
            old = path.read_bytes()
            new_entries: list[tuple[tuple[int, int, int], int, int, int]] = []
            chunks: list[bytes] = []
            offset = 0
            for key, (_, start, length, n_rows) in live:
                chunks.append(_LEN.pack(length))
                chunks.append(old[start : start + length])
                new_entries.append((key, offset + _LEN.size, length, n_rows))
                offset += _LEN.size + length
            if offset == len(old):
                continue  # nothing superseded in this file
            reclaimed += len(old) - offset
            if not live:
                path.unlink()
                continue
            tmp = path.with_suffix(".seg.tmp")
            with open(tmp, "wb") as fh:
                fh.write(b"".join(chunks))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            for key, start, length, n_rows in new_entries:
                self._index[key] = (path, start, length, n_rows)
        return reclaimed
