"""Demotion bookkeeping: what is cold, and what may go cold next.

The engine never asks a backend "what do you have?" on the query path —
that would make window planning I/O-bound.  Instead a :class:`ColdIndex`
records, per tilt level, the contiguous *span* of ticks whose slots have
been demoted; membership is arithmetic.  Spans (not counts) survive the
awkward cases: storage enabled mid-life after maxlen eviction already
dropped early history, or a restore into a store holding more pages than
the snapshot's spans acknowledge (orphans from a crash between spill and
manifest — ignored until the WAL replay re-derives them).

:func:`demotion_cutoffs` is the other half of the contract: per level,
the tick below which slots may be demoted *now*, or ``None`` when the
level must not spill at all.  Two rules keep demotion invisible to the
frame's promotion machinery:

* A level spills only if the hot horizon fits in ``capacity - 1`` slots —
  then the deque never reaches ``maxlen`` between demotions, so maxlen
  eviction (which would lose data without writing a page) never fires at
  a spilling level.
* A non-coarsest level never demotes slots at or past the last completed
  next-coarser unit boundary — those slots have not been promoted yet and
  the promotion path reads them from the deque.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import StorageError

__all__ = ["ColdIndex", "demotion_cutoffs"]

Span = tuple[int, int]  # [lo, hi): demoted ticks, half-open


class ColdIndex:
    """Per-level contiguous demoted spans, shared by all of an engine's frames.

    ``units[li]`` is level ``li``'s ``unit_ticks``; a demoted slot at level
    ``li`` covers exactly one unit.  Slots are recorded oldest-first and
    contiguously (the demotion loop pops from the left of each deque), so
    one half-open tick span per level captures the whole cold set.
    """

    __slots__ = ("units", "_spans")

    def __init__(
        self,
        units: Sequence[int],
        spans: Sequence[Span | None] | None = None,
    ) -> None:
        self.units = tuple(int(u) for u in units)
        if any(u < 1 for u in self.units):
            raise StorageError(f"invalid level units {self.units}")
        if spans is None:
            self._spans: list[Span | None] = [None] * len(self.units)
        else:
            if len(spans) != len(self.units):
                raise StorageError(
                    f"cold index got {len(spans)} spans for "
                    f"{len(self.units)} levels"
                )
            self._spans = [
                None if s is None else (int(s[0]), int(s[1])) for s in spans
            ]
            for li, span in enumerate(self._spans):
                if span is not None and (
                    span[0] >= span[1]
                    or (span[1] - span[0]) % self.units[li] != 0
                ):
                    raise StorageError(
                        f"cold index level {li} span {span} is not a "
                        f"positive multiple of unit {self.units[li]}"
                    )

    # ------------------------------------------------------------------
    # Recording (the demotion loop)
    # ------------------------------------------------------------------
    def record(self, level: int, t_b: int, t_e: int) -> None:
        """Mark the slot ``[t_b, t_e]`` of ``level`` as demoted.

        Slots must arrive oldest-first with no gaps: each either starts a
        level's span or extends it on the right.
        """
        unit = self.units[level]
        if t_e - t_b + 1 != unit:
            raise StorageError(
                f"level {level} slot [{t_b},{t_e}] does not span one "
                f"unit ({unit} ticks)"
            )
        span = self._spans[level]
        if span is None:
            self._spans[level] = (t_b, t_e + 1)
            return
        if t_b != span[1]:
            raise StorageError(
                f"level {level} demotion gap: span ends at {span[1]}, "
                f"next slot starts at {t_b}"
            )
        self._spans[level] = (span[0], t_e + 1)

    # ------------------------------------------------------------------
    # Membership (the window planner)
    # ------------------------------------------------------------------
    def span(self, level: int) -> Span | None:
        """The demoted ``[lo, hi)`` tick span of a level, or ``None``."""
        return self._spans[level]

    def has_slot(self, level: int, t_b: int) -> bool:
        """True iff a demoted slot of ``level`` starts exactly at ``t_b``."""
        span = self._spans[level]
        if span is None:
            return False
        unit = self.units[level]
        lo, hi = span
        return lo <= t_b and t_b + unit <= hi and (t_b - lo) % unit == 0

    @property
    def total_slots(self) -> int:
        """Number of demoted slots across all levels."""
        return sum(
            (hi - lo) // unit
            for unit, span in zip(self.units, self._spans)
            if span is not None
            for lo, hi in (span,)
        )

    # ------------------------------------------------------------------
    # State (the snapshot codec)
    # ------------------------------------------------------------------
    def to_state(self) -> list[list[int] | None]:
        return [None if s is None else [s[0], s[1]] for s in self._spans]

    @classmethod
    def from_state(
        cls, units: Sequence[int], spans: Sequence[Span | None]
    ) -> "ColdIndex":
        return cls(units, spans=spans)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColdIndex):
            return NotImplemented
        return self.units == other.units and self._spans == other._spans

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColdIndex(units={self.units}, spans={self._spans})"


def demotion_cutoffs(
    units: Sequence[int],
    capacities: Sequence[int],
    origin: int,
    next_tick: int,
    hot_ticks: int,
) -> list[int | None]:
    """Per-level demotion cutoffs for the current clock.

    A slot of level ``li`` may be demoted iff ``slot.t_e < cutoff[li]``;
    ``None`` disables demotion for that level.  See the module docstring
    for the two invariants the arithmetic maintains.
    """
    if hot_ticks < 1:
        raise StorageError("hot horizon must be at least one tick")
    cutoffs: list[int | None] = []
    n = len(units)
    for li in range(n):
        unit = units[li]
        hot_slots = -(-hot_ticks // unit)  # ceil
        if hot_slots > capacities[li] - 1:
            cutoffs.append(None)
            continue
        cutoff = next_tick - hot_ticks
        if li + 1 < n:
            coarse = units[li + 1]
            aligned = origin + ((next_tick - origin) // coarse) * coarse
            cutoff = min(cutoff, aligned)
        cutoffs.append(cutoff)
    return cutoffs
