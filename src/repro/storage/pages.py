"""The packed columnar page codec shared by every cold-store backend.

One :class:`ColdPage` holds every cell's sealed ISB for one tilt-frame
``(level, [t_b, t_e])`` slot — a struct-of-arrays twin of
:class:`~repro.regression.kernels.ISBColumns` frozen to disk.  Because all
of an engine's frames advance in lockstep on one quarter grid, a demoted
slot has the *same* interval in every cell, so the interval is stored once
in the header and the body is just the cell keys plus two float64 columns.

Binary layout (little-endian)::

    header  "<4sHHqqIIIdd"                               52 bytes
            magic b"RCP1", version, level,
            t_b, t_e, n_rows, keys_len, crc32,
            zero_base, zero_slope
    body    keys: compact JSON array of key arrays      keys_len bytes
            base:  n_rows float64                        8 * n_rows
            slope: n_rows float64                        8 * n_rows

The crc32 signs the *whole page* — header (with the crc field itself
zeroed) plus body — so a flipped bit anywhere, interval and zero row
included, is caught at decode time; body-only coverage would let a
corrupted ``zero_base`` silently rewrite every absent cell's history.

The embedded zero row is the engine's zero prototype's exact ISB for the
interval: a key missing from the page decodes to that row, which is
bit-identical to the zero-backfill a late-born cell's cloned frame would
have held.  A corrupt page raises
:class:`~repro.errors.CorruptionError` instead of decoding garbage.

Floats travel as raw IEEE-754 doubles (``numpy`` ``tobytes`` /
``frombuffer`` when available, ``struct`` otherwise — the two produce the
same bytes), so pages round-trip bit for bit on either path.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Hashable, Sequence

from repro.errors import CorruptionError, StorageError
from repro.regression import kernels
from repro.regression.isb import ISB

if kernels.HAVE_NUMPY:
    import numpy as np

__all__ = [
    "PAGE_VERSION",
    "PAGE_HEADER_BYTES",
    "ColdPage",
    "read_page_header",
    "pack_f64",
    "unpack_f64",
]

Values = tuple[Hashable, ...]

#: Bump when the page layout changes; decoders reject unknown versions.
PAGE_VERSION = 1

_MAGIC = b"RCP1"
_HEADER = struct.Struct("<4sHHqqIIIdd")

#: Byte offset of the crc32 field within the header (zeroed for signing).
_CRC_OFFSET = struct.calcsize("<4sHHqqII")
_CRC_ZERO = b"\x00\x00\x00\x00"


def _page_crc(header: bytes, body: bytes) -> int:
    """crc32 over the whole page with the header's crc field zeroed."""
    unsigned = header[:_CRC_OFFSET] + _CRC_ZERO + header[_CRC_OFFSET + 4 :]
    return zlib.crc32(body, zlib.crc32(unsigned))

#: Size of the fixed page header in bytes.
PAGE_HEADER_BYTES = _HEADER.size


def pack_f64(values: Sequence[float]) -> bytes:
    """Raw little-endian IEEE-754 doubles (bit-exact, both codec paths)."""
    if kernels.HAVE_NUMPY:
        return np.asarray(values, dtype="<f8").tobytes()
    return struct.pack(f"<{len(values)}d", *values)


def unpack_f64(buf: bytes, count: int, offset: int = 0) -> tuple[float, ...]:
    """Inverse of :func:`pack_f64` (reads ``count`` doubles at ``offset``)."""
    if kernels.HAVE_NUMPY:
        return tuple(
            np.frombuffer(buf, dtype="<f8", count=count, offset=offset).tolist()
        )
    return struct.unpack_from(f"<{count}d", buf, offset)


def _encode_keys(keys: Sequence[Values]) -> bytes:
    return json.dumps(
        [list(key) for key in keys], separators=(",", ":")
    ).encode("utf-8")


class ColdPage:
    """One demoted tilt slot across all cells, ready to freeze or query.

    ``keys[i]``'s sealed ISB over ``[t_b, t_e]`` is
    ``ISB(t_b, t_e, base[i], slope[i])``; a key not in the page maps to the
    zero row (see the module docstring).  Instances are value objects — the
    engine caches decoded pages and shares them freely.
    """

    __slots__ = (
        "level",
        "t_b",
        "t_e",
        "keys",
        "base",
        "slope",
        "zero_base",
        "zero_slope",
        "_row_of",
    )

    def __init__(
        self,
        level: int,
        t_b: int,
        t_e: int,
        keys: Sequence[Values],
        base: Sequence[float],
        slope: Sequence[float],
        zero_base: float = 0.0,
        zero_slope: float = 0.0,
    ) -> None:
        if t_b > t_e:
            raise StorageError(f"cold page with empty interval [{t_b}, {t_e}]")
        if level < 0:
            raise StorageError(f"cold page with negative level {level}")
        self.keys: tuple[Values, ...] = tuple(tuple(k) for k in keys)
        if not (len(self.keys) == len(base) == len(slope)):
            raise StorageError(
                f"cold page row mismatch: {len(self.keys)} keys, "
                f"{len(base)} bases, {len(slope)} slopes"
            )
        self.level = level
        self.t_b = t_b
        self.t_e = t_e
        self.base = tuple(float(b) for b in base)
        self.slope = tuple(float(s) for s in slope)
        self.zero_base = float(zero_base)
        self.zero_slope = float(zero_slope)
        self._row_of: dict[Values, int] | None = None

    # ------------------------------------------------------------------
    # Introspection / row access
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.keys)

    @property
    def interval(self) -> tuple[int, int]:
        return (self.t_b, self.t_e)

    def zero_isb(self) -> ISB:
        """The zero prototype's exact ISB for this interval."""
        return ISB(self.t_b, self.t_e, self.zero_base, self.zero_slope)

    def isb(self, key: Values) -> ISB:
        """``key``'s row, or the zero row for keys absent at spill time.

        The fallback is not a convenience: a cell born after this slot was
        demoted cloned the zero prototype, so its (never-materialized) slot
        for this interval *is* the zero row — returning it here keeps cold
        reads bit-identical to the zero-backfill the frame would hold.
        """
        if self._row_of is None:
            self._row_of = {k: i for i, k in enumerate(self.keys)}
        i = self._row_of.get(tuple(key))
        if i is None:
            return self.zero_isb()
        return ISB(self.t_b, self.t_e, self.base[i], self.slope[i])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColdPage):
            return NotImplemented
        return (
            self.level == other.level
            and self.t_b == other.t_b
            and self.t_e == other.t_e
            and self.keys == other.keys
            and self.base == other.base
            and self.slope == other.slope
            and self.zero_base == other.zero_base
            and self.zero_slope == other.zero_slope
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColdPage(level={self.level}, [{self.t_b},{self.t_e}], "
            f"rows={self.n_rows})"
        )

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """The page as bytes: checksummed header + keys + two f64 columns."""
        keys_blob = _encode_keys(self.keys)
        body = keys_blob + pack_f64(self.base) + pack_f64(self.slope)
        header = _HEADER.pack(
            _MAGIC,
            PAGE_VERSION,
            self.level,
            self.t_b,
            self.t_e,
            self.n_rows,
            len(keys_blob),
            0,  # crc placeholder: the signature covers header + body
            self.zero_base,
            self.zero_slope,
        )
        crc = _page_crc(header, body)
        return (
            header[:_CRC_OFFSET]
            + struct.pack("<I", crc)
            + header[_CRC_OFFSET + 4 :]
            + body
        )

    @property
    def encoded_size(self) -> int:
        """Byte length :meth:`encode` will produce (header + body)."""
        return _HEADER.size + len(_encode_keys(self.keys)) + 16 * self.n_rows

    @classmethod
    def decode(cls, buf: bytes | memoryview) -> "ColdPage":
        """Inverse of :meth:`encode`; validates magic, version and checksum."""
        data = bytes(buf)
        header = read_page_header(data)
        level, t_b, t_e, n_rows, keys_len, crc, zero_base, zero_slope = header
        need = _HEADER.size + keys_len + 16 * n_rows
        if len(data) < need:
            raise StorageError(
                f"cold page truncated: {len(data)} bytes, need {need}"
            )
        body = data[_HEADER.size : need]
        if _page_crc(data[: _HEADER.size], body) != crc:
            raise CorruptionError(
                f"cold page checksum mismatch for level {level} "
                f"[{t_b},{t_e}] (corrupt page)"
            )
        try:
            raw_keys = json.loads(body[:keys_len].decode("utf-8"))
            keys = [tuple(k) for k in raw_keys]
        except (ValueError, TypeError) as exc:
            raise StorageError(f"cold page keys block is invalid: {exc}") from None
        if len(keys) != n_rows:
            raise StorageError(
                f"cold page declares {n_rows} rows but has {len(keys)} keys"
            )
        base = unpack_f64(data, n_rows, _HEADER.size + keys_len)
        slope = unpack_f64(data, n_rows, _HEADER.size + keys_len + 8 * n_rows)
        return cls(
            level, t_b, t_e, keys, base, slope, zero_base, zero_slope
        )


def read_page_header(
    buf: bytes | memoryview,
) -> tuple[int, int, int, int, int, int, float, float]:
    """Decode just the fixed header of an encoded page.

    Returns ``(level, t_b, t_e, n_rows, keys_len, crc32, zero_base,
    zero_slope)``.  The full page length is ``PAGE_HEADER_BYTES + keys_len
    + 16 * n_rows`` — enough for a backend to index a file by headers alone
    without decoding any body.
    """
    if len(buf) < _HEADER.size:
        raise StorageError(
            f"cold page header truncated: {len(buf)} of {_HEADER.size} bytes"
        )
    magic, version, level, t_b, t_e, n_rows, keys_len, crc, zb, zs = (
        _HEADER.unpack_from(bytes(buf[: _HEADER.size]))
    )
    if magic != _MAGIC:
        raise StorageError(f"not a cold page (magic {magic!r})")
    if version != PAGE_VERSION:
        raise StorageError(
            f"unsupported cold page version {version} "
            f"(this build reads version {PAGE_VERSION})"
        )
    return (level, t_b, t_e, n_rows, keys_len, crc, zb, zs)
