"""OLAP-style queries over a cubing result.

:class:`RegressionCubeView` wraps a :class:`~repro.cubing.result.CubeResult`
with the operations an analyst at the observation deck performs: point
queries (with on-the-fly roll-up from the m-layer when the target cell was
not materialized), slices, roll-ups and drill-downs.  The exception-guided
drilling workflow of Section 4.2/4.3 lives in :mod:`repro.query.drill`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cell import roll_up_values
from repro.cubing.result import CubeResult
from repro.errors import QueryError
from repro.regression.isb import ISB

__all__ = ["RegressionCubeView"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


class RegressionCubeView:
    """Query facade over one cubing result."""

    def __init__(self, result: CubeResult) -> None:
        self.result = result
        self.layers = result.layers
        self.schema = result.layers.schema
        self.lattice = result.layers.lattice

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def cell(self, coord: Iterable[int], values: Iterable[Hashable]) -> ISB:
        """The regression of one cell, computed on the fly if necessary.

        Materialized cells (o-layer, m-layer, retained exceptions, path
        cuboids) are returned directly; anything else is aggregated from the
        m-layer with Theorem 3.2 — the "on-the-fly computation" option of
        Section 4.3.
        """
        c = self.lattice.require(coord)
        vals = self.schema.validate_values(tuple(values), c)
        cuboid = self.result.cuboids.get(c)
        if cuboid is not None:
            isb = cuboid.get(vals)
            if isb is not None:
                return isb
        isb = self.result.m_layer.roll_up_cell(c, vals)
        if isb is None:
            raise QueryError(f"cell {vals} at {c} has no supporting data")
        return isb

    def cell_by_level_names(
        self, level_names: Iterable[str], values: Iterable[Hashable]
    ) -> ISB:
        """Point query addressed by level names, e.g.
        ``(("*", "city"), ("*", "city2"))``."""
        coord = self.schema.coord_of_level_names(tuple(level_names))
        return self.cell(coord, values)

    # ------------------------------------------------------------------
    # Slice / dice
    # ------------------------------------------------------------------
    def slice(
        self, coord: Iterable[int], fixed: Mapping[str, Hashable]
    ) -> dict[Values, ISB]:
        """Cells of a cuboid matching fixed dimension values.

        ``fixed`` maps dimension names to required values; unspecified
        dimensions are unrestricted.  Operates on the materialized cuboid if
        present, otherwise on an on-the-fly roll-up of the m-layer.
        """
        c = self.lattice.require(coord)
        fixed_idx = {
            self.schema.dim_index(name): value for name, value in fixed.items()
        }
        cuboid = self.result.cuboids.get(c)
        if cuboid is not None and (
            c in (self.layers.m_coord, self.layers.o_coord)
        ):
            source = cuboid.items()
        else:
            source = self.result.m_layer.roll_up(c).items()
        return {
            values: isb
            for values, isb in source
            if all(values[i] == v for i, v in fixed_idx.items())
        }

    # ------------------------------------------------------------------
    # Roll-up / drill-down
    # ------------------------------------------------------------------
    def roll_up(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> tuple[Coord, Values, ISB]:
        """One roll-up step of a cell along a named dimension.

        Returns the parent cuboid coordinate, the parent cell values, and
        its regression.
        """
        c = self.lattice.require(coord)
        d = self.schema.dim_index(dim)
        if c[d] - 1 < self.layers.o_coord[d]:
            raise QueryError(
                f"dimension {dim!r} is already at the o-layer level in {c}"
            )
        parent_coord = c[:d] + (c[d] - 1,) + c[d + 1 :]
        parent_values = roll_up_values(
            self.schema, tuple(values), c, parent_coord
        )
        return parent_coord, parent_values, self.cell(parent_coord, parent_values)

    def drill_down(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> dict[Values, ISB]:
        """One drill-down step: the children of a cell along ``dim``.

        Children are aggregated from the m-layer (exact, Theorem 3.2);
        returns a possibly-empty mapping of child cell values to ISBs.
        """
        c = self.lattice.require(coord)
        vals = self.schema.validate_values(tuple(values), c)
        d = self.schema.dim_index(dim)
        if c[d] + 1 > self.layers.m_coord[d]:
            raise QueryError(
                f"dimension {dim!r} is already at the m-layer level in {c}"
            )
        child_coord = c[:d] + (c[d] + 1,) + c[d + 1 :]
        child_cuboid = self.result.m_layer.roll_up(child_coord)
        out: dict[Values, ISB] = {}
        for child_values, isb in child_cuboid.items():
            if roll_up_values(self.schema, child_values, child_coord, c) == vals:
                out[child_values] = isb
        return out

    # ------------------------------------------------------------------
    # Observation-deck shortcuts
    # ------------------------------------------------------------------
    def observation_deck(self) -> dict[Values, ISB]:
        """All o-layer cells (what the analyst watches)."""
        return dict(self.result.o_layer.items())

    def watch_list(self) -> dict[Values, ISB]:
        """The o-layer cells currently flagged exceptional."""
        return self.result.o_layer_exceptions()

    def top_slopes(self, coord: Iterable[int], k: int = 5) -> list[tuple[Values, ISB]]:
        """The ``k`` steepest cells (by |slope|) of a cuboid."""
        c = self.lattice.require(coord)
        if c in (self.layers.m_coord, self.layers.o_coord):
            cells = self.result.cuboids[c].items()
        else:
            cells = self.result.m_layer.roll_up(c).items()
        ranked = sorted(cells, key=lambda kv: -abs(kv[1].slope))
        return ranked[:k]

    def siblings(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> dict[Values, ISB]:
        """The cell's siblings along ``dim`` (Section 2.1's relation).

        Siblings share every dimension value except ``dim``, where they have
        the *same parent* in the concept hierarchy.  Aggregated exactly from
        the m-layer; the queried cell itself is excluded.
        """
        c = self.lattice.require(coord)
        vals = self.schema.validate_values(tuple(values), c)
        d = self.schema.dim_index(dim)
        level = c[d]
        if level == 0:
            raise QueryError(
                f"dimension {dim!r} is '*' in cuboid {c}; a '*' value has "
                "no siblings"
            )
        hier = self.schema.dimensions[d].hierarchy
        parent = hier.parent(vals[d], level)
        cuboid = self.result.m_layer.roll_up(c)
        out: dict[Values, ISB] = {}
        for cell_values, isb in cuboid.items():
            if cell_values == vals:
                continue
            if any(
                i != d and v != w
                for i, (v, w) in enumerate(zip(cell_values, vals))
            ):
                continue
            if hier.parent(cell_values[d], level) == parent:
                out[cell_values] = isb
        return out

    def sibling_deviation(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> float:
        """How far the cell's slope sits from its siblings' mean slope.

        A complementary exception signal to the absolute-slope threshold: a
        cell may trend steeply because *everything* under its parent does
        (uninteresting) or alone among its siblings (interesting).  Returns
        ``slope(cell) - mean(slope(siblings))``; raises
        :class:`QueryError` when the cell has no siblings to compare with.
        """
        cell_isb = self.cell(coord, values)
        brothers = self.siblings(coord, values, dim)
        if not brothers:
            raise QueryError(
                f"cell {tuple(values)} has no siblings along {dim!r}"
            )
        mean_slope = sum(i.slope for i in brothers.values()) / len(brothers)
        return cell_isb.slope - mean_slope
