"""OLAP-style queries over a cubing result.

:class:`RegressionCubeView` wraps a :class:`~repro.cubing.result.CubeResult`
with the operations an analyst at the observation deck performs: point
queries (with on-the-fly roll-up from the m-layer when the target cell was
not materialized), slices, roll-ups and drill-downs.  Every method is a thin
delegate: it builds the corresponding :class:`~repro.query.spec.QuerySpec`
plan and hands it to the single engine in :mod:`repro.query.exec`, so the
Python facade, the cached router, and the HTTP service all share one
validation and execution path.  The exception-guided drilling workflow of
Section 4.2/4.3 lives in :mod:`repro.query.drill`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cubing.result import CubeResult
from repro.query.exec import execute
from repro.query.spec import Q
from repro.regression.isb import ISB

__all__ = ["RegressionCubeView"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


class RegressionCubeView:
    """Query facade over one cubing result."""

    def __init__(self, result: CubeResult) -> None:
        self.result = result
        self.layers = result.layers
        self.schema = result.layers.schema
        self.lattice = result.layers.lattice

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def cell(self, coord: Iterable[int], values: Iterable[Hashable]) -> ISB:
        """The regression of one cell, computed on the fly if necessary.

        Materialized cells (o-layer, m-layer, retained exceptions, path
        cuboids) are returned directly; anything else is aggregated from the
        m-layer with Theorem 3.2 — the "on-the-fly computation" option of
        Section 4.3.
        """
        return execute(self, Q.cell(tuple(coord), tuple(values))).value

    def cell_by_level_names(
        self, level_names: Iterable[str], values: Iterable[Hashable]
    ) -> ISB:
        """Point query addressed by level names, e.g.
        ``(("*", "city"), ("*", "city2"))``."""
        return execute(self, Q.cell(tuple(level_names), tuple(values))).value

    # ------------------------------------------------------------------
    # Slice / dice
    # ------------------------------------------------------------------
    def slice(
        self, coord: Iterable[int], fixed: Mapping[str, Hashable]
    ) -> dict[Values, ISB]:
        """Cells of a cuboid matching fixed dimension values.

        ``fixed`` maps dimension names to required values; unspecified
        dimensions are unrestricted.  Operates on the materialized cuboid
        when it is complete (m/o layer, popular-path cuboid, full
        materialization), otherwise on an on-the-fly roll-up of the m-layer.
        """
        return execute(self, Q.slice(tuple(coord), dict(fixed))).value

    # ------------------------------------------------------------------
    # Roll-up / drill-down
    # ------------------------------------------------------------------
    def roll_up(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> tuple[Coord, Values, ISB]:
        """One roll-up step of a cell along a named dimension.

        Returns the parent cuboid coordinate, the parent cell values, and
        its regression.
        """
        return execute(self, Q.roll_up(tuple(coord), tuple(values), dim)).value

    def drill_down(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> dict[Values, ISB]:
        """One drill-down step: the children of a cell along ``dim``.

        Children are aggregated exactly (Theorem 3.2); returns a
        possibly-empty mapping of child cell values to ISBs.
        """
        return execute(self, Q.drill_down(tuple(coord), tuple(values), dim)).value

    # ------------------------------------------------------------------
    # Observation-deck shortcuts
    # ------------------------------------------------------------------
    def observation_deck(self) -> dict[Values, ISB]:
        """All o-layer cells (what the analyst watches)."""
        return execute(self, Q.observation_deck()).value

    def watch_list(self) -> dict[Values, ISB]:
        """The o-layer cells currently flagged exceptional."""
        return execute(self, Q.watch_list()).value

    def top_slopes(self, coord: Iterable[int], k: int = 5) -> list[tuple[Values, ISB]]:
        """The ``k`` steepest cells (by |slope|) of a cuboid.

        ``k`` must be >= 1 (:class:`~repro.errors.QueryError` otherwise);
        an empty cuboid yields an empty list.
        """
        return execute(self, Q.top_slopes(tuple(coord), k)).value

    def siblings(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> dict[Values, ISB]:
        """The cell's siblings along ``dim`` (Section 2.1's relation).

        Siblings share every dimension value except ``dim``, where they have
        the *same parent* in the concept hierarchy.  Aggregated exactly; the
        queried cell itself is excluded.
        """
        return execute(self, Q.siblings(tuple(coord), tuple(values), dim)).value

    def sibling_deviation(
        self,
        coord: Iterable[int],
        values: Iterable[Hashable],
        dim: str,
    ) -> float:
        """How far the cell's slope sits from its siblings' mean slope.

        A complementary exception signal to the absolute-slope threshold: a
        cell may trend steeply because *everything* under its parent does
        (uninteresting) or alone among its siblings (interesting).  Returns
        ``slope(cell) - mean(slope(siblings))``; raises
        :class:`QueryError` when the cell has no siblings to compare with.
        """
        return execute(
            self, Q.sibling_deviation(tuple(coord), tuple(values), dim)
        ).value
