"""Exception-guided drilling (paper Sections 4.2-4.3).

The analyst's workflow: watch the o-layer; when a cell is flagged
exceptional, drill down to its exceptional descendants — the "exception
supporters" — to localize the cause.  :class:`ExceptionDriller` builds that
drill tree from a cubing result, preferring retained exception cells (no
recomputation) and falling back to on-the-fly aggregation when asked to
drill past what was materialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.cube.cell import roll_up_values
from repro.cubing.result import CubeResult
from repro.query.api import RegressionCubeView
from repro.regression.isb import ISB

__all__ = ["DrillNode", "ExceptionDriller"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


@dataclass
class DrillNode:
    """One cell of the exception drill tree."""

    coord: Coord
    values: Values
    isb: ISB
    children: list["DrillNode"] = field(default_factory=list)

    def walk(self) -> Iterable["DrillNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def render(self, schema_names: tuple[str, ...], indent: int = 0) -> str:
        """Human-readable drill tree (used by the examples)."""
        label = ", ".join(
            f"{name}={value}" for name, value in zip(schema_names, self.values)
        )
        line = (
            f"{'  ' * indent}({label})  slope={self.isb.slope:+.4f}  "
            f"base={self.isb.base:.3f}"
        )
        return "\n".join(
            [line]
            + [c.render(schema_names, indent + 1) for c in self.children]
        )


class ExceptionDriller:
    """Builds exception drill trees over a cubing result."""

    def __init__(self, result: CubeResult) -> None:
        self.result = result
        self.view = RegressionCubeView(result)
        self.layers = result.layers
        self.schema = result.layers.schema
        self.lattice = result.layers.lattice

    def drill_tree(self, max_depth: int | None = None) -> list[DrillNode]:
        """Drill every o-layer exception down through exceptional descendants.

        A child is attached when it is exceptional under the result's policy;
        retained exception cells are used where available, and children are
        aggregated on the fly otherwise.  ``max_depth`` bounds the number of
        drill steps from the o-layer (``None`` = down to the m-layer).
        """
        roots = []
        o = self.layers.o_coord
        for values, isb in self.result.o_layer_exceptions().items():
            node = DrillNode(o, values, isb)
            self._expand(node, depth=0, max_depth=max_depth)
            roots.append(node)
        return roots

    def _expand(self, node: DrillNode, depth: int, max_depth: int | None) -> None:
        if max_depth is not None and depth >= max_depth:
            return
        for child_coord in self.lattice.children(node.coord):
            for child_values, child_isb in self._children_of(
                node, child_coord
            ).items():
                if not self.result.policy.is_exception(child_isb, child_coord):
                    continue
                child = DrillNode(child_coord, child_values, child_isb)
                self._expand(child, depth + 1, max_depth)
                node.children.append(child)

    def _children_of(
        self, node: DrillNode, child_coord: Coord
    ) -> dict[Values, ISB]:
        """Children of ``node`` in ``child_coord``, cheapest source first."""
        retained = self.result.retained_exceptions.get(child_coord)
        if retained:
            out = {
                values: isb
                for values, isb in retained.items()
                if roll_up_values(
                    self.schema, values, child_coord, node.coord
                )
                == node.values
            }
            if out:
                return out
        # Fall back to exact on-the-fly aggregation from the m-layer.
        drilled_dim = next(
            self.schema.dimensions[i].name
            for i, (a, b) in enumerate(zip(node.coord, child_coord))
            if a != b
        )
        return self.view.drill_down(node.coord, node.values, drilled_dim)

    def supporters(
        self, values: Iterable[Hashable], max_depth: int | None = None
    ) -> DrillNode:
        """Drill one specific o-layer cell (exceptional or not)."""
        o = self.layers.o_coord
        vals = self.schema.validate_values(tuple(values), o)
        isb = self.view.cell(o, vals)
        node = DrillNode(o, vals, isb)
        self._expand(node, depth=0, max_depth=max_depth)
        return node
