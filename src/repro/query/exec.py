"""The single query execution engine: ``execute(view, spec) -> QueryResult``.

Every surface — :class:`~repro.query.api.RegressionCubeView`'s methods, the
cached :class:`~repro.service.router.QueryRouter`, and the HTTP service —
funnels through :func:`execute`: the spec is resolved against the view's
schema, dispatched to the one implementation of its operation, and the
answer is wrapped in a typed :class:`QueryResult` envelope that knows its
wire encoding.  :func:`execute_batch` runs many specs against one view and
reports per-spec results *and* errors, so one bad plan never sinks a batch.

Operation implementations live here (moved out of the view facade).  Cuboid
scans go through :func:`_cuboid_cells`, which serves from a *complete*
materialized cuboid when the cubing result has one (m/o layers, popular-path
cuboids, full materialization) and falls back to an exact Theorem 3.2
roll-up of the m-layer otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable, Mapping

from repro.cube.cell import roll_up_values
from repro.errors import QueryError, ReproError
from repro.io import cells_to_payload, isb_to_dict
from repro.query.spec import BatchQuery, QuerySpec, spec_from_dict
from repro.regression.isb import ISB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.api import RegressionCubeView

__all__ = ["QueryResult", "BatchItem", "execute", "execute_batch"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


# ----------------------------------------------------------------------
# Result envelopes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryResult:
    """A typed result envelope: the resolved spec plus its answer.

    ``value`` is the operation's native Python answer (an :class:`ISB`, a
    cell mapping, a ranked list, a roll-up triple, or a float);
    :meth:`to_dict` is the canonical wire encoding the HTTP layer returns.
    """

    spec: QuerySpec
    value: Any

    @property
    def op(self) -> str:
        return self.spec.op

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, **_RESULT_ENCODERS[self.op](self.value)}


@dataclass(frozen=True)
class BatchItem:
    """One entry of a batch response: a result, or a per-spec error."""

    spec: QuerySpec | None
    result: QueryResult | None = None
    error: str | None = None
    error_type: str | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_dict(self) -> dict[str, Any]:
        if self.result is not None:
            return {"ok": True, **self.result.to_dict()}
        return {"ok": False, "error": self.error, "type": self.error_type}


# ----------------------------------------------------------------------
# Operation implementations
# ----------------------------------------------------------------------
def _cuboid_cells(view: "RegressionCubeView", coord: Coord) -> Iterable[tuple[Values, ISB]]:
    """The cells of one cuboid, from the cheapest exact source.

    A *complete* materialized cuboid (m/o layer, popular-path cuboid, full
    materialization) is served directly; partial cuboids (retained exception
    cells only) and absent ones are re-aggregated from the m-layer, which is
    exact by Theorem 3.2.
    """
    cuboid = view.result.complete_cuboid(coord)
    if cuboid is not None:
        return cuboid.items()
    return view.result.m_layer.roll_up(coord).items()


def _cell(view: "RegressionCubeView", spec: QuerySpec) -> ISB:
    c = view.lattice.require(spec.coord)
    vals = tuple(spec.values)
    cuboid = view.result.cuboids.get(c)
    if cuboid is not None:
        isb = cuboid.get(vals)
        if isb is not None:
            return isb
    isb = view.result.m_layer.roll_up_cell(c, vals)
    if isb is None:
        raise QueryError(f"cell {vals} at {c} has no supporting data")
    return isb


def _slice(view: "RegressionCubeView", spec: QuerySpec) -> dict[Values, ISB]:
    c = view.lattice.require(spec.coord)
    fixed_idx = {
        view.schema.dim_index(name): value for name, value in (spec.fixed or ())
    }
    return {
        values: isb
        for values, isb in _cuboid_cells(view, c)
        if all(values[i] == v for i, v in fixed_idx.items())
    }


def _roll_up(view: "RegressionCubeView", spec: QuerySpec) -> tuple[Coord, Values, ISB]:
    c = view.lattice.require(spec.coord)
    d = view.schema.dim_index(spec.dim)
    if c[d] - 1 < view.layers.o_coord[d]:
        raise QueryError(
            f"dimension {spec.dim!r} is already at the o-layer level in {c}"
        )
    parent_coord = c[:d] + (c[d] - 1,) + c[d + 1 :]
    parent_values = roll_up_values(
        view.schema, tuple(spec.values), c, parent_coord
    )
    parent = _cell(view, spec._with(coord=parent_coord, values=parent_values))
    return parent_coord, parent_values, parent


def _drill_down(view: "RegressionCubeView", spec: QuerySpec) -> dict[Values, ISB]:
    c = view.lattice.require(spec.coord)
    vals = tuple(spec.values)
    d = view.schema.dim_index(spec.dim)
    if c[d] + 1 > view.layers.m_coord[d]:
        raise QueryError(
            f"dimension {spec.dim!r} is already at the m-layer level in {c}"
        )
    child_coord = c[:d] + (c[d] + 1,) + c[d + 1 :]
    out: dict[Values, ISB] = {}
    for child_values, isb in _cuboid_cells(view, child_coord):
        if roll_up_values(view.schema, child_values, child_coord, c) == vals:
            out[child_values] = isb
    return out


def _siblings(view: "RegressionCubeView", spec: QuerySpec) -> dict[Values, ISB]:
    c = view.lattice.require(spec.coord)
    vals = tuple(spec.values)
    d = view.schema.dim_index(spec.dim)
    level = c[d]
    if level == 0:
        raise QueryError(
            f"dimension {spec.dim!r} is '*' in cuboid {c}; a '*' value has "
            "no siblings"
        )
    hier = view.schema.dimensions[d].hierarchy
    parent = hier.parent(vals[d], level)
    out: dict[Values, ISB] = {}
    for cell_values, isb in _cuboid_cells(view, c):
        if cell_values == vals:
            continue
        if any(
            i != d and v != w
            for i, (v, w) in enumerate(zip(cell_values, vals))
        ):
            continue
        if hier.parent(cell_values[d], level) == parent:
            out[cell_values] = isb
    return out


def _sibling_deviation(view: "RegressionCubeView", spec: QuerySpec) -> float:
    cell_isb = _cell(view, spec)
    brothers = _siblings(view, spec)
    if not brothers:
        raise QueryError(
            f"cell {tuple(spec.values)} has no siblings along {spec.dim!r}"
        )
    mean_slope = sum(i.slope for i in brothers.values()) / len(brothers)
    return cell_isb.slope - mean_slope


def _top_slopes(
    view: "RegressionCubeView", spec: QuerySpec
) -> list[tuple[Values, ISB]]:
    c = view.lattice.require(spec.coord)
    ranked = sorted(_cuboid_cells(view, c), key=lambda kv: -abs(kv[1].slope))
    return ranked[: spec.k]


def _observation_deck(view: "RegressionCubeView", spec: QuerySpec) -> dict[Values, ISB]:
    return dict(view.result.o_layer.items())


def _watch_list(view: "RegressionCubeView", spec: QuerySpec) -> dict[Values, ISB]:
    return view.result.o_layer_exceptions()


_IMPLS: dict[str, Callable[["RegressionCubeView", QuerySpec], Any]] = {
    "cell": _cell,
    "slice": _slice,
    "roll_up": _roll_up,
    "drill_down": _drill_down,
    "siblings": _siblings,
    "sibling_deviation": _sibling_deviation,
    "top_slopes": _top_slopes,
    "observation_deck": _observation_deck,
    "watch_list": _watch_list,
}


# ----------------------------------------------------------------------
# Result encoders (wire form per operation)
# ----------------------------------------------------------------------
def _encode_isb(value: ISB) -> dict[str, Any]:
    return {"isb": isb_to_dict(value)}


def _encode_cells(value: Mapping[Values, ISB]) -> dict[str, Any]:
    return {"cells": cells_to_payload(value)}


def _encode_roll_up(value: tuple[Coord, Values, ISB]) -> dict[str, Any]:
    coord, values, isb = value
    return {"coord": list(coord), "values": list(values), "isb": isb_to_dict(isb)}


def _encode_ranked(value: list[tuple[Values, ISB]]) -> dict[str, Any]:
    return {
        "cells": [
            {"values": list(values), "isb": isb_to_dict(isb)}
            for values, isb in value
        ]
    }


def _encode_deviation(value: float) -> dict[str, Any]:
    return {"deviation": value}


_RESULT_ENCODERS: dict[str, Callable[[Any], dict[str, Any]]] = {
    "cell": _encode_isb,
    "slice": _encode_cells,
    "roll_up": _encode_roll_up,
    "drill_down": _encode_cells,
    "siblings": _encode_cells,
    "sibling_deviation": _encode_deviation,
    "top_slopes": _encode_ranked,
    "observation_deck": _encode_cells,
    "watch_list": _encode_cells,
}


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def execute(
    view: "RegressionCubeView",
    spec: QuerySpec | Mapping[str, Any],
    *,
    pre_resolved: bool = False,
) -> QueryResult:
    """Run one spec against a view; the sole dispatch point of the library.

    Accepts a :class:`~repro.query.spec.QuerySpec` or its wire ``dict``
    form.  The spec is resolved (names to indices, schema validation) before
    dispatch, so every surface gets identical validation and identical
    errors.  Callers that already resolved the spec against this view's
    schema (the router does, to build its cache key) pass
    ``pre_resolved=True`` to skip the second resolution.
    """
    if isinstance(spec, BatchQuery):
        raise QueryError("a BatchQuery must go through execute_batch")
    if isinstance(spec, Mapping):
        spec = spec_from_dict(spec)
    resolved = spec if pre_resolved else spec.resolve(view.schema)
    impl = _IMPLS.get(resolved.op)
    if impl is None:  # pragma: no cover - registry and impls move together
        raise QueryError(f"no executor registered for op {resolved.op!r}")
    return QueryResult(resolved, impl(view, resolved))


def run_batch(
    entries: Iterable[QuerySpec | Mapping[str, Any]],
    executor: Callable[[QuerySpec], QueryResult],
) -> list[BatchItem]:
    """Decode and run batch entries, collecting per-entry outcomes.

    The shared loop behind :func:`execute_batch` and the router's cached
    batch path: each entry (a spec or its wire form) yields one
    :class:`BatchItem` in order; a domain error in one entry is recorded on
    that item and the rest of the batch still runs.
    """
    items: list[BatchItem] = []
    for entry in entries:
        spec = entry if isinstance(entry, QuerySpec) else None
        try:
            if spec is None:
                spec = spec_from_dict(entry)
            items.append(BatchItem(spec=spec, result=executor(spec)))
        except ReproError as exc:
            items.append(
                BatchItem(
                    spec=spec, error=str(exc), error_type=type(exc).__name__
                )
            )
    return items


def execute_batch(
    view: "RegressionCubeView",
    batch: BatchQuery | Iterable[QuerySpec | Mapping[str, Any]],
) -> list[BatchItem]:
    """Run many specs against one view, collecting per-spec outcomes."""
    entries = batch.specs if isinstance(batch, BatchQuery) else tuple(batch)
    return run_batch(entries, lambda spec: execute(view, spec))
