"""Declarative query plans: the frozen ``QuerySpec`` family and ``Q`` builder.

Every operation of :class:`~repro.query.api.RegressionCubeView` has exactly
one plan object here — a frozen dataclass that normalizes its fields at
construction, resolves dimension/level *names* to coordinates against a
:class:`~repro.cube.schema.CubeSchema`, carries a canonical
:meth:`~QuerySpec.cache_key`, and round-trips through the JSON wire format
(``decode(encode(spec)) == spec``).  Specs are *plans*, not answers: the
single engine in :mod:`repro.query.exec` turns a spec into a
:class:`~repro.query.exec.QueryResult`, and every surface (the Python view,
the cached router, the HTTP service) speaks specs instead of per-operation
argument lists.

Build specs with the fluent :data:`Q` builder::

    Q.cell((1, 1), (0, 0)).window(8)
    Q.slice((1, 2)).where(d0=3)
    Q.top_slopes((2, 2), k=10)
    Q.batch(Q.watch_list(), Q.top_slopes((1, 1)))

``Q.bind(schema)`` returns a schema-bound builder that validates eagerly and
resolves level names, so ``q.cell(coord=("city", "day"), ...)`` fails at
construction rather than at execution.

Adding an operation is a one-file change: subclass :class:`QuerySpec` here
(the registry picks up the ``op`` name) and register its implementation in
:mod:`repro.query.exec`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, ClassVar, Hashable, Iterator, Mapping

from repro.cube.schema import CubeSchema
from repro.errors import QueryError

__all__ = [
    "QuerySpec",
    "CellSpec",
    "SliceSpec",
    "RollUpSpec",
    "DrillDownSpec",
    "SiblingsSpec",
    "SiblingDeviationSpec",
    "TopSlopesSpec",
    "ObservationDeckSpec",
    "WatchListSpec",
    "BatchQuery",
    "QueryBuilder",
    "Q",
    "spec_from_dict",
]

Values = tuple[Hashable, ...]
Coord = tuple[int | str, ...]

#: op-name registry filled by ``QuerySpec.__init_subclass__``.
_REGISTRY: dict[str, type["QuerySpec"]] = {}

#: Legacy wire op names accepted on decode (the pre-spec HTTP dialect).
_ALIASES = {"point": "cell"}

#: Dataclass field -> wire key (identity unless listed).
_WIRE_KEYS = {"window_quarters": "window"}


# ----------------------------------------------------------------------
# Field normalizers (run at construction, so equal plans compare equal)
# ----------------------------------------------------------------------
def _as_int(value: Any, what: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise QueryError(f"{what} must be an integer, got {value!r}") from None


def _norm_window(value: Any, op: str) -> int | None:
    if value is None:
        return None
    window = _as_int(value, f"{op} window")
    if window < 1:
        raise QueryError(f"{op} window must be >= 1 quarter, got {window}")
    return window


def _norm_coord(value: Any, op: str) -> Coord | None:
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        raise QueryError(f"{op} coord must be a sequence, got {value!r}")
    try:
        entries = tuple(value)
    except TypeError:
        raise QueryError(f"{op} coord must be a sequence, got {value!r}") from None
    out: list[int | str] = []
    for entry in entries:
        # Strings are level *names*, resolved against a schema later.
        out.append(entry if isinstance(entry, str) else _as_int(entry, f"{op} coord entry"))
    return tuple(out)


def _norm_values(value: Any, op: str) -> Values | None:
    if value is None:
        return None
    if isinstance(value, (str, bytes)):
        raise QueryError(f"{op} values must be a sequence, got {value!r}")
    try:
        return tuple(value)
    except TypeError:
        raise QueryError(f"{op} values must be a sequence, got {value!r}") from None


def _norm_dim(value: Any, op: str) -> str | None:
    if value is None:
        return None
    if not isinstance(value, str):
        raise QueryError(f"{op} dim must be a dimension name, got {value!r}")
    return value


def _norm_fixed(value: Any, op: str) -> tuple[tuple[str, Hashable], ...] | None:
    if value is None:
        return None
    if isinstance(value, Mapping):
        items = value.items()
    else:
        try:
            items = [(name, v) for name, v in value]
        except (TypeError, ValueError):
            raise QueryError(
                f"{op} fixed must map dimension names to values, got {value!r}"
            ) from None
    out: dict[str, Hashable] = {}
    for name, v in items:
        if not isinstance(name, str):
            raise QueryError(f"{op} fixed keys must be dimension names, got {name!r}")
        out[name] = v
    return tuple(sorted(out.items()))


def _norm_k(value: Any, op: str) -> int | None:
    if value is None:
        return None
    k = _as_int(value, f"{op} k")
    if k < 1:
        raise QueryError(f"{op} needs k >= 1, got {k}")
    return k


_NORMALIZERS = {
    "window_quarters": _norm_window,
    "coord": _norm_coord,
    "values": _norm_values,
    "dim": _norm_dim,
    "fixed": _norm_fixed,
    "k": _norm_k,
}


def _resolve_coord(coord: Coord, schema: CubeSchema) -> tuple[int, ...]:
    """Turn per-dimension level *names* in ``coord`` into level indices."""
    if len(coord) != schema.n_dims:
        raise QueryError(
            f"coord {coord} has {len(coord)} entries for {schema.n_dims} dimensions"
        )
    return tuple(
        dim.hierarchy.level_index(entry) if isinstance(entry, str) else entry
        for dim, entry in zip(schema.dimensions, coord)
    )


# ----------------------------------------------------------------------
# The spec family
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuerySpec:
    """Base of all query plan objects.

    Subclasses add their operation's fields (all defaulted, so the fluent
    builder can fill them step by step) and list the ones execution requires
    in ``_REQUIRED``.  All fields are normalized to canonical immutable forms
    at construction, which makes ``==`` and :meth:`cache_key` reliable.
    """

    op: ClassVar[str] = ""
    _REQUIRED: ClassVar[tuple[str, ...]] = ()

    window_quarters: int | None = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.op:
            _REGISTRY[cls.op] = cls

    def __post_init__(self) -> None:
        for f in fields(self):
            norm = _NORMALIZERS.get(f.name)
            if norm is not None:
                object.__setattr__(self, f.name, norm(getattr(self, f.name), self.op))

    # ------------------------------------------------------------------
    # Fluent construction (each step returns a new frozen spec)
    # ------------------------------------------------------------------
    def _with(self, **kwargs: Any) -> "QuerySpec":
        allowed = {f.name for f in fields(self)}
        for name in kwargs:
            if name not in allowed:
                raise QueryError(f"a {self.op!r} query has no {name!r} field")
        return replace(self, **kwargs)

    def window(self, quarters: int) -> "QuerySpec":
        """The analysis window, in quarters."""
        return self._with(window_quarters=quarters)

    def at(self, coord: Any) -> "QuerySpec":
        """The cuboid coordinate (level indices, or level names to resolve)."""
        return self._with(coord=coord)

    def of(self, *values: Hashable) -> "QuerySpec":
        """The cell value tuple (``spec.of(3, 7)`` or ``spec.of((3, 7))``)."""
        if len(values) == 1 and isinstance(values[0], (tuple, list)):
            values = tuple(values[0])
        return self._with(values=values)

    def along(self, dim: str) -> "QuerySpec":
        """The dimension a roll-up / drill-down / siblings step moves on."""
        return self._with(dim=dim)

    def where(self, fixed: Mapping[str, Hashable] | None = None, **kw: Hashable) -> "QuerySpec":
        """Fix dimension values for a slice (mapping and/or keywords).

        Chained calls accumulate: ``.where(d0=3).where(d1=4)`` fixes both.
        """
        merged: dict[str, Hashable] = dict(getattr(self, "fixed", None) or ())
        merged.update(fixed or {})
        merged.update(kw)
        return self._with(fixed=merged)

    def top(self, k: int) -> "QuerySpec":
        """How many ranked cells to return."""
        return self._with(k=k)

    # ------------------------------------------------------------------
    # Schema-aware validation
    # ------------------------------------------------------------------
    def resolve(self, schema: CubeSchema, *, require: bool = True) -> "QuerySpec":
        """Validate this spec against a schema, resolving names to indices.

        Level names in ``coord`` become level indices; the coordinate, cell
        values, and dimension names are checked against the schema.  With
        ``require=True`` (the execution path) missing mandatory fields raise
        :class:`QueryError`; ``require=False`` validates whatever is present
        (the bound builder's eager check on partially built specs).
        """
        spec = self
        if require:
            for name in type(self)._REQUIRED:
                if getattr(spec, name, None) is None:
                    raise QueryError(f"a {self.op!r} query needs {name!r}")
        coord = getattr(spec, "coord", None)
        if coord is not None:
            resolved = _resolve_coord(coord, schema)
            schema.validate_coord(resolved)
            if resolved != coord:
                spec = spec._with(coord=resolved)
        dim = getattr(spec, "dim", None)
        if dim is not None:
            schema.dim_index(dim)
        fixed = getattr(spec, "fixed", None)
        if fixed:
            for name, _ in fixed:
                schema.dim_index(name)
        values = getattr(spec, "values", None)
        if values is not None and getattr(spec, "coord", None) is not None:
            schema.validate_values(values, spec.coord)  # type: ignore[arg-type]
        return spec

    # ------------------------------------------------------------------
    # Identity and codecs
    # ------------------------------------------------------------------
    def cache_key(self) -> tuple:
        """A canonical hashable identity: equal plans produce equal keys."""
        return (self.op,) + tuple(
            (f.name, getattr(self, f.name)) for f in fields(self)
        )

    def to_dict(self) -> dict[str, Any]:
        """The JSON-ready wire form (inverse of :func:`spec_from_dict`)."""
        out: dict[str, Any] = {"op": self.op}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if f.name in ("coord", "values"):
                value = list(value)
            elif f.name == "fixed":
                value = {name: v for name, v in value}
            out[_WIRE_KEYS.get(f.name, f.name)] = value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuerySpec":
        """Decode one spec of this class from its wire form."""
        wire_to_field = {
            _WIRE_KEYS.get(f.name, f.name): f.name for f in fields(cls)
        }
        kwargs: dict[str, Any] = {}
        for key, value in payload.items():
            if key == "op" or value is None:
                continue
            field_name = wire_to_field.get(key)
            if field_name is None:
                raise QueryError(
                    f"a {cls.op!r} query does not accept {key!r}; "
                    f"allowed fields: {sorted(wire_to_field)}"
                )
            kwargs[field_name] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class CellSpec(QuerySpec):
    """Point query: one cell's regression (wire alias: ``point``)."""

    op: ClassVar[str] = "cell"
    _REQUIRED: ClassVar[tuple[str, ...]] = ("coord", "values")

    coord: Coord | None = None
    values: Values | None = None


@dataclass(frozen=True)
class SliceSpec(QuerySpec):
    """Cells of one cuboid matching fixed dimension values."""

    op: ClassVar[str] = "slice"
    _REQUIRED: ClassVar[tuple[str, ...]] = ("coord",)

    coord: Coord | None = None
    fixed: tuple[tuple[str, Hashable], ...] | None = None


@dataclass(frozen=True)
class RollUpSpec(QuerySpec):
    """One roll-up step of a cell along a named dimension."""

    op: ClassVar[str] = "roll_up"
    _REQUIRED: ClassVar[tuple[str, ...]] = ("coord", "values", "dim")

    coord: Coord | None = None
    values: Values | None = None
    dim: str | None = None


@dataclass(frozen=True)
class DrillDownSpec(QuerySpec):
    """One drill-down step: the children of a cell along a dimension."""

    op: ClassVar[str] = "drill_down"
    _REQUIRED: ClassVar[tuple[str, ...]] = ("coord", "values", "dim")

    coord: Coord | None = None
    values: Values | None = None
    dim: str | None = None


@dataclass(frozen=True)
class SiblingsSpec(QuerySpec):
    """The cell's siblings along a dimension (same parent, Section 2.1)."""

    op: ClassVar[str] = "siblings"
    _REQUIRED: ClassVar[tuple[str, ...]] = ("coord", "values", "dim")

    coord: Coord | None = None
    values: Values | None = None
    dim: str | None = None


@dataclass(frozen=True)
class SiblingDeviationSpec(QuerySpec):
    """``slope(cell) - mean(slope(siblings))`` along a dimension."""

    op: ClassVar[str] = "sibling_deviation"
    _REQUIRED: ClassVar[tuple[str, ...]] = ("coord", "values", "dim")

    coord: Coord | None = None
    values: Values | None = None
    dim: str | None = None


@dataclass(frozen=True)
class TopSlopesSpec(QuerySpec):
    """The ``k`` steepest cells (by ``|slope|``) of a cuboid."""

    op: ClassVar[str] = "top_slopes"
    _REQUIRED: ClassVar[tuple[str, ...]] = ("coord", "k")

    coord: Coord | None = None
    k: int | None = 5


@dataclass(frozen=True)
class ObservationDeckSpec(QuerySpec):
    """All o-layer cells (what the analyst watches)."""

    op: ClassVar[str] = "observation_deck"


@dataclass(frozen=True)
class WatchListSpec(QuerySpec):
    """The o-layer cells currently flagged exceptional."""

    op: ClassVar[str] = "watch_list"


def spec_from_dict(payload: Mapping[str, Any]) -> QuerySpec:
    """Decode any spec from its wire form, dispatching on ``op``."""
    if not isinstance(payload, Mapping):
        raise QueryError(f"a query must be a JSON object, got {type(payload).__name__}")
    op = payload.get("op")
    cls = _REGISTRY.get(_ALIASES.get(op, op))
    if cls is None:
        raise QueryError(
            f"unknown query op {op!r}; known ops: {sorted(_REGISTRY)}"
        )
    return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Batches
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchQuery:
    """An ordered bundle of specs executed against one merged view refresh."""

    specs: tuple[QuerySpec, ...] = ()

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        for spec in specs:
            if not isinstance(spec, QuerySpec):
                raise QueryError(
                    f"a batch holds QuerySpec objects, got {type(spec).__name__}"
                )
        object.__setattr__(self, "specs", specs)

    def add(self, *specs: QuerySpec) -> "BatchQuery":
        return BatchQuery(self.specs + tuple(specs))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[QuerySpec]:
        return iter(self.specs)

    def cache_key(self) -> tuple:
        return ("batch",) + tuple(spec.cache_key() for spec in self.specs)

    def to_dict(self) -> dict[str, Any]:
        return {"queries": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BatchQuery":
        entries = payload.get("queries")
        if not isinstance(entries, list):
            raise QueryError("a batch payload needs a 'queries' list")
        return cls(tuple(spec_from_dict(entry) for entry in entries))


# ----------------------------------------------------------------------
# The builder
# ----------------------------------------------------------------------
class QueryBuilder:
    """Entry points for every operation; ``Q`` is the unbound instance.

    An unbound builder produces raw specs (validated only structurally).
    ``Q.bind(schema)`` returns a builder whose specs are resolved against the
    schema at construction: level names become coordinates and bad
    dimensions, coordinates, or values fail immediately.
    """

    def __init__(self, schema: CubeSchema | None = None) -> None:
        self.schema = schema

    def bind(self, schema: CubeSchema) -> "QueryBuilder":
        """A builder that eagerly validates/resolves against ``schema``."""
        return QueryBuilder(schema)

    def _out(self, spec: QuerySpec) -> QuerySpec:
        if self.schema is not None:
            return spec.resolve(self.schema, require=False)
        return spec

    def cell(self, coord: Any = None, values: Any = None, window: int | None = None) -> CellSpec:
        return self._out(CellSpec(coord=coord, values=values, window_quarters=window))  # type: ignore[return-value]

    def slice(
        self,
        coord: Any = None,
        fixed: Mapping[str, Hashable] | None = None,
        window: int | None = None,
    ) -> SliceSpec:
        return self._out(SliceSpec(coord=coord, fixed=fixed, window_quarters=window))  # type: ignore[return-value]

    def roll_up(
        self, coord: Any = None, values: Any = None, dim: str | None = None,
        window: int | None = None,
    ) -> RollUpSpec:
        return self._out(  # type: ignore[return-value]
            RollUpSpec(coord=coord, values=values, dim=dim, window_quarters=window)
        )

    def drill_down(
        self, coord: Any = None, values: Any = None, dim: str | None = None,
        window: int | None = None,
    ) -> DrillDownSpec:
        return self._out(  # type: ignore[return-value]
            DrillDownSpec(coord=coord, values=values, dim=dim, window_quarters=window)
        )

    def siblings(
        self, coord: Any = None, values: Any = None, dim: str | None = None,
        window: int | None = None,
    ) -> SiblingsSpec:
        return self._out(  # type: ignore[return-value]
            SiblingsSpec(coord=coord, values=values, dim=dim, window_quarters=window)
        )

    def sibling_deviation(
        self, coord: Any = None, values: Any = None, dim: str | None = None,
        window: int | None = None,
    ) -> SiblingDeviationSpec:
        return self._out(  # type: ignore[return-value]
            SiblingDeviationSpec(
                coord=coord, values=values, dim=dim, window_quarters=window
            )
        )

    def top_slopes(
        self, coord: Any = None, k: int = 5, window: int | None = None
    ) -> TopSlopesSpec:
        return self._out(TopSlopesSpec(coord=coord, k=k, window_quarters=window))  # type: ignore[return-value]

    def observation_deck(self, window: int | None = None) -> ObservationDeckSpec:
        return self._out(ObservationDeckSpec(window_quarters=window))  # type: ignore[return-value]

    def watch_list(self, window: int | None = None) -> WatchListSpec:
        return self._out(WatchListSpec(window_quarters=window))  # type: ignore[return-value]

    def batch(self, *specs: QuerySpec) -> BatchQuery:
        return BatchQuery(tuple(specs))


#: The unbound builder — ``Q.cell(...).at(coord).window(8)``.
Q = QueryBuilder()
