"""Query layer: declarative specs, one execution engine, OLAP views, drilling.

``repro.query.spec`` defines the frozen :class:`QuerySpec` plan objects and
the fluent :data:`Q` builder; ``repro.query.exec`` is the single engine that
turns a spec into a :class:`QueryResult`; ``repro.query.api`` keeps the
method-per-operation facade as thin delegates; ``repro.query.drill`` holds
the exception-guided drilling workflow.
"""

from repro.query.api import RegressionCubeView
from repro.query.drill import DrillNode, ExceptionDriller
from repro.query.exec import BatchItem, QueryResult, execute, execute_batch
from repro.query.spec import (
    BatchQuery,
    CellSpec,
    DrillDownSpec,
    ObservationDeckSpec,
    Q,
    QueryBuilder,
    QuerySpec,
    RollUpSpec,
    SiblingDeviationSpec,
    SiblingsSpec,
    SliceSpec,
    TopSlopesSpec,
    WatchListSpec,
    spec_from_dict,
)

__all__ = [
    "RegressionCubeView",
    "DrillNode",
    "ExceptionDriller",
    "QuerySpec",
    "CellSpec",
    "SliceSpec",
    "RollUpSpec",
    "DrillDownSpec",
    "SiblingsSpec",
    "SiblingDeviationSpec",
    "TopSlopesSpec",
    "ObservationDeckSpec",
    "WatchListSpec",
    "BatchQuery",
    "QueryBuilder",
    "Q",
    "spec_from_dict",
    "QueryResult",
    "BatchItem",
    "execute",
    "execute_batch",
]
