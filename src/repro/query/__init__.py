"""Query layer: OLAP operations and exception-guided drilling."""

from repro.query.api import RegressionCubeView
from repro.query.drill import DrillNode, ExceptionDriller

__all__ = ["RegressionCubeView", "DrillNode", "ExceptionDriller"]
