"""Domain exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can guard a whole analysis pipeline with a
single ``except ReproError`` while still being able to catch the narrow
condition they care about.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "IntervalError",
    "EmptySeriesError",
    "DegenerateFitError",
    "AggregationError",
    "HierarchyError",
    "SchemaError",
    "CodecError",
    "LayerError",
    "TiltFrameError",
    "CubingError",
    "StreamError",
    "QueryError",
    "ServiceError",
    "StorageError",
    "CorruptionError",
    "WalCorruptionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class IntervalError(ReproError):
    """A time interval is malformed (``t_b > t_e``) or incompatible."""


class EmptySeriesError(ReproError):
    """An operation required a non-empty time series."""


class DegenerateFitError(ReproError):
    """A regression fit is undefined (e.g. a single point has no slope)."""


class AggregationError(ReproError):
    """ISB / sufficient-statistics aggregation preconditions were violated.

    Raised for example when merging cells over a standard dimension whose
    intervals differ, or over the time dimension when the child intervals do
    not partition the target interval.
    """


class HierarchyError(ReproError):
    """A concept-hierarchy lookup or construction failed."""


class SchemaError(ReproError):
    """A cube schema is inconsistent or a value does not fit the schema."""


class CodecError(SchemaError):
    """A serialized payload could not be decoded.

    Raised by every decoder in :mod:`repro.io` (and the state codecs built
    on it) when a payload is malformed: a missing or mistyped field, an
    unknown format tag, an unsupported version.  The message always names
    the codec and the offending field, so a bad checkpoint or wire payload
    is diagnosable from the error alone.  Subclasses :class:`SchemaError`
    because a malformed payload is a schema violation of the on-disk /
    on-wire format — existing ``except SchemaError`` guards keep working.
    """


class LayerError(ReproError):
    """The m-layer / o-layer specification is invalid (e.g. m above o)."""


class TiltFrameError(ReproError):
    """A tilt time frame operation failed (bad level spec, stale insert...)."""


class CubingError(ReproError):
    """A cubing algorithm was mis-configured or hit an internal invariant."""


class StreamError(ReproError):
    """Stream ingestion failed (out-of-order record, unknown dimension...)."""


class QueryError(ReproError):
    """A cube query referenced an unknown cell, cuboid or time window."""


class ServiceError(ReproError):
    """The sharded service was mis-configured or received a bad request."""


class StorageError(ReproError):
    """A cold-store operation failed (corrupt page, missing segment...)."""


class CorruptionError(StorageError):
    """Durable state failed a checksum and could not be repaired.

    Raised only after the cheap recovery paths (re-read retry, quarantine
    plus rebuild from snapshot + WAL replay) have been exhausted: the data
    named in the message is genuinely lost, not merely transiently
    unreadable.  Subclasses :class:`StorageError` so existing storage
    guards keep catching it while callers that care can branch on the
    narrower type.
    """


class WalCorruptionError(CorruptionError):
    """A WAL entry *before* the final line failed to parse or checksum.

    A torn final line is benign (the append was never acknowledged), but a
    corrupt interior line means acknowledged history is unreadable — replay
    from this journal would silently skip accepted batches.  The message
    always carries the line number, byte offset and the last intact
    sequence number, so the damage is locatable from the error alone.
    """
