"""``python -m repro`` — a 30-second self-demonstration.

Runs the paper's pipeline on a small synthetic dataset and prints the
result: the exact ISB aggregation check (Fig 2/3 captions), the tilt-frame
savings (Example 3), and a cubing run with its exception watch list.
Useful as a smoke test of an installation.
"""

from __future__ import annotations

import math

from repro import (
    GlobalSlopeThreshold,
    ISB,
    calibrate_threshold,
    example3_savings,
    full_materialization,
    generate_dataset,
    intermediate_slopes,
    merge_standard,
    merge_time,
    mo_cubing,
    popular_path_cubing,
)


def main() -> int:
    print("repro — regression cubes for time-series data streams")
    print("(Chen, Dong, Han, Wah, Wang — VLDB 2002)\n")

    # The exact numbers printed in the paper's Fig 2 / Fig 3 captions.
    fig2 = merge_standard(
        [ISB(0, 19, 0.540995, 0.0318379), ISB(0, 19, 0.294875, 0.0493375)]
    )
    fig3 = merge_time(
        [ISB(0, 9, 0.582995, 0.0240189), ISB(10, 19, 0.459046, 0.047474)]
    )
    ok2 = math.isclose(fig2.base, 0.83587, abs_tol=5e-6)
    ok3 = math.isclose(fig3.slope, 0.0431806, abs_tol=5e-7)
    print(f"Theorem 3.2 vs Fig 2 caption: {'OK' if ok2 else 'MISMATCH'}")
    print(f"Theorem 3.3 vs Fig 3 caption: {'OK' if ok3 else 'MISMATCH'}")

    s = example3_savings()
    print(
        f"Tilt frame (Example 3): {s.tilt_units} slots for a year vs "
        f"{s.full_units} ({s.ratio:.0f}x saving)\n"
    )

    data = generate_dataset("D3L3C10T2K", seed=1)
    tau = calibrate_threshold(
        intermediate_slopes(full_materialization(data.layers, data.cells)),
        0.01,
    )
    policy = GlobalSlopeThreshold(tau)
    mo = mo_cubing(data.layers, data.cells, policy)
    pp = popular_path_cubing(data.layers, data.cells, policy)
    print(mo.describe())
    print()
    print(pp.describe())
    print(
        f"\nfootnote 7: popular-path retained "
        f"{pp.total_retained_exceptions} <= {mo.total_retained_exceptions} "
        "exception cells"
    )
    return 0 if (ok2 and ok3) else 1


if __name__ == "__main__":
    raise SystemExit(main())
