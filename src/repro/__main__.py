"""``python -m repro`` — demo and service entry points.

``python -m repro`` (or ``python -m repro demo``) runs the paper's pipeline
on a small synthetic dataset and prints the result: the exact ISB aggregation
check (Fig 2/3 captions), the tilt-frame savings (Example 3), and a cubing
run with its exception watch list.  Useful as a smoke test of an
installation.

``python -m repro serve --shards N --port P`` starts the sharded stream-cube
HTTP service over a fanout schema; ``POST /query`` accepts single query
specs or ``{"queries": [...]}`` batches (see :mod:`repro.service.http` for
the endpoint reference and :mod:`repro.query.spec` for the spec format).
With ``--snapshot-dir DIR`` the service journals ingestion to a WAL and
writes restorable snapshots (on demand, every K quarters, and on graceful
shutdown); ``--restore DIR`` resumes from such a directory, optionally
resharding via ``--shards``.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro import (
    GlobalSlopeThreshold,
    ISB,
    calibrate_threshold,
    example3_savings,
    full_materialization,
    generate_dataset,
    intermediate_slopes,
    merge_standard,
    merge_time,
    mo_cubing,
    popular_path_cubing,
)


def demo() -> int:
    print("repro — regression cubes for time-series data streams")
    print("(Chen, Dong, Han, Wah, Wang — VLDB 2002)\n")

    # The exact numbers printed in the paper's Fig 2 / Fig 3 captions.
    fig2 = merge_standard(
        [ISB(0, 19, 0.540995, 0.0318379), ISB(0, 19, 0.294875, 0.0493375)]
    )
    fig3 = merge_time(
        [ISB(0, 9, 0.582995, 0.0240189), ISB(10, 19, 0.459046, 0.047474)]
    )
    ok2 = math.isclose(fig2.base, 0.83587, abs_tol=5e-6)
    ok3 = math.isclose(fig3.slope, 0.0431806, abs_tol=5e-7)
    print(f"Theorem 3.2 vs Fig 2 caption: {'OK' if ok2 else 'MISMATCH'}")
    print(f"Theorem 3.3 vs Fig 3 caption: {'OK' if ok3 else 'MISMATCH'}")

    s = example3_savings()
    print(
        f"Tilt frame (Example 3): {s.tilt_units} slots for a year vs "
        f"{s.full_units} ({s.ratio:.0f}x saving)\n"
    )

    data = generate_dataset("D3L3C10T2K", seed=1)
    tau = calibrate_threshold(
        intermediate_slopes(full_materialization(data.layers, data.cells)),
        0.01,
    )
    policy = GlobalSlopeThreshold(tau)
    mo = mo_cubing(data.layers, data.cells, policy)
    pp = popular_path_cubing(data.layers, data.cells, policy)
    print(mo.describe())
    print()
    print(pp.describe())
    print(
        f"\nfootnote 7: popular-path retained "
        f"{pp.total_retained_exceptions} <= {mo.total_retained_exceptions} "
        "exception cells"
    )

    # The declarative query API: one batch, one engine, typed results.
    from repro.query import Q, RegressionCubeView, execute_batch

    view = RegressionCubeView(mo)
    items = execute_batch(
        view,
        Q.batch(Q.watch_list(), Q.top_slopes(data.layers.o_coord, k=3)),
    )
    watch, top = (item.result.value for item in items)
    print(f"\nquery batch: watch list holds {len(watch)} o-layer exceptions")
    for values, isb in top:
        print(f"  steepest cells: {values} slope={isb.slope:+.4f}")
    return 0 if (ok2 and ok3) else 1


def build_service(args: argparse.Namespace):
    """A StreamCubeService for the CLI flags.

    Fresh start: a new cube from the schema flags.  ``--restore DIR``:
    rebuild the cube from the snapshot there (schema flags come from the
    manifest's recorded app config, so a restored service is identical to
    the one that wrote the snapshot), replay any WAL found alongside it,
    and — when ``--shards`` names a *different* count — reshard during the
    load.  ``--snapshot-dir DIR`` attaches a write-ahead log there and
    enables ``POST /admin/snapshot``, ``--snapshot-every-quarters K``, and
    the graceful-shutdown final snapshot.
    """
    from pathlib import Path

    from repro.cluster import ClusterConfig
    from repro.service import QueryRouter, ShardedStreamCube, StreamCubeService
    from repro.storage import StorageConfig
    from repro.stream.generator import DatasetSpec
    from repro.stream.wal import QuarterWAL

    from repro.errors import ServiceError

    snapshot_dir = Path(args.snapshot_dir) if args.snapshot_dir else None
    backend_name = getattr(args, "backend", "inproc")
    workers = getattr(args, "workers", None)
    if workers is not None:
        if backend_name != "process":
            raise ServiceError("--workers needs --backend process")
        if args.shards is not None and args.shards != workers:
            raise ServiceError(
                f"--workers {workers} and --shards {args.shards} disagree; "
                "the process backend runs one worker per shard — pass one"
            )
        args.shards = workers
    # The snapshot directory doubles as the process workers' crash-recovery
    # anchor: a restarted worker restores its slice of the latest snapshot
    # there, then replays the WAL tail.
    backend_cfg: str | ClusterConfig = (
        ClusterConfig(
            backend="process",
            recovery_dir=str(snapshot_dir) if snapshot_dir else None,
        )
        if backend_name == "process"
        else "inproc"
    )
    if (
        snapshot_dir is not None
        and not args.restore
        and (snapshot_dir / "manifest.json").exists()
    ):
        # Refuse to bootstrap a fresh (empty) cube over an existing
        # snapshot — that would overwrite the manifest and discard the
        # previous run's state on the next compaction.
        raise ServiceError(
            f"{snapshot_dir} already holds a snapshot; start with "
            f"--restore {snapshot_dir} to resume it, or point "
            "--snapshot-dir somewhere else"
        )
    wal = (
        QuarterWAL(snapshot_dir / "wal.jsonl")
        if snapshot_dir is not None
        else None
    )
    if wal is not None and not args.restore and wal.last_seq > 0:
        # Same protection for a journal-only directory (a run that crashed
        # before its first snapshot): a fresh start would never replay
        # these entries and the first snapshot would compact them away.
        raise ServiceError(
            f"{wal.path} holds {wal.last_seq} unreplayed journal entries; "
            f"start with --restore {snapshot_dir} to recover them, or "
            "point --snapshot-dir somewhere else"
        )

    storage_cfg = (
        StorageConfig(
            root=Path(args.storage_dir),
            backend=args.storage_backend,
            hot_quarters=(
                args.hot_quarters if args.hot_quarters is not None else 4
            ),
        )
        if args.storage_dir
        else None
    )

    app = {
        "dims": args.dims,
        "levels": args.levels,
        "fanout": args.fanout,
        "threshold": args.threshold,
        "window": args.window,
    }
    manifest = None
    restore_wal = Path(args.restore) / "wal.jsonl" if args.restore else None
    if args.restore:
        if (Path(args.restore) / "manifest.json").exists():
            manifest = ShardedStreamCube.read_manifest(args.restore)
            recorded = manifest.get("app") or {}
            if recorded:
                app.update(recorded)
                print(f"restoring with recorded app config: {recorded}")
        elif not (restore_wal and restore_wal.exists()):
            ShardedStreamCube.read_manifest(args.restore)  # raise the
            # usual "no manifest" CodecError
        # else: journal-only directory — the run crashed before its first
        # snapshot; rebuild an empty cube below and replay the whole WAL.
    layers = DatasetSpec(
        n_dims=app["dims"],
        n_levels=app["levels"],
        fanout=app["fanout"],
        n_tuples=1,  # build_layers only needs the schema shape
    ).build_layers()
    policy = GlobalSlopeThreshold(app["threshold"])

    if args.restore and manifest is not None:
        if manifest.get("storage") is not None and storage_cfg is None:
            raise ServiceError(
                "this snapshot was taken with tiered storage "
                f"({manifest['storage']['backend']} backend); pass "
                "--storage-dir pointing at its cold-store directory"
            )
        cube = ShardedStreamCube.restore(
            args.restore,
            layers,
            policy,
            n_shards=args.shards,  # None keeps the snapshot's count
            wal=wal,
            storage=storage_cfg,
            hot_quarters=args.hot_quarters,
            backend=backend_cfg,
        )
    else:  # fresh cube — also the base of a journal-only recovery
        cube = ShardedStreamCube(
            layers,
            policy,
            n_shards=args.shards if args.shards is not None else 4,
            ticks_per_quarter=args.ticks_per_quarter,
            wal=wal,
            storage=storage_cfg,
            backend=backend_cfg,
        )
    if args.restore:
        replayed = 0
        if restore_wal is not None and restore_wal.exists():
            after = int(manifest.get("wal_seq", 0)) if manifest else 0
            if wal is not None and wal.path.resolve() == restore_wal.resolve():
                replayed = wal.replay(cube, after_seq=after)
            else:
                with QuarterWAL(restore_wal) as old:
                    replayed = old.replay(cube, after_seq=after)
        print(
            f"restored {cube.tracked_cells} cells on {cube.n_shards} shards "
            f"at quarter {cube.current_quarter} "
            f"({replayed} WAL entries replayed)"
        )
    router = QueryRouter(cube, window_quarters=app["window"])
    service = StreamCubeService(
        cube,
        router,
        snapshot_dir=snapshot_dir,
        snapshot_every_quarters=args.snapshot_every_quarters,
        app_config=app,
        subscription_queue=getattr(args, "subscription_queue", 16),
    )
    if snapshot_dir is not None:
        # Make the serving directory self-contained from the first moment:
        # a fresh start gets an (empty) restorable baseline so a crash
        # before the first periodic snapshot still recovers from WAL
        # replay, and a restore's possibly resharded/replayed state
        # becomes the new baseline with the WAL compacted to its tail.
        service.write_snapshot()
    return service


def serve_command(args: argparse.Namespace) -> int:
    from repro import faults
    from repro.errors import ReproError
    from repro.service import serve

    try:
        if getattr(args, "fault_plan", None):
            # Armed before the cube exists so process workers inherit the
            # plan through their WorkerSpec (supervisor sites dropped on
            # the worker side) and every store/WAL opens under it.
            plan = faults.load_plan(args.fault_plan, args.fault_seed)
            faults.install(plan)
            print(
                f"fault injection armed: {args.fault_plan} "
                f"(seed {args.fault_seed}, {len(plan.rules)} rules)"
            )
        service = build_service(args)
        layers = service.cube.layers
        print(f"schema: {layers.describe()}")
        serve(
            service,
            host=args.host,
            port=args.port,
            request_threads=args.request_threads,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port} ({exc})",
            file=sys.stderr,
        )
        return 2
    return 0


def soak_command(args: argparse.Namespace) -> int:
    from repro.verify.soak import main as soak_main

    return soak_main(args)


def main(argv: list[str] | None = None) -> int:
    """Entry point; ``argv`` defaults to no arguments (the demo), and the
    ``python -m repro`` block below passes the real command line."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="regression cubes for time-series data streams",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="run the 30-second self-demonstration")

    soak_p = sub.add_parser(
        "soak",
        help="hammer a live service with concurrent seeded traffic and "
        "verify the final state against the brute-force oracle",
    )
    soak_p.add_argument(
        "--seed", type=int, default=0, help="RNG seed (default 0)"
    )
    soak_p.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="how long to run the concurrent phase, seconds (default 30)",
    )
    soak_p.add_argument(
        "--shards", type=int, default=4, help="engine shards (default 4)"
    )
    soak_p.add_argument(
        "--ingest-threads",
        type=int,
        default=3,
        help="concurrent ingest workers (default 3)",
    )
    soak_p.add_argument(
        "--query-threads",
        "--query-clients",
        dest="query_threads",
        type=int,
        default=2,
        help="concurrent query clients hammering the service (default 2)",
    )
    soak_p.add_argument(
        "--subscribers",
        type=int,
        default=0,
        metavar="N",
        help="continuous-query subscribers long-polling pushed updates "
        "while the stream seals (each verifies ordering and payloads "
        "against the oracle; default 0)",
    )
    soak_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick an ephemeral port)",
    )
    soak_p.add_argument(
        "--storage",
        choices=("file", "sqlite"),
        default=None,
        help="also spill sealed history to a cold store of this backend "
        "during the soak (default: no tiered storage)",
    )
    soak_p.add_argument(
        "--hot-quarters",
        type=int,
        default=2,
        metavar="K",
        help="hot horizon for --storage runs (default 2)",
    )
    soak_p.add_argument(
        "--backend",
        choices=("inproc", "process"),
        default="inproc",
        help="shard execution backend: in-process engines (default) or "
        "one supervised worker process per shard",
    )
    soak_p.add_argument(
        "--fault-plan",
        metavar="PLAN",
        default=None,
        help="arm seeded fault injection for the whole soak: a preset "
        "name (wal-torn, page-bitflip, enospc-snapshot) or a JSON plan "
        "file; the verdict must stay zero mismatches",
    )

    serve_p = sub.add_parser(
        "serve", help="run the sharded stream-cube HTTP service"
    )
    serve_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="engine shards (default 4; with --restore, defaults to the "
        "snapshot's count, and a different value reshards on load)",
    )
    serve_p.add_argument(
        "--backend",
        choices=("inproc", "process"),
        default="inproc",
        help="shard execution backend: in-process engines (default) or "
        "one supervised worker process per shard (ingest scales past "
        "the GIL; pair with --snapshot-dir for crash recovery)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --backend process (one per shard; "
        "sets the shard count)",
    )
    serve_p.add_argument(
        "--request-threads",
        type=int,
        default=8,
        metavar="N",
        help="HTTP request pool size: up to N requests execute "
        "concurrently (queries and probes in parallel, mutators "
        "serialized among themselves; default 8)",
    )
    serve_p.add_argument(
        "--subscription-queue",
        type=int,
        default=16,
        metavar="N",
        help="per-subscription pending-update bound for POST /subscribe "
        "continuous queries; beyond it the oldest update is dropped and "
        "counted (default 16)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8000, help="TCP port (default 8000)"
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_p.add_argument(
        "--dims", type=int, default=3, help="standard dimensions (default 3)"
    )
    serve_p.add_argument(
        "--levels",
        type=int,
        default=3,
        help="hierarchy levels m-layer..o-layer inclusive (default 3)",
    )
    serve_p.add_argument(
        "--fanout", type=int, default=10, help="hierarchy fanout (default 10)"
    )
    serve_p.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="global exception slope threshold (default 0.05)",
    )
    serve_p.add_argument(
        "--ticks-per-quarter",
        type=int,
        default=15,
        help="primitive ticks per quarter slot (default 15)",
    )
    serve_p.add_argument(
        "--window",
        type=int,
        default=4,
        help="default analysis window in quarters (default 4)",
    )
    serve_p.add_argument(
        "--restore",
        metavar="DIR",
        default=None,
        help="restore the cube from a snapshot directory (replaying any "
        "WAL found there) instead of starting empty",
    )
    serve_p.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        default=None,
        help="directory for snapshots and the write-ahead log; enables "
        "POST /admin/snapshot and the graceful-shutdown final snapshot",
    )
    serve_p.add_argument(
        "--snapshot-every-quarters",
        type=int,
        default=0,
        metavar="K",
        help="also snapshot automatically every K sealed quarters "
        "(default 0: only on shutdown and POST /admin/snapshot)",
    )
    serve_p.add_argument(
        "--storage-dir",
        metavar="DIR",
        default=None,
        help="tiered-storage root: sealed history past the hot horizon "
        "spills to per-shard cold stores here, and deep-history queries "
        "fault it back transparently (resident memory stays bounded by "
        "the hot set)",
    )
    serve_p.add_argument(
        "--storage-backend",
        choices=("file", "sqlite"),
        default="file",
        help="cold-store backend (default file: append-only packed "
        "columnar partitions)",
    )
    serve_p.add_argument(
        "--hot-quarters",
        type=int,
        default=None,
        metavar="K",
        help="quarters of sealed history kept resident before spilling "
        "(default 4; with --restore, defaults to the snapshot's setting); "
        "needs --storage-dir",
    )
    serve_p.add_argument(
        "--fault-plan",
        metavar="PLAN",
        default=None,
        help="arm seeded fault injection on every durability path (WAL, "
        "cold stores, snapshots, worker RPC): a preset name (wal-torn, "
        "page-bitflip, enospc-snapshot) or a JSON plan file — for "
        "resilience drills against a live service",
    )
    serve_p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="S",
        help="seed for --fault-plan rule RNGs (default 0)",
    )

    args = parser.parse_args(argv if argv is not None else [])
    if args.command == "serve":
        return serve_command(args)
    if args.command == "soak":
        return soak_command(args)
    return demo()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
