"""Optional real-memory probing to sanity-check the analytic model.

The cubing statistics model memory analytically (DESIGN.md §3).  For
calibration, :class:`TracemallocProbe` measures the actual Python-level
allocation peak of a code block via :mod:`tracemalloc`.  Absolute numbers
include interpreter overhead and are *not* comparable to the paper's
M-bytes, but the relative ordering between two algorithms should agree with
the model — ``bench/harness.run_point(..., probe_memory=True)`` records both
so the agreement can be audited.
"""

from __future__ import annotations

import tracemalloc

__all__ = ["TracemallocProbe"]


class TracemallocProbe:
    """Context manager capturing the tracemalloc peak of its block."""

    def __init__(self) -> None:
        self.peak_bytes = 0
        self._was_tracing = False

    def __enter__(self) -> "TracemallocProbe":
        self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = peak
        if not self._was_tracing:
            tracemalloc.stop()

    @property
    def peak_megabytes(self) -> float:
        return self.peak_bytes / (1024.0 * 1024.0)
