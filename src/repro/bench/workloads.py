"""Benchmark workloads and scaling knobs.

The paper's evaluation ran C++ on 2002 hardware with 100K-tuple datasets;
pure Python pays a large constant factor, so the default benchmark scale is
reduced while keeping every *relative* comparison intact.  Set the
environment variable ``REPRO_BENCH_SCALE=paper`` to run the original sizes
(slow), or ``REPRO_BENCH_SCALE=small`` (default) for CI-friendly runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["BenchScale", "current_scale"]


@dataclass(frozen=True)
class BenchScale:
    """One benchmark sizing profile."""

    name: str
    #: Figure 8: tuples of the D3L3C10 dataset, and the exception rates (%).
    fig8_tuples: int
    fig8_rates: tuple[float, ...]
    #: Figure 9: m-layer sizes swept at 1% exceptions (D3L3C10).
    fig9_sizes: tuple[int, ...]
    #: Figure 10: levels swept on D2C10 with fixed tuples at 1% exceptions.
    fig10_tuples: int
    fig10_levels: tuple[int, ...]
    #: Generic dataset for ablations.
    ablation_spec: str = "D3L3C8T2K"


_SMALL = BenchScale(
    name="small",
    fig8_tuples=4_000,
    fig8_rates=(0.1, 1.0, 10.0, 100.0),
    fig9_sizes=(1_000, 2_000, 4_000, 8_000),
    fig10_tuples=2_000,
    fig10_levels=(3, 4, 5),
)

_PAPER = BenchScale(
    name="paper",
    fig8_tuples=100_000,
    fig8_rates=(0.1, 1.0, 10.0, 100.0),
    fig9_sizes=(32_000, 64_000, 128_000, 256_000),
    fig10_tuples=10_000,
    fig10_levels=(3, 4, 5, 6, 7),
    ablation_spec="D3L3C10T100K",
)

_SCALES = {"small": _SMALL, "paper": _PAPER}


def current_scale() -> BenchScale:
    """The profile selected by ``REPRO_BENCH_SCALE`` (default: small)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    try:
        return _SCALES[name]
    except KeyError:
        valid = ", ".join(sorted(_SCALES))
        raise ValueError(
            f"REPRO_BENCH_SCALE={name!r}; expected one of: {valid}"
        ) from None
