"""Paper-style rendering of benchmark sweeps.

Each figure becomes two aligned text tables — processing time and memory
usage — with one row per x-axis point and one column per algorithm, mirroring
the two panels of Figures 8, 9 and 10.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import SweepRow

__all__ = ["render_figure", "render_shape_checks"]


def _table(
    title: str,
    x_header: str,
    rows: Sequence[SweepRow],
    value_of,
    unit: str,
) -> str:
    algorithms = [p.algorithm for p in rows[0].points]
    widths = [max(len(x_header), *(len(r.x_label) for r in rows))]
    widths += [max(len(a), 12) for a in algorithms]
    header = " | ".join(
        [x_header.ljust(widths[0])]
        + [a.rjust(w) for a, w in zip(algorithms, widths[1:])]
    )
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"{title} ({unit})", header, sep]
    for row in rows:
        cells = [row.x_label.ljust(widths[0])]
        for algorithm, w in zip(algorithms, widths[1:]):
            cells.append(f"{value_of(row.point(algorithm)):.4f}".rjust(w))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def render_figure(
    name: str, x_header: str, rows: Sequence[SweepRow]
) -> str:
    """Both panels of one figure as text tables."""
    time_panel = _table(
        f"{name}(a) processing time",
        x_header,
        rows,
        lambda p: p.runtime_s,
        "seconds",
    )
    space_panel = _table(
        f"{name}(b) memory usage",
        x_header,
        rows,
        lambda p: p.megabytes,
        "M-bytes",
    )
    return f"{time_panel}\n\n{space_panel}"


def render_shape_checks(checks: Sequence[tuple[str, bool]]) -> str:
    """A pass/fail list of the paper's qualitative claims."""
    lines = ["shape checks (paper's qualitative claims):"]
    for claim, ok in checks:
        lines.append(f"  [{'PASS' if ok else 'FAIL'}] {claim}")
    return "\n".join(lines)
