"""The experiment harness behind Figures 8-10.

Each ``figure*_series`` function reruns the paper's exact sweep — same
dataset family, same x-axis — on both algorithms and returns structured
rows; :mod:`repro.bench.reporting` renders them in the paper's layout.
Thresholds are calibrated the way the paper's x-axis is defined: "the
percentage of aggregated cells that belong to exception cells", judged on
the intermediate cells of a full materialization.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Callable

from repro.cube.layers import CriticalLayers
from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.mo_cubing import mo_cubing
from repro.cubing.policy import (
    ExceptionPolicy,
    GlobalSlopeThreshold,
    calibrate_threshold,
)
from repro.cubing.popular_path import popular_path_cubing
from repro.cubing.result import CubeResult
from repro.stream.generator import DatasetSpec, GeneratedDataset, generate_dataset

__all__ = [
    "AlgorithmPoint",
    "SweepRow",
    "policy_for_rate",
    "run_point",
    "figure8_series",
    "figure9_series",
    "figure10_series",
]

Algorithm = Callable[..., CubeResult]

_ALGORITHMS: dict[str, Algorithm] = {
    "m/o-cubing": mo_cubing,
    "popular-path": popular_path_cubing,
}


@dataclass(frozen=True)
class AlgorithmPoint:
    """One algorithm's measurement at one sweep point.

    ``megabytes`` comes from the analytic memory model;
    ``tracemalloc_megabytes`` (when probing is enabled) is the actual
    Python allocation peak — see :mod:`repro.bench.memprobe`.
    """

    algorithm: str
    runtime_s: float
    megabytes: float
    cells_computed: int
    rows_scanned: int
    retained_exceptions: int
    tracemalloc_megabytes: float | None = None


@dataclass(frozen=True)
class SweepRow:
    """One x-axis point of a figure: the x value plus both algorithms."""

    x_label: str
    x_value: float
    points: tuple[AlgorithmPoint, ...]

    def point(self, algorithm: str) -> AlgorithmPoint:
        for p in self.points:
            if p.algorithm == algorithm:
                return p
        raise KeyError(algorithm)


def policy_for_rate(
    data: GeneratedDataset, rate_percent: float
) -> ExceptionPolicy:
    """Calibrate a global threshold to the target exception percentage."""
    oracle = full_materialization(data.layers, data.cells)
    slopes = intermediate_slopes(oracle)
    tau = calibrate_threshold(slopes, rate_percent / 100.0)
    return GlobalSlopeThreshold(tau)


def run_point(
    layers: CriticalLayers,
    cells,
    policy: ExceptionPolicy,
    x_label: str,
    x_value: float,
    probe_memory: bool = False,
) -> SweepRow:
    """Run every algorithm on one configuration and collect measurements.

    With ``probe_memory=True`` each run is additionally wrapped in a
    :class:`~repro.bench.memprobe.TracemallocProbe` (slower; used to audit
    the analytic memory model against real allocations).
    """
    from repro.bench.memprobe import TracemallocProbe

    points = []
    for name, algorithm in _ALGORITHMS.items():
        # Collect garbage left over from earlier sweep points so a deferred
        # full GC pass is not charged to this algorithm's timing.
        gc.collect()
        probed: float | None = None
        if probe_memory:
            with TracemallocProbe() as probe:
                result = algorithm(layers, cells, policy)
            probed = probe.peak_megabytes
        else:
            result = algorithm(layers, cells, policy)
        stats = result.stats
        points.append(
            AlgorithmPoint(
                algorithm=name,
                runtime_s=stats.runtime_s,
                megabytes=stats.megabytes,
                cells_computed=stats.cells_computed,
                rows_scanned=stats.rows_scanned,
                retained_exceptions=result.total_retained_exceptions,
                tracemalloc_megabytes=probed,
            )
        )
    return SweepRow(x_label=x_label, x_value=x_value, points=tuple(points))


def figure8_series(
    n_tuples: int, rates_percent: tuple[float, ...], seed: int = 7
) -> list[SweepRow]:
    """Fig 8: time and space vs exception percentage (D3L3C10, T fixed)."""
    spec = DatasetSpec(n_dims=3, n_levels=3, fanout=10, n_tuples=n_tuples)
    data = generate_dataset(spec, seed=seed)
    rows = []
    for rate in rates_percent:
        policy = policy_for_rate(data, rate)
        rows.append(
            run_point(data.layers, data.cells, policy, f"{rate:g}%", rate)
        )
    return rows


def figure9_series(
    sizes: tuple[int, ...], rate_percent: float = 1.0, seed: int = 7
) -> list[SweepRow]:
    """Fig 9: time and space vs m-layer size (D3L3C10, 1% exceptions).

    The sweep takes prefixes of one generated dataset, matching the paper's
    "data sets with varied sizes are appropriate subsets of the same 100K
    data set".
    """
    spec = DatasetSpec(
        n_dims=3, n_levels=3, fanout=10, n_tuples=max(sizes)
    )
    data = generate_dataset(spec, seed=seed)
    rows = []
    for size in sorted(sizes):
        subset = data.subset(min(size, data.n_cells))
        policy = policy_for_rate(subset, rate_percent)
        label = f"{size // 1000}K" if size >= 1000 else str(size)
        rows.append(
            run_point(subset.layers, subset.cells, policy, label, size)
        )
    return rows


def figure10_series(
    n_tuples: int,
    levels: tuple[int, ...],
    rate_percent: float = 1.0,
    seed: int = 7,
) -> list[SweepRow]:
    """Fig 10: time and space vs number of levels (D2C10, T fixed, 1%)."""
    rows = []
    for n_levels in levels:
        spec = DatasetSpec(
            n_dims=2, n_levels=n_levels, fanout=10, n_tuples=n_tuples
        )
        data = generate_dataset(spec, seed=seed)
        policy = policy_for_rate(data, rate_percent)
        rows.append(
            run_point(
                data.layers, data.cells, policy, str(n_levels), n_levels
            )
        )
    return rows
