"""Machine-readable benchmark output: the ``BENCH_*.json`` files.

Every benchmark entry point accepts ``--json PATH`` (or the
``REPRO_BENCH_JSON`` environment variable; the flag wins) and writes its
measurements as one JSON document per run, so the perf trajectory of the
repo is a diffable artifact instead of a scrollback table.  ``PATH`` may be
a directory, in which case the file lands there under the bench's canonical
name (``BENCH_<name>.json``).

Document shape::

    {
      "bench": "service_throughput",
      "scale": "small",
      "created_utc": "2026-07-30T12:00:00+00:00",
      "machine_score": 41.7,          # relative machine speed, see below
      "peak_rss_mb": 123.4,           # process peak RSS at write time
      "entries": [
        {"op": "ingest_batch", "scale": "small", "wall_s": 0.061,
         "records_per_s": 87880.0, "shards": 1, ...},
        ...
      ]
    }

``machine_score`` is the result of a tiny fixed CPU workload timed at write
time (bigger = faster machine).  The CI regression gate divides records/s by
it before comparing against the committed baseline, so a slower runner does
not read as a perf regression (and a faster one does not mask a real one).
"""

from __future__ import annotations

import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "json_path_from_args",
    "machine_score",
    "peak_rss_mb",
    "write_bench_json",
]

_ENV_VAR = "REPRO_BENCH_JSON"


def json_path_from_args(
    argv: Sequence[str] | None = None,
) -> str | None:
    """Resolve the ``--json PATH`` flag / ``REPRO_BENCH_JSON`` env variable.

    Returns ``None`` when neither is present (the bench prints tables only).
    The flag is deliberately parsed by hand so every per-bench script keeps
    its zero-dependency ``python benchmarks/bench_*.py`` invocation.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    for i, arg in enumerate(args):
        if arg == "--json":
            if i + 1 >= len(args):
                raise SystemExit("--json requires a PATH argument")
            return args[i + 1]
        if arg.startswith("--json="):
            return arg.split("=", 1)[1]
    return os.environ.get(_ENV_VAR) or None


def machine_score(budget_s: float = 0.1) -> float:
    """A relative speed score for the current machine/interpreter.

    Times a fixed mixed workload — a pure-Python inner loop plus, when
    numpy is importable, a small vector reduction — for ~``budget_s``
    seconds and returns iterations per microsecond.  The mix mirrors the
    gated ingest path (Python grouping/dispatch plus numpy kernels), so a
    runner that is fast at one but slow at the other does not skew the
    normalization.  Only *ratios* of scores are meaningful.
    """
    try:
        import numpy as np

        vector = np.arange(20_000, dtype=np.float64)
    except ImportError:  # pragma: no cover - stripped installs
        np = None
        vector = None
    chunk = 100_000
    total = 0
    t0 = time.perf_counter()
    while True:
        acc = 0
        for i in range(chunk):
            acc += i & 7
        if vector is not None:
            for _ in range(10):
                float(np.add.reduce(vector * 1.0000001))
        total += chunk
        elapsed = time.perf_counter() - t0
        if elapsed >= budget_s:
            return total / elapsed / 1e6


def peak_rss_mb() -> float | None:
    """Process peak RSS in megabytes, if the platform exposes it."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def write_bench_json(
    path: str | Path,
    bench: str,
    scale: str,
    entries: Sequence[Mapping[str, Any]],
    extra: Mapping[str, Any] | None = None,
) -> Path:
    """Write one benchmark run's JSON document; returns the final path."""
    target = Path(path)
    if target.is_dir() or str(path).endswith(os.sep):
        target = target / f"BENCH_{bench}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    document: dict[str, Any] = {
        "bench": bench,
        "scale": scale,
        "created_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "machine_score": round(machine_score(), 3),
        "peak_rss_mb": peak_rss_mb(),
        "entries": [dict(e) for e in entries],
    }
    if extra:
        document.update(extra)
    target.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return target
