"""Benchmark harness: workloads, figure sweeps, paper-style reporting."""

from repro.bench.harness import (
    AlgorithmPoint,
    SweepRow,
    figure8_series,
    figure9_series,
    figure10_series,
    policy_for_rate,
    run_point,
)
from repro.bench.reporting import render_figure, render_shape_checks
from repro.bench.workloads import BenchScale, current_scale

__all__ = [
    "BenchScale",
    "current_scale",
    "AlgorithmPoint",
    "SweepRow",
    "figure8_series",
    "figure9_series",
    "figure10_series",
    "policy_for_rate",
    "run_point",
    "render_figure",
    "render_shape_checks",
]
