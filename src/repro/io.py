"""JSON persistence for ISBs, m-layer datasets, and cubing results.

Stream analysis checkpoints state: the m-layer of a window, the retained
exception cells of the last refresh, or a generated benchmark dataset.
This module serializes those to a stable, human-inspectable JSON layout.

Value tuples may mix ints and strings (fanout vs explicit hierarchies, plus
the ``"*"`` sentinel), so each value is tagged on disk: ints as-is, strings
as-is — JSON keeps the distinction — but tuple keys become lists, and dict
keys become indexed arrays (JSON objects only allow string keys).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Hashable, Mapping

from repro.errors import SchemaError
from repro.regression.isb import ISB

__all__ = [
    "isb_to_dict",
    "isb_from_dict",
    "cells_to_payload",
    "cells_from_payload",
    "dump_cells",
    "load_cells",
    "dump_exceptions",
    "load_exceptions",
    "spec_to_dict",
    "spec_from_dict",
    "batch_to_dict",
    "batch_from_dict",
    "result_to_dict",
]

Values = tuple[Hashable, ...]

_FORMAT_VERSION = 1


def isb_to_dict(isb: ISB) -> dict[str, Any]:
    """A stable JSON-ready mapping for one ISB."""
    return {
        "t_b": isb.t_b,
        "t_e": isb.t_e,
        "base": isb.base,
        "slope": isb.slope,
    }


def isb_from_dict(payload: Mapping[str, Any]) -> ISB:
    """Inverse of :func:`isb_to_dict`."""
    try:
        return ISB(
            t_b=int(payload["t_b"]),
            t_e=int(payload["t_e"]),
            base=float(payload["base"]),
            slope=float(payload["slope"]),
        )
    except KeyError as exc:
        raise SchemaError(f"ISB payload missing field {exc}") from None


def cells_to_payload(cells: Mapping[Values, ISB]) -> list[dict[str, Any]]:
    """A JSON-ready row list for a cell mapping (one ``{values, isb}`` per
    cell) — the wire format of both the checkpoint files here and the HTTP
    service in :mod:`repro.service`."""
    return [
        {"values": list(values), "isb": isb_to_dict(isb)}
        for values, isb in cells.items()
    ]


def cells_from_payload(rows: list[dict[str, Any]]) -> dict[Values, ISB]:
    """Inverse of :func:`cells_to_payload`; rejects duplicate cells."""
    out: dict[Values, ISB] = {}
    for row in rows:
        values = tuple(row["values"])
        if values in out:
            raise SchemaError(f"duplicate cell {values} in payload")
        out[values] = isb_from_dict(row["isb"])
    return out


# ----------------------------------------------------------------------
# Query-spec codecs (the wire format of the declarative query API).
# The encode/decode logic lives with the spec classes in repro.query.spec;
# these wrappers make repro.io the one serialization facade.  Imports are
# function-local because repro.query.exec imports this module at load time.
# ----------------------------------------------------------------------
def spec_to_dict(spec: Any) -> dict[str, Any]:
    """JSON-ready wire form of a :class:`~repro.query.spec.QuerySpec`."""
    return spec.to_dict()


def spec_from_dict(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`spec_to_dict`: ``decode(encode(spec)) == spec``."""
    from repro.query.spec import spec_from_dict as decode

    return decode(payload)


def batch_to_dict(batch: Any) -> dict[str, Any]:
    """JSON-ready wire form of a :class:`~repro.query.spec.BatchQuery`."""
    return batch.to_dict()


def batch_from_dict(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`batch_to_dict`."""
    from repro.query.spec import BatchQuery

    return BatchQuery.from_dict(payload)


def result_to_dict(result: Any) -> dict[str, Any]:
    """Wire form of a :class:`~repro.query.exec.QueryResult` envelope."""
    return result.to_dict()


def dump_cells(cells: Mapping[Values, ISB], path: str | Path) -> None:
    """Write an m-layer (or any cell mapping) to a JSON file."""
    payload = {
        "format": "repro-cells",
        "version": _FORMAT_VERSION,
        "cells": cells_to_payload(cells),
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_cells(path: str | Path) -> dict[Values, ISB]:
    """Read a cell mapping written by :func:`dump_cells`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-cells":
        raise SchemaError(f"{path}: not a repro-cells file")
    if payload.get("version") != _FORMAT_VERSION:
        raise SchemaError(
            f"{path}: unsupported version {payload.get('version')}"
        )
    return cells_from_payload(payload["cells"])


def dump_exceptions(
    retained: Mapping[tuple[int, ...], Mapping[Values, ISB]],
    path: str | Path,
) -> None:
    """Write per-cuboid retained exception cells to a JSON file."""
    payload = {
        "format": "repro-exceptions",
        "version": _FORMAT_VERSION,
        "cuboids": [
            {"coord": list(coord), "cells": cells_to_payload(cells)}
            for coord, cells in retained.items()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_exceptions(
    path: str | Path,
) -> dict[tuple[int, ...], dict[Values, ISB]]:
    """Read exception cells written by :func:`dump_exceptions`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-exceptions":
        raise SchemaError(f"{path}: not a repro-exceptions file")
    if payload.get("version") != _FORMAT_VERSION:
        raise SchemaError(
            f"{path}: unsupported version {payload.get('version')}"
        )
    return {
        tuple(entry["coord"]): cells_from_payload(entry["cells"])
        for entry in payload["cuboids"]
    }
