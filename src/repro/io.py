"""JSON persistence for ISBs, tilt frames, engine state, and cubing results.

Stream analysis checkpoints state: the m-layer of a window, the retained
exception cells of the last refresh, a generated benchmark dataset — and,
since the durability refactor, whole tilt frames and engine snapshots.
This module serializes those to a stable, human-inspectable JSON layout.

Value tuples may mix ints and strings (fanout vs explicit hierarchies, plus
the ``"*"`` sentinel), so each value is tagged on disk: ints as-is, strings
as-is — JSON keeps the distinction — but tuple keys become lists, and dict
keys become indexed arrays (JSON objects only allow string keys).

Every decoder raises :class:`repro.errors.CodecError` (a
:class:`~repro.errors.SchemaError`) on malformed payloads, naming the codec
and the offending field — a corrupt checkpoint is diagnosable from the
message alone, never a raw ``KeyError``.

Round-trip exactness: floats are emitted through ``json`` (shortest
round-trip ``repr``), so ``decode(encode(x))`` reproduces every ISB, slot,
and accumulator *bit for bit* — the property the snapshot/restore layer
(:mod:`repro.stream.state`) is built on.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Callable, Hashable, Mapping, TypeVar

from repro import faults
from repro.errors import CodecError, StorageError, TiltFrameError
from repro.regression.isb import ISB
from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame

__all__ = [
    "write_atomic",
    "payload_checksum",
    "isb_to_dict",
    "isb_from_dict",
    "tilt_level_to_dict",
    "tilt_level_from_dict",
    "frame_to_dict",
    "frame_from_dict",
    "cells_to_payload",
    "cells_from_payload",
    "dump_cells",
    "load_cells",
    "dump_exceptions",
    "load_exceptions",
    "engine_state_to_dict",
    "engine_state_from_dict",
    "spec_to_dict",
    "spec_from_dict",
    "batch_to_dict",
    "batch_from_dict",
    "result_to_dict",
]

Values = tuple[Hashable, ...]

_FORMAT_VERSION = 1

#: Version tag of the state codecs (tilt frames, engine snapshots, cube
#: manifests).  Bump when the payload shape changes; decoders reject
#: unknown versions with a :class:`CodecError` instead of misreading them.
#: Version 2 packs per-cell ISB history as base64 float64 columns (the
#: cold-page float codec) instead of JSON object arrays; version-1
#: snapshots still load (the WAL keeps its own version, see
#: :mod:`repro.stream.wal`).
STATE_VERSION = 2

_T = TypeVar("_T")


def decoding(codec: str, fn: Callable[[], _T]) -> _T:
    """Run one decode step, converting raw lookup/type errors to CodecError.

    Explicit validation stays preferable where the check is cheap; this
    wrapper is the backstop that guarantees *no* decoder in this module (or
    the state codecs built on it) ever surfaces a bare ``KeyError`` /
    ``TypeError`` / ``ValueError`` from a malformed payload.
    """
    try:
        return fn()
    except CodecError:
        raise
    except KeyError as exc:
        raise CodecError(f"{codec}: payload missing field {exc}") from None
    except (
        TypeError,
        ValueError,
        AttributeError,
        IndexError,
        TiltFrameError,  # invalid level specs / frame geometry in payloads
    ) as exc:
        raise CodecError(f"{codec}: malformed payload ({exc})") from None


def check_format(
    codec: str, payload: Any, fmt: str, version: int | tuple[int, ...]
) -> int:
    """Validate a document's ``format`` / ``version`` envelope.

    ``version`` may be a single supported version or a tuple of them (a
    codec that still reads its older shape); the payload's accepted
    version is returned so callers can dispatch decode paths on it.
    """
    versions = (version,) if isinstance(version, int) else tuple(version)
    if not isinstance(payload, Mapping):
        raise CodecError(
            f"{codec}: expected a JSON object, got {type(payload).__name__}"
        )
    if payload.get("format") != fmt:
        raise CodecError(
            f"{codec}: not a {fmt} payload "
            f"(format tag is {payload.get('format')!r})"
        )
    got = payload.get("version")
    if got not in versions:
        readable = (
            str(versions[0])
            if len(versions) == 1
            else " or ".join(str(v) for v in versions)
        )
        raise CodecError(
            f"{codec}: unsupported version {got!r} "
            f"(this build reads version {readable})"
        )
    return int(got)


def write_atomic(path: str | Path, text: str) -> None:
    """Write a file through a temp name + fsync + ``os.replace``.

    Shared by every durability writer (snapshot shard files, manifests,
    worker-side snapshot RPCs).  The fsync before the rename matters:
    checkpoint flows compact the WAL against the snapshot immediately
    after, so the files must be durable — not just renamed in the page
    cache — before the journal entries they supersede disappear.
    """
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    # A failed checkpoint write (ENOSPC, EIO, torn) must leave no
    # half-written temp file behind and must never touch the previous
    # checkpoint — clean up and try again.  Three attempts, because
    # concurrent checkpoint writers (shard threads snapshot in parallel)
    # can funnel two *distinct* transient faults into one victim; a
    # device that still refuses after that is genuinely unwritable and
    # surfaces as a typed StorageError with the old checkpoint intact
    # under the final name.
    failures: list[OSError] = []
    for _ in range(3):
        try:
            _write_tmp(tmp, text)
            break
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            failures.append(exc)
    else:
        raise StorageError(
            f"atomic write of {path} failed even after retry "
            f"({'; '.join(str(f) for f in failures)})"
        ) from failures[-1]
    os.replace(tmp, path)


def _write_tmp(tmp: Path, text: str) -> None:
    faults.check("snapshot.write")
    with open(tmp, "w", encoding="utf-8") as fh:
        if faults.torn("snapshot.write"):
            fh.write(text[: max(1, len(text) // 2)])
            fh.flush()
            raise OSError(5, "injected torn write at snapshot.write")
        fh.write(text)
        fh.flush()
        if not faults.lie("snapshot.write"):
            os.fsync(fh.fileno())


def payload_checksum(payload: Mapping[str, Any]) -> int:
    """A CRC32 over the canonical JSON form of ``payload``.

    Key order and file formatting don't affect it (``sort_keys`` +
    compact separators), so a manifest can be checksummed before it is
    pretty-printed and verified after a round-trip through disk.  The
    ``checksum`` key itself is excluded.
    """
    canon = json.dumps(
        {k: v for k, v in payload.items() if k != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return zlib.crc32(canon.encode("utf-8"))


def isb_to_dict(isb: ISB) -> dict[str, Any]:
    """A stable JSON-ready mapping for one ISB."""
    return {
        "t_b": isb.t_b,
        "t_e": isb.t_e,
        "base": isb.base,
        "slope": isb.slope,
    }


def isb_from_dict(payload: Mapping[str, Any]) -> ISB:
    """Inverse of :func:`isb_to_dict`."""
    return decoding(
        "isb",
        lambda: ISB(
            t_b=int(payload["t_b"]),
            t_e=int(payload["t_e"]),
            base=float(payload["base"]),
            slope=float(payload["slope"]),
        ),
    )


# ----------------------------------------------------------------------
# Tilt-frame codecs (the regression/tilt layer of the snapshot format).
# ----------------------------------------------------------------------
def tilt_level_to_dict(spec: TiltLevelSpec) -> dict[str, Any]:
    """JSON-ready form of one :class:`~repro.tilt.frame.TiltLevelSpec`."""
    return {
        "name": spec.name,
        "unit_ticks": spec.unit_ticks,
        "capacity": spec.capacity,
    }


def tilt_level_from_dict(payload: Mapping[str, Any]) -> TiltLevelSpec:
    """Inverse of :func:`tilt_level_to_dict`."""
    return decoding(
        "tilt_level",
        lambda: TiltLevelSpec(
            name=str(payload["name"]),
            unit_ticks=int(payload["unit_ticks"]),
            capacity=int(payload["capacity"]),
        ),
    )


def frame_to_dict(frame: TiltTimeFrame) -> dict[str, Any]:
    """Versioned JSON-ready form of a whole tilt frame.

    Captures everything :meth:`TiltTimeFrame.from_state` needs: level
    specs, origin, clock (``now``), the eviction counter, and every
    retained slot per level.  ``frame_from_dict(frame_to_dict(f))`` is
    bit-identical to ``f`` — same slots, same clock, same accounting.
    """
    return {
        "format": "repro-tilt-frame",
        "version": STATE_VERSION,
        "levels": [tilt_level_to_dict(lv) for lv in frame.levels],
        "origin": frame.origin,
        "next_tick": frame.now,
        "evicted": frame.evicted_slots,
        "slots": [
            [isb_to_dict(slot) for slot in frame.slots(i)]
            for i in range(len(frame.levels))
        ],
    }


def frame_from_dict(
    payload: Mapping[str, Any],
    levels: tuple[TiltLevelSpec, ...] | None = None,
) -> TiltTimeFrame:
    """Inverse of :func:`frame_to_dict`.

    ``levels``, when given, must equal the payload's level specs and is
    used *by identity* for the rebuilt frame — the stream engine passes one
    shared tuple so every restored cell frame keeps the identity-based
    alignment fast path (:meth:`TiltTimeFrame.aligned_with`).
    """
    # The frame payload's shape did not change between state versions 1
    # and 2 (only the engine-state cell rows did), so both tags decode.
    check_format("tilt_frame", payload, "repro-tilt-frame", (1, STATE_VERSION))
    decoded = tuple(
        tilt_level_from_dict(entry)
        for entry in decoding("tilt_frame", lambda: list(payload["levels"]))
    )
    if levels is not None:
        if tuple(levels) != decoded:
            raise CodecError(
                "tilt_frame: payload levels do not match the shared level "
                f"specs ({decoded} vs {tuple(levels)})"
            )
        decoded = tuple(levels)

    def build() -> TiltTimeFrame:
        try:
            return TiltTimeFrame.from_state(
                decoded,
                origin=int(payload["origin"]),
                next_tick=int(payload["next_tick"]),
                evicted=int(payload["evicted"]),
                slots=[
                    [isb_from_dict(entry) for entry in level_slots]
                    for level_slots in payload["slots"]
                ],
            )
        except TiltFrameError as exc:
            # Structurally invalid state (over-capacity slots, bad level
            # geometry) is a malformed payload from the codec's viewpoint.
            raise CodecError(f"tilt_frame: invalid frame state ({exc})") from None

    return decoding("tilt_frame", build)


def cells_to_payload(cells: Mapping[Values, ISB]) -> list[dict[str, Any]]:
    """A JSON-ready row list for a cell mapping (one ``{values, isb}`` per
    cell) — the wire format of both the checkpoint files here and the HTTP
    service in :mod:`repro.service`."""
    return [
        {"values": list(values), "isb": isb_to_dict(isb)}
        for values, isb in cells.items()
    ]


def cells_from_payload(rows: list[dict[str, Any]]) -> dict[Values, ISB]:
    """Inverse of :func:`cells_to_payload`; rejects duplicate cells."""
    out: dict[Values, ISB] = {}
    for row in rows:
        values = decoding("cells", lambda: tuple(row["values"]))
        if values in out:
            raise CodecError(f"cells: duplicate cell {values} in payload")
        out[values] = isb_from_dict(
            decoding("cells", lambda: row["isb"])
        )
    return out


# ----------------------------------------------------------------------
# Engine-state codecs (the stream layer of the snapshot format).
# The encode/decode logic lives with EngineState in repro.stream.state;
# these wrappers keep repro.io the one serialization facade.  Imports are
# function-local because repro.stream.state imports this module at load
# time.
# ----------------------------------------------------------------------
def engine_state_to_dict(state: Any) -> dict[str, Any]:
    """JSON-ready form of a :class:`~repro.stream.state.EngineState`."""
    return state.to_dict()


def engine_state_from_dict(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`engine_state_to_dict` — bit-identical round trip."""
    from repro.stream.state import EngineState

    return EngineState.from_dict(payload)


# ----------------------------------------------------------------------
# Query-spec codecs (the wire format of the declarative query API).
# The encode/decode logic lives with the spec classes in repro.query.spec;
# these wrappers make repro.io the one serialization facade.  Imports are
# function-local because repro.query.exec imports this module at load time.
# ----------------------------------------------------------------------
def spec_to_dict(spec: Any) -> dict[str, Any]:
    """JSON-ready wire form of a :class:`~repro.query.spec.QuerySpec`."""
    return spec.to_dict()


def spec_from_dict(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`spec_to_dict`: ``decode(encode(spec)) == spec``."""
    from repro.query.spec import spec_from_dict as decode

    return decode(payload)


def batch_to_dict(batch: Any) -> dict[str, Any]:
    """JSON-ready wire form of a :class:`~repro.query.spec.BatchQuery`."""
    return batch.to_dict()


def batch_from_dict(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`batch_to_dict`."""
    from repro.query.spec import BatchQuery

    return BatchQuery.from_dict(payload)


def result_to_dict(result: Any) -> dict[str, Any]:
    """Wire form of a :class:`~repro.query.exec.QueryResult` envelope."""
    return result.to_dict()


def _load_json(codec: str, path: str | Path) -> Any:
    try:
        return json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise CodecError(f"{codec}: {path} is not valid JSON ({exc})") from None


def dump_cells(cells: Mapping[Values, ISB], path: str | Path) -> None:
    """Write an m-layer (or any cell mapping) to a JSON file."""
    payload = {
        "format": "repro-cells",
        "version": _FORMAT_VERSION,
        "cells": cells_to_payload(cells),
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_cells(path: str | Path) -> dict[Values, ISB]:
    """Read a cell mapping written by :func:`dump_cells`."""
    payload = _load_json("cells", path)
    check_format("cells", payload, "repro-cells", _FORMAT_VERSION)
    return cells_from_payload(
        decoding("cells", lambda: payload["cells"])
    )


def dump_exceptions(
    retained: Mapping[tuple[int, ...], Mapping[Values, ISB]],
    path: str | Path,
) -> None:
    """Write per-cuboid retained exception cells to a JSON file."""
    payload = {
        "format": "repro-exceptions",
        "version": _FORMAT_VERSION,
        "cuboids": [
            {"coord": list(coord), "cells": cells_to_payload(cells)}
            for coord, cells in retained.items()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_exceptions(
    path: str | Path,
) -> dict[tuple[int, ...], dict[Values, ISB]]:
    """Read exception cells written by :func:`dump_exceptions`."""
    payload = _load_json("exceptions", path)
    check_format("exceptions", payload, "repro-exceptions", _FORMAT_VERSION)

    def build() -> dict[tuple[int, ...], dict[Values, ISB]]:
        return {
            tuple(int(c) for c in entry["coord"]): cells_from_payload(
                entry["cells"]
            )
            for entry in payload["cuboids"]
        }

    return decoding("exceptions", build)
