"""Header tables for H-tree traversal (paper Section 4.4, Figure 7).

For each attribute of the tree, a header table maps each distinct value to
the head of the side-linked chain of tree nodes carrying that value.  The
H-cubing computation walks these chains to visit "all nodes contributing to
the cells" of a group-by without scanning the whole tree.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.htree.node import HTreeNode

__all__ = ["HeaderTable", "HEADER_ENTRY_BYTES"]

#: Analytic memory cost of one header entry (value id + chain head pointer +
#: aggregate slot), mirroring a C implementation.
HEADER_ENTRY_BYTES = 24


class HeaderTable:
    """Header table of one attribute: value → side-link chain head."""

    __slots__ = ("attr_index", "_heads", "_tails")

    def __init__(self, attr_index: int) -> None:
        self.attr_index = attr_index
        self._heads: dict[Hashable, HTreeNode] = {}
        self._tails: dict[Hashable, HTreeNode] = {}

    def register(self, node: HTreeNode) -> None:
        """Append ``node`` to the chain of its value (O(1))."""
        value = node.value
        tail = self._tails.get(value)
        if tail is None:
            self._heads[value] = node
        else:
            tail.side_link = node
        self._tails[value] = node

    def values(self) -> Iterator[Hashable]:
        """Distinct attribute values present in the tree."""
        return iter(self._heads)

    def chain(self, value: Hashable) -> Iterator[HTreeNode]:
        """All tree nodes carrying ``value`` for this attribute."""
        head = self._heads.get(value)
        if head is None:
            return iter(())
        return head.walk_side_links()

    def __len__(self) -> int:
        """Number of distinct values (header entries)."""
        return len(self._heads)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._heads
