"""The H-tree: a hyper-linked prefix tree over expanded m-layer tuples.

Following Section 4.4 (and [18]'s H-cubing structure, revised for multiple
levels per dimension), every m-layer tuple is *expanded* to include the
ancestor values of each dimension value at every hierarchy level up to the
m-layer level, and inserted as a root→leaf path in a fixed attribute order.
Shared prefixes make the tree compact; header tables with side links allow
level-wise traversal; leaves store the aggregated ISBs of m-layer cells.

Two attribute orders matter:

* **cardinality-ascending** (Algorithm 1 / Fig 7): more sharing near the
  root — Example 5's ``<A1, B1, C1, C2, A2, B2>``.
* **popular-path order** (Algorithm 2): the o-layer attributes followed by
  the drilled attribute of each path step, so that the nodes at depth
  ``len(o-attrs) + j`` are exactly the cells of the ``j``-th cuboid along the
  path — the tree then *stores* the path cuboids in its interior nodes.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

from repro.cube.hierarchy import ALL
from repro.cube.schema import CubeSchema
from repro.errors import CubingError, SchemaError
from repro.htree.header import HeaderTable
from repro.htree.node import HTreeNode
from repro.regression import kernels
from repro.regression.aggregation import merge_standard
from repro.regression.isb import ISB

__all__ = ["HTree", "cardinality_ascending_order"]

Attr = tuple[int, int]  # (dimension index, level)
Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


def cardinality_ascending_order(
    schema: CubeSchema, m_coord: Sequence[int]
) -> tuple[Attr, ...]:
    """Attribute order sorted by level cardinality, smallest first.

    Covers every ``(dimension, level)`` with ``1 <= level <= m_level`` —
    the expansion Example 5 prescribes.  Lower-cardinality attributes sit
    nearer the root "since there are likely more sharings at higher level
    nodes".  Ties break by (dimension, level) for determinism.
    """
    m = schema.validate_coord(m_coord)
    attrs = [
        (d, level)
        for d in range(schema.n_dims)
        for level in range(1, m[d] + 1)
    ]
    return tuple(
        sorted(
            attrs,
            key=lambda a: (
                schema.dimensions[a[0]].hierarchy.cardinality(a[1]),
                a,
            ),
        )
    )


class HTree:
    """An H-tree over one m-layer dataset.

    Parameters
    ----------
    schema:
        Cube schema.
    m_coord:
        The m-layer coordinate the inserted tuples live at.
    attributes:
        The attribute order; must contain each ``(dim, level)`` with
        ``1 <= level <= m_level[dim]`` exactly once.
    """

    def __init__(
        self,
        schema: CubeSchema,
        m_coord: Sequence[int],
        attributes: Sequence[Attr],
    ) -> None:
        self.schema = schema
        self.m_coord: Coord = schema.validate_coord(m_coord)
        expected = {
            (d, level)
            for d in range(schema.n_dims)
            for level in range(1, self.m_coord[d] + 1)
        }
        if set(attributes) != expected or len(attributes) != len(expected):
            raise SchemaError(
                f"attribute order {list(attributes)} must cover exactly "
                f"{sorted(expected)}"
            )
        self.attributes: tuple[Attr, ...] = tuple(attributes)
        self._attr_pos = {attr: i for i, attr in enumerate(self.attributes)}
        self.root = HTreeNode(attr_index=-1, value=None)
        self.headers = [HeaderTable(i) for i in range(len(self.attributes))]
        self.node_count = 0
        self.tuple_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def expand(self, m_values: Sequence[Hashable]) -> list[Hashable]:
        """Expanded attribute values of an m-layer tuple, in tree order."""
        values = self.schema.validate_values(m_values, self.m_coord)
        out: list[Hashable] = []
        for d, level in self.attributes:
            hier = self.schema.dimensions[d].hierarchy
            out.append(hier.ancestor(values[d], self.m_coord[d], level))
        return out

    def insert(self, m_values: Sequence[Hashable], isb: ISB) -> HTreeNode:
        """Insert one m-layer tuple; returns the leaf holding its cell.

        Repeated inserts for the same m-layer cell aggregate their ISBs with
        Theorem 3.2 (the tuples describe sibling streams of one cell).
        """
        node = self.root
        for attr_index, value in enumerate(self.expand(m_values)):
            child = node.children.get(value)
            if child is None:
                child = HTreeNode(attr_index, value, parent=node)
                node.children[value] = child
                self.headers[attr_index].register(child)
                self.node_count += 1
            node = child
        node.isb = isb if node.isb is None else merge_standard([node.isb, isb])
        self.tuple_count += 1
        return node

    def insert_many(
        self, cells: Iterable[tuple[Sequence[Hashable], ISB]]
    ) -> None:
        """Bulk-insert m-layer tuples with the per-tuple work hoisted out.

        Semantically ``for values, isb in cells: self.insert(values, isb)``,
        but the expansion resolves each attribute through a prebuilt
        :meth:`~repro.cube.hierarchy.ConceptHierarchy.ancestor_mapper` and a
        coordinate-bound value validator instead of re-deriving both per
        tuple — the builders in :mod:`repro.cubing.build` load whole
        m-layers through this.
        """
        validate = self.schema.values_validator(self.m_coord)
        mappers = [
            (
                d,
                self.schema.dimensions[d].hierarchy.ancestor_mapper(
                    self.m_coord[d], level
                ),
            )
            for d, level in self.attributes
        ]
        headers = self.headers
        for m_values, isb in cells:
            values = validate(m_values)
            node = self.root
            for attr_index, (d, mapper) in enumerate(mappers):
                value = mapper(values[d])
                child = node.children.get(value)
                if child is None:
                    child = HTreeNode(attr_index, value, parent=node)
                    node.children[value] = child
                    headers[attr_index].register(child)
                    self.node_count += 1
                node = child
            node.isb = (
                isb
                if node.isb is None
                else merge_standard([node.isb, isb])
            )
            self.tuple_count += 1

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def nodes_at_depth(self, depth: int) -> Iterator[HTreeNode]:
        """All nodes at the given depth (attribute position ``depth - 1``).

        Depth 0 yields the root.  Traversal goes through the header table of
        the attribute, chain by chain — the H-cubing access pattern.
        """
        if depth == 0:
            yield self.root
            return
        if not 1 <= depth <= len(self.attributes):
            raise CubingError(f"no depth {depth} in a {len(self.attributes)}-attribute tree")
        header = self.headers[depth - 1]
        for value in header.values():
            yield from header.chain(value)

    def leaves(self) -> Iterator[HTreeNode]:
        """All leaf nodes (the m-layer cells)."""
        return self.nodes_at_depth(len(self.attributes))

    @property
    def header_entry_count(self) -> int:
        return sum(len(h) for h in self.headers)

    # ------------------------------------------------------------------
    # Cell addressing
    # ------------------------------------------------------------------
    def attr_position(self, dim: int, level: int) -> int:
        """Position of attribute ``(dim, level)`` in the tree order."""
        try:
            return self._attr_pos[(dim, level)]
        except KeyError:
            raise CubingError(
                f"attribute (dim={dim}, level={level}) not in tree order"
            ) from None

    def cell_values(self, node: HTreeNode, coord: Sequence[int]) -> Values:
        """The value tuple of ``node``'s cell in cuboid ``coord``.

        Every non-``*`` level of ``coord`` must appear within the node's
        root-path prefix (guaranteed for path-order trees when ``coord`` is
        the path cuboid matching the node's depth).
        """
        coord = self.schema.validate_coord(coord)
        prefix = node.path_values()
        out: list[Hashable] = []
        for d, level in enumerate(coord):
            if level == 0:
                out.append(ALL)
                continue
            pos = self.attr_position(d, level)
            if pos >= len(prefix):
                raise CubingError(
                    f"attribute (dim={d}, level={level}) at position {pos} "
                    f"is beyond the node's depth {len(prefix)}"
                )
            out.append(prefix[pos])
        return tuple(out)

    def leaf_cells(self) -> Iterator[tuple[Values, ISB]]:
        """The m-layer cells as ``(values, isb)`` pairs."""
        for leaf in self.leaves():
            if leaf.isb is None:  # pragma: no cover - insert always sets it
                raise CubingError("leaf without an ISB")
            yield self.cell_values(leaf, self.m_coord), leaf.isb

    # ------------------------------------------------------------------
    # Interior aggregation (popular-path storage)
    # ------------------------------------------------------------------
    def aggregate_interior(self) -> None:
        """Store at every interior node the Theorem 3.2 merge of its subtree.

        After this, a path-order tree materializes every cuboid along the
        popular path in its nodes ("with the aggregated regression points
        stored in the nonleaf nodes", Algorithm 2 Step 2).

        With numpy available the pass runs level-wise bottom-up: each
        depth's parent sums are one grouped kernel call
        (:func:`repro.regression.kernels.segment_merge`) over the children
        gathered through the header tables, producing bit-identical results
        to the recursive scalar fold (both add children sequentially in
        child order).
        """
        if kernels.HAVE_NUMPY and self.attributes:
            self._aggregate_levelwise()
        else:
            self._aggregate(self.root)

    def _aggregate_levelwise(self) -> None:
        depth = len(self.attributes)
        for leaf in self.nodes_at_depth(depth):
            if leaf.isb is None:
                raise CubingError("leaf without an ISB; insert data first")
        window: tuple[int, int] | None = None
        for depth in range(len(self.attributes) - 1, -1, -1):
            parents = list(self.nodes_at_depth(depth))
            if not parents:  # nothing registered at this depth yet
                continue
            children_isbs: list[ISB] = []
            starts: list[int] = []
            for parent in parents:
                if not parent.children:
                    # A leaf shallower than the full depth cannot exist by
                    # construction (insert always walks every attribute) —
                    # except the root of an empty tree, caught below.
                    raise CubingError("leaf without an ISB; insert data first")
                starts.append(len(children_isbs))
                for child in parent.children.values():
                    assert child.isb is not None  # set by the deeper pass
                    children_isbs.append(child.isb)
            cols = kernels.ISBColumns.from_isbs(children_isbs)
            if window is None:
                if len(children_isbs) and not (
                    int(cols.t_b.min()) == int(cols.t_b.max())
                    and int(cols.t_e.min()) == int(cols.t_e.max())
                ):
                    raise CubingError(
                        "m-layer cells with differing windows cannot share "
                        "a tree"
                    )
                window = (int(cols.t_b[0]), int(cols.t_e[0]))
            merged = kernels.segment_merge(cols, starts).to_isbs()
            for parent, isb in zip(parents, merged):
                parent.isb = isb

    def _aggregate(self, node: HTreeNode) -> ISB:
        if node.is_leaf:
            if node.isb is None:
                raise CubingError("leaf without an ISB; insert data first")
            return node.isb
        # Children all share the tree's single time window, so Theorem 3.2
        # reduces to summing bases and slopes; the generic merge_standard
        # re-validates intervals per child, which this hot path skips.
        children = [self._aggregate(child) for child in node.children.values()]
        first = children[0]
        base = first.base
        slope = first.slope
        for child in children[1:]:
            if child.t_b != first.t_b or child.t_e != first.t_e:
                raise CubingError(
                    "m-layer cells with differing windows cannot share a tree"
                )
            base += child.base
            slope += child.slope
        node.isb = ISB(first.t_b, first.t_e, base, slope)
        return node.isb

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HTree(attrs={len(self.attributes)}, nodes={self.node_count}, "
            f"tuples={self.tuple_count})"
        )
