"""H-tree substrate: hyper-linked prefix tree with header tables."""

from repro.htree.header import HEADER_ENTRY_BYTES, HeaderTable
from repro.htree.node import HTREE_NODE_BYTES, HTreeNode
from repro.htree.tree import HTree, cardinality_ascending_order

__all__ = [
    "HTree",
    "HTreeNode",
    "HeaderTable",
    "cardinality_ascending_order",
    "HTREE_NODE_BYTES",
    "HEADER_ENTRY_BYTES",
]
