"""H-tree nodes (paper Section 4.4, Figure 7).

Each node carries one ``(attribute, value)`` pair — an attribute being a
``(dimension, level)`` of the cube — plus child links, a parent link, a
side-link to the next node with the same (attribute, value) (the basis of the
header-table traversal), and an optional aggregated ISB (always present on
leaves; on interior nodes only for popular-path cubing, which stores the
path-cuboid regressions in the tree itself).
"""

from __future__ import annotations

from typing import Hashable, Iterator, Optional

from repro.regression.isb import ISB

__all__ = ["HTreeNode", "HTREE_NODE_BYTES"]

#: Analytic per-node memory cost used by the cubing memory model: an attribute
#: id + value id + parent/child/side pointers as a C implementation would lay
#: them out (4 + 8 + 3 * 8 bytes, rounded to alignment).
HTREE_NODE_BYTES = 40


class HTreeNode:
    """One node of an H-tree."""

    __slots__ = ("attr_index", "value", "parent", "children", "side_link", "isb")

    def __init__(
        self,
        attr_index: int,
        value: Hashable,
        parent: Optional["HTreeNode"] = None,
    ) -> None:
        self.attr_index = attr_index
        self.value = value
        self.parent = parent
        self.children: dict[Hashable, HTreeNode] = {}
        self.side_link: HTreeNode | None = None
        self.isb: ISB | None = None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        """Number of attribute edges from the root (root has depth 0)."""
        d = 0
        node = self
        while node.parent is not None:
            d += 1
            node = node.parent
        return d

    def path_values(self) -> list[Hashable]:
        """Attribute values along the root→node path, root side first."""
        out: list[Hashable] = []
        node: HTreeNode | None = self
        while node is not None and node.parent is not None:
            out.append(node.value)
            node = node.parent
        out.reverse()
        return out

    def walk_side_links(self) -> Iterator["HTreeNode"]:
        """Iterate this node and all nodes reachable via side links."""
        node: HTreeNode | None = self
        while node is not None:
            yield node
            node = node.side_link

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HTreeNode(attr={self.attr_index}, value={self.value!r}, "
            f"children={len(self.children)}, leaf={self.is_leaf})"
        )
