"""Differential verification: oracle, chaos scenarios, and the soak harness.

The paper's central claim is *losslessness*: every compressed, sharded,
cached, or recovered answer the system serves must equal what a naive
regression over the retained raw stream would compute.  This subpackage is
the machinery that checks that claim end to end:

* :mod:`repro.verify.oracle` — a deliberately naive golden reference that
  retains raw records and recomputes cells, roll-ups, windows, and o-layer
  flags from scratch with ``math.fsum`` least squares, sharing no code with
  the kernels, the H-tree, or the cubing algorithms; plus ulp-reporting
  comparators.
* :mod:`repro.verify.scenarios` — seeded, declarative chaos scenarios that
  drive the engine, the sharded cube and the query layer through bursts,
  duplicates, snapshots, reshards, WAL crashes, prunes, and cache churn,
  differentially checking every step against the oracle.
* :mod:`repro.verify.soak` — a multi-threaded soak runner hammering a live
  HTTP server with concurrent ingest/query/snapshot traffic and verifying
  the final state against the oracle (``python -m repro soak``).
"""

from repro.verify.oracle import (
    DEFAULT_TOLERANCE,
    OracleISB,
    RawStreamOracle,
    Tolerance,
    VerifyMismatch,
    assert_cells_equal,
    assert_cube_equal,
    assert_result_equal,
    isb_agree,
    ulp_distance,
)
from repro.verify.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioReport,
    ScenarioRunner,
    run_scenario,
)
from repro.verify.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "DEFAULT_TOLERANCE",
    "OracleISB",
    "RawStreamOracle",
    "Tolerance",
    "VerifyMismatch",
    "assert_cells_equal",
    "assert_cube_equal",
    "assert_result_equal",
    "isb_agree",
    "ulp_distance",
    "SCENARIOS",
    "Scenario",
    "ScenarioReport",
    "ScenarioRunner",
    "run_scenario",
    "SoakConfig",
    "SoakReport",
    "run_soak",
]
