"""The brute-force golden reference for differential verification.

:class:`RawStreamOracle` retains every accepted primitive record and
recomputes, from scratch and with ``math.fsum``-based least squares, every
answer the optimized system derives through ISB compression, tilt-frame
folding, columnar kernels, cross-shard merging, or snapshot/WAL recovery:
quarter cells, analysis windows, cuboid roll-ups, o-layer exception flags,
change regressions, and Framework 4.1 retention closures.

Independence contract
---------------------

This module deliberately shares **no code** with
:mod:`repro.regression.kernels`, :mod:`repro.regression.aggregation`,
:mod:`repro.htree`, :mod:`repro.tilt`, or :mod:`repro.cubing`.  It consumes
only *configuration* objects (schema, layers, policy thresholds) and the
plain :class:`~repro.stream.records.StreamRecord` value type; all numerics
are re-derived here from the paper's definitions:

* a quarter's regression is the LSE fit over the quarter's per-tick sums
  (several records of one cell at one tick sum point-wise), fitted over the
  *recorded* ticks and presented over the full quarter — the documented
  ``fit_window`` sealing semantics;
* a multi-quarter window's regression is the LSE fit of the concatenated
  per-quarter fitted lines sampled at every tick (the raw-data meaning of
  Theorem 3.3's losslessness);
* a coarser cuboid cell's series is the point-wise sum of its descendant
  m-cells' fitted lines (Theorem 3.2's standard-dimension semantics);
* exception flags compare ``|slope|`` against the policy's threshold for
  the cuboid, and retention follows the Framework 4.1 closure.

Comparators report disagreements in **ulps** (units in the last place of
the larger magnitude).  The fast paths fold sums sequentially where this
oracle uses ``fsum``, so agreement is to ulps, not bits; the default
:data:`DEFAULT_TOLERANCE` (about 1e-9 relative, 1e-9 absolute floor)
matches the compatibility contract pinned in
``tests/regression/test_kernels.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping

from repro.cube.layers import CriticalLayers
from repro.cubing.policy import ExceptionPolicy
from repro.regression.isb import ISB
from repro.stream.records import StreamRecord

__all__ = [
    "OracleISB",
    "Tolerance",
    "DEFAULT_TOLERANCE",
    "VerifyMismatch",
    "RawStreamOracle",
    "ulp_distance",
    "isb_agree",
    "assert_cells_equal",
    "assert_cube_equal",
    "assert_result_equal",
]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]
KeyFn = Callable[[StreamRecord], Values]


# ----------------------------------------------------------------------
# Ulp-tolerance comparators
# ----------------------------------------------------------------------
class VerifyMismatch(AssertionError):
    """A differential check failed; the message carries ulp diagnostics."""


@dataclass(frozen=True)
class Tolerance:
    """How far an optimized answer may sit from the oracle's.

    ``max_ulps`` bounds the relative disagreement in units of the last
    place of the larger magnitude (2**22 ulps is about 1e-9 relative);
    ``abs_tol`` floors the comparison for heavily cancelled near-zero
    quantities, whose relative error is unbounded by construction.
    """

    max_ulps: float = float(2**22)
    abs_tol: float = 1e-9


DEFAULT_TOLERANCE = Tolerance()


def ulp_distance(a: float, b: float) -> float:
    """``|a - b|`` measured in ulps of the larger magnitude."""
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    return abs(a - b) / math.ulp(scale)


def _floats_agree(a: float, b: float, tol: Tolerance) -> bool:
    if a == b:
        return True
    if abs(a - b) <= tol.abs_tol:
        return True
    return ulp_distance(a, b) <= tol.max_ulps


def _diff_text(what: str, a: float, b: float) -> str:
    return (
        f"{what}: system={a!r} oracle={b!r} "
        f"(abs diff {abs(a - b):.3e}, {ulp_distance(a, b):.0f} ulps)"
    )


@dataclass(frozen=True)
class OracleISB:
    """The oracle's own 4-number regression summary (interval + line).

    Intentionally *not* :class:`repro.regression.isb.ISB` — the oracle
    produces and consumes only its own value type, so no shared method
    (means, totals, merges) can leak system arithmetic into the reference.
    """

    t_b: int
    t_e: int
    base: float
    slope: float

    @property
    def n(self) -> int:
        return self.t_e - self.t_b + 1

    def value_at(self, t: int) -> float:
        return self.base + self.slope * t

    def value_at_mean(self) -> float:
        """The fitted value at the interval's mean tick (= the series mean)."""
        return self.base + self.slope * ((self.t_b + self.t_e) / 2.0)


def isb_agree(
    actual: ISB, expected: OracleISB, tol: Tolerance = DEFAULT_TOLERANCE
) -> str | None:
    """``None`` when the system ISB matches the oracle's, else a report.

    Lines are compared at their interval *endpoints* (the paper's IntVal
    view), not as raw ``(base, slope)`` pairs: two fitted values determine
    the line completely, and the endpoint values live at the data's own
    magnitude.  ``base`` is the fitted value extrapolated to ``t = 0``,
    which for a window sealed at tick ~10⁴ amplifies the sealing
    equations' inherent ~1e-9 relative slope noise by the full distance to
    the origin — a comparison there would measure conditioning, not
    correctness.  The tolerance is scaled to the line's overall magnitude
    (the larger endpoint), so a near-zero crossing at one endpoint does
    not turn ulp noise into a false mismatch.
    """
    if (actual.t_b, actual.t_e) != (expected.t_b, expected.t_e):
        return (
            f"interval mismatch: system [{actual.t_b},{actual.t_e}] "
            f"oracle [{expected.t_b},{expected.t_e}]"
        )
    pairs = [
        ("z(t_b)", actual.predict(actual.t_b), expected.value_at(expected.t_b)),
        ("z(t_e)", actual.predict(actual.t_e), expected.value_at(expected.t_e)),
    ]
    scale = max(*(abs(v) for _, a, b in pairs for v in (a, b)), 1.0)
    allowed = max(tol.abs_tol, tol.max_ulps * math.ulp(scale))
    problems = [
        _diff_text(what, a, b)
        for what, a, b in pairs
        if abs(a - b) > allowed
    ]
    return "; ".join(problems) or None


def assert_cells_equal(
    actual: Mapping[Values, ISB],
    expected: Mapping[Values, OracleISB],
    what: str = "cells",
    tol: Tolerance = DEFAULT_TOLERANCE,
) -> None:
    """Assert a system cell map matches the oracle's, with ulp reporting."""
    missing = sorted(map(repr, set(expected) - set(actual)))
    extra = sorted(map(repr, set(actual) - set(expected)))
    if missing or extra:
        raise VerifyMismatch(
            f"{what}: key sets differ; system is missing "
            f"{missing or 'nothing'} and has extra {extra or 'nothing'}"
        )
    for key, oracle_isb in expected.items():
        report = isb_agree(actual[key], oracle_isb, tol)
        if report:
            raise VerifyMismatch(f"{what}[{key!r}]: {report}")


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------
def _fsum_fit(
    points: Iterable[tuple[int, float]], lo: int, hi: int
) -> OracleISB:
    """Naive LSE over ``(tick, value)`` points, presented over ``[lo, hi]``.

    Mirrors the documented sealing semantics: no points is the flat zero
    line, a single distinct tick is flat at its value, otherwise the
    textbook centered least squares computed with ``math.fsum``.
    """
    pts = list(points)
    if not pts:
        return OracleISB(lo, hi, 0.0, 0.0)
    n = len(pts)
    mean_t = math.fsum(t for t, _ in pts) / n
    mean_z = math.fsum(z for _, z in pts) / n
    denom = math.fsum((t - mean_t) ** 2 for t, _ in pts)
    if denom == 0.0:
        return OracleISB(lo, hi, mean_z, 0.0)
    numer = math.fsum((t - mean_t) * (z - mean_z) for t, z in pts)
    slope = numer / denom
    base = mean_z - slope * mean_t
    return OracleISB(lo, hi, base, slope)


class RawStreamOracle:
    """Golden reference: raw records in, from-scratch regressions out.

    Feed it exactly the traffic the system *accepted* (acknowledged
    batches and explicit clock advances) and it will independently answer
    every read the system serves.  Memory is O(records) and every query is
    O(records + window) — the whole point is to be too simple to be wrong,
    not to be fast.
    """

    def __init__(
        self,
        layers: CriticalLayers,
        policy: ExceptionPolicy,
        ticks_per_quarter: int = 15,
        key_fn: KeyFn | None = None,
    ) -> None:
        self.layers = layers
        self.policy = policy
        self.ticks_per_quarter = ticks_per_quarter
        self.key_fn: KeyFn = key_fn if key_fn is not None else (
            lambda record: record.values
        )
        #: Raw retained history: cell key -> [(t, z), ...] in arrival order.
        self._by_key: dict[Values, list[tuple[int, float]]] = {}
        self._last_active: dict[Values, int] = {}
        self.current_quarter = 0
        self.records_ingested = 0

    # ------------------------------------------------------------------
    # Mirrored traffic
    # ------------------------------------------------------------------
    def ingest(self, records: Iterable[StreamRecord]) -> int:
        """Mirror one accepted batch; returns how many records were added."""
        count = 0
        for record in records:
            key = self.key_fn(record)
            quarter = record.t // self.ticks_per_quarter
            self._by_key.setdefault(key, []).append((record.t, record.z))
            self._last_active[key] = quarter
            if quarter > self.current_quarter:
                self.current_quarter = quarter
            count += 1
        self.records_ingested += count
        return count

    def advance_to(self, t: int) -> None:
        """Mirror an explicit clock advance."""
        quarter = t // self.ticks_per_quarter
        if quarter > self.current_quarter:
            self.current_quarter = quarter

    @property
    def tracked_cells(self) -> int:
        return len(self._by_key)

    def keys(self) -> list[Values]:
        return list(self._by_key)

    # ------------------------------------------------------------------
    # Pruning (idle-cell retirement mirrors the engine's documented rule)
    # ------------------------------------------------------------------
    def idle_keys(self, idle_quarters: int) -> set[Values]:
        """Cells with no record in the last ``idle_quarters`` quarters."""
        window = min(idle_quarters, self.current_quarter)
        if window == 0:
            return set()
        cutoff = self.current_quarter - window
        return {
            key
            for key, last in self._last_active.items()
            if last < cutoff
        }

    def drop_keys(self, keys: Iterable[Values]) -> None:
        """Forget pruned cells entirely.

        A pruned cell that speaks again re-enters zero-backfilled, exactly
        as the engine re-creates it from the zero prototype — so its old
        records must stop contributing to every future answer.
        """
        for key in keys:
            self._by_key.pop(key, None)
            self._last_active.pop(key, None)

    # ------------------------------------------------------------------
    # From-scratch regression answers
    # ------------------------------------------------------------------
    def _quarter_points(
        self, key: Values, quarter: int
    ) -> list[tuple[int, float]]:
        """Per-tick ``fsum`` sums of one cell's records within one quarter."""
        lo = quarter * self.ticks_per_quarter
        hi = lo + self.ticks_per_quarter - 1
        per_tick: dict[int, list[float]] = {}
        for t, z in self._by_key.get(key, ()):
            if lo <= t <= hi:
                per_tick.setdefault(t, []).append(z)
        return sorted(
            (t, math.fsum(zs)) for t, zs in per_tick.items()
        )

    def quarter_isb(self, key: Values, quarter: int) -> OracleISB:
        """The sealed regression of one cell's quarter, from raw records."""
        lo = quarter * self.ticks_per_quarter
        hi = lo + self.ticks_per_quarter - 1
        return _fsum_fit(self._quarter_points(key, quarter), lo, hi)

    def _check_window(self, t_b: int, t_e: int) -> tuple[int, int]:
        q = self.ticks_per_quarter
        if t_b % q != 0 or (t_e + 1) % q != 0 or t_b > t_e:
            raise VerifyMismatch(
                f"oracle window [{t_b},{t_e}] is not quarter-aligned"
            )
        if t_e >= self.current_quarter * q:
            raise VerifyMismatch(
                f"oracle window [{t_b},{t_e}] reaches into the unsealed "
                f"quarter {self.current_quarter}"
            )
        return t_b // q, (t_e + 1) // q

    def cell_series(self, keys: Iterable[Values], t_b: int, t_e: int) -> list[float]:
        """The summed fitted-line series of a cell group over a window.

        Each member cell contributes its per-quarter fitted line sampled at
        every tick (a quarter with no records contributes zeros — the
        engine's zero-backfill); members sum point-wise per Theorem 3.2's
        standard-dimension semantics.
        """
        q_b, q_e = self._check_window(t_b, t_e)
        per_tick: list[list[float]] = [[] for _ in range(t_e - t_b + 1)]
        for key in keys:
            for quarter in range(q_b, q_e):
                line = self.quarter_isb(key, quarter)
                for t in range(line.t_b, line.t_e + 1):
                    per_tick[t - t_b].append(line.value_at(t))
        return [math.fsum(vals) for vals in per_tick]

    def window_isb(
        self, keys: Iterable[Values], t_b: int, t_e: int
    ) -> OracleISB:
        """The regression of a cell group's raw stream over a sealed window."""
        series = self.cell_series(keys, t_b, t_e)
        return _fsum_fit(
            list(enumerate(series, start=t_b)), t_b, t_e
        )

    def window_bounds(self, window_quarters: int) -> tuple[int, int]:
        """The tick bounds of "the last ``window_quarters`` sealed quarters"."""
        return self.window_bounds_at(self.current_quarter, window_quarters)

    def window_bounds_at(
        self, as_of_quarter: int, window_quarters: int
    ) -> tuple[int, int]:
        """The tick bounds of the ``window_quarters`` sealed quarters ending
        just before ``as_of_quarter`` — the window a subscriber's pushed
        update answered when its quarter clock read ``as_of_quarter``."""
        q = self.ticks_per_quarter
        t_e = as_of_quarter * q - 1
        t_b = t_e - window_quarters * q + 1
        return t_b, t_e

    def window_isbs(self, t_b: int, t_e: int) -> dict[Values, OracleISB]:
        """Every tracked m-cell's window regression (cf. engine.window_isbs)."""
        return {
            key: self.window_isb([key], t_b, t_e) for key in self._by_key
        }

    def m_cells(self, window_quarters: int = 4) -> dict[Values, OracleISB]:
        t_b, t_e = self.window_bounds(window_quarters)
        return self.window_isbs(t_b, t_e)

    # ------------------------------------------------------------------
    # Cuboid roll-ups and exception flags
    # ------------------------------------------------------------------
    def _groups_at(self, coord: Coord) -> dict[Values, list[Values]]:
        """Tracked m-cells grouped by their ancestor cell at ``coord``."""
        schema = self.layers.schema
        m_coord = self.layers.m_coord
        mappers = [
            dim.hierarchy.ancestor_mapper(f, t)
            for dim, f, t in zip(schema.dimensions, m_coord, coord)
        ]
        groups: dict[Values, list[Values]] = {}
        for key in self._by_key:
            ancestor = tuple(m(v) for m, v in zip(mappers, key))
            groups.setdefault(ancestor, []).append(key)
        return groups

    def cuboid_cells(
        self, coord: Iterable[int], window_quarters: int
    ) -> dict[Values, OracleISB]:
        """Every cell of one cuboid, re-aggregated from raw records."""
        t_b, t_e = self.window_bounds(window_quarters)
        return self.cuboid_cells_at(coord, t_b, t_e)

    def cuboid_cells_at(
        self, coord: Iterable[int], t_b: int, t_e: int
    ) -> dict[Values, OracleISB]:
        """One cuboid over an *explicit* sealed window — the historical
        form behind :meth:`cuboid_cells`, used to re-check subscription
        updates at the quarter each one was delivered for."""
        return {
            ancestor: self.window_isb(members, t_b, t_e)
            for ancestor, members in self._groups_at(tuple(coord)).items()
        }

    def is_exception(self, isb: OracleISB, coord: Coord) -> bool:
        return abs(isb.slope) >= self.policy.threshold_for(coord)

    def exceptional_cells(
        self, coord: Iterable[int], window_quarters: int
    ) -> dict[Values, OracleISB]:
        t_b, t_e = self.window_bounds(window_quarters)
        return self.exceptional_cells_at(coord, t_b, t_e)

    def exceptional_cells_at(
        self, coord: Iterable[int], t_b: int, t_e: int
    ) -> dict[Values, OracleISB]:
        """The exception flags of one cuboid over an explicit sealed window."""
        c = tuple(coord)
        return {
            values: isb
            for values, isb in self.cuboid_cells_at(c, t_b, t_e).items()
            if self.is_exception(isb, c)
        }

    def o_layer_cells(self, window_quarters: int) -> dict[Values, OracleISB]:
        return self.cuboid_cells(self.layers.o_coord, window_quarters)

    def o_layer_exceptions(
        self, window_quarters: int
    ) -> dict[Values, OracleISB]:
        return self.exceptional_cells(self.layers.o_coord, window_quarters)

    def closure(
        self,
        window_quarters: int,
        seed_coords: Iterable[Coord] = (),
    ) -> dict[Coord, dict[Values, OracleISB]]:
        """Framework 4.1 retention, recomputed from raw records.

        Seeded cuboids (the o-layer plus ``seed_coords``) retain all of
        their exception cells; any other cuboid retains an exception cell
        iff one of its one-step parent cells is itself retained.
        """
        lattice = self.layers.lattice
        schema = self.layers.schema
        seeds = {self.layers.o_coord} | {tuple(c) for c in seed_coords}
        retained: dict[Coord, dict[Values, OracleISB]] = {}
        for coord in lattice.top_down_order():
            exceptional = self.exceptional_cells(coord, window_quarters)
            if coord in seeds:
                kept = exceptional
            else:
                kept = {}
                for values, isb in exceptional.items():
                    for p_coord in lattice.parents(coord):
                        mappers = [
                            dim.hierarchy.ancestor_mapper(f, t)
                            for dim, f, t in zip(
                                schema.dimensions, coord, p_coord
                            )
                        ]
                        parent_values = tuple(
                            m(v) for m, v in zip(mappers, values)
                        )
                        if parent_values in retained.get(p_coord, {}):
                            kept[values] = isb
                            break
            retained[coord] = kept
        retained.pop(self.layers.m_coord, None)
        return retained

    # ------------------------------------------------------------------
    # Change regressions (current window vs the previous one)
    # ------------------------------------------------------------------
    def _two_point(self, prev: OracleISB, cur: OracleISB) -> OracleISB:
        """The line through the two windows' mean points."""
        t_prev = (prev.t_b + prev.t_e) / 2.0
        t_cur = (cur.t_b + cur.t_e) / 2.0
        prev_mean = prev.value_at_mean()
        cur_mean = cur.value_at_mean()
        slope = (cur_mean - prev_mean) / (t_cur - t_prev)
        base = prev_mean - slope * t_prev
        return OracleISB(prev.t_b, cur.t_e, base, slope)

    def change_bounds(self, quarters_apart: int) -> tuple[int, int, int]:
        q = self.ticks_per_quarter
        end = self.current_quarter * q - 1
        cur_b = end - quarters_apart * q + 1
        prev_b = cur_b - quarters_apart * q
        return prev_b, cur_b, end

    def change_exceptions(
        self, quarters_apart: int = 1
    ) -> dict[Values, OracleISB]:
        """M-layer current-vs-previous change exceptions, from raw records."""
        prev_b, cur_b, end = self.change_bounds(quarters_apart)
        m_coord = self.layers.m_coord
        out: dict[Values, OracleISB] = {}
        for key in self._by_key:
            prev = self.window_isb([key], prev_b, cur_b - 1)
            cur = self.window_isb([key], cur_b, end)
            change = self._two_point(prev, cur)
            if self.is_exception(change, m_coord):
                out[key] = change
        return out

    def o_layer_change_exceptions(
        self, quarters_apart: int = 1
    ) -> dict[Values, OracleISB]:
        """O-layer window-over-window change exceptions, from raw records."""
        prev_b, cur_b, end = self.change_bounds(quarters_apart)
        o_coord = self.layers.o_coord
        out: dict[Values, OracleISB] = {}
        for ancestor, members in self._groups_at(o_coord).items():
            prev = self.window_isb(members, prev_b, cur_b - 1)
            cur = self.window_isb(members, cur_b, end)
            change = self._two_point(prev, cur)
            if self.is_exception(change, o_coord):
                out[ancestor] = change
        return out


# ----------------------------------------------------------------------
# Whole-result comparators
# ----------------------------------------------------------------------
def _flag_sets_equal(
    actual: Mapping[Values, ISB],
    expected: Mapping[Values, OracleISB],
    oracle: RawStreamOracle,
    coord: Coord,
    what: str,
    tol: Tolerance,
) -> None:
    """Compare exception sets, tolerating only genuine threshold ties.

    A cell present on one side only is a real failure unless its ``|slope|``
    sits within tolerance of the policy threshold — the one place where a
    ulp-level disagreement can legitimately flip a boolean.
    """
    threshold = oracle.policy.threshold_for(coord)

    def is_tie(slope: float) -> bool:
        return _floats_agree(abs(slope), threshold, tol)

    for key in set(expected) - set(actual):
        if not is_tie(expected[key].slope):
            raise VerifyMismatch(
                f"{what}: oracle flags {key!r} "
                f"(|slope|={abs(expected[key].slope)!r} vs threshold "
                f"{threshold!r}) but the system does not"
            )
    for key, isb in actual.items():
        if key in expected:
            report = isb_agree(isb, expected[key], tol)
            if report:
                raise VerifyMismatch(f"{what}[{key!r}]: {report}")
        elif not is_tie(isb.slope):
            raise VerifyMismatch(
                f"{what}: system flags {key!r} "
                f"(|slope|={abs(isb.slope)!r} vs threshold {threshold!r}) "
                "but the oracle does not"
            )


def assert_cube_equal(
    actual_cells: Mapping[Values, ISB],
    oracle: RawStreamOracle,
    coord: Iterable[int],
    window_quarters: int,
    tol: Tolerance = DEFAULT_TOLERANCE,
) -> None:
    """Assert one system cuboid equals the oracle's from-scratch roll-up."""
    c = tuple(coord)
    assert_cells_equal(
        actual_cells,
        oracle.cuboid_cells(c, window_quarters),
        what=f"cuboid {c}",
        tol=tol,
    )


def assert_result_equal(
    result,
    oracle: RawStreamOracle,
    window_quarters: int,
    tol: Tolerance = DEFAULT_TOLERANCE,
) -> None:
    """Assert a :class:`~repro.cubing.result.CubeResult` matches the oracle.

    Checks the m-layer and o-layer cell for cell, the o-layer exception
    flags, and the retained exception sets: popular-path results must equal
    the Framework 4.1 closure seeded by their materialized path cuboids;
    every other algorithm retains all exception cells of every cuboid.
    """
    layers = result.layers
    assert_cube_equal(
        dict(result.m_layer.items()), oracle, layers.m_coord,
        window_quarters, tol,
    )
    assert_cube_equal(
        dict(result.o_layer.items()), oracle, layers.o_coord,
        window_quarters, tol,
    )
    _flag_sets_equal(
        result.o_layer_exceptions(),
        oracle.o_layer_exceptions(window_quarters),
        oracle,
        layers.o_coord,
        "o-layer exceptions",
        tol,
    )
    # The m- and o-layers are retained as full cuboids, never as exception
    # sets, so the retained-exception comparison covers the intermediates.
    if result.stats.algorithm.startswith("popular"):
        seeds = tuple(result.complete_coords or ())
        expected = oracle.closure(window_quarters, seeds)
    else:
        expected = {
            coord: oracle.exceptional_cells(coord, window_quarters)
            for coord in layers.lattice.coords()
        }
    expected.pop(layers.m_coord, None)
    expected.pop(layers.o_coord, None)
    for coord, cells in expected.items():
        _flag_sets_equal(
            result.retained_exceptions.get(coord, {}),
            cells,
            oracle,
            coord,
            f"retained exceptions at {coord}",
            tol,
        )
