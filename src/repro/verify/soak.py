"""The service soak harness: concurrent HTTP traffic, oracle-verified.

``python -m repro soak --seed S --duration N`` boots a real
:class:`~repro.service.http.StreamCubeService` behind
``ThreadingHTTPServer`` (WAL + snapshot directory attached), then hammers
it from multiple threads at once:

* **ingesters** POST ``/ingest`` batches drawn from seeded per-thread
  streams over a shared tick clock.  Concurrency makes some batches land
  after a rival thread already sealed their quarter — those are *rejected*
  (400, ``StreamError``) and that is part of the chaos: the service must
  reject atomically (all-or-nothing), and only acknowledged batches count;
* **queriers** POST ``/query`` with a rotating mix of single specs, batch
  queries, and cube-level ops, checking every response decodes and is
  internally consistent (one window interval per cell map);
* an **admin** thread POSTs ``/admin/snapshot`` and GETs ``/stats`` on a
  tight loop, forcing snapshot/compaction to interleave with traffic.

When the clock runs out the server drains, and the final state faces the
:class:`~repro.verify.oracle.RawStreamOracle` built from exactly the
acknowledged batches: m-layer windows, the observation deck, the watch
list, top slopes, and change exceptions — served through the same
``handle()`` path HTTP uses — must all match to ulps, and a fresh cube
restored from the snapshot directory plus WAL replay must equal the live
one bit for bit.
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
import urllib.error
import urllib.request
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.cluster import ClusterConfig
from repro.cubing.policy import GlobalSlopeThreshold
from repro.io import isb_from_dict
from repro.query.spec import Q
from repro.service.http import StreamCubeService, make_server
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.storage import StorageConfig
from repro.stream.generator import DatasetSpec
from repro.stream.records import StreamRecord
from repro.stream.wal import QuarterWAL
from repro.verify.oracle import (
    DEFAULT_TOLERANCE,
    RawStreamOracle,
    Tolerance,
    VerifyMismatch,
    _flag_sets_equal,
    assert_cells_equal,
    isb_agree,
)

__all__ = ["SoakConfig", "SoakReport", "run_soak", "main"]


@dataclass(frozen=True)
class SoakConfig:
    """One seeded soak run's shape."""

    seed: int = 0
    duration: float = 30.0
    shards: int = 4
    dims: int = 2
    levels: int = 2
    fanout: int = 4
    ticks_per_quarter: int = 6
    threshold: float = 0.05
    window: int = 4
    ingest_threads: int = 3
    query_threads: int = 2
    #: Continuous-query subscribers: each registers over POST /subscribe
    #: (alternating o-layer watch / observation deck), long-polls
    #: ``GET /updates`` while the stream seals, checks ordering (seq
    #: strictly increasing, epoch vectors monotone, quarter consistent
    #: with the vector) on every pushed update, and unsubscribes at the
    #: end; the final audit re-checks each subscriber's last update
    #: against the oracle at that update's own quarter.
    subscribers: int = 0
    cell_pool: int = 36
    batch_records: int = 24
    host: str = "127.0.0.1"
    port: int = 0  # 0: pick an ephemeral port
    #: Cold-store backend name ("file" / "sqlite"); None runs without
    #: tiered storage.  With a backend set, sealed history past
    #: ``hot_quarters`` spills to disk *while the soak hammers the
    #: service*, so snapshot/compaction/deep-query interleavings run
    #: against a spilling cube too.
    storage: str | None = None
    hot_quarters: int = 2
    #: Shard execution backend ("inproc" / "process").  The process leg
    #: runs the whole soak — concurrent ingest, queries, snapshots and the
    #: final oracle + restore audits — against live worker processes, with
    #: the snapshot directory doubling as the workers' crash-recovery
    #: anchor.
    backend: str = "inproc"
    #: Fault-injection plan (a :mod:`repro.faults` preset name or plan-file
    #: path; None disarms).  Armed for the whole soak — traffic, snapshots,
    #: the final oracle and restore audits — with the run's ``seed``, so a
    #: fault soak is exactly reproducible.  Every preset fault class is
    #: repaired in place by the durability layer, so the verdict must stay
    #: zero mismatches.
    fault_plan: str | None = None


@dataclass
class SoakReport:
    """Counters and verification outcome of one soak run."""

    seed: int
    duration: float
    requests: dict[str, int] = field(default_factory=dict)
    batches_acked: int = 0
    batches_rejected: int = 0
    records_acked: int = 0
    snapshots: int = 0
    query_errors: int = 0
    subscription_updates: int = 0
    final_quarter: int = 0
    cells_verified: int = 0
    mismatches: int = 0
    problems: list[str] = field(default_factory=list)

    def flag(self, problem: str) -> None:
        """Record one verification failure (callers hold the report lock
        during the concurrent phase; the final audit is single-threaded)."""
        self.mismatches += 1
        if len(self.problems) < 50:
            self.problems.append(problem)

    def describe(self) -> str:
        lines = [
            f"soak seed={self.seed} duration={self.duration:.1f}s",
            f"  ingest: {self.batches_acked} batches acked "
            f"({self.records_acked} records), "
            f"{self.batches_rejected} rejected by quarter sealing",
            f"  queries: "
            + ", ".join(
                f"{op}={n}" for op, n in sorted(self.requests.items())
            ),
            f"  admin: {self.snapshots} snapshots, "
            f"{self.query_errors} malformed-query rejections",
            f"  subscriptions: {self.subscription_updates} pushed updates "
            f"received",
            f"  final quarter {self.final_quarter}, "
            f"{self.cells_verified} cells oracle-verified, "
            f"{self.mismatches} mismatches",
        ]
        lines.extend(f"  problem: {problem}" for problem in self.problems)
        return "\n".join(lines)


class _Client:
    """A tiny urllib JSON client bound to one server address."""

    def __init__(self, base: str):
        self.base = base

    def request(self, method: str, path: str, payload=None):
        """Returns ``(status, body)``; status 0 means transport failure.

        A transport failure against a healthy local server is itself a
        soak finding (and poisons the acked-batch accounting, since the
        server may or may not have applied the batch), so callers treat
        status 0 as a mismatch.
        """
        data = None if payload is None else json.dumps(payload).encode()
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())
        except OSError as exc:
            return 0, {"error": str(exc), "type": "Transport"}


class _TickClock:
    """A shared monotone tick dispenser: each caller gets a fresh slice."""

    def __init__(self, start: int = 0):
        self._next = start
        self._lock = threading.Lock()

    def take(self, ticks: int) -> int:
        with self._lock:
            t0 = self._next
            self._next += ticks
            return t0


def _guarded(worker, name: str, report: SoakReport, lock: threading.Lock):
    """A thread target that turns worker crashes into flagged mismatches.

    A daemon worker dying on an unexpected response shape (exactly the
    wire breakage the soak exists to catch) must not silently reduce
    coverage and let the run report a false pass.
    """

    def run(*args):
        try:
            worker(*args)
        except Exception as exc:  # noqa: BLE001 - anything is a finding
            with lock:
                report.flag(f"{name} worker crashed: {exc!r}")

    return run


def _ingester(
    client: _Client,
    config: SoakConfig,
    clock: _TickClock,
    pool: list[tuple],
    trends: dict,
    seed: int,
    stop: threading.Event,
    acked: list[list[StreamRecord]],
    report: SoakReport,
    lock: threading.Lock,
) -> None:
    rng = random.Random(seed)
    while not stop.is_set():
        t0 = clock.take(rng.randrange(1, 4))
        records = []
        for _ in range(config.batch_records):
            key = rng.choice(pool)
            base, slope = trends[key]
            t = t0 + rng.randrange(3)  # slight overlap across slices
            records.append(
                StreamRecord(key, t, base + slope * t + rng.uniform(-0.5, 0.5))
            )
        records.sort(key=lambda r: r.t // config.ticks_per_quarter)
        status, body = client.request(
            "POST",
            "/ingest",
            {
                "records": [
                    {"values": list(r.values), "t": r.t, "z": r.z}
                    for r in records
                ]
            },
        )
        with lock:
            if status == 200:
                acked.append(records)
                report.batches_acked += 1
                report.records_acked += len(records)
            else:
                report.batches_rejected += 1
                if body.get("type") != "StreamError":
                    report.flag(
                        f"ingest rejected with {status} "
                        f"{body.get('type')!r}: {body.get('error')!r}"
                    )
        if status == 0:
            return  # transport failure already counted; stop this worker
        time.sleep(rng.uniform(0.001, 0.01))


def _consistent_cells(body: dict) -> bool:
    """Every cell row of a response must decode and share one interval."""
    rows = body.get("cells", [])
    intervals = set()
    for row in rows:
        isb = isb_from_dict(row["isb"])
        intervals.add((isb.t_b, isb.t_e))
    return len(intervals) <= 1


def _querier(
    client: _Client,
    config: SoakConfig,
    o_coord: tuple,
    m_coord: tuple,
    seed: int,
    stop: threading.Event,
    report: SoakReport,
    lock: threading.Lock,
) -> None:
    rng = random.Random(seed)
    deck = Q.observation_deck().to_dict()
    watch = Q.watch_list().to_dict()
    tops = Q.top_slopes(o_coord, 5).to_dict()
    m_slice = Q.slice(m_coord).to_dict()
    menu = [
        ("observation_deck", deck),
        ("watch_list", watch),
        ("top_slopes", tops),
        ("slice", m_slice),
        ("batch", {"queries": [deck, watch, tops]}),
        ("change_exceptions", {"op": "change_exceptions", "layer": "o"}),
        ("exceptions", {"op": "exceptions"}),
        ("bad_query", {"op": "no_such_op"}),
    ]
    while not stop.is_set():
        name, payload = rng.choice(menu)
        status, body = client.request("POST", "/query", payload)
        ok = True
        if name == "bad_query":
            ok = status == 400 and body.get("type") == "QueryError"
            with lock:
                report.query_errors += 1
        elif status == 200:
            if name == "batch":
                # Per-item domain errors (e.g. no full window sealed yet)
                # are valid outcomes; per-item answers must be consistent.
                ok = len(body.get("results", ())) == 3 and all(
                    _consistent_cells(item)
                    if item["ok"]
                    else item.get("type") in ("StreamError", "QueryError")
                    for item in body["results"]
                )
            elif name in ("observation_deck", "watch_list", "slice"):
                ok = _consistent_cells(body)
            elif name == "top_slopes":
                ok = len(body.get("cells", ())) <= 5
        else:
            # Domain rejections (e.g. no full window sealed yet) are fine;
            # anything else is a wiring failure.
            ok = status != 0 and body.get("type") in (
                "StreamError", "QueryError",
            )
        with lock:
            report.requests[name] = report.requests.get(name, 0) + 1
            if not ok:
                report.flag(f"query {name!r} -> {status}: {str(body)[:200]}")
        if status == 0:
            return
        time.sleep(rng.uniform(0.001, 0.008))


def _admin(
    client: _Client,
    stop: threading.Event,
    report: SoakReport,
    lock: threading.Lock,
) -> None:
    last_seq = -1
    while not stop.is_set():
        status, body = client.request("POST", "/admin/snapshot", {})
        with lock:
            if status == 200:
                report.snapshots += 1
            else:
                report.flag(f"/admin/snapshot -> {status}: {str(body)[:200]}")
        status, stats = client.request("GET", "/stats")
        with lock:
            if status != 200:
                report.flag(f"/stats -> {status}")
            else:
                seq = stats["durability"]["wal_seq"]
                if seq is not None:
                    if seq < last_seq:
                        report.flag(
                            f"wal_seq went backwards: {last_seq} -> {seq}"
                        )
                    last_seq = seq
        time.sleep(0.25)


def _subscriber(
    client: _Client,
    config: SoakConfig,
    index: int,
    stop: threading.Event,
    report: SoakReport,
    lock: threading.Lock,
    last_updates: dict[str, tuple[str, dict]],
) -> None:
    """One continuous-query client: subscribe, long-poll, verify, leave.

    Every pushed update is checked for the delivery guarantees the
    subscription layer documents — per-subscription ``seq`` strictly
    increasing, epoch vectors componentwise non-decreasing, the update's
    quarter equal to the epoch vector's slowest shard clock — and for
    wire consistency (one window interval per cell map).  The last
    update each subscriber receives is stashed for the final audit,
    which recomputes it from the oracle at that update's own quarter.
    """
    kind = "watch" if index % 2 == 0 else "deck"
    payload: dict = (
        {"watch": True}
        if kind == "watch"
        else {"spec": Q.observation_deck().to_dict()}
    )
    status, body = client.request("POST", "/subscribe", payload)
    if status != 200 or "subscription" not in body:
        with lock:
            report.flag(f"/subscribe -> {status}: {str(body)[:200]}")
        return
    sub_id = body["subscription"]
    since = 0
    prev_epoch: tuple[int, ...] | None = None
    while not stop.is_set():
        status, body = client.request(
            "GET", f"/updates?subscription={sub_id}&since={since}&timeout=1.5"
        )
        if status != 200:
            with lock:
                report.flag(
                    f"subscriber {sub_id} /updates -> {status}: "
                    f"{str(body)[:200]}"
                )
            return
        problem = None
        fresh = 0
        for update in body.get("updates", ()):
            seq = update.get("seq", 0)
            epoch = tuple(update.get("epoch", ()))
            if seq <= since:
                problem = f"seq not increasing: {seq} after {since}"
            elif len(epoch) < 3:
                problem = f"malformed epoch vector {epoch!r}"
            elif update.get("quarter") != min(epoch[2:]):
                problem = (
                    f"quarter {update.get('quarter')} inconsistent with "
                    f"epoch {epoch}"
                )
            elif prev_epoch is not None and (
                len(epoch) != len(prev_epoch)
                or any(c < p for c, p in zip(epoch, prev_epoch))
            ):
                problem = f"epoch regressed: {prev_epoch} -> {epoch}"
            elif not _consistent_cells(update.get("result", {})):
                problem = "inconsistent cell intervals in pushed update"
            if problem:
                break
            since = seq
            prev_epoch = epoch
            fresh += 1
            with lock:
                last_updates[sub_id] = (kind, update)
        with lock:
            report.requests["updates"] = (
                report.requests.get("updates", 0) + 1
            )
            report.subscription_updates += fresh
            if problem:
                report.flag(f"subscriber {sub_id} ({kind}): {problem}")
        if problem:
            return
    status, body = client.request("DELETE", f"/subscribe/{sub_id}")
    with lock:
        if status != 200:
            report.flag(
                f"DELETE /subscribe/{sub_id} -> {status}: {str(body)[:200]}"
            )


def run_soak(config: SoakConfig, workdir: str | Path | None = None) -> SoakReport:
    """Run one seeded soak; returns the report (``mismatches == 0`` means
    every concurrent answer and the final oracle audit agreed)."""
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            return run_soak(config, tmp)
    if config.fault_plan:
        faults.install(faults.load_plan(config.fault_plan, config.seed))
        try:
            return run_soak(
                dataclasses.replace(config, fault_plan=None), workdir
            )
        finally:
            faults.clear()
    workdir = Path(workdir)
    snap_dir = workdir / "snapshots"
    layers = DatasetSpec(
        config.dims, config.levels, config.fanout, 1
    ).build_layers()
    policy = GlobalSlopeThreshold(config.threshold)
    wal = QuarterWAL(snap_dir / "wal.jsonl")
    storage_cfg = (
        StorageConfig(
            root=workdir / "storage",
            backend=config.storage,
            hot_quarters=config.hot_quarters,
        )
        if config.storage
        else None
    )
    cube = ShardedStreamCube(
        layers,
        policy,
        n_shards=config.shards,
        ticks_per_quarter=config.ticks_per_quarter,
        wal=wal,
        storage=storage_cfg,
        backend=ClusterConfig(
            backend=config.backend, recovery_dir=str(snap_dir)
        ),
    )
    router = QueryRouter(cube, window_quarters=config.window)
    service = StreamCubeService(cube, router, snapshot_dir=snap_dir)
    # Size the request pool so every soak client can be in flight at
    # once — the soak measures the service's concurrency, not the pool's
    # queueing.
    server = make_server(
        service,
        host=config.host,
        port=config.port,
        request_threads=(
            config.ingest_threads + config.query_threads
            + config.subscribers + 2
        ),
    )
    host, port = server.server_address[:2]
    client = _Client(f"http://{host}:{port}")

    rng = random.Random(config.seed)
    leaf_card = config.fanout**config.levels
    pool: set[tuple] = set()
    while len(pool) < config.cell_pool:
        pool.add(
            tuple(rng.randrange(leaf_card) for _ in range(config.dims))
        )
    pool_list = sorted(pool)
    trends = {
        key: (rng.uniform(-4.0, 4.0), rng.uniform(-0.5, 0.5))
        for key in pool_list
    }

    report = SoakReport(seed=config.seed, duration=config.duration)
    acked: list[list[StreamRecord]] = []
    last_updates: dict[str, tuple[str, dict]] = {}
    stop = threading.Event()
    lock = threading.Lock()
    clock = _TickClock()

    serve_thread = threading.Thread(
        target=server.serve_forever, name="soak-server", daemon=True
    )
    workers = [
        threading.Thread(
            target=_guarded(_ingester, "ingest", report, lock),
            args=(
                client, config, clock, pool_list, trends,
                config.seed * 1000 + i, stop, acked, report, lock,
            ),
            name=f"soak-ingest-{i}",
            daemon=True,
        )
        for i in range(config.ingest_threads)
    ] + [
        threading.Thread(
            target=_guarded(_querier, "query", report, lock),
            args=(
                client, config, layers.o_coord, layers.m_coord,
                config.seed * 2000 + i, stop, report, lock,
            ),
            name=f"soak-query-{i}",
            daemon=True,
        )
        for i in range(config.query_threads)
    ] + [
        threading.Thread(
            target=_guarded(_subscriber, "subscriber", report, lock),
            args=(client, config, i, stop, report, lock, last_updates),
            name=f"soak-subscriber-{i}",
            daemon=True,
        )
        for i in range(config.subscribers)
    ] + [
        threading.Thread(
            target=_guarded(_admin, "admin", report, lock),
            args=(client, stop, report, lock),
            name="soak-admin", daemon=True,
        )
    ]
    serve_thread.start()
    for worker in workers:
        worker.start()
    time.sleep(config.duration)
    stop.set()
    for worker in workers:
        worker.join(timeout=30)
    server.shutdown()
    serve_thread.join(timeout=30)
    server.server_close()

    try:
        _final_audit(
            service, layers, policy, config, acked, report, last_updates
        )
        _restore_audit(
            service, layers, policy, snap_dir, report, storage_cfg
        )
    finally:
        service.close()
    report.final_quarter = cube.current_quarter
    return report


def _final_audit(
    service: StreamCubeService,
    layers,
    policy,
    config: SoakConfig,
    acked: list[list[StreamRecord]],
    report: SoakReport,
    last_updates: dict[str, tuple[str, dict]] | None = None,
) -> None:
    """Rebuild the oracle from acknowledged traffic; audit the quiesced
    service through the same ``handle()`` dispatch HTTP uses."""
    oracle = RawStreamOracle(
        layers, policy, ticks_per_quarter=config.ticks_per_quarter
    )
    for batch in acked:
        oracle.ingest(batch)
    cube = service.cube
    if cube.records_ingested != oracle.records_ingested:
        report.flag("record count drift")
        raise VerifyMismatch(
            f"record count drift: cube ingested {cube.records_ingested}, "
            f"{oracle.records_ingested} were acknowledged"
        )
    oracle.advance_to(cube.current_quarter * config.ticks_per_quarter)
    if oracle.current_quarter != cube.current_quarter:
        report.flag("clock drift")
        raise VerifyMismatch(
            f"clock drift: cube at quarter {cube.current_quarter}, oracle "
            f"at {oracle.current_quarter}"
        )
    window = config.window
    if cube.current_quarter < window:
        return  # too short a run to audit windows; counters still checked

    # Documented-ulp tolerance, scaled to the timeline: the sealing
    # equations accumulate sums of t and t² uncentered, so their relative
    # accuracy at the window's magnitude degrades roughly linearly with
    # how far from the origin the soak has streamed (a multi-minute soak
    # seals thousands of quarters).  The budget starts at the scenarios'
    # default (~1e-9 relative) and grows with max tick / 2000 — still
    # parts-per-billion territory at any soak length CI runs.
    t_end = cube.current_quarter * config.ticks_per_quarter
    tol = Tolerance(
        max_ulps=DEFAULT_TOLERANCE.max_ulps * max(1.0, t_end / 2000.0),
        abs_tol=DEFAULT_TOLERANCE.abs_tol,
    )

    try:
        assert_cells_equal(
            cube.m_cells(window), oracle.m_cells(window), "final m-cells",
            tol,
        )
        report.cells_verified += oracle.tracked_cells

        def wire(payload):
            status, body = service.handle("POST", "/query", payload)
            if status != 200:
                raise VerifyMismatch(
                    f"final audit query {payload.get('op')!r} failed "
                    f"{status}: {body}"
                )
            return body

        deck = wire(Q.observation_deck(window=window).to_dict())
        assert_cells_equal(
            _decode_cells(deck),
            oracle.o_layer_cells(window),
            "final observation deck",
            tol,
        )
        watch = wire(Q.watch_list(window=window).to_dict())
        assert_cells_equal(
            _decode_cells(watch),
            oracle.o_layer_exceptions(window),
            "final watch list",
            tol,
        )
        tops = wire(Q.top_slopes(layers.o_coord, 5, window=window).to_dict())
        o_cells = oracle.o_layer_cells(window)
        for row in tops["cells"]:
            values = tuple(row["values"])
            problem = isb_agree(
                isb_from_dict(row["isb"]), o_cells[values], tol
            )
            if problem:
                raise VerifyMismatch(f"final top_slopes {values}: {problem}")
        changes = wire({"op": "change_exceptions", "layer": "o"})
        assert_cells_equal(
            _decode_cells(changes),
            oracle.o_layer_change_exceptions(1),
            "final o-layer change exceptions",
            tol,
        )
        report.cells_verified += len(o_cells)

        # Pushed updates were computed at their own (historical) seal
        # epoch; by then every quarter in that window was sealed, and
        # sealed quarters reject further records, so the oracle can
        # recompute the exact answer each subscriber last saw.
        for sub_id, (kind, update) in sorted((last_updates or {}).items()):
            quarter = update["quarter"]
            if quarter < window:
                continue
            t_b, t_e = oracle.window_bounds_at(quarter, window)
            cells = _decode_cells(update["result"])
            what = f"last pushed {kind} update (subscriber {sub_id})"
            if kind == "deck":
                assert_cells_equal(
                    cells,
                    oracle.cuboid_cells_at(layers.o_coord, t_b, t_e),
                    what,
                    tol,
                )
            else:
                _flag_sets_equal(
                    cells,
                    oracle.exceptional_cells_at(layers.o_coord, t_b, t_e),
                    oracle,
                    layers.o_coord,
                    what,
                    tol,
                )
            report.cells_verified += len(cells)
    except VerifyMismatch as exc:
        report.flag(f"final audit: {exc}")
        raise


def _decode_cells(body: dict) -> dict:
    return {
        tuple(row["values"]): isb_from_dict(row["isb"])
        for row in body["cells"]
    }


def _restore_audit(
    service: StreamCubeService,
    layers,
    policy,
    snap_dir: Path,
    report: SoakReport,
    storage_cfg: StorageConfig | None = None,
) -> None:
    """The final durability check: snapshot + WAL replay == live cube
    (with tiered storage, the restore reopens the same cold stores)."""
    manifest = service.write_snapshot()
    restored = ShardedStreamCube.restore(
        snap_dir, layers, policy, storage=storage_cfg
    )
    try:
        with QuarterWAL(snap_dir / "wal.jsonl") as journal:
            journal.replay(restored, after_seq=manifest["wal_seq"])
        live = service.cube
        if restored.current_quarter >= 1:
            q = live.ticks_per_quarter
            t_e = live.current_quarter * q - 1
            t_b = max(0, t_e - 4 * q + 1)
            if restored.window_isbs(t_b, t_e) != live.window_isbs(t_b, t_e):
                report.flag("restore audit: window mismatch")
                raise VerifyMismatch(
                    "restored cube (snapshot + WAL replay) differs from "
                    "the live cube after the soak"
                )
        if restored.records_ingested != live.records_ingested:
            report.flag("restore audit: record count mismatch")
            raise VerifyMismatch(
                f"restored cube holds {restored.records_ingested} records, "
                f"live cube {live.records_ingested}"
            )
    finally:
        restored.close()


def main(args) -> int:
    """The ``python -m repro soak`` entry point."""
    config = SoakConfig(
        seed=args.seed,
        duration=args.duration,
        shards=args.shards,
        ingest_threads=args.ingest_threads,
        query_threads=args.query_threads,
        subscribers=getattr(args, "subscribers", 0) or 0,
        port=args.port,
        storage=getattr(args, "storage", None),
        hot_quarters=getattr(args, "hot_quarters", None) or 2,
        backend=getattr(args, "backend", "inproc"),
        fault_plan=getattr(args, "fault_plan", None),
    )
    try:
        report = run_soak(config)
    except VerifyMismatch as exc:
        print(f"SOAK FAILED: {exc}")
        return 1
    print(report.describe())
    if report.mismatches:
        print(f"SOAK FAILED: {report.mismatches} mismatches")
        return 1
    print("soak verdict: ZERO oracle mismatches")
    return 0
