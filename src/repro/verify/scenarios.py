"""Seeded, declarative chaos scenarios, differentially checked end to end.

A :class:`Scenario` is a cube configuration plus a composable event stream:
traffic shapes (bursts, trickles, boundary ticks, duplicates, multi-quarter
batches), quiet gaps, mid-quarter snapshot+restore, online resharding, WAL
crash/replay, idle-cell pruning with revival, and query/cache churn.  The
:class:`ScenarioRunner` interprets the events against *three* systems at
once — a single :class:`~repro.stream.engine.StreamCubeEngine`, a
:class:`~repro.service.sharding.ShardedStreamCube` (with a live WAL), and
the ``Q``/``execute``/:class:`~repro.service.router.QueryRouter` query
layer — and checks every answer against the brute-force
:class:`~repro.verify.oracle.RawStreamOracle`:

* engine and cube answers must agree with the oracle to ulps
  (:data:`~repro.verify.oracle.DEFAULT_TOLERANCE`);
* engine and cube must agree with *each other* bit for bit (the sharding
  equivalence guarantee), as must every restored / resharded / replayed
  successor.

Everything is derived from one integer seed, so any failure replays
exactly: ``run_scenario("crash_replay", seed=1234)``.

Scenarios may also run under tiered storage (``Scenario.storage``): every
system spills sealed history past a small hot horizon into a cold store,
and the :class:`DeepWindow` event queries windows that *only* the cold
tier can answer — any catalogue entry can be re-run spilling via
``run_scenario(name, seed, storage="file")``.

Scenarios likewise pick a shard *execution backend*
(``Scenario.backend``): the default ``"inproc"`` runs engines in-process,
``"process"`` puts every cube shard behind a supervised worker process —
same events, same oracle, same bit-identity requirement, now across an RPC
boundary.  The :class:`KillWorker` and :class:`SlowRpc` events inject
worker crashes (SIGKILL, die-inside-a-method) and RPC timeouts, so the
supervisor's restore + WAL-replay recovery is differentially verified too.
Any catalogue entry can be re-run process-backed via
``run_scenario(name, seed, backend="process")``.
"""

from __future__ import annotations

import dataclasses
import random
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable

from repro import faults
from repro.cluster import ClusterConfig
from repro.cubing.policy import GlobalSlopeThreshold
from repro.io import isb_from_dict
from repro.query.api import RegressionCubeView
from repro.query.exec import execute
from repro.query.spec import Q
from repro.service.router import QueryRouter
from repro.service.sharding import ShardedStreamCube
from repro.service.subscriptions import SubscriptionRegistry
from repro.storage import StorageConfig, open_cold_store
from repro.stream.engine import StreamCubeEngine, engine_frame_levels
from repro.stream.generator import DatasetSpec
from repro.stream.records import StreamRecord
from repro.stream.wal import QuarterWAL
from repro.verify.oracle import (
    DEFAULT_TOLERANCE,
    RawStreamOracle,
    VerifyMismatch,
    _flag_sets_equal,
    assert_cells_equal,
    assert_result_equal,
    isb_agree,
)

__all__ = [
    "Scenario",
    "ScenarioReport",
    "ScenarioRunner",
    "SCENARIOS",
    "run_scenario",
    # events
    "Traffic",
    "Advance",
    "Check",
    "SnapshotRestore",
    "Reshard",
    "CrashReplay",
    "Prune",
    "CacheChurn",
    "DeepWindow",
    "KillWorker",
    "SlowRpc",
    "Subscribe",
    "DrainUpdates",
]

Values = tuple[Hashable, ...]


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Traffic:
    """Ingest seeded traffic.

    ``style`` shapes the stream: ``"burst"`` is several records per tick,
    ``"trickle"`` leaves most ticks (and some cells' whole quarters) empty,
    ``"boundary"`` lands every record on a quarter's first or last tick,
    ``"duplicate"`` repeats records — same (cell, tick) with new values and
    exact duplicates of earlier records in the same batch.

    ``batching`` picks the ingest surface: ``"per_quarter"`` one
    ``ingest_many``/``ingest_batch`` call per quarter, ``"spanning"`` one
    call for the whole multi-quarter batch, ``"single"`` record-at-a-time
    ``ingest`` calls.
    """

    quarters: int = 2
    rate: int = 3
    style: str = "burst"
    batching: str = "per_quarter"


@dataclass(frozen=True)
class Advance:
    """Advance the clock over quiet quarters (no traffic)."""

    quarters: int = 1


@dataclass(frozen=True)
class Check:
    """Differentially verify current state against the oracle.

    ``windows`` — m-layer window regressions (plus engine==cube equality);
    ``cube`` — a full cubing refresh (cells, flags, retention closure);
    ``queries`` — the declarative query layer through view and router;
    ``changes`` — current-vs-previous change exceptions at both layers.
    """

    windows: bool = True
    cube: bool = False
    queries: bool = False
    changes: bool = False
    algorithm: str = "mo"


@dataclass(frozen=True)
class SnapshotRestore:
    """Snapshot both systems (possibly mid-quarter), restore, and continue
    on the restored instances — the rest of the scenario runs on them."""


@dataclass(frozen=True)
class Reshard:
    """Online-reshard the cube to ``shards`` and continue on the result."""

    shards: int = 5


@dataclass(frozen=True)
class CrashReplay:
    """Simulate a crash: rebuild a cube from the last snapshot directory
    plus WAL replay (with a torn final journal line) and verify it matches
    the live cube bit for bit."""


@dataclass(frozen=True)
class Prune:
    """Prune idle cells on engine and cube; verify the drop sets against
    the oracle's idleness rule and mirror the drop into the oracle."""

    idle_quarters: int = 2


@dataclass(frozen=True)
class CacheChurn:
    """Exercise the router's result cache: repeat a query mix (hits must
    equal misses), then watch a seal invalidate the epoch."""

    repeats: int = 2


@dataclass(frozen=True)
class DeepWindow:
    """Query windows that reach past the hot horizon into the cold store.

    Only legal in a scenario with ``storage`` configured.  Checks the full
    from-origin window plus seeded hour-, day-, and quarter-aligned
    prefixes that end long before the hot set begins — windows a
    storage-free engine cannot answer at all.  Engine and cube must agree
    bit for bit, and both are checked against the oracle; once enough
    quarters have sealed the event also insists the cold tier actually
    participated (pages spilled, pages faulted back).
    """

    samples: int = 2


@dataclass(frozen=True)
class KillWorker:
    """Crash one shard worker (process backend only).

    With ``during=None`` the worker is SIGKILLed immediately — detection
    is left to the next RPC, exactly like a real crash.  With ``during``
    set to a method name, a one-shot exit fault is armed instead and the
    worker dies *inside* that method on its next invocation (without
    replying): ``"apply_segments"`` kills it mid-batch, so the journaled
    batch must survive through WAL replay; ``"snapshot_to_file"`` kills it
    mid-snapshot, so the idempotent retry must still produce a complete,
    untorn snapshot.  ``shard`` picks the victim (default: seeded random).
    """

    shard: int | None = None
    during: str | None = None


@dataclass(frozen=True)
class SlowRpc:
    """Arm a one-shot stall long enough to trip the RPC timeout.

    The worker sleeps inside ``method`` past the scenario's
    ``rpc_timeout``; the supervisor must declare it dead, revive it
    (snapshot + WAL replay), and — the method being idempotent — retry to
    the same answer the oracle expects.  Process backend only.
    """

    seconds: float = 1.5
    method: str = "m_cells"
    shard: int | None = None


@dataclass(frozen=True)
class Subscribe:
    """Register continuous queries on the cube's seal path.

    Creates the runner's :class:`SubscriptionRegistry` (if needed) and
    registers three subscribers: two o-layer exception watches sharing one
    spec (so delivery must collapse them onto a single execution per seal)
    and one ``observation_deck``.  ``every_k`` applies to the second watch
    subscriber, exercising the every-K-quarters cadence alongside
    every-seal delivery.  From here on, every Traffic/Advance seal pushes
    updates concurrently with the rest of the event stream.
    """

    every_k: int = 2
    queue_limit: int = 64


@dataclass(frozen=True)
class DrainUpdates:
    """Wait for the dispatcher to go idle, then verify *every* delivered
    update against the oracle recomputed at that update's own quarter:
    payload bit-agreement (to ulps), per-subscription ``seq`` strictly
    increasing, epoch vectors componentwise non-decreasing, and the
    stamped quarter consistent with the epoch vector.  With
    ``expect_updates`` (default) it is a scenario bug if an every-seal
    subscriber has nothing new once the window has ever filled."""

    expect_updates: bool = True


Event = (
    Traffic
    | Advance
    | Check
    | SnapshotRestore
    | Reshard
    | CrashReplay
    | Prune
    | CacheChurn
    | DeepWindow
    | KillWorker
    | SlowRpc
    | Subscribe
    | DrainUpdates
)


# ----------------------------------------------------------------------
# Scenario and report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A cube configuration plus the event stream to drive through it.

    ``storage`` (``"file"`` / ``"sqlite"`` / ``None``) turns on tiered
    storage for engine *and* cube: sealed slots older than ``hot_quarters``
    are demoted to a cold store under the run's workdir and faulted back on
    demand — the rest of the event stream runs unchanged on top.
    """

    name: str
    description: str
    events: tuple[Event, ...]
    dims: int = 2
    levels: int = 2
    fanout: int = 3
    ticks_per_quarter: int = 4
    threshold: float = 0.06
    window: int = 4
    n_shards: int = 3
    cell_pool: int = 10
    storage: str | None = None
    hot_quarters: int = 2
    #: Shard execution backend ("inproc" / "process").  Process-backed
    #: scenarios run the cube leg against supervised worker processes,
    #: with the scenario's snapshot directory as the recovery anchor.
    backend: str = "inproc"
    #: RPC timeout for process-backed scenarios (tightened by the
    #: timeout-injection scenario so SlowRpc trips it quickly).
    rpc_timeout: float = 30.0


@dataclass
class ScenarioReport:
    """What one seeded scenario run did and verified."""

    name: str
    seed: int
    records: int = 0
    events: int = 0
    checks: int = 0
    cells_compared: int = 0


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class ScenarioRunner:
    """Interpret one scenario's events against engine + cube + oracle."""

    def __init__(self, scenario: Scenario, seed: int, workdir: str | Path):
        self.scenario = scenario
        self.seed = seed
        self.rng = random.Random(seed)
        self.workdir = Path(workdir)
        self.layers = DatasetSpec(
            scenario.dims, scenario.levels, scenario.fanout, 1
        ).build_layers()
        self.policy = GlobalSlopeThreshold(scenario.threshold)
        self.tpq = scenario.ticks_per_quarter
        # With storage configured, engine and cube each spill into their
        # own cold tier under the workdir (the engine shares one store
        # instance across restores; the cube opens per-shard sets from the
        # config and owns their lifecycle).
        self._engine_store = (
            open_cold_store(
                self.workdir / "engine-store", backend=scenario.storage
            )
            if scenario.storage
            else None
        )
        self._cube_storage = (
            StorageConfig(
                root=self.workdir / "cube-store",
                backend=scenario.storage,
                hot_quarters=scenario.hot_quarters,
            )
            if scenario.storage
            else None
        )
        self.engine = StreamCubeEngine(
            self.layers,
            self.policy,
            ticks_per_quarter=self.tpq,
            storage=self._engine_store,
            hot_quarters=scenario.hot_quarters if scenario.storage else None,
        )
        self.snap_dir = self.workdir / "snapshots"
        self.wal_path = self.snap_dir / "wal.jsonl"
        self.snap_dir.mkdir(parents=True, exist_ok=True)
        # The snapshot directory doubles as the process workers'
        # crash-recovery anchor: a revived worker restores its slice of
        # the latest snapshot there and replays the WAL tail.
        self._cluster = ClusterConfig(
            backend=scenario.backend,
            rpc_timeout=scenario.rpc_timeout,
            recovery_dir=str(self.snap_dir),
        )
        self.cube = ShardedStreamCube(
            self.layers,
            self.policy,
            n_shards=scenario.n_shards,
            ticks_per_quarter=self.tpq,
            wal=QuarterWAL(self.wal_path),
            storage=self._cube_storage,
            hot_quarters=scenario.hot_quarters if scenario.storage else None,
            backend=self._cluster,
        )
        self.router = QueryRouter(self.cube, window_quarters=scenario.window)
        self.oracle = RawStreamOracle(
            self.layers, self.policy, ticks_per_quarter=self.tpq
        )
        self.last_manifest: dict | None = None
        # Per-cell ground-truth lines give the traffic a stable trend per
        # cell, so slopes spread well away from zero *and* the threshold.
        leaf_card = scenario.fanout**scenario.levels
        pool: set[Values] = set()
        while len(pool) < scenario.cell_pool:
            pool.add(
                tuple(
                    self.rng.randrange(leaf_card)
                    for _ in range(scenario.dims)
                )
            )
        self.pool = sorted(pool)
        self.trends = {
            key: (self.rng.uniform(-4.0, 4.0), self.rng.uniform(-0.5, 0.5))
            for key in self.pool
        }
        self.report = ScenarioReport(scenario.name, seed)
        # Continuous-query state (Subscribe / DrainUpdates events): the
        # registry rides the live router; per-subscription consumption
        # cursors survive across drains so ordering is checked globally.
        self.subscriptions: SubscriptionRegistry | None = None
        self._subs_meta: dict[str, str] = {}
        self._every_seal: set[str] = set()
        self._sub_since: dict[str, int] = {}
        self._sub_prev_epoch: dict[str, tuple[int, ...]] = {}
        self._updates_verified = 0

    # ------------------------------------------------------------------
    # Event interpretation
    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        try:
            for event in self.scenario.events:
                self.apply(event)
                self.report.events += 1
            return self.report
        finally:
            if self.subscriptions is not None:
                self.subscriptions.close()
            self.cube.close()
            if self.cube.wal is not None:
                self.cube.wal.close()
            if self._engine_store is not None:
                self._engine_store.close()

    def apply(self, event: Event) -> None:
        handler = {
            Traffic: self._traffic,
            Advance: self._advance,
            Check: self._check,
            SnapshotRestore: self._snapshot_restore,
            Reshard: self._reshard,
            CrashReplay: self._crash_replay,
            Prune: self._prune,
            CacheChurn: self._cache_churn,
            DeepWindow: self._deep_window,
            KillWorker: self._kill_worker,
            SlowRpc: self._slow_rpc,
            Subscribe: self._subscribe,
            DrainUpdates: self._drain_updates,
        }[type(event)]
        handler(event)

    # -- traffic -------------------------------------------------------
    def _make_quarter(self, quarter: int, event: Traffic) -> list[StreamRecord]:
        rng = self.rng
        lo = quarter * self.tpq
        records: list[StreamRecord] = []

        def reading(key: Values, t: int) -> StreamRecord:
            base, slope = self.trends[key]
            return StreamRecord(
                key, t, base + slope * t + rng.uniform(-0.5, 0.5)
            )

        if event.style == "burst":
            for t in range(lo, lo + self.tpq):
                for _ in range(event.rate):
                    records.append(reading(rng.choice(self.pool), t))
        elif event.style == "trickle":
            for key in self.pool:
                if rng.random() < 0.5:
                    continue  # this cell skips the whole quarter
                for _ in range(max(1, event.rate // 2)):
                    records.append(
                        reading(key, lo + rng.randrange(self.tpq))
                    )
        elif event.style == "boundary":
            edges = (lo, lo + self.tpq - 1)
            for _ in range(event.rate * self.tpq):
                records.append(
                    reading(rng.choice(self.pool), rng.choice(edges))
                )
        elif event.style == "duplicate":
            for t in range(lo, lo + self.tpq):
                key = rng.choice(self.pool)
                first = reading(key, t)
                records.extend([first, first, reading(key, t)])
        else:  # pragma: no cover - scenario author error
            raise ValueError(f"unknown traffic style {event.style!r}")
        if not records:
            # Keep the quarter clock advancing even when a trickle quarter
            # drew nothing: one reading so the batch is never empty.
            records.append(
                reading(rng.choice(self.pool), lo + rng.randrange(self.tpq))
            )
        rng.shuffle(records)  # any tick order within a quarter is legal
        return records

    def _traffic(self, event: Traffic) -> None:
        start = self.oracle.current_quarter
        per_quarter = [
            self._make_quarter(start + i, event)
            for i in range(event.quarters)
        ]
        if event.batching == "spanning":
            batches = [[r for batch in per_quarter for r in batch]]
        else:
            batches = per_quarter
        for batch in batches:
            if not batch:
                continue
            if event.batching == "spanning":
                batch.sort(key=lambda r: r.t // self.tpq)
            if event.batching == "single":
                for record in batch:
                    self.engine.ingest(record)
                    self.cube.ingest(record)
            else:
                self.engine.ingest_many(batch)
                self.cube.ingest_batch(batch)
            self.oracle.ingest(batch)
            self.report.records += len(batch)

    def _advance(self, event: Advance) -> None:
        t = (self.oracle.current_quarter + event.quarters) * self.tpq
        self.engine.advance_to(t)
        self.cube.advance_to(t)
        self.oracle.advance_to(t)

    # -- differential checks -------------------------------------------
    def _windows_ready(self, quarters: int) -> bool:
        return self.oracle.current_quarter >= quarters

    def _require_clocks_agree(self) -> None:
        if not (
            self.engine.current_quarter
            == self.cube.current_quarter
            == self.oracle.current_quarter
        ):
            raise VerifyMismatch(
                f"clock drift: engine={self.engine.current_quarter} "
                f"cube={self.cube.current_quarter} "
                f"oracle={self.oracle.current_quarter}"
            )

    def _check(self, event: Check) -> None:
        self._require_clocks_agree()
        window = self.scenario.window
        if not self._windows_ready(window):
            raise VerifyMismatch(
                f"scenario bug: Check before {window} quarters sealed"
            )
        if event.windows:
            self._check_windows(window)
        if event.cube:
            self._check_cube(window, event.algorithm)
        if event.queries:
            self._check_queries(window)
        if event.changes:
            self._check_changes()
        self.report.checks += 1

    def _check_windows(self, window: int) -> None:
        engine_cells = self.engine.m_cells(window)
        cube_cells = self.cube.m_cells(window)
        if engine_cells != cube_cells:
            raise VerifyMismatch(
                "sharding equivalence broken: engine and cube m-cells "
                "differ (they must be bit-identical)"
            )
        oracle_cells = self.oracle.m_cells(window)
        assert_cells_equal(engine_cells, oracle_cells, "m-cells")
        self.report.cells_compared += len(oracle_cells)
        # A shorter sub-window through the raw window_isbs surface.
        sub = 1 + self.rng.randrange(min(window, 3))
        t_b, t_e = self.oracle.window_bounds(sub)
        engine_sub = self.engine.window_isbs(t_b, t_e)
        if engine_sub != self.cube.window_isbs(t_b, t_e):
            raise VerifyMismatch("engine/cube window_isbs differ")
        assert_cells_equal(
            engine_sub,
            self.oracle.window_isbs(t_b, t_e),
            f"window [{t_b},{t_e}]",
        )

    def _deep_window(self, event: DeepWindow) -> None:
        if self.scenario.storage is None:
            raise VerifyMismatch(
                "scenario bug: DeepWindow in a scenario without storage"
            )
        self._require_clocks_agree()
        sealed = self.oracle.current_quarter
        if sealed < 2:
            raise VerifyMismatch(
                "scenario bug: DeepWindow before two quarters sealed"
            )
        t_end = sealed * self.tpq  # first unsealed tick
        bounds = {(0, t_end - 1)}
        # Hour- and day-aligned prefixes — windows whose tail lands on a
        # coarse tilt boundary deep inside the demoted region.
        for width in (4 * self.tpq, 96 * self.tpq):
            n = t_end // width
            for _ in range(event.samples if n else 0):
                bounds.add((0, (1 + self.rng.randrange(n)) * width - 1))
        # Quarter-granularity prefixes ending before the hot horizon
        # begins.  The very first quarter is always among them: once it is
        # demoted, no resident slot of any level can answer [0, tpq-1] —
        # a random draw could land hour-aligned and be covered by resident
        # coarse slots without touching the store at all.
        deep = max(1, sealed - self.scenario.hot_quarters)
        bounds.add((0, self.tpq - 1))
        bounds.add((0, (1 + self.rng.randrange(deep)) * self.tpq - 1))
        for t_b, t_e in sorted(bounds):
            engine_cells = self.engine.window_isbs(t_b, t_e)
            if engine_cells != self.cube.window_isbs(t_b, t_e):
                raise VerifyMismatch(
                    f"engine/cube deep window [{t_b},{t_e}] differ "
                    "(they must be bit-identical)"
                )
            assert_cells_equal(
                engine_cells,
                self.oracle.window_isbs(t_b, t_e),
                f"deep window [{t_b},{t_e}]",
            )
            self.report.cells_compared += len(engine_cells)
        # Once history dwarfs the hot horizon, the cold tier must have
        # actually carried these answers — a silent all-resident pass
        # would mean the scenario never exercised spilling at all.
        if sealed >= 8 * max(1, self.scenario.hot_quarters):
            stats = self.engine.storage_stats()
            if not stats or not stats["pages_spilled"]:
                raise VerifyMismatch(
                    f"no pages spilled after {sealed} quarters with "
                    f"hot_quarters={self.scenario.hot_quarters}"
                )
            if not stats["cold_faults"]:
                raise VerifyMismatch(
                    "deep windows answered without faulting any cold page"
                )
        self.report.checks += 1

    def _check_cube(self, window: int, algorithm: str) -> None:
        result = self.engine.refresh(window, algorithm)
        assert_result_equal(result, self.oracle, window)
        cube_result = self.cube.refresh(window, algorithm)
        assert_result_equal(cube_result, self.oracle, window)
        self.report.cells_compared += len(result.m_layer)

    def _check_changes(self) -> None:
        if self.oracle.current_quarter < 2:
            return
        pairs = [
            (
                self.engine.change_exceptions(1),
                self.oracle.change_exceptions(1),
                "m-change",
            ),
            (
                self.engine.o_layer_change_exceptions(1),
                self.oracle.o_layer_change_exceptions(1),
                "o-change",
            ),
        ]
        cube_m = self.cube.change_exceptions(1)
        cube_o = self.cube.o_layer_change_exceptions(1)
        if pairs[0][0] != cube_m or pairs[1][0] != cube_o:
            raise VerifyMismatch("engine/cube change exceptions differ")
        for actual, expected, what in pairs:
            if set(actual) != set(expected):
                raise VerifyMismatch(
                    f"{what}: flagged sets differ; system "
                    f"{sorted(map(repr, actual))} vs oracle "
                    f"{sorted(map(repr, expected))}"
                )
            for key, isb in actual.items():
                problem = isb_agree(isb, expected[key])
                if problem:
                    raise VerifyMismatch(f"{what}[{key!r}]: {problem}")

    # -- query layer ---------------------------------------------------
    def _check_queries(self, window: int) -> None:
        view = RegressionCubeView(self.engine.refresh(window))
        schema = self.layers.schema
        lattice = self.layers.lattice
        rng = self.rng
        coords = sorted(lattice.coords())
        # Each oracle roll-up is a full fsum refit; memoize lazily since a
        # run only touches the chosen coord, its neighbours, and the
        # o-layer.
        _memo: dict[tuple, dict] = {}

        def oracle_cuboid(coord: tuple) -> dict:
            if coord not in _memo:
                _memo[coord] = self.oracle.cuboid_cells(coord, window)
            return _memo[coord]

        tol = DEFAULT_TOLERANCE

        def check_one(spec, expected_fn) -> None:
            for result in (
                execute(view, spec),
                self.router.execute(spec),
                self.router.execute(spec),  # second router hit: cached
            ):
                expected_fn(result.value)
            self.report.checks += 1

        # cell + roll_up + drill_down + siblings on a random populated cell
        coord = rng.choice(coords)
        cells = oracle_cuboid(coord)
        if cells:
            values = rng.choice(sorted(cells))
            expected = cells[values]

            def expect_cell(value):
                problem = isb_agree(value, expected, tol)
                if problem:
                    raise VerifyMismatch(f"query cell {values}: {problem}")

            check_one(Q.cell(coord, values, window=window), expect_cell)

            dims_up = [
                d.name
                for d, lvl, o in zip(
                    schema.dimensions, coord, self.layers.o_coord
                )
                if lvl - 1 >= o
            ]
            if dims_up:
                dim = rng.choice(dims_up)
                d = schema.dim_index(dim)
                parent_coord = coord[:d] + (coord[d] - 1,) + coord[d + 1:]

                def expect_roll_up(value):
                    p_coord, p_values, isb = value
                    if p_coord != parent_coord:
                        raise VerifyMismatch(
                            f"roll_up coord {p_coord} != {parent_coord}"
                        )
                    want = oracle_cuboid(parent_coord)[p_values]
                    problem = isb_agree(isb, want, tol)
                    if problem:
                        raise VerifyMismatch(
                            f"roll_up {p_values}: {problem}"
                        )

                check_one(
                    Q.roll_up(coord, values, dim, window=window),
                    expect_roll_up,
                )

            dims_down = [
                d.name
                for d, lvl, m in zip(
                    schema.dimensions, coord, self.layers.m_coord
                )
                if lvl + 1 <= m
            ]
            if dims_down:
                dim = rng.choice(dims_down)
                d = schema.dim_index(dim)
                child_coord = coord[:d] + (coord[d] + 1,) + coord[d + 1:]
                mappers = [
                    dimension.hierarchy.ancestor_mapper(f, t)
                    for dimension, f, t in zip(
                        schema.dimensions, child_coord, coord
                    )
                ]
                want_children = {
                    child: isb
                    for child, isb in oracle_cuboid(child_coord).items()
                    if tuple(m(v) for m, v in zip(mappers, child)) == values
                }

                def expect_drill(value):
                    assert_cells_equal(
                        value, want_children, "drill_down", tol
                    )

                check_one(
                    Q.drill_down(coord, values, dim, window=window),
                    expect_drill,
                )

            hier_dims = [
                d.name
                for d, lvl in zip(schema.dimensions, coord)
                if lvl >= 1
            ]
            if hier_dims:
                dim = rng.choice(hier_dims)
                d = schema.dim_index(dim)
                level = coord[d]
                hier = schema.dimensions[d].hierarchy
                parent = hier.parent(values[d], level)
                want_siblings = {
                    other: isb
                    for other, isb in cells.items()
                    if other != values
                    and all(
                        i == d or v == w
                        for i, (v, w) in enumerate(zip(other, values))
                    )
                    and hier.parent(other[d], level) == parent
                }

                def expect_siblings(value):
                    assert_cells_equal(
                        value, want_siblings, "siblings", tol
                    )

                check_one(
                    Q.siblings(coord, values, dim, window=window),
                    expect_siblings,
                )

        # slice with one fixed dimension value
        named = [
            (d.name, i)
            for i, (d, lvl) in enumerate(zip(schema.dimensions, coord))
            if lvl >= 1
        ]
        if cells and named:
            name, i = rng.choice(named)
            fixed_value = rng.choice(sorted(cells))[i]
            want_slice = {
                vals: isb
                for vals, isb in cells.items()
                if vals[i] == fixed_value
            }

            def expect_slice(value):
                assert_cells_equal(value, want_slice, "slice", tol)

            check_one(
                Q.slice(coord, {name: fixed_value}, window=window),
                expect_slice,
            )

        # top_slopes: every returned cell matches the oracle, and the cut
        # line is consistent with the oracle ranking (ties allowed).
        k = 1 + rng.randrange(4)
        ranked = sorted(
            (abs(isb.slope) for isb in cells.values()), reverse=True
        )

        def expect_top(value):
            if len(value) != min(k, len(cells)):
                raise VerifyMismatch(
                    f"top_slopes returned {len(value)} of k={k} "
                    f"({len(cells)} cells exist)"
                )
            for vals, isb in value:
                problem = isb_agree(isb, cells[vals], tol)
                if problem:
                    raise VerifyMismatch(f"top_slopes {vals}: {problem}")
            if value and len(cells) > k:
                cut = ranked[k - 1]
                low = min(abs(isb.slope) for _, isb in value)
                if not low >= cut - 1e-9:
                    raise VerifyMismatch(
                        f"top_slopes cut line broken: weakest returned "
                        f"|slope| {low!r} under oracle cut {cut!r}"
                    )

        check_one(Q.top_slopes(coord, k, window=window), expect_top)

        # observation deck and watch list
        o_cells = self.oracle.o_layer_cells(window)

        def expect_deck(value):
            assert_cells_equal(value, o_cells, "observation_deck", tol)

        check_one(Q.observation_deck(window=window), expect_deck)

        o_flags = self.oracle.o_layer_exceptions(window)

        def expect_watch(value):
            assert_cells_equal(value, o_flags, "watch_list", tol)

        check_one(Q.watch_list(window=window), expect_watch)

    # -- durability / elasticity / retirement ---------------------------
    def _snapshot_restore(self, event: SnapshotRestore) -> None:
        self._require_no_subscriptions("SnapshotRestore")
        hot = (
            self.scenario.hot_quarters if self.scenario.storage else None
        )
        state = self.engine.snapshot()
        restored_engine = StreamCubeEngine.restore(
            state,
            self.layers,
            self.policy,
            storage=self._engine_store,
            hot_quarters=hot,
        )
        self.last_manifest = self.cube.snapshot(self.snap_dir)
        self.cube.wal.truncate_through(self.last_manifest["wal_seq"])
        # The journal stays on the live cube until the restore proves out,
        # so a failing check leaks neither the new pool nor the WAL handle
        # (run()'s cleanup still owns both live resources).
        restored_cube = ShardedStreamCube.restore(
            self.snap_dir,
            self.layers,
            self.policy,
            storage=self._cube_storage,
            hot_quarters=hot,
            backend=self._cluster,
        )
        old = self.cube
        try:
            if self._windows_ready(1):
                t_b, t_e = self.oracle.window_bounds(1)
                live = old.window_isbs(t_b, t_e)
                if (
                    restored_engine.window_isbs(t_b, t_e) != live
                    or restored_cube.window_isbs(t_b, t_e) != live
                ):
                    raise VerifyMismatch(
                        "snapshot/restore is not bit-identical to the "
                        "live cube"
                    )
        except BaseException:
            restored_cube.close()
            raise
        # Continue the scenario on the restored instances.
        restored_cube.wal = old.wal
        old.wal = None
        self.engine = restored_engine
        self.cube = restored_cube
        old.close()
        self.router = QueryRouter(
            self.cube, window_quarters=self.scenario.window
        )
        self.report.checks += 1

    def _require_no_subscriptions(self, what: str) -> None:
        # SnapshotRestore / Reshard continue the run on a *new* cube and
        # router; a registry bound to the old pair would keep pushing from
        # retired state.  Subscription scenarios simply don't mix with
        # instance replacement (a real service unsubscribes on restart).
        if self.subscriptions is not None:
            raise VerifyMismatch(
                f"scenario bug: {what} after Subscribe — the registry is "
                "bound to the live router/cube pair"
            )

    def _reshard(self, event: Reshard) -> None:
        self._require_no_subscriptions("Reshard")
        resharded = self.cube.reshard(event.shards)
        try:
            if self._windows_ready(1):
                t_b, t_e = self.oracle.window_bounds(1)
                if resharded.window_isbs(t_b, t_e) != self.cube.window_isbs(
                    t_b, t_e
                ):
                    raise VerifyMismatch(
                        f"reshard {self.cube.n_shards}->{event.shards} is "
                        "not bit-identical"
                    )
        except BaseException:
            resharded.close()
            raise
        resharded.wal = self.cube.wal
        self.cube.wal = None
        self.cube.close()
        self.cube = resharded
        self.router = QueryRouter(
            self.cube, window_quarters=self.scenario.window
        )
        self.report.checks += 1

    def _crash_replay(self, event: CrashReplay) -> None:
        if self.last_manifest is None:
            self.last_manifest = self.cube.snapshot(self.snap_dir)
            self.cube.wal.truncate_through(self.last_manifest["wal_seq"])
            # Post-snapshot traffic gives the replay something to recover.
            self._traffic(Traffic(quarters=1, rate=3))
        crash_dir = self.workdir / "crash"
        if crash_dir.exists():
            shutil.rmtree(crash_dir)
        shutil.copytree(self.snap_dir, crash_dir)
        crash_storage = None
        if self._cube_storage is not None:
            # Take the cold tier as the crash left it: pages demoted since
            # the manifest landed are on disk, but the manifest's
            # cold_spans predate them — replay re-seals those quarters and
            # re-puts identical pages over the survivors (puts are
            # idempotent), which is exactly the crash-between-spill-and-
            # manifest-write recovery the storage design promises.
            shutil.copytree(
                Path(self._cube_storage.root), crash_dir / "storage"
            )
            crash_storage = StorageConfig(
                root=crash_dir / "storage",
                backend=self.scenario.storage,
                hot_quarters=self.scenario.hot_quarters,
            )
        with open(crash_dir / "wal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"seq": 99999, "kind": "batch", "qu')  # torn append
        recovered = ShardedStreamCube.restore(
            crash_dir,
            self.layers,
            self.policy,
            storage=crash_storage,
            hot_quarters=(
                self.scenario.hot_quarters if crash_storage else None
            ),
        )
        with QuarterWAL(crash_dir / "wal.jsonl") as journal:
            journal.replay(
                recovered,
                after_seq=int(self.last_manifest["wal_seq"]),
            )
        try:
            if self._windows_ready(1):
                t_b, t_e = self.oracle.window_bounds(1)
                if recovered.window_isbs(t_b, t_e) != self.cube.window_isbs(
                    t_b, t_e
                ):
                    raise VerifyMismatch(
                        "crash recovery (snapshot + WAL replay) is not "
                        "bit-identical to the uninterrupted cube"
                    )
                assert_cells_equal(
                    recovered.window_isbs(t_b, t_e),
                    self.oracle.window_isbs(t_b, t_e),
                    "recovered window",
                )
            if crash_storage is not None and self._windows_ready(2):
                t_hi = self.oracle.current_quarter * self.tpq - 1
                if recovered.window_isbs(0, t_hi) != self.cube.window_isbs(
                    0, t_hi
                ):
                    raise VerifyMismatch(
                        "recovered cube's deep (cold) window diverges "
                        "from the uninterrupted cube"
                    )
            if recovered.records_ingested != self.oracle.records_ingested:
                raise VerifyMismatch(
                    f"recovery lost records: {recovered.records_ingested} "
                    f"vs {self.oracle.records_ingested} accepted"
                )
        finally:
            recovered.close()
        self.report.checks += 1

    def _prune(self, event: Prune) -> None:
        candidates = self.oracle.idle_keys(event.idle_quarters)
        dropped_engine = self.engine.prune_idle(event.idle_quarters)
        dropped_cube = self.cube.prune_idle(event.idle_quarters)
        if dropped_engine != dropped_cube:
            raise VerifyMismatch(
                f"engine pruned {dropped_engine} cells, cube pruned "
                f"{dropped_cube}"
            )
        # The engine legitimately drops nothing when its tilt frames cannot
        # cover the idleness window; within the finest level's capacity the
        # window is certainly covered, so there a zero-drop with idle
        # candidates is a real bug, not the bail-out — no escape hatch.
        # (The runner builds its engines on the default frame geometry, so
        # the public levels function is the supported way to read it.)
        window = min(event.idle_quarters, self.oracle.current_quarter)
        certainly_coverable = (
            window <= engine_frame_levels(self.tpq)[0].capacity
        )
        if dropped_engine == len(candidates):
            self.oracle.drop_keys(candidates)
        elif dropped_engine == 0 and candidates and certainly_coverable:
            raise VerifyMismatch(
                f"prune dropped nothing although the {window}-quarter "
                f"window is covered and the oracle finds "
                f"{len(candidates)} idle cells "
                f"({sorted(map(repr, candidates))})"
            )
        elif dropped_engine != 0:
            raise VerifyMismatch(
                f"prune dropped {dropped_engine} cells; oracle finds "
                f"{len(candidates)} idle ({sorted(map(repr, candidates))})"
            )
        if self.engine.tracked_cells != self.oracle.tracked_cells:
            raise VerifyMismatch(
                f"after prune: engine tracks {self.engine.tracked_cells} "
                f"cells, oracle {self.oracle.tracked_cells}"
            )
        self.report.checks += 1

    # -- chaos: worker crashes and RPC timeouts -------------------------
    def _pick_shard(self, shard: int | None) -> int:
        if self.scenario.backend != "process":
            raise VerifyMismatch(
                "scenario bug: worker-chaos event without backend='process'"
            )
        return (
            shard
            if shard is not None
            else self.rng.randrange(self.cube.n_shards)
        )

    def _kill_worker(self, event: KillWorker) -> None:
        shard = self._pick_shard(event.shard)
        if event.during is not None:
            self.cube.arm_worker_fault(shard, "exit", event.during)
        else:
            self.cube.kill_worker(shard)

    def _slow_rpc(self, event: SlowRpc) -> None:
        shard = self._pick_shard(event.shard)
        if event.seconds <= self.scenario.rpc_timeout:
            raise VerifyMismatch(
                "scenario bug: SlowRpc stall must exceed rpc_timeout"
            )
        self.cube.arm_worker_fault(
            shard, "sleep", event.method, event.seconds
        )

    # -- continuous queries (subscription push) -------------------------
    def _subscribe(self, event: Subscribe) -> None:
        if self.subscriptions is None:
            self.subscriptions = SubscriptionRegistry(
                self.router, queue_limit=event.queue_limit
            )
        window = self.scenario.window
        registrations = (
            # Two watch subscribers share one spec: the dispatcher must
            # collapse them onto a single execution per seal.
            (self.subscriptions.subscribe(watch=True), "watch", 1),
            (
                self.subscriptions.subscribe(
                    watch=True, every_k=event.every_k
                ),
                "watch",
                event.every_k,
            ),
            (
                self.subscriptions.subscribe(
                    Q.observation_deck(window=window)
                ),
                "deck",
                1,
            ),
        )
        for sub_id, kind, every_k in registrations:
            self._subs_meta[sub_id] = kind
            if every_k == 1:
                # every-seal subscribers are held to "nothing missing"
                # in DrainUpdates; every-K ones only to correctness.
                self._every_seal.add(sub_id)

    def _verify_update(
        self, sub_id: str, kind: str, update: dict
    ) -> None:
        """One pushed update against the oracle at *its* quarter."""
        epoch = tuple(update["epoch"])
        quarter = update["quarter"]
        if len(epoch) < 3:
            raise VerifyMismatch(
                f"{sub_id}: malformed epoch vector {epoch!r}"
            )
        if quarter != min(epoch[2:]):
            raise VerifyMismatch(
                f"{sub_id}: update quarter {quarter} disagrees with its "
                f"epoch vector {epoch!r}"
            )
        prev = self._sub_prev_epoch.get(sub_id)
        if prev:
            if len(prev) != len(epoch) or any(
                c < p for p, c in zip(prev, epoch)
            ):
                raise VerifyMismatch(
                    f"{sub_id}: update epoch {epoch!r} is older than its "
                    f"predecessor's {prev!r} — delivery reordered"
                )
        self._sub_prev_epoch[sub_id] = epoch
        cells = {
            tuple(row["values"]): isb_from_dict(row["isb"])
            for row in update["result"]["cells"]
        }
        t_b, t_e = self.oracle.window_bounds_at(
            quarter, self.scenario.window
        )
        o_coord = self.layers.o_coord
        what = f"pushed {kind} update at quarter {quarter}"
        if kind == "deck":
            assert_cells_equal(
                cells,
                self.oracle.cuboid_cells_at(o_coord, t_b, t_e),
                what,
            )
        else:
            _flag_sets_equal(
                cells,
                self.oracle.exceptional_cells_at(o_coord, t_b, t_e),
                self.oracle,
                o_coord,
                what,
                DEFAULT_TOLERANCE,
            )
        self._updates_verified += 1
        self.report.cells_compared += len(cells)

    def _drain_updates(self, event: DrainUpdates) -> None:
        if self.subscriptions is None:
            raise VerifyMismatch(
                "scenario bug: DrainUpdates before Subscribe"
            )
        if not self.subscriptions.flush(30.0):
            raise VerifyMismatch(
                "subscription dispatcher failed to drain after the seals"
            )
        window_filled = self.oracle.current_quarter >= self.scenario.window
        for sub_id, kind in self._subs_meta.items():
            since = self._sub_since.get(sub_id, 0)
            reply = self.subscriptions.poll(sub_id, since)
            last_seq = since
            for update in reply["updates"]:
                if update["seq"] <= last_seq:
                    raise VerifyMismatch(
                        f"{sub_id}: sequence numbers not strictly "
                        f"increasing ({update['seq']} after {last_seq})"
                    )
                last_seq = update["seq"]
                self._verify_update(sub_id, kind, update)
            self._sub_since[sub_id] = last_seq
            # An every-seal subscriber, once its window has filled, must
            # have converged on the *newest* seal by the time the
            # dispatcher is idle — anything less means a lost update
            # (coalescing may skip intermediates, never the latest).
            if (
                event.expect_updates
                and window_filled
                and sub_id in self._every_seal
            ):
                prev = self._sub_prev_epoch.get(sub_id)
                if not prev:
                    raise VerifyMismatch(
                        f"{sub_id}: no update delivered although "
                        f"{self.oracle.current_quarter} quarters have "
                        "sealed"
                    )
                delivered_q = min(prev[2:])
                if delivered_q != self.oracle.current_quarter:
                    raise VerifyMismatch(
                        f"{sub_id}: last delivered quarter {delivered_q} "
                        f"!= sealed quarter {self.oracle.current_quarter}"
                    )
        self.report.checks += 1

    def _cache_churn(self, event: CacheChurn) -> None:
        window = self.scenario.window
        if not self._windows_ready(window):
            raise VerifyMismatch("scenario bug: CacheChurn before windows")
        specs = [
            Q.observation_deck(window=window),
            Q.watch_list(window=window),
            Q.top_slopes(self.layers.o_coord, 3, window=window),
        ]
        first = [self.router.execute(spec) for spec in specs]
        before = self.router.cache.hits
        for _ in range(event.repeats):
            for spec, baseline in zip(specs, first):
                again = self.router.execute(spec)
                if again.value != baseline.value:
                    raise VerifyMismatch(
                        f"cache hit for {spec.op!r} returned a different "
                        "answer than the original miss"
                    )
        if self.router.cache.hits < before + len(specs) * event.repeats:
            raise VerifyMismatch("router cache did not serve repeat hits")
        epoch = self.router.epoch
        self._traffic(Traffic(quarters=1, rate=2))
        self._advance(Advance(1))
        deck = self.router.execute(specs[0])
        if self.router.epoch == epoch:
            raise VerifyMismatch(
                "router epoch did not advance after a quarter sealed"
            )
        assert_cells_equal(
            deck.value,
            self.oracle.o_layer_cells(window),
            "post-seal observation_deck",
        )
        self.report.checks += 1


# ----------------------------------------------------------------------
# The scenario catalogue
# ----------------------------------------------------------------------
def _scenario(name: str, description: str, *events: Event, **cfg) -> Scenario:
    return Scenario(name, description, tuple(events), **cfg)


FULL_CHECK = Check(windows=True, cube=True, queries=True, changes=True)

# Quarter accounting: Traffic(quarters=n) starting at the accumulating
# quarter q puts records into q .. q+n-1 and leaves q+n-1 *unsealed*; a
# Check with the default window=4 therefore needs traffic/advances summing
# to at least 5 quarter starts (or an explicit Advance) before it fires.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in [
        _scenario(
            "steady_burst",
            "Dense uniform traffic, checked quarter over quarter.",
            Traffic(quarters=4, rate=4),
            Advance(1),
            Check(),
            Traffic(quarters=2, rate=4),
            Advance(1),
            Check(cube=True, changes=True),
        ),
        _scenario(
            "sparse_trickle",
            "Sparse traffic with empty ticks and whole silent quarters.",
            Traffic(quarters=5, rate=2, style="trickle"),
            Check(changes=True),
            Traffic(quarters=1, rate=1, style="trickle"),
            Advance(1),
            Check(cube=True),
        ),
        _scenario(
            "boundary_ticks",
            "Every record lands on a quarter's first or last tick.",
            Traffic(quarters=4, rate=2, style="boundary"),
            Advance(1),
            Check(cube=True),
            Traffic(quarters=1, rate=2, style="boundary"),
            Advance(1),
            Check(changes=True),
        ),
        _scenario(
            "duplicate_records",
            "Same (cell, tick) repeated and exact duplicates in batches.",
            Traffic(quarters=5, rate=3, style="duplicate"),
            Check(cube=True, changes=True),
        ),
        _scenario(
            "quiet_gaps",
            "Traffic separated by advance-only quarters (zero sealing).",
            Traffic(quarters=2, rate=3),
            Advance(2),
            Traffic(quarters=1, rate=3),
            Advance(1),
            Check(cube=True, changes=True),
        ),
        _scenario(
            "multi_quarter_batches",
            "Single ingest calls spanning several quarter boundaries.",
            Traffic(quarters=4, rate=3, batching="spanning"),
            Advance(1),
            Check(),
            Traffic(quarters=2, rate=3, batching="spanning"),
            Advance(1),
            Check(cube=True),
        ),
        _scenario(
            "record_at_a_time",
            "The per-record ingest surface (WAL per record) end to end.",
            Traffic(quarters=4, rate=2, batching="single"),
            Advance(1),
            Check(cube=True, changes=True),
            cell_pool=6,
        ),
        _scenario(
            "snapshot_restore_midquarter",
            "Snapshot with a hot unsealed quarter; continue on the restore.",
            Traffic(quarters=4, rate=3),
            SnapshotRestore(),  # quarter 3 is mid-accumulation here
            Traffic(quarters=2, rate=3),
            Advance(1),
            Check(cube=True, changes=True),
        ),
        _scenario(
            "reshard_midrun",
            "Online k->j resharding mid-stream, both directions.",
            Traffic(quarters=3, rate=3),
            Reshard(shards=5),
            Traffic(quarters=2, rate=3),
            Advance(1),
            Check(),
            Reshard(shards=1),
            Traffic(quarters=1, rate=3),
            Check(cube=True),
        ),
        _scenario(
            "crash_replay",
            "Crash after a snapshot: recover from snapshot + torn WAL.",
            Traffic(quarters=3, rate=3),
            SnapshotRestore(),
            Traffic(quarters=2, rate=3),
            CrashReplay(),
            Traffic(quarters=1, rate=3),
            Advance(1),
            Check(cube=True),
        ),
        _scenario(
            "prune_then_revive",
            "Cells go idle, get pruned, then speak again (zero-backfilled).",
            Traffic(quarters=3, rate=3),
            Traffic(quarters=3, rate=2, style="trickle"),
            Prune(idle_quarters=2),
            Traffic(quarters=2, rate=3),
            Check(cube=True),
            Prune(idle_quarters=1),
            Check(),
            cell_pool=8,
        ),
        _scenario(
            "cache_churn",
            "Query cache hit/miss interleaving across quarter seals.",
            Traffic(quarters=4, rate=3),
            Advance(1),
            CacheChurn(repeats=2),
            CacheChurn(repeats=1),
            Check(queries=True),
        ),
        _scenario(
            "continuous_push",
            "Subscribers ride the seal path: watch/deck updates pushed "
            "while ingest continues, each verified against the oracle at "
            "its own quarter, strictly ordered, never from the seal's "
            "critical section.",
            Traffic(quarters=2, rate=3),
            Subscribe(every_k=2),
            Traffic(quarters=3, rate=3),
            Advance(1),
            DrainUpdates(),
            Traffic(quarters=2, rate=3, style="trickle"),
            Advance(1),
            DrainUpdates(),
            Traffic(quarters=1, rate=4, style="boundary"),
            Advance(1),
            DrainUpdates(),
            Check(queries=True),
        ),
        _scenario(
            "query_sweep",
            "Every query op checked against the oracle, twice per surface.",
            Traffic(quarters=4, rate=4),
            Advance(1),
            Check(queries=True),
            Traffic(quarters=1, rate=2, style="trickle"),
            Advance(1),
            Check(queries=True, changes=True),
            dims=2,
            levels=3,
            fanout=2,
        ),
        _scenario(
            "popular_path_check",
            "Popular-path cubing's retention closure vs the oracle.",
            Traffic(quarters=4, rate=4),
            Advance(1),
            Check(cube=True, algorithm="popular"),
            Traffic(quarters=1, rate=3, style="trickle"),
            Advance(1),
            Check(cube=True, algorithm="full"),
        ),
        _scenario(
            "single_tick_quarters",
            "ticks_per_quarter=1: every record seals a quarter by itself.",
            Traffic(quarters=6, rate=2),
            Advance(1),
            Check(cube=True, changes=True),
            Traffic(quarters=2, rate=1, style="trickle"),
            Advance(1),
            Check(),
            ticks_per_quarter=1,
            cell_pool=6,
        ),
        _scenario(
            "spill_deep_window",
            "Hundreds of sealed quarters spill to disk; windows reaching "
            "back to the origin fault cold pages and match the oracle.",
            Traffic(quarters=120, rate=2),
            DeepWindow(),
            Traffic(quarters=81, rate=1, style="trickle"),
            Advance(1),
            DeepWindow(samples=3),
            Check(),
            ticks_per_quarter=1,
            storage="file",
            hot_quarters=2,
            cell_pool=6,
        ),
        _scenario(
            "spill_snapshot_restore",
            "Snapshot and reshard a cube whose history lives in a "
            "populated sqlite cold store; deep windows stay identical.",
            Traffic(quarters=20, rate=2),
            SnapshotRestore(),
            Traffic(quarters=8, rate=2),
            Advance(1),
            DeepWindow(),
            Reshard(shards=2),
            Traffic(quarters=4, rate=2, style="trickle"),
            Advance(1),
            DeepWindow(),
            Check(cube=True),
            ticks_per_quarter=2,
            storage="sqlite",
            hot_quarters=2,
            cell_pool=8,
        ),
        _scenario(
            "spill_crash_replay",
            "Crash lands between a spill and the next manifest write: "
            "recovery replays the WAL over the already-written cold pages.",
            Traffic(quarters=12, rate=3),
            SnapshotRestore(),
            Traffic(quarters=6, rate=2),
            CrashReplay(),
            Traffic(quarters=2, rate=2),
            Advance(1),
            DeepWindow(),
            Check(cube=True),
            ticks_per_quarter=2,
            storage="file",
            hot_quarters=1,
            cell_pool=8,
        ),
        _scenario(
            "worker_crash_midquarter",
            "Process workers killed mid-quarter — outright and from inside "
            "a batch dispatch; WAL replay must rebuild them bit-identically.",
            Traffic(quarters=2, rate=3),
            KillWorker(),  # SIGKILL; detected by the next batch's RPC
            Traffic(quarters=2, rate=3),
            KillWorker(during="apply_segments"),  # dies mid-dispatch
            Traffic(quarters=2, rate=3),
            Advance(1),
            Check(cube=True, changes=True),
            backend="process",
        ),
        _scenario(
            "worker_crash_snapshot",
            "A worker dies inside snapshot extraction; the idempotent "
            "retry against the revived worker must still produce a "
            "complete snapshot the restore verifies against.",
            Traffic(quarters=3, rate=3),
            SnapshotRestore(),  # baseline manifest = the recovery anchor
            Traffic(quarters=1, rate=3),
            KillWorker(during="snapshot_to_file"),
            SnapshotRestore(),  # crash fires mid-extract; retry completes
            Traffic(quarters=2, rate=3),
            Advance(1),
            Check(cube=True),
            backend="process",
        ),
        _scenario(
            "rpc_timeout_retry",
            "A worker stalls past the RPC timeout; the supervisor kills, "
            "revives and retries the idempotent read to the oracle's "
            "answer.",
            Traffic(quarters=4, rate=3),
            Advance(1),
            SlowRpc(seconds=1.5, method="m_cells"),
            Check(),  # the stalled m_cells trips the timeout mid-check
            Traffic(quarters=1, rate=3),
            Advance(1),
            Check(changes=True),
            backend="process",
            rpc_timeout=0.5,
        ),
        _scenario(
            "kitchen_sink",
            "Everything composed: all traffic shapes, durability, queries.",
            Traffic(quarters=3, rate=3),
            Traffic(quarters=1, rate=2, style="boundary"),
            Advance(1),
            Traffic(quarters=1, rate=3, style="duplicate"),
            SnapshotRestore(),
            Traffic(quarters=2, rate=2, style="trickle", batching="spanning"),
            Reshard(shards=2),
            CrashReplay(),
            Traffic(quarters=2, rate=3),
            Prune(idle_quarters=3),
            Advance(1),
            FULL_CHECK,
        ),
    ]
}


def run_scenario(
    scenario: Scenario | str,
    seed: int,
    workdir: str | Path | None = None,
    storage: str | None = None,
    hot_quarters: int | None = None,
    backend: str | None = None,
    fault_plan: str | None = None,
) -> ScenarioReport:
    """Run one scenario under one seed; raises :class:`VerifyMismatch` on
    any disagreement.  ``workdir`` (for snapshots, journals and cold
    stores) defaults to a fresh temporary directory.  ``storage`` /
    ``hot_quarters`` override the scenario's tiered-storage configuration,
    so the whole catalogue can be replayed spilling:
    ``run_scenario("kitchen_sink", seed, storage="file")``; ``backend``
    likewise overrides the execution backend, so the whole catalogue can
    be replayed against process workers:
    ``run_scenario("kitchen_sink", seed, backend="process")``.
    ``fault_plan`` (a :mod:`repro.faults` preset name or plan-file path)
    arms seeded storage/RPC fault injection for the whole run — the
    scenario must still pass bit-identically, because every injected
    fault class is one the durability layer repairs in place."""
    if isinstance(scenario, str):
        scenario = SCENARIOS[scenario]
    overrides: dict[str, Any] = {}
    if storage is not None:
        overrides["storage"] = storage
    if hot_quarters is not None:
        overrides["hot_quarters"] = hot_quarters
    if backend is not None:
        overrides["backend"] = backend
    if overrides:
        scenario = dataclasses.replace(scenario, **overrides)
    installed = False
    if fault_plan is not None:
        faults.install(faults.load_plan(fault_plan, seed))
        installed = True
    try:
        if workdir is not None:
            return ScenarioRunner(scenario, seed, workdir).run()
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            return ScenarioRunner(scenario, seed, tmp).run()
    finally:
        if installed:
            faults.clear()
