"""The tilt time frame (paper Section 4.1, Figure 4).

Time is registered at multiple granularities: the most recent time at the
finest granularity, more distant time at coarser granularities.  Each level
holds a bounded number of *slots*; a slot stores the ISB of its time span.
When the slots of a fine level complete a full unit of the next coarser
level, they are aggregated with Theorem 3.3 and *promoted* into a new slot at
that coarser level, while the fine slots remain available until evicted by
their level's capacity — exactly the Section 4.5 maintenance discipline
("the quarter slots will still retain sufficient information for
quarter-based regression analysis").

The frame is generic; the paper's natural-calendar preset and a logarithmic
variant live in :mod:`repro.tilt.natural` and :mod:`repro.tilt.logarithmic`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, Sequence

from repro.errors import TiltFrameError
from repro.regression import kernels
from repro.regression.aggregation import merge_time
from repro.regression.isb import ISB

__all__ = ["TiltLevelSpec", "TiltTimeFrame", "bulk_insert"]

#: A window decomposition: ``(level index, slot position, t_b, t_e)`` per
#: piece, finest available level first at every position (see
#: :meth:`TiltTimeFrame.window_plan`).
WindowPlan = list[tuple[int, int, int, int]]


@dataclass(frozen=True)
class TiltLevelSpec:
    """Specification of one tilt-frame level.

    Attributes
    ----------
    name:
        Level name, e.g. ``"quarter"``.
    unit_ticks:
        How many base ticks one slot of this level spans.  Must be a
        multiple of the previous (finer) level's ``unit_ticks``.
    capacity:
        How many most-recent slots this level retains.  For every level
        except the coarsest it must be at least the ratio to the next
        coarser level's unit, otherwise slots would be evicted before they
        can be promoted.
    """

    name: str
    unit_ticks: int
    capacity: int

    def __post_init__(self) -> None:
        if self.unit_ticks < 1:
            raise TiltFrameError(f"level {self.name!r}: unit_ticks must be >= 1")
        if self.capacity < 1:
            raise TiltFrameError(f"level {self.name!r}: capacity must be >= 1")


class TiltTimeFrame:
    """A multi-granularity register of ISBs over a growing time axis.

    Parameters
    ----------
    levels:
        Level specs, finest first.  Unit sizes must be strictly increasing,
        each a multiple of the previous.
    origin:
        The base tick at which the frame's time axis starts; all level units
        are aligned to it.
    """

    #: Cold-storage seam (class-level defaults keep frames storage-free by
    #: default).  ``_cold`` answers "does a demoted slot start here?" (duck
    #: typed: anything with ``has_slot(level, t_b)``, in practice one
    #: :class:`repro.storage.spill.ColdIndex` shared by every frame of an
    #: engine); ``_cold_reader(level, t_b, t_e)`` faults the slot's ISB
    #: back in.  The tilt layer never imports the storage layer.
    _cold = None
    _cold_reader = None

    def __init__(self, levels: Sequence[TiltLevelSpec], origin: int = 0) -> None:
        if not levels:
            raise TiltFrameError("a tilt frame needs at least one level")
        names = [lv.name for lv in levels]
        if len(set(names)) != len(names):
            raise TiltFrameError(f"duplicate level names: {names}")
        for fine, coarse in zip(levels, levels[1:]):
            if coarse.unit_ticks <= fine.unit_ticks:
                raise TiltFrameError(
                    f"level {coarse.name!r} unit ({coarse.unit_ticks}) must "
                    f"exceed level {fine.name!r} unit ({fine.unit_ticks})"
                )
            if coarse.unit_ticks % fine.unit_ticks != 0:
                raise TiltFrameError(
                    f"level {coarse.name!r} unit ({coarse.unit_ticks}) is not "
                    f"a multiple of level {fine.name!r} unit ({fine.unit_ticks})"
                )
            ratio = coarse.unit_ticks // fine.unit_ticks
            if fine.capacity < ratio:
                raise TiltFrameError(
                    f"level {fine.name!r} capacity ({fine.capacity}) is below "
                    f"the promotion ratio to {coarse.name!r} ({ratio}); slots "
                    "would be evicted before promotion"
                )
        self.levels = tuple(levels)
        self.origin = origin
        self._slots: list[Deque[ISB]] = [
            deque(maxlen=lv.capacity) for lv in levels
        ]
        self._next_tick = origin
        self._evicted = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """The next base tick the frame expects (1 past the last covered)."""
        return self._next_tick

    @property
    def total_capacity(self) -> int:
        """Total number of slots the frame can hold (Example 3's "71")."""
        return sum(lv.capacity for lv in self.levels)

    @property
    def total_retained(self) -> int:
        """Number of slots currently held across all levels."""
        return sum(len(s) for s in self._slots)

    @property
    def evicted_slots(self) -> int:
        """Count of coarsest-level slots whose data has aged out entirely."""
        return self._evicted

    def level_index(self, level: int | str) -> int:
        if isinstance(level, int):
            if not 0 <= level < len(self.levels):
                raise TiltFrameError(f"no level index {level}")
            return level
        for i, lv in enumerate(self.levels):
            if lv.name == level:
                return i
        raise TiltFrameError(f"no level named {level!r}")

    def slots(self, level: int | str) -> tuple[ISB, ...]:
        """The retained slots of a level, oldest first."""
        return tuple(self._slots[self.level_index(level)])

    def span(self) -> tuple[int, int] | None:
        """The closed tick interval currently covered, or ``None`` if empty.

        The covered span runs from the oldest retained coarse slot to the
        newest fine slot (the levels telescope; coarser levels reach further
        back).
        """
        starts = [s[0].t_b for s in self._slots if s]
        ends = [s[-1].t_e for s in self._slots if s]
        if not starts:
            return None
        return (min(starts), max(ends))

    # ------------------------------------------------------------------
    # Insertion / promotion
    # ------------------------------------------------------------------
    def insert(self, isb: ISB) -> None:
        """Insert the ISB of the next finest-level unit.

        The ISB must cover exactly ``[now, now + unit - 1]`` where ``unit``
        is the finest level's ``unit_ticks`` — the frame only grows
        contiguously, mirroring the always-grow nature of the stream.
        Promotions to coarser levels happen automatically when unit
        boundaries are crossed.
        """
        unit = self.levels[0].unit_ticks
        expected = (self._next_tick, self._next_tick + unit - 1)
        if isb.interval != expected:
            raise TiltFrameError(
                f"expected an ISB over {expected}, got {isb.interval}"
            )
        self._slots[0].append(isb)
        self._next_tick += unit
        self._promote(0)

    def _promote(self, level: int) -> None:
        """Promote level ``level`` into ``level + 1`` if a unit completed."""
        if level + 1 >= len(self.levels):
            return
        coarse = self.levels[level + 1]
        # A coarse unit just completed iff the frame's covered end is aligned.
        if (self._next_tick - self.origin) % coarse.unit_ticks != 0:
            return
        ratio = coarse.unit_ticks // self.levels[level].unit_ticks
        fine_slots = self._slots[level]
        if len(fine_slots) < ratio:  # partial history at startup
            return
        children = list(fine_slots)[-ratio:]
        merged = merge_time(children)
        target = self._slots[level + 1]
        if (
            len(target) == target.maxlen
            and level + 1 == len(self.levels) - 1
        ):
            self._evicted += 1
        target.append(merged)
        self._promote(level + 1)

    # ------------------------------------------------------------------
    # Cloning (cheap engine-side cell spawning)
    # ------------------------------------------------------------------
    def clone(self) -> "TiltTimeFrame":
        """An exact, independent copy of this frame's state.

        Slots hold immutable ISBs, so the copy shares them; only the deques
        are duplicated.  Skips ``__init__`` validation — the levels were
        validated when this frame was built.  The stream engine uses this to
        spawn a new cell's frame from its zero-backfilled prototype in O(L)
        instead of replaying every sealed quarter.
        """
        other = object.__new__(TiltTimeFrame)
        other.levels = self.levels
        other.origin = self.origin
        other._slots = [s.copy() for s in self._slots]  # keeps maxlen
        other._next_tick = self._next_tick
        other._evicted = self._evicted
        other._cold = self._cold
        other._cold_reader = self._cold_reader
        return other

    def attach_cold(self, index, reader) -> None:
        """Wire this frame to demoted-slot bookkeeping and a fault-in reader.

        ``index`` must answer ``has_slot(level, t_b)`` for slots that have
        been demoted out of the deques; ``reader(level, t_b, t_e)`` must
        return the demoted slot's exact ISB.  Window planning then covers
        windows with cold slots too (see :meth:`window_plan`), and
        :meth:`slots_at` faults them in transparently.
        """
        self._cold = index
        self._cold_reader = reader

    @classmethod
    def from_state(
        cls,
        levels: Sequence[TiltLevelSpec],
        origin: int,
        next_tick: int,
        evicted: int,
        slots: Sequence[Sequence[ISB]],
    ) -> "TiltTimeFrame":
        """Rebuild a frame from externalized state (the snapshot codec).

        The inverse of reading ``levels`` / ``origin`` / ``now`` /
        ``evicted_slots`` / per-level ``slots()``: level specs are
        re-validated through ``__init__`` (a corrupted snapshot must not
        produce a frame that violates promotion invariants), then the
        retained slots are installed verbatim — restored frames are
        bit-identical to the originals, slot for slot, including eviction
        accounting.  Passing an already-validated ``levels`` tuple shared
        by sibling frames keeps the engine's identity-based alignment fast
        path intact after a restore.
        """
        frame = cls(levels, origin=origin)
        if len(slots) != len(frame.levels):
            raise TiltFrameError(
                f"frame state has {len(slots)} slot levels for "
                f"{len(frame.levels)} level specs"
            )
        for deque_, level_slots, spec in zip(frame._slots, slots, frame.levels):
            if len(level_slots) > spec.capacity:
                raise TiltFrameError(
                    f"level {spec.name!r} state holds {len(level_slots)} "
                    f"slots, over its capacity {spec.capacity}"
                )
            deque_.extend(level_slots)
        frame._next_tick = next_tick
        frame._evicted = evicted
        return frame

    def aligned_with(self, other: "TiltTimeFrame") -> bool:
        """True iff both frames share geometry, clock and slot counts.

        Aligned frames promote and decompose windows identically, which is
        what :func:`bulk_insert` and bulk window queries rely on.
        """
        if self._next_tick != other._next_tick or self.origin != other.origin:
            return False
        # Identity first: engine frames share one levels tuple via clone().
        if self.levels is not other.levels and self.levels != other.levels:
            return False
        for a, b in zip(self._slots, other._slots):
            if len(a) != len(b):
                return False
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, t_b: int, t_e: int) -> ISB:
        """Regression over ``[t_b, t_e]`` from retained slots (Theorem 3.3).

        The window must be exactly coverable by retained slot boundaries;
        the finest available slots are preferred at every position.  Raises
        :class:`TiltFrameError` when the window reaches beyond retained
        history or does not align with any slot boundary.
        """
        plan = self.window_plan(t_b, t_e)
        return merge_time(self.slots_at(plan))

    def window_plan(self, t_b: int, t_e: int) -> WindowPlan:
        """The slot decomposition ``query`` would use, as positions.

        Returns ``(level index, slot position, t_b, t_e)`` per piece; a
        position of ``-1`` marks a *cold* (demoted) slot that
        :meth:`slots_at` faults back in.  The plan depends only on slot
        *boundaries*, so frames that are :meth:`aligned_with` each other —
        and share one cold index — share one plan: the engine computes it
        once and gathers every cell's slots with :meth:`slots_at`, then
        merges all cells in one grouped Theorem 3.3 kernel call.

        Planning is two-tier.  The *canonical* pass decomposes finest-first
        over the slots a storage-free frame would retain (resident slots
        plus cold slots still inside each level's capacity window), so any
        window answerable without tiered storage gets the identical plan —
        and the identical arithmetic — with it.  Only when that pass cannot
        cover the window does the *archive* pass retry over the full cold
        history, coarsest-first (fewer pages faulted per deep window); it
        extends coverage toward the origin without changing any answer the
        canonical pass already gave.
        """
        if t_b > t_e:
            raise TiltFrameError(f"empty window [{t_b}, {t_e}]")
        try:
            return self._plan(t_b, t_e, archive=False)
        except TiltFrameError:
            if self._cold is None:
                raise
            return self._plan(t_b, t_e, archive=True)

    def _plan(self, t_b: int, t_e: int, archive: bool) -> WindowPlan:
        plan: WindowPlan = []
        cursor = t_b
        while cursor <= t_e:
            piece = self._piece_at(cursor, t_e, archive)
            if piece is None:
                raise TiltFrameError(
                    f"window [{t_b}, {t_e}] not coverable from retained "
                    f"slots at tick {cursor}"
                )
            plan.append(piece)
            cursor = piece[3] + 1
        return plan

    def slots_at(self, plan: WindowPlan) -> list[ISB]:
        """The slots a plan points at, in plan order (cold ones faulted in)."""
        out: list[ISB] = []
        for level, pos, piece_b, piece_e in plan:
            if pos >= 0:
                out.append(self._slots[level][pos])
            else:
                out.append(self._cold_reader(level, piece_b, piece_e))
        return out

    def _piece_at(
        self, start: int, limit: int, archive: bool
    ) -> tuple[int, int, int, int] | None:
        cold = self._cold
        if not archive:
            for li, level_slots in enumerate(self._slots):  # finest first
                for pos, slot in enumerate(level_slots):
                    if slot.t_b == start and slot.t_e <= limit:
                        return (li, pos, slot.t_b, slot.t_e)
                if cold is not None and cold.has_slot(li, start):
                    end = start + self.levels[li].unit_ticks - 1
                    if end <= limit and start >= self._canonical_floor(li):
                        return (li, -1, start, end)
            return None
        for li in range(len(self._slots) - 1, -1, -1):  # coarsest first
            if cold is not None and cold.has_slot(li, start):
                end = start + self.levels[li].unit_ticks - 1
                if end <= limit:
                    return (li, -1, start, end)
            for pos, slot in enumerate(self._slots[li]):
                if slot.t_b == start and slot.t_e <= limit:
                    return (li, pos, slot.t_b, slot.t_e)
        return None

    def _canonical_floor(self, level: int) -> int:
        """Oldest slot start a storage-free frame would still retain.

        A level retains its ``capacity`` newest slots, ending at the last
        completed unit boundary — a demoted slot older than that would have
        been evicted by ``maxlen`` in a storage-free frame, so the
        canonical planning pass must not see it (the archive pass may).
        """
        spec = self.levels[level]
        last = (
            self.origin
            + ((self._next_tick - self.origin) // spec.unit_ticks)
            * spec.unit_ticks
        )
        return last - spec.capacity * spec.unit_ticks

    def last_window(self, level: int | str, count: int) -> ISB:
        """Merged regression over the most recent ``count`` slots of a level.

        E.g. ``last_window("hour", 24)`` is the paper's "the last day with
        the precision of hour".
        """
        idx = self.level_index(level)
        retained = self._slots[idx]
        if count < 1 or count > len(retained):
            raise TiltFrameError(
                f"level {self.levels[idx].name!r} holds {len(retained)} "
                f"slots; cannot window {count}"
            )
        return merge_time(list(retained)[-count:])

    def all_slots(self) -> Iterator[tuple[str, ISB]]:
        """All retained slots as ``(level_name, isb)`` pairs, finest first."""
        for lv, level_slots in zip(self.levels, self._slots):
            for slot in level_slots:
                yield lv.name, slot

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{lv.name}:{len(s)}/{lv.capacity}"
            for lv, s in zip(self.levels, self._slots)
        )
        return f"TiltTimeFrame({parts}, now={self._next_tick})"


def bulk_insert(
    frames: Sequence[TiltTimeFrame],
    isbs: Iterable[ISB],
    assume_aligned: bool = False,
) -> None:
    """Insert one finest-level slot into many aligned frames at once.

    Semantically ``for f, i in zip(frames, isbs): f.insert(i)``, but all
    promotions triggered by the insert run as one grouped Theorem 3.3 kernel
    call per level (:func:`repro.regression.kernels.merge_time_grid`)
    instead of one ``merge_time`` per frame.  Aligned frames promote at the
    same boundaries with the same child intervals, which is what makes the
    grid shape possible — the stream engine keeps every cell's frame on one
    global quarter grid for exactly this reason.

    Numeric note: the kernel folds each frame's children sequentially where
    scalar ``merge_time`` uses ``math.fsum``, so promoted slots agree with
    the scalar path to ulps, not bits (see :mod:`repro.regression.kernels`).
    Each frame's slots are computed from that frame's values alone, so
    results do not depend on how many frames share the batch — a cell seals
    identically on a 1-cell shard and a 10,000-cell engine.

    Falls back to per-frame :meth:`TiltTimeFrame.insert` when numpy is
    unavailable or the frames are not aligned.  ``assume_aligned=True``
    skips the per-frame alignment check — only for callers that *own* the
    frames and maintain alignment as an invariant (the stream engine, whose
    frames are all clones of one prototype advanced in lockstep); a
    misaligned frame would silently receive a slot at the wrong position.
    """
    frames = list(frames)
    isb_list = list(isbs)
    if len(frames) != len(isb_list):
        raise TiltFrameError(
            f"bulk_insert got {len(frames)} frames but {len(isb_list)} ISBs"
        )
    if not frames:
        return
    first = frames[0]
    if not kernels.HAVE_NUMPY or not (
        assume_aligned
        or all(f is first or f.aligned_with(first) for f in frames[1:])
    ):
        for frame, isb in zip(frames, isb_list):
            frame.insert(isb)
        return

    unit = first.levels[0].unit_ticks
    expected = (first._next_tick, first._next_tick + unit - 1)
    for isb in isb_list:
        if isb.interval != expected:
            raise TiltFrameError(
                f"expected an ISB over {expected}, got {isb.interval}"
            )
    for frame, isb in zip(frames, isb_list):
        frame._slots[0].append(isb)
        frame._next_tick += unit

    next_tick = first._next_tick
    level = 0
    while level + 1 < len(first.levels):
        coarse = first.levels[level + 1]
        if (next_tick - first.origin) % coarse.unit_ticks != 0:
            break
        ratio = coarse.unit_ticks // first.levels[level].unit_ticks
        if len(first._slots[level]) < ratio:  # partial history at startup
            break
        columns = [
            kernels.ISBColumns.from_isbs(
                [frame._slots[level][r] for frame in frames]
            )
            for r in range(-ratio, 0)
        ]
        merged = kernels.merge_time_grid(columns).to_isbs()
        coarsest = level + 1 == len(first.levels) - 1
        for frame, slot in zip(frames, merged):
            target = frame._slots[level + 1]
            if len(target) == target.maxlen and coarsest:
                frame._evicted += 1
            target.append(slot)
        level += 1
