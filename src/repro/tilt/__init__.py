"""Tilt time frames: multi-granularity time registration (Section 4.1)."""

from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame
from repro.tilt.logarithmic import logarithmic_frame, slots_needed_for_span
from repro.tilt.natural import (
    Example3Savings,
    example3_savings,
    natural_frame,
)

__all__ = [
    "TiltLevelSpec",
    "TiltTimeFrame",
    "natural_frame",
    "example3_savings",
    "Example3Savings",
    "logarithmic_frame",
    "slots_needed_for_span",
]
