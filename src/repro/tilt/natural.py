"""The paper's natural-calendar tilt frame (Fig 4 / Example 3).

The frame registers the most recent 4 quarters (of an hour), then 24 hours,
31 days and 12 months: ``4 + 24 + 31 + 12 = 71`` slots instead of the
``366 * 24 * 4 = 35,136`` quarter-units of a full year — a saving of about
495x (Example 3).

The base tick of the frame is one quarter of an hour (the paper's m-layer
time granularity for the power-grid scenario).  For unit arithmetic, this
implementation uses a 31-day month (matching the paper's "31 days" register
count); the Example 3 savings computation uses the paper's own 366-day year.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame

__all__ = [
    "QUARTERS_PER_HOUR",
    "HOURS_PER_DAY",
    "DAYS_PER_MONTH",
    "MONTHS_PER_YEAR",
    "natural_frame",
    "Example3Savings",
    "example3_savings",
]

QUARTERS_PER_HOUR = 4
HOURS_PER_DAY = 24
DAYS_PER_MONTH = 31
MONTHS_PER_YEAR = 12

#: Days in the paper's Example 3 year (366: it counts a leap year).
_EXAMPLE3_DAYS_PER_YEAR = 366


def natural_frame(origin: int = 0) -> TiltTimeFrame:
    """The Fig 4 frame: 4 quarters, 24 hours, 31 days, 12 months.

    Base tick = one quarter-hour.  Level capacities follow the paper; unit
    sizes are quarter=1, hour=4, day=96, month=2976 (31 days) ticks.
    """
    quarter = TiltLevelSpec("quarter", 1, QUARTERS_PER_HOUR)
    hour = TiltLevelSpec("hour", QUARTERS_PER_HOUR, HOURS_PER_DAY)
    day = TiltLevelSpec("day", QUARTERS_PER_HOUR * HOURS_PER_DAY, DAYS_PER_MONTH)
    month = TiltLevelSpec(
        "month",
        QUARTERS_PER_HOUR * HOURS_PER_DAY * DAYS_PER_MONTH,
        MONTHS_PER_YEAR,
    )
    return TiltTimeFrame([quarter, hour, day, month], origin=origin)


@dataclass(frozen=True)
class Example3Savings:
    """The arithmetic of the paper's Example 3."""

    tilt_units: int
    full_units: int

    @property
    def ratio(self) -> float:
        return self.full_units / self.tilt_units


def example3_savings() -> Example3Savings:
    """Reproduce Example 3: 71 tilt units vs 35,136 full units (~495x).

    The full registration counts every quarter of a 366-day year; the tilt
    registration counts the frame's slot capacities.
    """
    tilt = (
        QUARTERS_PER_HOUR + HOURS_PER_DAY + DAYS_PER_MONTH + MONTHS_PER_YEAR
    )
    full = _EXAMPLE3_DAYS_PER_YEAR * HOURS_PER_DAY * QUARTERS_PER_HOUR
    return Example3Savings(tilt_units=tilt, full_units=full)
