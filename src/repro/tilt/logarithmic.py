"""Logarithmic tilt time frame (extension).

A common alternative to the natural-calendar frame in the follow-on
stream-cube literature: level ``i`` spans ``ratio**i`` base ticks, so a
history of ``T`` ticks is registered in ``O(log T)`` slots.  Included here as
the Section 6.2-spirit extension most downstream users ask for; it plugs into
the same :class:`~repro.tilt.frame.TiltTimeFrame` machinery (promotion via
Theorem 3.3, telescoping window queries).
"""

from __future__ import annotations

from repro.errors import TiltFrameError
from repro.tilt.frame import TiltLevelSpec, TiltTimeFrame

__all__ = ["logarithmic_frame", "slots_needed_for_span"]


def logarithmic_frame(
    n_levels: int,
    ratio: int = 2,
    capacity: int | None = None,
    origin: int = 0,
) -> TiltTimeFrame:
    """A frame whose level ``i`` spans ``ratio**i`` ticks.

    Parameters
    ----------
    n_levels:
        Number of levels; the frame then covers about
        ``capacity * ratio**(n_levels-1)`` ticks.
    ratio:
        Geometric growth between levels (>= 2).
    capacity:
        Slots retained per level; defaults to ``ratio`` (the minimum that
        keeps promotion lossless).
    """
    if n_levels < 1:
        raise TiltFrameError("need at least one level")
    if ratio < 2:
        raise TiltFrameError("ratio must be >= 2")
    if capacity is None:
        capacity = ratio
    if capacity < ratio:
        raise TiltFrameError(
            f"capacity {capacity} below promotion ratio {ratio}"
        )
    levels = [
        TiltLevelSpec(f"l{i}", ratio**i, capacity) for i in range(n_levels)
    ]
    return TiltTimeFrame(levels, origin=origin)


def slots_needed_for_span(span_ticks: int, ratio: int = 2) -> int:
    """Levels needed for a logarithmic frame to cover ``span_ticks``.

    The minimal ``n`` with ``ratio**n >= span_ticks`` — used when sizing a
    frame for an application-required history length.
    """
    if span_ticks < 1:
        raise TiltFrameError("span must be positive")
    n = 1
    covered = ratio  # capacity==ratio slots of the finest level
    while covered < span_ticks:
        covered *= ratio
        n += 1
    return n
