"""Cubing algorithms: exception policies, Algorithm 1 & 2, baselines."""

from repro.cubing.buc import buc_cubing
from repro.cubing.build import build_mo_htree, build_path_htree
from repro.cubing.full import full_materialization, intermediate_slopes
from repro.cubing.mo_cubing import mo_cubing, mo_cubing_from_tree
from repro.cubing.multiway import multiway_cubing
from repro.cubing.policy import (
    ExceptionPolicy,
    GlobalSlopeThreshold,
    PerCuboidSlopeThreshold,
    PerDimensionLevelThreshold,
    calibrate_threshold,
    two_point_isb,
)
from repro.cubing.popular_path import (
    popular_path_cubing,
    popular_path_cubing_from_tree,
)
from repro.cubing.result import CubeResult, framework_closure
from repro.cubing.stats import CubingStats

__all__ = [
    "ExceptionPolicy",
    "GlobalSlopeThreshold",
    "PerCuboidSlopeThreshold",
    "PerDimensionLevelThreshold",
    "calibrate_threshold",
    "two_point_isb",
    "CubeResult",
    "framework_closure",
    "CubingStats",
    "full_materialization",
    "intermediate_slopes",
    "mo_cubing",
    "mo_cubing_from_tree",
    "popular_path_cubing",
    "popular_path_cubing_from_tree",
    "buc_cubing",
    "multiway_cubing",
    "build_mo_htree",
    "build_path_htree",
]
