"""Algorithm 1: m/o H-cubing (paper Section 4.4).

Compute regressions for every cuboid from the m-layer up to the o-layer via
the H-tree, retaining only the exception cells in between (all cells are
retained at the two critical layers).  The computation is bottom-up and
shared: each cuboid is aggregated (Theorem 3.2) from its cheapest
already-computed descendant cuboid, mirroring H-cubing's reuse of lower
group-bys; working cuboids are freed as soon as every cuboid that could roll
up from them has been computed.

Memory model note: H-cubing's transient space is "one local H-header table
for each level", reused across sibling group-bys — the header for a group-by
holds one entry per distinct cell of the cuboid under computation.  The
model therefore charges the *largest single cuboid* ever computed as the
transient working set (a conservative bound on the local header tables), not
the Python-side working dictionary, which is an implementation convenience.
Retained memory is the o-layer plus the exception cells — the paper's "only
the exception cells take additional space".
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cuboid import Cuboid
from repro.cube.layers import CriticalLayers
from repro.cubing.build import build_mo_htree
from repro.cubing.policy import ExceptionPolicy
from repro.cubing.result import CubeResult
from repro.cubing.stats import CubingStats, Stopwatch
from repro.htree.tree import HTree
from repro.regression.isb import ISB

__all__ = ["mo_cubing", "mo_cubing_from_tree"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


def mo_cubing(
    layers: CriticalLayers,
    m_cells: Mapping[Values, ISB] | Iterable[tuple[Values, ISB]],
    policy: ExceptionPolicy,
) -> CubeResult:
    """Run Algorithm 1 end to end: build the H-tree, then cube.

    ``m_cells`` are the m-layer regression cells ("Step 1" — aggregating the
    raw stream to the m-layer — is the stream engine's job; benchmarks and
    tests produce m-layer cells directly).
    """
    items = m_cells.items() if isinstance(m_cells, Mapping) else m_cells
    tree = build_mo_htree(layers, items)
    return mo_cubing_from_tree(layers, tree, policy)


def mo_cubing_from_tree(
    layers: CriticalLayers, tree: HTree, policy: ExceptionPolicy
) -> CubeResult:
    """Run Algorithm 1's Step 2 on an already-built H-tree."""
    schema = layers.schema
    lattice = layers.lattice
    stats = CubingStats("m/o-cubing", n_dims=schema.n_dims)
    watch = Stopwatch()

    stats.htree_nodes = tree.node_count
    stats.header_entries = tree.header_entry_count

    order = lattice.bottom_up_order()
    parents_remaining: dict[Coord, int] = {
        coord: len(lattice.parents(coord)) for coord in order
    }

    working: dict[Coord, Cuboid] = {}
    result_cuboids: dict[Coord, Cuboid] = {}
    retained_exceptions: dict[Coord, dict[Values, ISB]] = {}

    for coord in order:
        if coord == layers.m_coord:
            cuboid = Cuboid(schema, coord, dict(tree.leaf_cells()))
            stats.rows_scanned += len(cuboid)
            stats.htree_leaf_isbs = len(cuboid)
        else:
            src_coord = lattice.closest_descendant(coord, list(working))
            assert src_coord is not None, "children are freed only after parents"
            src = working[src_coord]
            cuboid = src.roll_up(coord)
            stats.rows_scanned += len(src)
            # Local-header-table bound: the largest group-by under
            # computation (see module docstring).
            if len(cuboid) > stats.transient_peak_cells:
                stats.transient_peak_cells = len(cuboid)
        stats.cells_computed += len(cuboid)
        stats.cuboids_computed += 1
        working[coord] = cuboid

        if coord == layers.o_coord:
            result_cuboids[coord] = cuboid
            stats.retained_cells += len(cuboid)
        elif coord == layers.m_coord:
            # The m-layer is the tree's own data; memory is charged to the
            # tree leaves, not to retained cells.
            result_cuboids[coord] = cuboid
        else:
            exceptions = {
                values: isb
                for values, isb in cuboid.items()
                if policy.is_exception(isb, coord)
            }
            retained_exceptions[coord] = exceptions
            result_cuboids[coord] = Cuboid(schema, coord, exceptions)
            stats.retained_cells += len(exceptions)

        # Free any descendant whose every parent cuboid is now computed
        # (Python-side memory hygiene; the model charge is the local header).
        for child in lattice.children(coord):
            parents_remaining[child] -= 1
            if parents_remaining[child] == 0:
                working.pop(child, None)

    stats.runtime_s = watch.elapsed()
    return CubeResult(
        layers=layers,
        policy=policy,
        cuboids=result_cuboids,
        stats=stats,
        retained_exceptions=retained_exceptions,
    )
