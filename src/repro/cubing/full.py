"""Full materialization of the m/o lattice — the baseline and the oracle.

The paper declines to benchmark full materialization ("comparing clear
winners against obvious losers"), but the reproduction needs it twice over:
as the correctness oracle for both exception-based algorithms, and as the
calibration population for turning a target exception *rate* into a slope
threshold (the x-axis of Figure 8).

Every cuboid between the layers is computed — with computation sharing, each
from its cheapest already-computed descendant — and every cell is retained.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cuboid import Cuboid
from repro.cube.layers import CriticalLayers
from repro.cubing.policy import ExceptionPolicy, GlobalSlopeThreshold
from repro.cubing.result import CubeResult
from repro.cubing.stats import CubingStats, Stopwatch
from repro.regression.isb import ISB

__all__ = ["full_materialization", "intermediate_slopes"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


def full_materialization(
    layers: CriticalLayers,
    m_cells: Mapping[Values, ISB] | Iterable[tuple[Values, ISB]],
    policy: ExceptionPolicy | None = None,
) -> CubeResult:
    """Materialize every cuboid of the m/o lattice, retaining every cell.

    ``policy`` only affects which cells the result reports as exceptions;
    it does not influence computation.  Defaults to a zero threshold
    (everything exceptional), which callers that just want the cells ignore.
    """
    if policy is None:
        policy = GlobalSlopeThreshold(0.0)
    stats = CubingStats("full-materialization", n_dims=layers.schema.n_dims)
    watch = Stopwatch()
    lattice = layers.lattice

    cells = dict(m_cells) if not isinstance(m_cells, Mapping) else dict(m_cells)
    cuboids: dict[Coord, Cuboid] = {}
    for coord in lattice.bottom_up_order():
        if coord == layers.m_coord:
            cuboid = Cuboid(layers.schema, coord, cells)
            stats.rows_scanned += len(cells)
        else:
            src_coord = lattice.closest_descendant(coord, list(cuboids))
            assert src_coord is not None  # m-layer is everyone's descendant
            src = cuboids[src_coord]
            cuboid = src.roll_up(coord)
            stats.rows_scanned += len(src)
        cuboids[coord] = cuboid
        stats.cells_computed += len(cuboid)
        stats.cuboids_computed += 1
        stats.retained_cells += len(cuboid)

    retained_exceptions = {
        coord: {
            values: isb
            for values, isb in cuboid.items()
            if policy.is_exception(isb, coord)
        }
        for coord, cuboid in cuboids.items()
        if coord != layers.m_coord
    }
    stats.runtime_s = watch.elapsed()
    return CubeResult(
        layers=layers,
        policy=policy,
        cuboids=cuboids,
        stats=stats,
        retained_exceptions=retained_exceptions,
        complete_coords=frozenset(cuboids),
    )


def intermediate_slopes(result: CubeResult) -> list[float]:
    """Slopes of every cell in the cuboids strictly between the layers.

    The calibration population for :func:`~repro.cubing.policy.calibrate_threshold`:
    Figure 8's "percentage of aggregated cells that belong to exception
    cells" is judged on exactly these cells.
    """
    layers = result.layers
    out: list[float] = []
    for coord, cuboid in result.cuboids.items():
        if coord in (layers.m_coord, layers.o_coord):
            continue
        out.extend(isb.slope for isb in cuboid.cells.values())
    return out
