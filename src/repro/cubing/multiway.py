"""Multiway simultaneous regression cubing (Section 7's other candidate).

Zhao, Deshpande & Naughton's multiway array aggregation [28] computes many
group-bys in a single pass over the base data, updating every target
simultaneously.  The paper lists it, with BUC, as a cubing technique worth
exploring for regression cubes; this module provides that exploration:

* one scan of the m-layer cells;
* for each cell, its ancestor key in *every* lattice cuboid is computed and
  the per-cuboid accumulator is updated in place (running base/slope sums —
  Theorem 3.2 reduces to addition, so simultaneous accumulation is exact);
* retention afterwards is identical to Algorithm 1 (all cells at the
  critical layers, exceptions in between).

Trade-off profile versus m/o H-cubing: a single data pass (good cache
behaviour, no intermediate cuboids) but ``#cuboids`` key computations per
base cell instead of sharing roll-ups between adjacent cuboids.  The
``bench_multiway`` benchmark records where each wins.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cuboid import Cuboid
from repro.cube.layers import CriticalLayers
from repro.cubing.policy import ExceptionPolicy
from repro.cubing.result import CubeResult
from repro.cubing.stats import CubingStats, Stopwatch
from repro.errors import AggregationError
from repro.regression.isb import ISB

__all__ = ["multiway_cubing"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


def multiway_cubing(
    layers: CriticalLayers,
    m_cells: Mapping[Values, ISB] | Iterable[tuple[Values, ISB]],
    policy: ExceptionPolicy,
) -> CubeResult:
    """Compute the whole m/o lattice in one simultaneous pass."""
    schema = layers.schema
    lattice = layers.lattice
    stats = CubingStats("multiway", n_dims=schema.n_dims)
    watch = Stopwatch()

    items = list(m_cells.items() if isinstance(m_cells, Mapping) else m_cells)
    if items:
        window = items[0][1].interval
        for _, isb in items:
            if isb.interval != window:
                raise AggregationError(
                    "multiway cubing requires one shared analysis window; "
                    f"got {window} and {isb.interval}"
                )

    # Per-cuboid accumulators: key -> [base_sum, slope_sum].
    targets: list[tuple[Coord, list, dict]] = []
    for coord in lattice.coords():
        if coord == layers.m_coord:
            continue
        mappers = [
            dim.hierarchy.ancestor_mapper(f, t)
            for dim, f, t in zip(schema.dimensions, layers.m_coord, coord)
        ]
        targets.append((coord, mappers, {}))

    for values, isb in items:
        stats.rows_scanned += 1
        base, slope = isb.base, isb.slope
        for _, mappers, acc in targets:
            key = tuple(m(v) for m, v in zip(mappers, values))
            entry = acc.get(key)
            if entry is None:
                acc[key] = [base, slope]
            else:
                entry[0] += base
                entry[1] += slope

    t_b, t_e = items[0][1].interval if items else (0, 0)
    result_cuboids: dict[Coord, Cuboid] = {
        layers.m_coord: Cuboid(layers.schema, layers.m_coord, dict(items))
    }
    retained_exceptions: dict[Coord, dict[Values, ISB]] = {}
    stats.htree_leaf_isbs = len(items)  # base-data charge, as elsewhere
    stats.cuboids_computed = lattice.size

    for coord, _, acc in targets:
        cells = {
            key: ISB(t_b, t_e, base, slope)
            for key, (base, slope) in acc.items()
        }
        stats.cells_computed += len(cells)
        if coord == layers.o_coord:
            result_cuboids[coord] = Cuboid(schema, coord, cells)
            stats.retained_cells += len(cells)
        else:
            exceptions = {
                values: isb
                for values, isb in cells.items()
                if policy.is_exception(isb, coord)
            }
            retained_exceptions[coord] = exceptions
            result_cuboids[coord] = Cuboid(schema, coord, exceptions)
            stats.retained_cells += len(exceptions)
            if len(cells) > stats.transient_peak_cells:
                stats.transient_peak_cells = len(cells)

    stats.runtime_s = watch.elapsed()
    return CubeResult(
        layers=layers,
        policy=policy,
        cuboids=result_cuboids,
        stats=stats,
        retained_exceptions=retained_exceptions,
    )
