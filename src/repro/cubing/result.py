"""Cubing results and the Framework 4.1 retention semantics.

A :class:`CubeResult` is what every cubing algorithm returns: the retained
cuboids (m-layer and o-layer in full; intermediate cuboids restricted to the
algorithm's retained exception cells), the policy that judged exceptions,
and the run's resource statistics.

:func:`framework_closure` implements the paper's Framework 4.1 / footnote 7
retention semantics as a specification over a *fully materialized* cube:
starting from the drill seeds (the o-layer's exception cells, plus — for
popular-path cubing — every exception cell of the cuboids materialized along
the path), a cell of a non-seeded cuboid is retained iff it is exceptional
and one of its parent cells (one dimension, one level up) is a retained
driver.  Algorithm 2's output must equal this closure exactly; Algorithm 1's
output (all exception cells everywhere) is a superset — the test-suite pins
both facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from repro.cube.cell import roll_up_values
from repro.cube.cuboid import Cuboid
from repro.cube.lattice import CuboidLattice
from repro.cube.layers import CriticalLayers
from repro.cubing.policy import ExceptionPolicy
from repro.cubing.stats import CubingStats
from repro.errors import QueryError
from repro.regression.isb import ISB

__all__ = ["CubeResult", "framework_closure"]

Coord = tuple[int, ...]
Values = tuple[Hashable, ...]


@dataclass
class CubeResult:
    """Output of a cubing algorithm.

    ``complete_coords`` names the cuboids (beyond the always-complete m- and
    o-layers) whose entry in ``cuboids`` holds *every* cell of the group-by
    rather than just retained exception cells: popular-path cubing completes
    its path cuboids, full materialization completes everything.  Queries
    use :meth:`complete_cuboid` to serve whole-cuboid scans from them
    instead of re-aggregating the m-layer.
    """

    layers: CriticalLayers
    policy: ExceptionPolicy
    cuboids: dict[Coord, Cuboid]
    stats: CubingStats
    retained_exceptions: dict[Coord, dict[Values, ISB]] = field(
        default_factory=dict
    )
    complete_coords: frozenset[Coord] | None = None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def o_layer(self) -> Cuboid:
        return self.cuboids[self.layers.o_coord]

    @property
    def m_layer(self) -> Cuboid:
        return self.cuboids[self.layers.m_coord]

    def is_complete(self, coord: Iterable[int]) -> bool:
        """Whether ``cuboids[coord]`` holds every cell of its group-by."""
        c = tuple(coord)
        if c not in self.cuboids:
            return False
        if c in (self.layers.m_coord, self.layers.o_coord):
            return True
        return self.complete_coords is not None and c in self.complete_coords

    def complete_cuboid(self, coord: Iterable[int]) -> Cuboid | None:
        """The fully materialized cuboid at ``coord``, or ``None``."""
        c = tuple(coord)
        return self.cuboids[c] if self.is_complete(c) else None

    def cuboid(self, coord: Iterable[int]) -> Cuboid:
        c = tuple(coord)
        try:
            return self.cuboids[c]
        except KeyError:
            raise QueryError(f"cuboid {c} was not materialized") from None

    def exceptions_at(self, coord: Iterable[int]) -> dict[Values, ISB]:
        """Retained exception cells of one cuboid (empty if none)."""
        return dict(self.retained_exceptions.get(tuple(coord), {}))

    def o_layer_exceptions(self) -> dict[Values, ISB]:
        """Exception cells at the observation layer (judged on demand)."""
        o = self.layers.o_coord
        return {
            values: isb
            for values, isb in self.o_layer.items()
            if self.policy.is_exception(isb, o)
        }

    @property
    def total_retained_exceptions(self) -> int:
        return sum(len(v) for v in self.retained_exceptions.values())

    def describe(self) -> str:
        """A short multi-line summary (used by examples)."""
        lines = [
            f"{self.stats.algorithm}: {len(self.cuboids)} cuboids held, "
            f"{self.total_retained_exceptions} exception cells retained",
            f"  o-layer cells: {len(self.o_layer)}   "
            f"m-layer cells: {len(self.m_layer)}",
            f"  runtime: {self.stats.runtime_s:.4f}s   "
            f"memory model: {self.stats.megabytes:.3f} MB",
        ]
        return "\n".join(lines)


def framework_closure(
    full_cuboids: Mapping[Coord, Cuboid],
    layers: CriticalLayers,
    policy: ExceptionPolicy,
    path_coords: Iterable[Coord] | None = None,
) -> dict[Coord, dict[Values, ISB]]:
    """Framework 4.1 retention over a fully materialized cube.

    Parameters
    ----------
    full_cuboids:
        Every lattice cuboid, fully materialized (the oracle).
    layers:
        The critical layers.
    policy:
        The exception policy.
    path_coords:
        Cuboids whose *every* exception cell seeds drilling (Algorithm 2
        materializes all cells of the popular path, so their exceptions all
        drive).  The o-layer always seeds.  With ``path_coords=None`` the
        closure describes pure o-layer-seeded drilling.

    Returns
    -------
    dict
        Per non-m-layer cuboid, the retained exception cells.  Seeded
        cuboids (o-layer + path) retain all of their exception cells;
        other cuboids retain the drill closure.
    """
    lattice: CuboidLattice = layers.lattice
    schema = layers.schema
    seeds = {layers.o_coord}
    if path_coords is not None:
        seeds.update(tuple(c) for c in path_coords)

    retained: dict[Coord, dict[Values, ISB]] = {}
    # Drivers per cuboid: the cells whose children get computed.
    drivers: dict[Coord, set[Values]] = {}

    for coord in lattice.top_down_order():
        cuboid = full_cuboids[coord]
        exceptional = {
            values: isb
            for values, isb in cuboid.items()
            if policy.is_exception(isb, coord)
        }
        if coord in seeds:
            kept = exceptional
        else:
            parent_drivers = [
                (p, drivers.get(p, set())) for p in lattice.parents(coord)
            ]
            kept = {}
            for values, isb in exceptional.items():
                for p_coord, p_driver in parent_drivers:
                    if not p_driver:
                        continue
                    parent_values = roll_up_values(
                        schema, values, coord, p_coord
                    )
                    if parent_values in p_driver:
                        kept[values] = isb
                        break
        drivers[coord] = set(kept)
        if coord != layers.m_coord:
            retained[coord] = kept
    return retained
