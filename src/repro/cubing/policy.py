"""Exception thresholds and policies (paper Section 4.3).

"A regression line is exceptional if its slope >= the exception threshold,
where an exception threshold can be defined by a user or an expert for each
cuboid c, for each dimension level d, or for the whole cube."  This module
implements those three granularities plus the paper's second notion of
exception — the regression *between* the current and the previous time
window — and a calibration helper that turns a target exception *rate* (the
x-axis of Fig 8) into a concrete threshold.

Exceptions are judged on the absolute slope: a steep decline is as
noteworthy as a steep rise for the paper's monitoring scenarios.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import CubingError
from repro.regression.isb import ISB

__all__ = [
    "ExceptionPolicy",
    "GlobalSlopeThreshold",
    "PerCuboidSlopeThreshold",
    "PerDimensionLevelThreshold",
    "two_point_isb",
    "calibrate_threshold",
]

Coord = tuple[int, ...]


class ExceptionPolicy(ABC):
    """Decides whether a cell's regression line is exceptional."""

    @abstractmethod
    def threshold_for(self, coord: Coord) -> float:
        """The slope threshold in force at cuboid ``coord``."""

    def is_exception(self, isb: ISB, coord: Coord) -> bool:
        """Whether the cell's |slope| passes the cuboid's threshold."""
        return abs(isb.slope) >= self.threshold_for(coord)


class GlobalSlopeThreshold(ExceptionPolicy):
    """One threshold for the whole cube."""

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise CubingError(f"threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    def threshold_for(self, coord: Coord) -> float:
        return self.threshold

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GlobalSlopeThreshold({self.threshold:g})"


class PerCuboidSlopeThreshold(ExceptionPolicy):
    """Per-cuboid thresholds with a default for unlisted cuboids."""

    def __init__(
        self, default: float, overrides: Mapping[Coord, float] | None = None
    ) -> None:
        if default < 0:
            raise CubingError(f"default threshold must be non-negative")
        self.default = float(default)
        self.overrides = {
            tuple(k): float(v) for k, v in (overrides or {}).items()
        }
        for coord, value in self.overrides.items():
            if value < 0:
                raise CubingError(
                    f"threshold for cuboid {coord} must be non-negative"
                )

    def threshold_for(self, coord: Coord) -> float:
        return self.overrides.get(tuple(coord), self.default)


class PerDimensionLevelThreshold(ExceptionPolicy):
    """Thresholds attached to ``(dimension, level)`` pairs.

    The paper allows a threshold "for each dimension level d"; a cuboid
    touches one level per dimension, so the cuboid's effective threshold
    combines the per-(dimension, level) values — by default with ``max``
    (the strictest interpretation: a cell is exceptional only if it clears
    the bar of its most demanding dimension level).
    """

    def __init__(
        self,
        default: float,
        levels: Mapping[tuple[int, int], float],
        combine: Callable[[Iterable[float]], float] = max,
    ) -> None:
        if default < 0:
            raise CubingError("default threshold must be non-negative")
        self.default = float(default)
        self.levels = {k: float(v) for k, v in levels.items()}
        self.combine = combine

    def threshold_for(self, coord: Coord) -> float:
        values = [
            self.levels.get((d, level), self.default)
            for d, level in enumerate(coord)
        ]
        if not values:
            return self.default
        return self.combine(values)


def two_point_isb(previous: ISB, current: ISB) -> ISB:
    """Regression "between two points": previous vs current window.

    The paper's second exception flavour compares "the current cell (such as
    the current quarter) vs. the previous one".  We fit the line through the
    two windows' mean points ``(t_mean_prev, z_mean_prev)`` and
    ``(t_mean_cur, z_mean_cur)`` — both exactly recoverable from the ISBs —
    over the combined interval.  Slope-based policies then apply unchanged.
    """
    if not previous.adjacent_before(current):
        raise CubingError(
            f"windows {previous.interval} and {current.interval} are not "
            "adjacent; cannot form a current-vs-previous regression"
        )
    t_prev = (previous.t_b + previous.t_e) / 2.0
    t_cur = (current.t_b + current.t_e) / 2.0
    slope = (current.mean - previous.mean) / (t_cur - t_prev)
    base = previous.mean - slope * t_prev
    return ISB(previous.t_b, current.t_e, base, slope)


def calibrate_threshold(
    slopes: Sequence[float] | Iterable[float], target_rate: float
) -> float:
    """Threshold making about ``target_rate`` of the given cells exceptional.

    ``slopes`` are the (signed) slopes of a representative cell population —
    the benchmarks use the intermediate-cuboid cells of a full
    materialization.  ``target_rate`` is a fraction in (0, 1]; the returned
    threshold makes ``|slope| >= threshold`` hold for roughly the requested
    fraction (exactly, up to ties, for the calibration population).

    The threshold is placed strictly *between* two distinct population
    values (the midpoint below the selected quantile sample) rather than on
    a sample itself, so that the float-level noise of different aggregation
    orders cannot flip a boundary cell's verdict between algorithms.
    """
    abs_slopes = sorted(abs(float(s)) for s in slopes)
    if not abs_slopes:
        raise CubingError("cannot calibrate a threshold on zero cells")
    if not 0.0 < target_rate <= 1.0:
        raise CubingError(
            f"target_rate must be in (0, 1], got {target_rate}"
        )
    if target_rate == 1.0:
        return 0.0
    # The "lower" quantile: the sample at floor((n-1) * q) of the sorted
    # population — the same element numpy's method="lower" selects, so the
    # scalar and numpy builds calibrate to bit-identical thresholds.
    position = (len(abs_slopes) - 1) * (1.0 - target_rate)
    pivot = abs_slopes[math.floor(position)]
    below = [s for s in abs_slopes if s < pivot]
    if not below:
        return pivot / 2.0 if pivot > 0 else 0.0
    return (pivot + max(below)) / 2.0
