"""Algorithm 2: popular-path cubing (paper Section 4.4).

Materialize only the cuboids along a popular drilling path (they live in the
H-tree's interior nodes after a bottom-up aggregation pass), then compute
exception cells *on demand*: starting at the o-layer, the children of every
exception cell of a computed cuboid are aggregated — by rolling up from the
closest computed path cuboid — and only those children that are themselves
exceptional are retained and drilled further, recursively down to the
m-layer (Framework 4.1, footnote 7).

Cost profile, matching the paper's analysis: at low exception rates almost
no off-path cuboid is touched (fast, but the path cells must be stored); at
high exception rates nearly every cuboid is drilled, and each drill scans a
path source without the cross-cuboid sharing m/o-cubing enjoys (slower).

Drilling is columnar where the schema allows it: integer (fanout)
hierarchies roll up and filter as packed int64 arrays with driver
membership via ``np.isin`` and one grouped Theorem 3.2 kernel per cuboid
(:class:`_ColumnarDrill`); other schemas use the scalar per-key loop.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cuboid import Cuboid
from repro.cube.lattice import PopularPath
from repro.cube.layers import CriticalLayers
from repro.cubing.build import build_path_htree
from repro.cubing.policy import ExceptionPolicy
from repro.cubing.result import CubeResult
from repro.cubing.stats import CubingStats, Stopwatch
from repro.errors import CubingError
from repro.htree.tree import HTree
from repro.regression import kernels
from repro.regression.isb import ISB
from repro.regression.kernels import merge_groups

__all__ = ["popular_path_cubing", "popular_path_cubing_from_tree"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


def popular_path_cubing(
    layers: CriticalLayers,
    m_cells: Mapping[Values, ISB] | Iterable[tuple[Values, ISB]],
    policy: ExceptionPolicy,
    path: PopularPath | None = None,
) -> CubeResult:
    """Run Algorithm 2 end to end: build the path-order H-tree, then cube.

    ``path`` defaults to :meth:`PopularPath.default` (drill dimensions in
    schema order).
    """
    if path is None:
        path = PopularPath.default(layers.lattice)
    _check_path(layers, path)
    items = m_cells.items() if isinstance(m_cells, Mapping) else m_cells
    tree = build_path_htree(layers, path, items)
    return popular_path_cubing_from_tree(layers, tree, policy, path)


def _check_path(layers: CriticalLayers, path: PopularPath) -> None:
    if path.m_coord != layers.m_coord or path.o_coord != layers.o_coord:
        raise CubingError(
            f"path runs {path.m_coord}->{path.o_coord} but the layers are "
            f"m={layers.m_coord}, o={layers.o_coord}"
        )


def _extract_path_cells(
    tree: HTree, layers: CriticalLayers, path: PopularPath
) -> dict[Coord, dict[Values, ISB]]:
    """Read every path cuboid out of the aggregated tree in one DFS.

    In path attribute order, the node at depth ``n_o_attrs + j`` *is* a cell
    of the ``j``-th path cuboid (counted o-layer-first); its cell key per
    dimension is the prefix value at that dimension's level attribute, or
    ``*`` where the cuboid's level is 0.
    """
    from repro.cube.hierarchy import ALL

    n_o_attrs = sum(layers.o_coord)
    o_first = list(reversed(path.coords))
    plans: dict[int, tuple[Coord, tuple[int | None, ...]]] = {}
    for j, coord in enumerate(o_first):
        plan = tuple(
            None if level == 0 else tree.attr_position(d, level)
            for d, level in enumerate(coord)
        )
        plans[n_o_attrs + j] = (coord, plan)
    out: dict[Coord, dict[Values, ISB]] = {coord: {} for coord in o_first}
    max_depth = max(plans) if plans else 0

    # Iterative pre-order DFS over (node, depth): when a node at depth d is
    # popped, prefix[0..d-2] still holds its ancestors' values (siblings
    # overwrite exactly slot d-1), so one shared buffer replaces recursion
    # frames on this node-count-sized hot path.  Subtrees below the deepest
    # plan depth are never entered.
    prefix: list = [None] * max_depth
    stack: list = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        if depth:
            prefix[depth - 1] = node.value
        entry = plans.get(depth)
        if entry is not None:
            coord, plan = entry
            key = tuple([ALL if p is None else prefix[p] for p in plan])
            out[coord][key] = node.isb
        if depth < max_depth:
            # Reversed push keeps the recursive visit order (and with it the
            # cuboids' cell insertion order) unchanged.
            for child in reversed(node.children.values()):
                stack.append((child, depth + 1))
    return out


class _ColumnarDrill:
    """Vectorized off-path drilling for integer (fanout) hierarchies.

    The synthetic ``DxLyCz`` cubes — and any schema built purely from
    :class:`~repro.cube.hierarchy.FanoutHierarchy` — encode values as
    integers with closed-form ancestors (``v // fanout**k``), so a drilled
    cuboid reduces to array arithmetic: pack each source cell's key into one
    int64, roll up with vectorized divisions, test driver membership with
    ``np.isin``, and merge the surviving groups with one
    :func:`~repro.regression.kernels.segment_merge` call.  No per-row Python
    at all; schemas with explicit (string) hierarchies use the scalar loop
    in :func:`popular_path_cubing_from_tree` instead.
    """

    def __init__(self, layers: CriticalLayers) -> None:
        from repro.cube.hierarchy import FanoutHierarchy

        self.usable = kernels.HAVE_NUMPY and all(
            isinstance(dim.hierarchy, FanoutHierarchy)
            for dim in layers.schema.dimensions
        )
        if not self.usable:
            return
        self.fanouts = [
            dim.hierarchy.fanout for dim in layers.schema.dimensions
        ]
        self._sources: dict[Coord, tuple] = {}
        self._packed_drivers: dict[Coord, "object"] = {}

    def _source(self, src_coord: Coord, src: Mapping[Values, ISB]):
        cached = self._sources.get(src_coord)
        if cached is None:
            import numpy as np

            n = len(src)
            # Per-dimension columns; a level-0 dimension holds the ALL
            # sentinel (non-numeric) but is also never consulted, since any
            # roll-up target of it is level 0 too.
            columns = [
                np.fromiter(
                    (key[d] for key in src.keys()), dtype=np.int64, count=n
                )
                if level > 0
                else None
                for d, level in enumerate(src_coord)
            ]
            cols = kernels.ISBColumns.from_isbs(src.values())
            cached = (n, columns, cols)
            self._sources[src_coord] = cached
        return cached

    def _pack(self, values: Values, coord: Coord) -> int:
        packed = 0
        for d, level in enumerate(coord):
            if level > 0:
                packed = packed * self.fanouts[d] ** level + int(values[d])
        return packed

    def drill(
        self,
        src_coord: Coord,
        src: Mapping[Values, ISB],
        coord: Coord,
        active_parents: list,
        all_driven: bool,
    ) -> dict[Values, ISB] | None:
        """The drilled cuboid's cells, or ``None`` to use the scalar loop."""
        import numpy as np

        from repro.cube.hierarchy import ALL

        card = 1
        for d, level in enumerate(coord):
            if level > 0:
                card *= self.fanouts[d] ** level
        if card > 2**62 or not src:  # packing would overflow / nothing to do
            return None
        n, columns, cols = self._source(src_coord, src)

        mapped: list = [None] * len(coord)
        key_id = np.zeros(n, dtype=np.int64)
        for d, (f, t) in enumerate(zip(src_coord, coord)):
            if t == 0:
                continue
            column = columns[d]
            if t < f:
                column = column // self.fanouts[d] ** (f - t)
            mapped[d] = column
            key_id = key_id * self.fanouts[d] ** t + column

        if all_driven:
            mask = None
        else:
            mask = np.zeros(n, dtype=bool)
            for p_coord, p_drivers in active_parents:
                packed = self._packed_drivers.get(p_coord)
                if packed is None:
                    packed = np.fromiter(
                        (self._pack(k, p_coord) for k in p_drivers),
                        dtype=np.int64,
                        count=len(p_drivers),
                    )
                    self._packed_drivers[p_coord] = packed
                parent_id = np.zeros(n, dtype=np.int64)
                for d, (t, p) in enumerate(zip(coord, p_coord)):
                    if p == 0:
                        continue
                    column = mapped[d]
                    if p < t:
                        column = column // self.fanouts[d] ** (t - p)
                    parent_id = (
                        parent_id * self.fanouts[d] ** p + column
                    )
                mask |= np.isin(parent_id, packed)

        rows = np.arange(n) if mask is None else np.flatnonzero(mask)
        if not len(rows):
            return {}
        ids = key_id[rows]
        order = np.argsort(ids, kind="stable")  # keeps source order per group
        rows = rows[order]
        ids = ids[order]
        starts = np.flatnonzero(
            np.concatenate(([True], ids[1:] != ids[:-1]))
        )
        subset = kernels.ISBColumns(
            cols.t_b[rows], cols.t_e[rows], cols.base[rows], cols.slope[rows]
        )
        merged = kernels.segment_merge(subset, starts).to_isbs()
        first_rows = rows[starts]
        key_columns = [
            None if mapped[d] is None else mapped[d][first_rows].tolist()
            for d in range(len(coord))
        ]
        out: dict[Values, ISB] = {}
        for i, isb in enumerate(merged):
            out[
                tuple(
                    ALL if col is None else col[i] for col in key_columns
                )
            ] = isb
        return out


def popular_path_cubing_from_tree(
    layers: CriticalLayers,
    tree: HTree,
    policy: ExceptionPolicy,
    path: PopularPath,
) -> CubeResult:
    """Run Algorithm 2's Steps 2-3 on an already-built path-order H-tree."""
    schema = layers.schema
    lattice = layers.lattice
    _check_path(layers, path)
    stats = CubingStats("popular-path", n_dims=schema.n_dims)
    watch = Stopwatch()

    # ------------------------------------------------------------------
    # Step 2: roll up along the path; the tree stores the path cuboids.
    # ------------------------------------------------------------------
    tree.aggregate_interior()
    stats.rows_scanned += tree.node_count  # one bottom-up pass
    stats.htree_nodes = tree.node_count

    path_cells = _extract_path_cells(tree, layers, path)
    for cells in path_cells.values():
        stats.cells_computed += len(cells)
        stats.cuboids_computed += 1
    stats.htree_leaf_isbs = len(path_cells[layers.m_coord])
    # Every non-leaf node stores a regression point (root included).
    stats.htree_interior_isbs = tree.node_count - stats.htree_leaf_isbs + 1

    # ------------------------------------------------------------------
    # Step 3: exception-guided drilling, o-layer downward.
    # ------------------------------------------------------------------
    path_set = set(path.coords)
    columnar = _ColumnarDrill(layers)
    drivers: dict[Coord, set[Values]] = {}
    # Path cuboids are fully materialized, so "every computed cell is a
    # driver" means every child group's parent exists and drives — the
    # membership scan below can be skipped wholesale.  (Not sound for
    # drilled cuboids: their computed cells are only the driven subset.)
    fully_driven: set[Coord] = set()
    result_cuboids: dict[Coord, Cuboid] = {}
    retained_exceptions: dict[Coord, dict[Values, ISB]] = {}

    for coord in lattice.top_down_order():
        if coord in path_set:
            cells = path_cells[coord]
        else:
            active_parents = [
                (p, drivers[p])
                for p in lattice.parents(coord)
                if drivers.get(p)
            ]
            if not active_parents:
                drivers[coord] = set()
                retained_exceptions[coord] = {}
                result_cuboids[coord] = Cuboid(schema, coord)
                stats.cuboids_skipped += 1
                continue
            src_coord = lattice.closest_descendant(coord, path.coords)
            assert src_coord is not None  # the m-layer is on the path
            src = path_cells[src_coord]
            stats.rows_scanned += len(src)
            all_driven = any(
                p_coord in fully_driven for p_coord, _ in active_parents
            )
            cells = (
                columnar.drill(
                    src_coord, src, coord, active_parents, all_driven
                )
                if columnar.usable
                else None
            )
            if cells is None:
                # Scalar drill: drive-membership is a function of the
                # rolled-up key alone, so it is decided once per distinct
                # key (memoized) rather than once per source cell; only
                # driven cells are grouped at all.
                src_to_here = [
                    dim.hierarchy.ancestor_mapper(f, t)
                    for dim, f, t in zip(schema.dimensions, src_coord, coord)
                ]
                here_to_parent = [
                    (
                        [
                            dim.hierarchy.ancestor_mapper(f, t)
                            for dim, f, t in zip(
                                schema.dimensions, coord, p_coord
                            )
                        ],
                        p_drivers,
                    )
                    for p_coord, p_drivers in active_parents
                ]
                decided: dict[Values, bool] = {}
                groups: dict[Values, list[ISB]] = {}
                for values, isb in src.items():
                    key = tuple([m(v) for m, v in zip(src_to_here, values)])
                    is_driven = True if all_driven else decided.get(key)
                    if is_driven is None:
                        is_driven = False
                        for parent_maps, p_drivers in here_to_parent:
                            parent_key = tuple(
                                [m(v) for m, v in zip(parent_maps, key)]
                            )
                            if parent_key in p_drivers:
                                is_driven = True
                                break
                        decided[key] = is_driven
                    if is_driven:
                        group = groups.get(key)
                        if group is None:
                            groups[key] = group = []
                        group.append(isb)
                # One grouped Theorem 3.2 kernel call per drilled cuboid.
                cells = merge_groups(groups)
            stats.cells_computed += len(cells)
            stats.cuboids_computed += 1
            if len(cells) > stats.transient_peak_cells:
                stats.transient_peak_cells = len(cells)

        exceptions = {
            values: isb
            for values, isb in cells.items()
            if policy.is_exception(isb, coord)
        }
        drivers[coord] = set(exceptions)
        if coord in path_set and cells and len(exceptions) == len(cells):
            fully_driven.add(coord)

        if coord == layers.o_coord:
            result_cuboids[coord] = Cuboid(schema, coord, cells)
            stats.retained_cells += len(cells)
        elif coord == layers.m_coord:
            result_cuboids[coord] = Cuboid(schema, coord, cells)
            # The m-layer is charged to the tree's leaf regression points.
        elif coord in path_set:
            # Path cells stay resident in the tree (charged as interior
            # ISBs); the *output* is the exception cells.
            retained_exceptions[coord] = exceptions
            result_cuboids[coord] = Cuboid(schema, coord, cells)
        else:
            retained_exceptions[coord] = exceptions
            result_cuboids[coord] = Cuboid(schema, coord, exceptions)
            stats.retained_cells += len(exceptions)

    stats.runtime_s = watch.elapsed()
    return CubeResult(
        layers=layers,
        policy=policy,
        cuboids=result_cuboids,
        stats=stats,
        retained_exceptions=retained_exceptions,
        # Path cuboids are fully materialized (step 2), so whole-cuboid
        # queries can serve from them instead of re-aggregating the m-layer.
        complete_coords=frozenset(path_set),
    )
