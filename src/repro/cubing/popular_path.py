"""Algorithm 2: popular-path cubing (paper Section 4.4).

Materialize only the cuboids along a popular drilling path (they live in the
H-tree's interior nodes after a bottom-up aggregation pass), then compute
exception cells *on demand*: starting at the o-layer, the children of every
exception cell of a computed cuboid are aggregated — by rolling up from the
closest computed path cuboid — and only those children that are themselves
exceptional are retained and drilled further, recursively down to the
m-layer (Framework 4.1, footnote 7).

Cost profile, matching the paper's analysis: at low exception rates almost
no off-path cuboid is touched (fast, but the path cells must be stored); at
high exception rates nearly every cuboid is drilled, and each drill scans a
path source without the cross-cuboid sharing m/o-cubing enjoys (slower).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cuboid import Cuboid
from repro.cube.lattice import PopularPath
from repro.cube.layers import CriticalLayers
from repro.cubing.build import build_path_htree
from repro.cubing.policy import ExceptionPolicy
from repro.cubing.result import CubeResult
from repro.cubing.stats import CubingStats, Stopwatch
from repro.errors import CubingError
from repro.htree.tree import HTree
from repro.regression.aggregation import merge_standard
from repro.regression.isb import ISB

__all__ = ["popular_path_cubing", "popular_path_cubing_from_tree"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


def popular_path_cubing(
    layers: CriticalLayers,
    m_cells: Mapping[Values, ISB] | Iterable[tuple[Values, ISB]],
    policy: ExceptionPolicy,
    path: PopularPath | None = None,
) -> CubeResult:
    """Run Algorithm 2 end to end: build the path-order H-tree, then cube.

    ``path`` defaults to :meth:`PopularPath.default` (drill dimensions in
    schema order).
    """
    if path is None:
        path = PopularPath.default(layers.lattice)
    _check_path(layers, path)
    items = m_cells.items() if isinstance(m_cells, Mapping) else m_cells
    tree = build_path_htree(layers, path, items)
    return popular_path_cubing_from_tree(layers, tree, policy, path)


def _check_path(layers: CriticalLayers, path: PopularPath) -> None:
    if path.m_coord != layers.m_coord or path.o_coord != layers.o_coord:
        raise CubingError(
            f"path runs {path.m_coord}->{path.o_coord} but the layers are "
            f"m={layers.m_coord}, o={layers.o_coord}"
        )


def _extract_path_cells(
    tree: HTree, layers: CriticalLayers, path: PopularPath
) -> dict[Coord, dict[Values, ISB]]:
    """Read every path cuboid out of the aggregated tree in one DFS.

    In path attribute order, the node at depth ``n_o_attrs + j`` *is* a cell
    of the ``j``-th path cuboid (counted o-layer-first); its cell key per
    dimension is the prefix value at that dimension's level attribute, or
    ``*`` where the cuboid's level is 0.
    """
    from repro.cube.hierarchy import ALL

    n_o_attrs = sum(layers.o_coord)
    o_first = list(reversed(path.coords))
    plans: dict[int, tuple[Coord, tuple[int | None, ...]]] = {}
    for j, coord in enumerate(o_first):
        plan = tuple(
            None if level == 0 else tree.attr_position(d, level)
            for d, level in enumerate(coord)
        )
        plans[n_o_attrs + j] = (coord, plan)
    out: dict[Coord, dict[Values, ISB]] = {coord: {} for coord in o_first}

    prefix: list = []

    def visit(node) -> None:
        depth = len(prefix)
        entry = plans.get(depth)
        if entry is not None:
            coord, plan = entry
            key = tuple(ALL if p is None else prefix[p] for p in plan)
            out[coord][key] = node.isb
        for value, child in node.children.items():
            prefix.append(value)
            visit(child)
            prefix.pop()

    visit(tree.root)
    return out


def popular_path_cubing_from_tree(
    layers: CriticalLayers,
    tree: HTree,
    policy: ExceptionPolicy,
    path: PopularPath,
) -> CubeResult:
    """Run Algorithm 2's Steps 2-3 on an already-built path-order H-tree."""
    schema = layers.schema
    lattice = layers.lattice
    _check_path(layers, path)
    stats = CubingStats("popular-path", n_dims=schema.n_dims)
    watch = Stopwatch()

    # ------------------------------------------------------------------
    # Step 2: roll up along the path; the tree stores the path cuboids.
    # ------------------------------------------------------------------
    tree.aggregate_interior()
    stats.rows_scanned += tree.node_count  # one bottom-up pass
    stats.htree_nodes = tree.node_count

    path_cells = _extract_path_cells(tree, layers, path)
    for cells in path_cells.values():
        stats.cells_computed += len(cells)
        stats.cuboids_computed += 1
    stats.htree_leaf_isbs = len(path_cells[layers.m_coord])
    # Every non-leaf node stores a regression point (root included).
    stats.htree_interior_isbs = tree.node_count - stats.htree_leaf_isbs + 1

    # ------------------------------------------------------------------
    # Step 3: exception-guided drilling, o-layer downward.
    # ------------------------------------------------------------------
    path_set = set(path.coords)
    drivers: dict[Coord, set[Values]] = {}
    result_cuboids: dict[Coord, Cuboid] = {}
    retained_exceptions: dict[Coord, dict[Values, ISB]] = {}

    for coord in lattice.top_down_order():
        if coord in path_set:
            cells = path_cells[coord]
        else:
            active_parents = [
                (p, drivers[p])
                for p in lattice.parents(coord)
                if drivers.get(p)
            ]
            if not active_parents:
                drivers[coord] = set()
                retained_exceptions[coord] = {}
                result_cuboids[coord] = Cuboid(schema, coord)
                stats.cuboids_skipped += 1
                continue
            src_coord = lattice.closest_descendant(coord, path.coords)
            assert src_coord is not None  # the m-layer is on the path
            src = path_cells[src_coord]
            src_to_here = [
                dim.hierarchy.ancestor_mapper(f, t)
                for dim, f, t in zip(schema.dimensions, src_coord, coord)
            ]
            here_to_parent = [
                (
                    [
                        dim.hierarchy.ancestor_mapper(f, t)
                        for dim, f, t in zip(schema.dimensions, coord, p_coord)
                    ],
                    p_drivers,
                )
                for p_coord, p_drivers in active_parents
            ]
            groups: dict[Values, list[ISB]] = {}
            for values, isb in src.items():
                stats.rows_scanned += 1
                key = tuple(m(v) for m, v in zip(src_to_here, values))
                for parent_maps, p_drivers in here_to_parent:
                    parent_key = tuple(
                        m(v) for m, v in zip(parent_maps, key)
                    )
                    if parent_key in p_drivers:
                        groups.setdefault(key, []).append(isb)
                        break
            cells = {k: merge_standard(v) for k, v in groups.items()}
            stats.cells_computed += len(cells)
            stats.cuboids_computed += 1
            if len(cells) > stats.transient_peak_cells:
                stats.transient_peak_cells = len(cells)

        exceptions = {
            values: isb
            for values, isb in cells.items()
            if policy.is_exception(isb, coord)
        }
        drivers[coord] = set(exceptions)

        if coord == layers.o_coord:
            result_cuboids[coord] = Cuboid(schema, coord, cells)
            stats.retained_cells += len(cells)
        elif coord == layers.m_coord:
            result_cuboids[coord] = Cuboid(schema, coord, cells)
            # The m-layer is charged to the tree's leaf regression points.
        elif coord in path_set:
            # Path cells stay resident in the tree (charged as interior
            # ISBs); the *output* is the exception cells.
            retained_exceptions[coord] = exceptions
            result_cuboids[coord] = Cuboid(schema, coord, cells)
        else:
            retained_exceptions[coord] = exceptions
            result_cuboids[coord] = Cuboid(schema, coord, exceptions)
            stats.retained_cells += len(exceptions)

    stats.runtime_s = watch.elapsed()
    return CubeResult(
        layers=layers,
        policy=policy,
        cuboids=result_cuboids,
        stats=stats,
        retained_exceptions=retained_exceptions,
        # Path cuboids are fully materialized (step 2), so whole-cuboid
        # queries can serve from them instead of re-aggregating the m-layer.
        complete_coords=frozenset(path_set),
    )
