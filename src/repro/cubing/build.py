"""H-tree builders shared by the cubing algorithms.

Algorithm 1 wants the cardinality-ascending attribute order (maximal prefix
sharing, Example 5); Algorithm 2 wants the popular-path order (so the tree's
interior nodes *are* the path cuboids).  Both builders take the m-layer
cells as ``(values, isb)`` pairs.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.cube.lattice import PopularPath
from repro.cube.layers import CriticalLayers
from repro.htree.tree import HTree, cardinality_ascending_order
from repro.regression.isb import ISB

__all__ = ["build_mo_htree", "build_path_htree"]

Values = tuple[Hashable, ...]


def build_mo_htree(
    layers: CriticalLayers, cells: Iterable[tuple[Values, ISB]]
) -> HTree:
    """H-tree in cardinality-ascending order, loaded with the m-layer cells."""
    order = cardinality_ascending_order(layers.schema, layers.m_coord)
    tree = HTree(layers.schema, layers.m_coord, order)
    tree.insert_many(cells)
    return tree


def build_path_htree(
    layers: CriticalLayers,
    path: PopularPath,
    cells: Iterable[tuple[Values, ISB]],
) -> HTree:
    """H-tree in popular-path order, loaded with the m-layer cells.

    The path's attribute order is the o-layer's attributes (levels ``1..o``
    per dimension, schema order) followed by the attribute each drill step
    adds — together exactly the levels ``1..m`` of every dimension, so the
    tree's attribute-set invariant holds and the node at depth
    ``len(o-attrs) + j`` is a cell of the ``j``-th path cuboid.
    """
    order = list(path.attribute_order)
    return_tree = HTree(layers.schema, layers.m_coord, order)
    return_tree.insert_many(cells)
    return return_tree
