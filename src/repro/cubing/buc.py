"""BUC-style regression cubing (Section 7's "explore other cubing techniques").

Bottom-Up Computation [5] computes a cube by recursive partitioning: output
the aggregate of the current tuple group, then, for each dimension not yet
refined past, partition the group by the next-finer level of that dimension
and recurse into each part.  Extended here to multi-level dimensions: a
recursion step refines one dimension by exactly one hierarchy level, and
dimensions may only be refined in non-decreasing dimension order — which
visits every cuboid of the m/o lattice exactly once.

Unlike iceberg BUC, no support-based pruning applies: exception-ness of a
regression slope is not anti-monotone (a flat aggregate can have steep
children), so the algorithm computes every cell and — like Algorithm 1 —
retains only the exceptions between the layers.  Its value is as the
alternative computation-order baseline the paper's future work calls for:
partition-based aggregation from raw m-layer groups versus H-cubing's
shared roll-ups.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.cube.cuboid import Cuboid
from repro.cube.layers import CriticalLayers
from repro.cubing.policy import ExceptionPolicy
from repro.cubing.result import CubeResult
from repro.cubing.stats import CubingStats, Stopwatch
from repro.regression.aggregation import merge_standard
from repro.regression.isb import ISB

__all__ = ["buc_cubing"]

Values = tuple[Hashable, ...]
Coord = tuple[int, ...]


def buc_cubing(
    layers: CriticalLayers,
    m_cells: Mapping[Values, ISB] | Iterable[tuple[Values, ISB]],
    policy: ExceptionPolicy,
) -> CubeResult:
    """Compute the m/o lattice by BUC-style recursive partitioning."""
    schema = layers.schema
    lattice = layers.lattice
    stats = CubingStats("buc", n_dims=schema.n_dims)
    watch = Stopwatch()

    items = list(m_cells.items() if isinstance(m_cells, Mapping) else m_cells)
    m_coord = layers.m_coord
    o_coord = layers.o_coord

    cuboids: dict[Coord, dict[Values, ISB]] = {
        coord: {} for coord in lattice.coords()
    }

    def emit(coord: Coord, values: Values, group: list[tuple[Values, ISB]]) -> ISB:
        isb = merge_standard([isb for _, isb in group])
        stats.rows_scanned += len(group)
        stats.cells_computed += 1
        cuboids[coord][values] = isb
        return isb

    def partition(
        group: list[tuple[Values, ISB]], dim: int, level: int
    ) -> dict[Hashable, list[tuple[Values, ISB]]]:
        hier = schema.dimensions[dim].hierarchy
        parts: dict[Hashable, list[tuple[Values, ISB]]] = {}
        for m_values, isb in group:
            key = hier.ancestor(m_values[dim], m_coord[dim], level)
            parts.setdefault(key, []).append((m_values, isb))
        return parts

    def recurse(
        start_dim: int,
        coord: Coord,
        values: Values,
        group: list[tuple[Values, ISB]],
    ) -> None:
        for dim in range(start_dim, schema.n_dims):
            next_level = coord[dim] + 1
            if next_level > m_coord[dim]:
                continue
            child_coord = coord[:dim] + (next_level,) + coord[dim + 1 :]
            for value, sub in partition(group, dim, next_level).items():
                child_values = values[:dim] + (value,) + values[dim + 1 :]
                emit(child_coord, child_values, sub)
                recurse(dim, child_coord, child_values, sub)

    # Seed with the o-layer cells, then refine recursively.
    seed_coord = o_coord
    seeds: dict[Values, list[tuple[Values, ISB]]] = {}
    for m_values, isb in items:
        key = tuple(
            schema.dimensions[d].hierarchy.ancestor(
                m_values[d], m_coord[d], o_coord[d]
            )
            for d in range(schema.n_dims)
        )
        seeds.setdefault(key, []).append((m_values, isb))
    for o_values, group in seeds.items():
        emit(seed_coord, o_values, group)
        recurse(0, seed_coord, o_values, group)
    stats.cuboids_computed = lattice.size

    # Retention identical to Algorithm 1.
    result_cuboids: dict[Coord, Cuboid] = {}
    retained_exceptions: dict[Coord, dict[Values, ISB]] = {}
    for coord, cells in cuboids.items():
        if coord in (layers.m_coord, layers.o_coord):
            result_cuboids[coord] = Cuboid(schema, coord, cells)
            if coord == layers.o_coord:
                stats.retained_cells += len(cells)
            else:
                stats.htree_leaf_isbs = len(cells)  # base-data charge
        else:
            exceptions = {
                values: isb
                for values, isb in cells.items()
                if policy.is_exception(isb, coord)
            }
            retained_exceptions[coord] = exceptions
            result_cuboids[coord] = Cuboid(schema, coord, exceptions)
            stats.retained_cells += len(exceptions)
            if len(cells) > stats.transient_peak_cells:
                stats.transient_peak_cells = len(cells)

    stats.runtime_s = watch.elapsed()
    return CubeResult(
        layers=layers,
        policy=policy,
        cuboids=result_cuboids,
        stats=stats,
        retained_exceptions=retained_exceptions,
    )
