"""Cubing statistics and the analytic memory model.

The paper reports processing time and memory usage (Figures 8-10).  Absolute
Python-object sizes would swamp the C-struct-scale differences the paper's
analysis attributes memory to, so memory is modelled analytically: every
structure the paper's Section 4.4 analysis names (H-tree nodes, header
entries, stored regression points, retained exception cells, transient
working space) is counted at the size a C implementation would give it.
This keeps the *relative* memory comparisons — which algorithm uses more
memory under which conditions — deterministic and faithful.

Wall-clock runtime is measured directly; deterministic work counters
(cells computed, source rows scanned) are kept alongside as a
machine-independent time proxy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.htree.header import HEADER_ENTRY_BYTES
from repro.htree.node import HTREE_NODE_BYTES
from repro.regression.isb import ISB_STRUCT_BYTES

__all__ = ["CubingStats", "Stopwatch", "CELL_KEY_BYTES_PER_DIM"]

#: Bytes to key one cell per dimension (a value id), as a C struct would.
CELL_KEY_BYTES_PER_DIM = 8


@dataclass
class CubingStats:
    """Resource accounting for one cubing run."""

    algorithm: str
    n_dims: int = 0
    runtime_s: float = 0.0
    # --- structure sizes -------------------------------------------------
    htree_nodes: int = 0
    htree_leaf_isbs: int = 0
    htree_interior_isbs: int = 0
    header_entries: int = 0
    retained_cells: int = 0
    transient_peak_cells: int = 0
    # --- work counters ----------------------------------------------------
    cells_computed: int = 0
    rows_scanned: int = 0
    cuboids_computed: int = 0
    cuboids_skipped: int = 0

    _live_transient: int = field(default=0, repr=False)

    # ------------------------------------------------------------------
    # Transient working-set tracking
    # ------------------------------------------------------------------
    def transient_alloc(self, cells: int) -> None:
        """Record allocation of a transient working structure."""
        self._live_transient += cells
        if self._live_transient > self.transient_peak_cells:
            self.transient_peak_cells = self._live_transient

    def transient_free(self, cells: int) -> None:
        """Record release of a transient working structure."""
        self._live_transient -= cells

    # ------------------------------------------------------------------
    # The memory model
    # ------------------------------------------------------------------
    def bytes_total(self) -> int:
        """Modelled peak memory of the run, in bytes.

        Counts the H-tree (nodes, stored ISBs, header entries), the retained
        output cells (key + ISB each) and the peak transient working set.
        """
        cell_bytes = ISB_STRUCT_BYTES + CELL_KEY_BYTES_PER_DIM * self.n_dims
        return (
            self.htree_nodes * HTREE_NODE_BYTES
            + (self.htree_leaf_isbs + self.htree_interior_isbs) * ISB_STRUCT_BYTES
            + self.header_entries * HEADER_ENTRY_BYTES
            + self.retained_cells * cell_bytes
            + self.transient_peak_cells * cell_bytes
        )

    @property
    def megabytes(self) -> float:
        """Modelled peak memory in M-bytes (the paper's unit)."""
        return self.bytes_total() / (1024.0 * 1024.0)


class Stopwatch:
    """A tiny perf_counter stopwatch used by the cubing algorithms."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start
