"""Seeded fault injection for every durability I/O path.

See :mod:`repro.faults.plan` for the model.  The idiomatic call-site
import is the package itself::

    from repro import faults
    ...
    faults.check("store.write")          # may raise OSError / sleep
    data = faults.corrupt("store.read", data)
"""

from repro.faults.plan import (
    PRESETS,
    SITES,
    SUPERVISOR_SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    active,
    active_plan,
    check,
    clear,
    corrupt,
    install,
    install_for_worker,
    lie,
    load_plan,
    preset_plan,
    stats,
    torn,
)

__all__ = [
    "PRESETS",
    "SITES",
    "SUPERVISOR_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "active",
    "active_plan",
    "check",
    "clear",
    "corrupt",
    "install",
    "install_for_worker",
    "lie",
    "load_plan",
    "preset_plan",
    "stats",
    "torn",
]
